package ctxcancel_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/ctxcancel"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcancel.Analyzer, "internal/xai/sampler")
}

// TestOutOfScope ensures packages outside internal/xai are ignored even
// when they contain the violating shape.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcancel.Analyzer, "internal/other")
}
