// Package sampler is ctxcancel golden testdata: loops that drive a model
// evaluator from a context-carrying function must poll the context.
package sampler

import "context"

type model struct{}

func (model) Predict(x []float64) float64               { return 0 }
func (model) PredictBatch(x [][]float64, out []float64) {}

// uncheckedLoop ignores ctx entirely: the canonical violation.
func uncheckedLoop(ctx context.Context, m model, xs [][]float64) float64 {
	s := 0.0
	for _, x := range xs { // want "never polls its context"
		s += m.Predict(x)
	}
	return s
}

// uncheckedForLoop is the same violation with a 3-clause for.
func uncheckedForLoop(ctx context.Context, m model, xs [][]float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ { // want "loop calls Predict"
		s += m.Predict(xs[i])
	}
	return s
}

// errPolling checks ctx.Err every iteration: allowed.
func errPolling(ctx context.Context, m model, xs [][]float64) (float64, error) {
	s := 0.0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += m.Predict(x)
	}
	return s, nil
}

// donePolling selects on ctx.Done: allowed.
func donePolling(ctx context.Context, m model, xs [][]float64) (float64, error) {
	s := 0.0
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		s += m.Predict(x)
	}
	return s, nil
}

// propagating hands ctx to a helper each iteration: allowed (the helper
// owns the polling contract).
func propagating(ctx context.Context, m model, xs [][]float64) error {
	for _, x := range xs {
		if err := evalOne(ctx, m, x); err != nil {
			return err
		}
	}
	return nil
}

func evalOne(ctx context.Context, m model, x []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = m.Predict(x)
	return nil
}

// outerPolled: the outer block loop polls; the inner per-row loop is the
// sanctioned batched pattern (checked once per block) and is not flagged.
func outerPolled(ctx context.Context, m model, blocks [][][]float64) error {
	for _, block := range blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, x := range block {
			_ = m.Predict(x)
		}
	}
	return nil
}

// noCtx has no context parameter, so the contract does not start here.
func noCtx(m model, xs [][]float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += m.Predict(x)
	}
	return s
}

// suppressed documents a justified escape hatch.
func suppressed(ctx context.Context, m model, xs [][]float64) float64 {
	s := 0.0
	//lint:allow ctxcancel bounded by the 8-row probe batch
	for _, x := range xs {
		s += m.Predict(x)
	}
	return s
}

// nonEvaluator loops that never touch the model need no polling.
func nonEvaluator(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
