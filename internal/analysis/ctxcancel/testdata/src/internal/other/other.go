// Package other is outside internal/xai: the cancellation contract is
// scoped to the explanation plane, so nothing here is flagged.
package other

import "context"

type model struct{}

func (model) Predict(x []float64) float64 { return 0 }

func loop(ctx context.Context, m model, xs [][]float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += m.Predict(x)
	}
	return s
}
