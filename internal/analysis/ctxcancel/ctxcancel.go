// Package ctxcancel enforces the explanation plane's cancellation
// contract (PR 3): inside internal/xai, any loop that drives the model —
// Predict/PredictBatch/Explain calls are where sampling time is actually
// spent — must poll its context so DELETE /v1/jobs/{id}, request
// timeouts and server shutdown can interrupt it. A sampling loop that
// ignores ctx turns every cancellation into "wait for the full sample
// budget anyway".
package ctxcancel

import (
	"go/ast"
	"go/types"

	"nfvxai/internal/analysis"
)

// Analyzer flags evaluator-driving loops that never consult the
// function's context.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc: "sampling loops in internal/xai that call an evaluator must poll ctx " +
		"(ctx.Err/ctx.Done/xai.Canceled) so explanation jobs stay cancellable",
	Run: run,
}

// evaluatorMethods are the model-driving calls whose enclosing loops
// dominate explanation latency. The ml batch helpers are package
// functions but appear as selector calls too (ml.PredictBatchParallel).
var evaluatorMethods = map[string]bool{
	"Predict":              true,
	"PredictBatch":         true,
	"PredictBatchInto":     true,
	"PredictBatchParallel": true,
	"PredictBatchAdd":      true,
	"Explain":              true,
	"ExplainBatch":         true,
	"ExplainBatchGated":    true,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.PathMatches("internal/xai") {
		return nil, nil
	}
	for _, fn := range pass.FuncDecls() {
		ctxs := pass.CtxParams(fn)
		if len(ctxs) == 0 {
			// No context to poll: the cancellation contract starts at the
			// functions a ctx actually reaches.
			continue
		}
		checkBody(pass, fn.Body, ctxs)
	}
	return nil, nil
}

// checkBody walks n and inspects each OUTERMOST loop: if an outer loop
// consults ctx every iteration, its inner per-background/per-row loops
// are deliberately unchecked (PR 2's batching polls once per block), so
// nested loops are only judged as part of their outermost loop's subtree.
func checkBody(pass *analysis.Pass, n ast.Node, ctxs []types.Object) {
	ast.Inspect(n, func(c ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := c.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if name := evaluatorCallIn(pass, body); name != "" && !usesAnyCtx(pass, c, ctxs) {
			pass.Reportf(c.Pos(),
				"loop calls %s but never polls its context; check ctx.Err()/ctx.Done() (or xai.Canceled) per iteration so the explanation stays cancellable", name)
		}
		return false // outermost loop handled; do not descend into nested loops
	})
}

// evaluatorCallIn returns the name of the first evaluator call under n.
func evaluatorCallIn(pass *analysis.Pass, n ast.Node) string {
	name := ""
	ast.Inspect(n, func(c ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && evaluatorMethods[sel.Sel.Name] {
			name = sel.Sel.Name
		}
		return true
	})
	return name
}

func usesAnyCtx(pass *analysis.Pass, n ast.Node, ctxs []types.Object) bool {
	for _, obj := range ctxs {
		if pass.UsesObject(n, obj) {
			return true
		}
	}
	return false
}
