// Package errpkg is errcmp golden testdata: sentinels match with
// errors.Is/As and wrap with %w.
package errpkg

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrTruncated mirrors the repo's typed sentinels.
var ErrTruncated = errors.New("truncated")

func decode() error { return ErrTruncated }

// directSentinel misses wrapped errors: flagged.
func directSentinel() bool {
	err := decode()
	return err == ErrTruncated // want "use errors.Is(err, ErrTruncated)"
}

// directStdlibSentinel: io.EOF is a package-level sentinel too.
func directStdlibSentinel(err error) bool {
	return err != io.EOF // want "use errors.Is(err, EOF)"
}

// lostIdentity formats the error with %v, so errors.Is on the result
// stops matching: flagged.
func lostIdentity(err error) error {
	return fmt.Errorf("decode failed: %v", err) // want "use %w"
}

// lostIdentityS: %s loses identity the same way.
func lostIdentityS(err error) error {
	return fmt.Errorf("decode failed: %s", err) // want "use %w"
}

// stringMatch greps the message: flagged.
func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "truncated") // want "matching on err.Error() text"
}

// stringEquality compares the message: flagged.
func stringEquality(err error) bool {
	return err.Error() == "truncated" // want "comparing err.Error() text"
}

// sanctioned shows the enforced idioms: errors.Is, %w wrapping, nil
// comparisons and non-sentinel locals are all allowed.
func sanctioned(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTruncated) {
		return fmt.Errorf("artifact torn: %w", err)
	}
	other := decode()
	if err == other { // two locals, no package-level sentinel involved
		return err
	}
	return fmt.Errorf("value %v of %s", 42, "kind") // non-error %v args are fine
}

// suppressed: csv.Reader documents returning io.EOF unwrapped; a
// justified allow keeps the exception auditable.
func suppressed(err error) bool {
	return err == io.EOF //lint:allow errcmp csv.Read documents unwrapped io.EOF
}
