package errcmp_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/errcmp"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", errcmp.Analyzer, "errpkg")
}
