// Package errcmp enforces the error-matching contract the typed
// sentinels (wire.ErrTruncated, ml.ErrCorruptModel, registry.ErrNotFound,
// …) exist for: callers must match them with errors.Is/As and create
// wrapped errors with %w. Direct == / != against a sentinel silently
// stops matching the moment a decoder adds context with fmt.Errorf("%w"),
// and string matching on err.Error() breaks on any message edit — both
// turn typed corruption handling into dead code.
package errcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"nfvxai/internal/analysis"
)

// Analyzer flags sentinel ==/!= comparisons, %v/%s-formatted error args
// in fmt.Errorf, and string matching on err.Error().
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "match typed sentinel errors with errors.Is/As and wrap with %w: " +
		"==/!= and Error()-string matching break as soon as an error is wrapped",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, e)
			case *ast.CallExpr:
				checkErrorf(pass, e)
				checkStringMatch(pass, e)
			}
			return true
		})
	}
	return nil, nil
}

// checkComparison flags err ==/!= Sentinel where Sentinel is a
// package-level error variable (io.EOF, wire.ErrTruncated, …).
func checkComparison(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// Error()-string equality: err.Error() == "some text".
	for _, side := range [2]ast.Expr{e.X, e.Y} {
		if isErrorStringCall(pass, side) {
			pass.Reportf(e.Pos(), "comparing err.Error() text; match the sentinel with errors.Is instead — messages change, types do not")
			return
		}
	}
	var sentinel types.Object
	errorsCompared := 0
	for _, side := range [2]ast.Expr{e.X, e.Y} {
		tv, ok := pass.TypesInfo.Types[side]
		if !ok || tv.Type == nil || !analysis.IsErrorType(tv.Type) {
			return
		}
		if tv.IsNil() {
			return // err == nil is the one sanctioned direct comparison
		}
		errorsCompared++
		if obj := pkgLevelVar(pass, side); obj != nil {
			sentinel = obj
		}
	}
	if errorsCompared == 2 && sentinel != nil {
		pass.Reportf(e.Pos(),
			"direct %s comparison against sentinel %s misses wrapped errors; use errors.Is(err, %s)", e.Op, sentinel.Name(), sentinel.Name())
	}
}

// pkgLevelVar resolves e to a package-scope variable object, or nil.
func pkgLevelVar(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		if pass.SelectorPkg(x) == "" {
			return nil // field or method access, not pkg.Var
		}
		id = x.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	return obj
}

// checkErrorf flags fmt.Errorf("... %v ...", err): the error loses its
// identity; %w keeps errors.Is working on the result.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !pass.PkgFuncCall(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			return
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		atv, ok := pass.TypesInfo.Types[call.Args[argIdx]]
		if ok && atv.Type != nil && analysis.IsErrorType(atv.Type) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error formatted with %%%c loses its identity; use %%w so errors.Is/As still match the sentinel", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a Printf format in argument
// order ("%%" skipped, flags/width ignored).
func formatVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision and argument indexes.
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' || c == '*' || c == '[' || c == ']' {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] != '%' {
			out = append(out, format[i])
		}
	}
	return out
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix over
// err.Error().
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || pass.SelectorPkg(sel) != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorStringCall(pass, arg) {
			pass.Reportf(call.Pos(),
				"matching on err.Error() text; use errors.Is/As against the typed sentinel — messages change, types do not")
			return
		}
	}
}

// isErrorStringCall reports whether e is a call of Error() on an error.
func isErrorStringCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && tv.Type != nil && analysis.IsErrorType(tv.Type)
}
