// Package registry is lockedcall golden testdata: no Store I/O, blocking
// sends or sleeps while the state RWMutex is held.
package registry

import (
	"sync"
	"time"
)

// Store mirrors the registry persistence backend.
type Store interface {
	PutManifest(m string) error
	GetArtifact(digest string) ([]byte, error)
}

type Registry struct {
	mu      sync.RWMutex
	storeMu sync.Mutex
	store   Store
	state   map[string]string
	events  chan string
}

// storeUnderLock writes the manifest while holding the state lock:
// flagged (the stale-manifest/stall class).
func (r *Registry) storeUnderLock(m string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state["m"] = m
	return r.store.PutManifest(m) // want "Store I/O (PutManifest) while r.mu is held"
}

// storeUnderRLock stalls writers just the same: flagged.
func (r *Registry) storeUnderRLock(digest string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store.GetArtifact(digest) // want "Store I/O (GetArtifact) while r.mu is held"
}

// earlyExitStillHeld: the conditional Unlock+return leaves the
// fall-through path locked, so the store call is still flagged.
func (r *Registry) earlyExitStillHeld(m string) error {
	r.mu.Lock()
	if r.state == nil {
		r.mu.Unlock()
		return nil
	}
	err := r.store.PutManifest(m) // want "Store I/O (PutManifest) while r.mu is held"
	r.mu.Unlock()
	return err
}

// blockingSend under the state lock: flagged.
func (r *Registry) blockingSend(ev string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events <- ev // want "blocking channel send while r.mu is held"
}

// sleepUnderLock: flagged.
func (r *Registry) sleepUnderLock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while r.mu is held"
}

// snapshotThenWrite is the sanctioned pattern: snapshot under the lock,
// do the I/O after releasing it.
func (r *Registry) snapshotThenWrite(m string) error {
	r.mu.RLock()
	st := r.store
	snapshot := r.state["m"]
	r.mu.RUnlock()
	_ = snapshot
	return st.PutManifest(m)
}

// dedicatedIOMutex: a plain sync.Mutex that exists to serialize store
// writes is the design, not a violation.
func (r *Registry) dedicatedIOMutex(m string) error {
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	r.mu.RLock()
	snapshot := r.state["m"]
	r.mu.RUnlock()
	_ = snapshot
	return r.store.PutManifest(m)
}

// nonBlockingSend in a select with default never blocks: allowed.
func (r *Registry) nonBlockingSend(ev string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.events <- ev:
	default:
	}
}

// closureEscapes: goroutines launched under the lock run later under
// their own discipline; the analyzer does not follow them.
func (r *Registry) closureEscapes(m string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		_ = r.store.PutManifest(m)
	}()
}
