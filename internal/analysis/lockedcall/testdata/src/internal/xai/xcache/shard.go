// Package xcache is lockedcall golden testdata for the explanation-cache
// scope: no tier-2 Store I/O while a cache shard mutex is held — every
// explain hit takes a shard lock, so a blob-store round trip under it
// turns store latency into serving latency. Plain sync.Mutex is NOT
// exempt here (the shards are plain mutexes).
package xcache

import "sync"

// Store is the tier-2 persistence backend; the name is what the
// analyzer keys on, mirroring the real xcache.Store.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, bool, error)
}

type shard struct {
	mu      sync.Mutex
	entries map[string][]byte
}

type Cache struct {
	shard shard
	tier2 Store
}

// putUnderShardLock persists to tier 2 while holding the shard mutex:
// flagged — the store round trip stalls every hit on this shard.
func (c *Cache) putUnderShardLock(key string, data []byte) {
	c.shard.mu.Lock()
	defer c.shard.mu.Unlock()
	c.shard.entries[key] = data
	c.tier2.Put(key, data) // want "Store I/O (Put) while c.shard.mu is held"
}

// getThroughTier2UnderLock fills a miss from tier 2 without dropping the
// shard lock first: flagged.
func (c *Cache) getThroughTier2UnderLock(key string) ([]byte, bool) {
	c.shard.mu.Lock()
	defer c.shard.mu.Unlock()
	if data, ok := c.shard.entries[key]; ok {
		return data, true
	}
	data, ok, err := c.tier2.Get(key) // want "Store I/O (Get) while c.shard.mu is held"
	if err != nil || !ok {
		return nil, false
	}
	c.shard.entries[key] = data
	return data, true
}

// insertThenPersist is the sanctioned pattern (Cache.lead): mutate the
// shard under its lock, release, then do the tier-2 write with no lock
// held.
func (c *Cache) insertThenPersist(key string, data []byte) {
	c.shard.mu.Lock()
	c.shard.entries[key] = data
	c.shard.mu.Unlock()
	c.tier2.Put(key, data)
}

// lookupThenFill: miss path that drops the lock before the tier-2 read
// and re-takes it to insert — allowed.
func (c *Cache) lookupThenFill(key string) ([]byte, bool) {
	c.shard.mu.Lock()
	data, ok := c.shard.entries[key]
	c.shard.mu.Unlock()
	if ok {
		return data, true
	}
	data, ok, err := c.tier2.Get(key)
	if err != nil || !ok {
		return nil, false
	}
	c.shard.mu.Lock()
	c.shard.entries[key] = data
	c.shard.mu.Unlock()
	return data, true
}
