// Package cluster is lockedcall golden testdata for the cluster scope:
// no network I/O while any mutex is held — the routing lock is taken by
// every proxied request, so a dial under it stalls the whole data plane
// for the probe timeout. Plain sync.Mutex is NOT exempt here.
package cluster

import (
	"net"
	"net/http"
	"sync"
)

type Cluster struct {
	mu     sync.RWMutex
	pmu    sync.Mutex
	client *http.Client
	peers  map[string]string
}

// probeUnderRLock holds the routing lock across an HTTP probe: flagged.
func (c *Cluster) probeUnderRLock() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	resp, err := c.client.Get(c.peers["a"]) // want "network I/O (Get) while c.mu is held"
	if err == nil {
		resp.Body.Close()
	}
	return err
}

// clientDoUnderLock: any http.Client method under the write lock: flagged.
func (c *Cluster) clientDoUnderLock(req *http.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.client.Do(req) // want "network I/O (Do) while c.mu is held"
	if err == nil {
		resp.Body.Close()
	}
	return err
}

// plainMutexNotExempt: in cluster scope a dedicated plain Mutex stalls
// routing just the same: flagged.
func (c *Cluster) plainMutexNotExempt() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	resp, err := http.Get(c.peers["a"]) // want "network I/O (Get) while c.pmu is held"
	if err == nil {
		resp.Body.Close()
	}
	return err
}

// dialUnderLock: raw dials are network I/O too: flagged.
func (c *Cluster) dialUnderLock() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := net.Dial("tcp", c.peers["a"]) // want "network I/O (Dial) while c.mu is held"
	if err == nil {
		conn.Close()
	}
	return err
}

// snapshotProbeApply is the sanctioned pattern (Cluster.tick): snapshot
// the peer list under the lock, probe with no lock held, apply results
// under the lock again.
func (c *Cluster) snapshotProbeApply() {
	c.mu.RLock()
	urls := make([]string, 0, len(c.peers))
	for _, u := range c.peers {
		urls = append(urls, u)
	}
	c.mu.RUnlock()

	alive := map[string]bool{}
	for _, u := range urls {
		resp, err := c.client.Get(u)
		if err == nil {
			resp.Body.Close()
		}
		alive[u] = err == nil
	}

	c.mu.Lock()
	for u, ok := range alive {
		if ok {
			c.peers[u] = u
		}
	}
	c.mu.Unlock()
}

// newRequestUnderLock builds (but does not send) a request under the
// lock: allowed — only the dial/roundtrip is I/O.
func (c *Cluster) newRequestUnderLock() (*http.Request, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return http.NewRequest("GET", c.peers["a"], nil)
}
