package lockedcall_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/lockedcall"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", lockedcall.Analyzer, "internal/registry", "internal/cluster", "internal/xai/xcache")
}
