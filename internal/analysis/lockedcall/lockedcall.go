// Package lockedcall enforces the registry's locking discipline: the
// state RWMutex (`mu`) guards the maps every serving request reads, so
// nothing slow or blocking may run while it is held — no Store I/O
// (disk/object-store writes), no blocking channel sends, no sleeping.
// The sanctioned pattern (see Registry.persistModel/persistManifest) is
// snapshot-under-lock, write-after; a DEDICATED plain sync.Mutex like
// storeMu that exists to serialize I/O is exempt by design — the
// analyzer only tracks RWMutexes, which mark hot read paths.
//
// In internal/cluster the discipline tightens: the cluster mutex guards
// the ring and peer table every routing decision reads, so network I/O
// (http.Get and friends, http.Client methods, net.Dial*) is forbidden
// under ANY mutex there, plain sync.Mutex included — a probe holding
// the lock across a dial to a dead peer stalls every request router for
// the full timeout. The sanctioned pattern (see Cluster.tick) is
// snapshot-under-lock, probe-without-lock, apply-under-lock.
//
// internal/xai (the explanation-cache plane, internal/xai/xcache) gets
// the same plain-mutex treatment: the cache's shard mutexes sit on the
// hit path of every explain request, so tier-2 Store I/O under a shard
// lock turns a blob-store hiccup into a serving stall. The sanctioned
// pattern (see Cache.flight/tier2) is lookup-under-lock, fetch/persist
// with no lock held, insert-under-lock.
package lockedcall

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nfvxai/internal/analysis"
)

// Analyzer flags blocking work while a registry state RWMutex — or, in
// internal/cluster, any mutex — is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockedcall",
	Doc: "no Store I/O, network I/O, blocking channel sends or sleeps while a state " +
		"mutex is held: snapshot under the lock, do the slow work after (stale-manifest/probe-stall class)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// "internal/xai", not bare "xai": the module root is nfvxai, so a bare
	// fragment would scope every package in the module.
	if !pass.PathMatches("registry", "cluster", "internal/xai") {
		return nil, nil
	}
	// The cluster's routing lock and the explanation cache's shard locks
	// are hotter than the registry's state lock: every proxied request
	// (resp. every cache hit) takes one, so even a plain sync.Mutex must
	// never be held across a dial or a Store round trip.
	trackPlain := pass.PathMatches("cluster", "internal/xai")
	for _, fn := range pass.FuncDecls() {
		checkFunc(pass, fn, trackPlain)
	}
	return nil, nil
}

// lockEvent is one Lock/RLock/Unlock/RUnlock call on an RWMutex-typed
// expression, keyed by the receiver's printed form ("r.mu").
type lockEvent struct {
	pos token.Pos
	key string
	// delta: +1 acquire, -1 release. deferUntilEnd marks `defer x.Unlock()`,
	// which keeps the mutex held for the rest of the function.
	delta          int
	deferUntilEnd  bool
	condReleaseRet bool // release inside a block that returns (early-exit path)
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, trackPlain bool) {
	var events []lockEvent

	// Collect lock events, noting defer and early-return releases.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // closures run later, under their own discipline
		case *ast.DeferStmt:
			if key, delta := mutexOp(pass, st.Call, trackPlain); delta < 0 {
				events = append(events, lockEvent{pos: st.Pos(), key: key, delta: delta, deferUntilEnd: true})
			}
			return false
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, delta := mutexOp(pass, call, trackPlain); delta != 0 {
					events = append(events, lockEvent{pos: st.Pos(), key: key, delta: delta})
				}
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	// Mark releases that sit in an early-exit block (`if … { mu.Unlock();
	// return err }`): on the fall-through path the mutex is still held, so
	// a linear scan must not treat them as releases.
	markEarlyExitReleases(pass, fn.Body, events)

	// Flag blocking ops at positions where some RWMutex is held.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			if heldAt(events, st.Pos()) != "" && !inSelectWithDefault(fn.Body, st) {
				pass.Reportf(st.Pos(),
					"blocking channel send while %s is held; a slow receiver stalls every reader of the registry state", heldAt(events, st.Pos()))
			}
		case *ast.CallExpr:
			key := heldAt(events, st.Pos())
			if key == "" {
				return true
			}
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.PkgFuncCall(st, "time", "Sleep") {
				pass.Reportf(st.Pos(), "time.Sleep while %s is held stalls every reader of the registry state", key)
				return true
			}
			if isStoreMethod(pass, sel) {
				pass.Reportf(st.Pos(),
					"Store I/O (%s) while %s is held; snapshot under the lock and write after it is released (stale-manifest class)", sel.Sel.Name, key)
			}
			if isNetCall(pass, sel) {
				pass.Reportf(st.Pos(),
					"network I/O (%s) while %s is held; snapshot under the lock, dial after it is released (probe-stall class)", sel.Sel.Name, key)
			}
		}
		return true
	})
}

// isNetCall reports whether sel is an HTTP or dial call: the package
// functions http.Get/Post/PostForm/Head, any method on an http.Client,
// or net.Dial / net.DialTimeout / net.Dial{TCP,UDP,IP,Unix}.
func isNetCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch pass.SelectorPkg(sel) {
	case "net/http":
		switch sel.Sel.Name {
		case "Get", "Post", "PostForm", "Head":
			return true
		}
		return false
	case "net":
		return strings.HasPrefix(sel.Sel.Name, "Dial")
	}
	if named := pass.ReceiverNamed(sel); named != nil {
		o := named.Obj()
		return o.Name() == "Client" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
	}
	return false
}

// heldAt returns the printed name of an RWMutex held at pos, or "".
// Deferred and early-exit releases never decrement the balance: a
// `defer Unlock` holds to function end, and an `if … { Unlock(); return }`
// leaves the fall-through path locked.
func heldAt(events []lockEvent, pos token.Pos) string {
	held := map[string]int{}
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		if e.deferUntilEnd || e.condReleaseRet {
			continue
		}
		held[e.key] += e.delta
	}
	for k, n := range held {
		if n > 0 {
			return k
		}
	}
	return ""
}

// mutexOp classifies call as a mutex Lock/RLock (+1) or Unlock/RUnlock
// (-1) and returns the receiver's printed key. Plain sync.Mutex is
// tracked only when trackPlain (cluster scope); elsewhere a dedicated
// I/O-serializing Mutex is the sanctioned pattern.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr, trackPlain bool) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	if !isMutex(pass.TypesInfo.Types[sel.X].Type, trackPlain) {
		return "", 0
	}
	return types.ExprString(sel.X), delta
}

func isMutex(t types.Type, trackPlain bool) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync" {
		return false
	}
	return o.Name() == "RWMutex" || (trackPlain && o.Name() == "Mutex")
}

// isStoreMethod reports whether sel calls a method on a value whose
// static type is an interface named Store (the registry's persistence
// backend) or a concrete implementation of one.
func isStoreMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if pass.SelectorPkg(sel) != "" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() == "Store" {
		return true
	}
	// Concrete store types: named *Store implementations (FSStore, …)
	// whose package also declares a Store interface they satisfy.
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	if obj, ok := pkg.Scope().Lookup("Store").(*types.TypeName); ok {
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			if types.Implements(tv.Type, iface) || types.Implements(types.NewPointer(tv.Type), iface) {
				return true
			}
		}
	}
	return false
}

// markEarlyExitReleases sets condReleaseRet on release events whose
// enclosing block ends in a return/panic — `if bad { mu.Unlock(); return }`.
func markEarlyExitReleases(pass *analysis.Pass, body *ast.BlockStmt, events []lockEvent) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, blk := range []*ast.BlockStmt{ifst.Body, elseBlock(ifst)} {
			if blk == nil || len(blk.List) == 0 {
				continue
			}
			if !terminates(blk.List[len(blk.List)-1]) {
				continue
			}
			for i := range events {
				e := &events[i]
				if e.delta < 0 && !e.deferUntilEnd && e.pos >= blk.Pos() && e.pos <= blk.End() {
					e.condReleaseRet = true
				}
			}
		}
		return true
	})
}

func elseBlock(ifst *ast.IfStmt) *ast.BlockStmt {
	if b, ok := ifst.Else.(*ast.BlockStmt); ok {
		return b
	}
	return nil
}

func terminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// inSelectWithDefault reports whether send is a select case in a select
// that has a default branch (a non-blocking send).
func inSelectWithDefault(body *ast.BlockStmt, send *ast.SendStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || found {
			return !found
		}
		hasDefault, hasSend := false, false
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			} else if s, ok := cc.Comm.(*ast.SendStmt); ok && s == send {
				hasSend = true
			}
		}
		if hasDefault && hasSend {
			found = true
		}
		return !found
	})
	return found
}
