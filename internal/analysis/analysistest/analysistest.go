// Package analysistest runs an analyzer over golden testdata packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's stdlib-only
// framework.
//
// Layout: testdata/src/<import/path>/*.go, loaded as module "testmod" so
// path-scoped analyzers can be exercised with realistic package paths
// (testdata/src/internal/xai/… → "testmod/internal/xai/…").
//
// Expectations: a comment `// want "substring"` on a line asserts that
// the analyzer reports a diagnostic on that line whose message contains
// the substring; several quoted strings assert several diagnostics. Every
// diagnostic must be wanted and every want must be matched.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"nfvxai/internal/analysis"
)

// Run loads each pattern (an import path relative to testdata/src) and
// checks a's diagnostics against the // want comments in its files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(testdata, "src"), "testmod")
	for _, pat := range patterns {
		pkg, err := loader.Load("testmod/" + pat)
		if err != nil {
			t.Errorf("load %s: %v", pat, err)
			continue
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, pat, err)
			continue
		}
		checkWants(t, pkg, findings)
	}
}

type want struct {
	file    string
	line    int
	pattern string
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, f := range findings {
		ok := false
		for i := range wants {
			w := &wants[i]
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if strings.Contains(f.Message, w.pattern) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants re-parses the package files for // want comments. The
// loader's ASTs already carry comments, but scanning the files keeps the
// expectations independent of comment attachment quirks.
func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var out []want
	fset := token.NewFileSet()
	ents, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatalf("read %s: %v", pkg.Dir, err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkg.Dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parseQuoted(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", path, pos.Line, err)
				}
				for _, p := range patterns {
					out = append(out, want{file: path, line: pos.Line, pattern: p})
				}
			}
		}
	}
	return out
}

func parseQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted string at %q", s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			return nil, fmt.Errorf("unterminated string in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
