package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root from this file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestModuleInfo(t *testing.T) {
	mod, err := ModuleInfo(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if mod != "nfvxai" {
		t.Fatalf("module = %q, want nfvxai", mod)
	}
}

// TestLoadRealPackage type-checks a real module package, exercising the
// module-aware importer and the stdlib source importer together.
func TestLoadRealPackage(t *testing.T) {
	l := NewLoader(repoRoot(t), "nfvxai")
	pkg, err := l.Load("nfvxai/internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "wire" {
		t.Fatalf("package name = %q, want wire", pkg.Types.Name())
	}
	if len(pkg.Syntax) == 0 || pkg.TypesInfo == nil {
		t.Fatal("missing syntax or type info")
	}
	// Loading again hits the cache and must return the same package.
	again, err := l.Load("nfvxai/internal/wire")
	if err != nil || again != pkg {
		t.Fatalf("cache miss on second load: %v", err)
	}
}

func TestLoadPatternsExpandsTree(t *testing.T) {
	l := NewLoader(repoRoot(t), "nfvxai")
	pkgs, err := l.LoadPatterns("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	// The subtree holds this package plus the six analyzers and the
	// analysistest harness; testdata must have been skipped.
	if len(pkgs) < 7 {
		t.Fatalf("loaded %d packages, want >= 7", len(pkgs))
	}
	for _, p := range pkgs {
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Fatalf("testdata package loaded: %s", p.Path)
		}
	}
}

// TestAllowSuppression checks the //lint:allow escape hatch end to end
// with a toy analyzer that flags every `make` call.
func TestAllowSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package toy

func a() []int  { return make([]int, 1) }
func b() []int {
	//lint:allow makecall test fixture
	return make([]int, 2)
}
func c() []int { return make([]int, 3) } //lint:allow makecall same line
func d() []int { return make([]int, 4) } //lint:allow all blanket
`
	if err := writeFile(filepath.Join(dir, "toy.go"), src); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(filepath.Join(dir, "go.mod"), "module toy\n"); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(dir, "toy")
	pkg, err := l.Load("toy")
	if err != nil {
		t.Fatal(err)
	}
	toy := &Analyzer{
		Name: "makecall",
		Doc:  "flags every make call (test fixture)",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
							pass.Reportf(call.Pos(), "make call")
						}
					}
					return true
				})
			}
			return nil, nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the one in a()", findings)
	}
	if findings[0].Position.Line != 3 {
		t.Fatalf("finding at line %d, want 3", findings[0].Position.Line)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
