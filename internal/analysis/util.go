package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathMatches reports whether the package's import path contains any of
// the given fragments. Path-scoped analyzers (decode paths, the xai
// sampling plane, the registry) use it so their golden testdata packages
// can mirror the real layout under a fake module root.
func (p *Pass) PathMatches(fragments ...string) bool {
	for _, f := range fragments {
		if strings.Contains(p.Pkg.Path(), f) {
			return true
		}
	}
	return false
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t is (or implements) error.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType) || types.Identical(t, errorType.Underlying())
}

// Unconvert strips type conversions (int(x), uint32(x), …) so taint and
// callee checks see the underlying expression.
func (p *Pass) Unconvert(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := p.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// PkgFuncCall reports whether call invokes pkgPath.name (e.g.
// "math/rand".Intn) and returns the selector if so.
func (p *Pass) PkgFuncCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return p.SelectorPkg(sel) == pkgPath
}

// SelectorPkg returns the imported package path when sel.X names a
// package (rand.Intn → "math/rand"), or "".
func (p *Pass) SelectorPkg(sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// ReceiverNamed returns the named type of a method call's receiver
// (pointers dereferenced), or nil when the selector is not a method call
// on a value (e.g. it is a package selector).
func (p *Pass) ReceiverNamed(sel *ast.SelectorExpr) *types.Named {
	if p.SelectorPkg(sel) != "" {
		return nil
	}
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// UsesObject reports whether any identifier under n resolves to obj.
func (p *Pass) UsesObject(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// FuncDecls yields every function declaration (with a body) in the pass.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CtxParams returns the objects of fn's context.Context parameters.
func (p *Pass) CtxParams(fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := p.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				o := named.Obj()
				if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}
