// Package boundedmake enforces the decode-safety invariant hardened in
// PR 5: an allocation whose size comes from a decoded wire integer must
// be bounded before it happens — a 100-byte artifact claiming 2^28
// elements must fail with ErrTruncated, not allocate gigabytes. The
// sanctioned pattern is the one wire.Reader.F64s and the model codecs
// use: read the count, then check it against Remaining()/MaxLen (or any
// explicit comparison) before make.
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"

	"nfvxai/internal/analysis"
)

// Analyzer flags make/append sized by unguarded decoded lengths in the
// wire, model-codec and dataset decode paths.
var Analyzer = &analysis.Analyzer{
	Name: "boundedmake",
	Doc: "decode paths must bound allocations read from the wire: a length " +
		"decoded by a wire Reader must pass a comparison guard (Remaining()/MaxLen) before feeding make/append",
	Run: run,
}

// readerMethods are wire-Reader accessors that yield attacker-controlled
// integers. "length" and "Len" cover the package-internal helpers.
var readerMethods = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true,
	"I64": true, "Int": true, "Len": true, "length": true,
	"Uvarint": true, "Varint": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.PathMatches("internal/wire", "internal/ml", "internal/dataset") {
		return nil, nil
	}
	for _, fn := range pass.FuncDecls() {
		checkFunc(pass, fn)
	}
	return nil, nil
}

// taint records where an object was last assigned from a reader call and
// where if-statements mentioning it (its bounds guards) sit.
type taint struct {
	assigns []token.Pos
	guards  []token.Pos
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	taints := map[types.Object]*taint{}

	// Pass 1: find reader-sourced assignments and guards.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !isReaderCall(pass, rhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				t := taints[obj]
				if t == nil {
					t = &taint{}
					taints[obj] = t
				}
				t.assigns = append(t.assigns, st.Pos())
			}
		case *ast.IfStmt:
			for obj, t := range taints {
				if pass.UsesObject(st.Cond, obj) {
					t.guards = append(t.guards, st.Pos())
				}
			}
			// Also catch guards registered before their taint is seen in
			// this walk order: ast.Inspect is pre-order on positions, so
			// assignments always precede their later guards; nothing to do.
		}
		return true
	})

	// Pass 2: flag unguarded uses in allocations.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "make" {
				for _, arg := range st.Args[1:] { // length and cap positions
					checkSize(pass, taints, arg, st.Pos())
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < n; i++ { out = append(out, …) } with an
			// unguarded decoded n grows allocations element by element —
			// same OOM class, just amortized.
			if st.Cond == nil || !bodyAllocates(st.Body) {
				return true
			}
			if cmp, ok := st.Cond.(*ast.BinaryExpr); ok && isComparison(cmp.Op) {
				for _, side := range [2]ast.Expr{cmp.X, cmp.Y} {
					checkSize(pass, taints, side, st.Pos())
				}
			}
		}
		return true
	})
}

// checkSize reports when sizeExpr is an unguarded decoded length.
func checkSize(pass *analysis.Pass, taints map[types.Object]*taint, sizeExpr ast.Expr, usePos token.Pos) {
	e := pass.Unconvert(sizeExpr)
	if isReaderCall(pass, e) {
		pass.Reportf(sizeExpr.Pos(),
			"allocation sized straight from the wire; read the length into a variable and bound it (Remaining()/MaxLen) first")
		return
	}
	// Strip arithmetic like n*8 or n+1 down to its identifiers.
	ids := identsIn(e)
	for _, id := range ids {
		obj := pass.TypesInfo.Uses[id]
		t := taints[obj]
		if obj == nil || t == nil {
			continue
		}
		// Latest reader assignment before this use.
		var lastAssign token.Pos
		for _, p := range t.assigns {
			if p < usePos && p > lastAssign {
				lastAssign = p
			}
		}
		if lastAssign == token.NoPos {
			continue
		}
		guarded := false
		for _, g := range t.guards {
			if g > lastAssign && g < usePos {
				guarded = true
				break
			}
		}
		if !guarded {
			pass.Reportf(sizeExpr.Pos(),
				"allocation sized by %q, which was decoded from the wire and never bounds-checked; guard it against Remaining()/MaxLen before allocating", id.Name)
		}
	}
}

// isReaderCall reports whether e (conversions stripped) calls a length-
// yielding accessor on a wire-style Reader.
func isReaderCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(pass.Unconvert(e)).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !readerMethods[sel.Sel.Name] {
		return false
	}
	named := pass.ReceiverNamed(sel)
	return named != nil && named.Obj().Name() == "Reader"
}

func bodyAllocates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "append" || id.Name == "make") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ:
		return true
	}
	return false
}

func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}
