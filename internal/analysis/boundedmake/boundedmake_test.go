package boundedmake_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/boundedmake"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", boundedmake.Analyzer, "internal/wire/decode")
}

// TestOutOfScope: the invariant binds decode paths; unrelated packages
// may size slices however they like.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", boundedmake.Analyzer, "outside")
}
