// Package decode is boundedmake golden testdata: allocations sized by
// wire-decoded integers must be bounds-checked first.
package decode

// MaxLen mirrors wire.MaxLen.
const MaxLen = 1 << 28

// Reader mimics the wire.Reader surface the analyzer keys on.
type Reader struct {
	buf []byte
	off int
}

func (r *Reader) Int() int       { return 0 }
func (r *Reader) U64() uint64    { return 0 }
func (r *Reader) Remaining() int { return len(r.buf) - r.off }
func (r *Reader) F64() float64   { return 0 }

// unguarded allocates whatever the wire claims: flagged.
func unguarded(r *Reader) []float64 {
	n := r.Int()
	out := make([]float64, n) // want "never bounds-checked"
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// direct feeds the decoded length straight into make: flagged.
func direct(r *Reader) []byte {
	return make([]byte, r.Int()) // want "sized straight from the wire"
}

// directConverted hides the call behind a conversion: still flagged.
func directConverted(r *Reader) []byte {
	return make([]byte, int(r.U64())) // want "sized straight from the wire"
}

// unguardedCap bounds the length but not the capacity: flagged.
func unguardedCap(r *Reader) []float64 {
	n := r.Int()
	return make([]float64, 0, n) // want "never bounds-checked"
}

// appendLoop grows element by element under an unchecked decoded count:
// same OOM class, flagged at the loop.
func appendLoop(r *Reader) []float64 {
	n := r.Int()
	var out []float64
	for i := 0; i < n; i++ { // want "never bounds-checked"
		out = append(out, r.F64())
	}
	return out
}

// guarded is the sanctioned pattern: bound the count by the bytes
// actually present before allocating.
func guarded(r *Reader) []float64 {
	n := r.Int()
	if n < 0 || n > MaxLen || r.Remaining() < n*8 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// guardedLoop bounds the count before an append loop: allowed.
func guardedLoop(r *Reader) []float64 {
	n := r.Int()
	if r.Remaining() < n*8 {
		return nil
	}
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, r.F64())
	}
	return out
}

// untainted sizes come from local facts, not the wire: allowed.
func untainted(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	buf := make([]byte, 64)
	_ = buf
	return out
}

// reGuardEachUse: a guard only blesses uses after it; the second make
// after re-reading is flagged again.
func reGuardEachUse(r *Reader) ([]float64, []float64) {
	n := r.Int()
	if r.Remaining() < n*8 {
		return nil, nil
	}
	a := make([]float64, n)
	n = r.Int()
	b := make([]float64, n) // want "never bounds-checked"
	return a, b
}
