// Package outside is not a decode path; the analyzer skips it entirely.
package outside

type Reader struct{}

func (r *Reader) Int() int { return 0 }

func unguarded(r *Reader) []float64 {
	n := r.Int()
	return make([]float64, n)
}
