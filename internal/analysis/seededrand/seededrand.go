// Package seededrand enforces the reproducibility contract the
// experiment runner depends on: equal (spec, seed) must reproduce equal
// metrics. Library code therefore may not draw from math/rand's global
// source (shared, goroutine-interleaved, unseedable per component) or
// seed a source from the clock — every sampler takes an injected
// *rand.Rand built from a spec-derived seed.
package seededrand

import (
	"go/ast"

	"nfvxai/internal/analysis"
)

// Analyzer flags global math/rand draws and time-seeded sources in
// library packages.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "library code must use an injected, spec-seeded *rand.Rand: no global " +
		"math/rand top-level draws, no time-seeded sources (reproducibility contract)",
	Run: run,
}

// constructors on math/rand that do NOT draw from the global source.
var allowedTopLevel = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

const randPkg = "math/rand"

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		// Binaries and examples may use convenience randomness; the
		// contract binds the library packages experiments run through.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pass.SelectorPkg(sel) {
			case randPkg, randPkg + "/v2":
				if !allowedTopLevel[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; inject a seeded *rand.Rand so equal (spec, seed) reproduce equal results", sel.Sel.Name)
				}
				// Time-seeding is reported where the seed enters (NewSource),
				// not on an enclosing rand.New that merely wraps the source.
				if sel.Sel.Name != "New" && allowedTopLevel[sel.Sel.Name] && callsTimeNow(pass, call) {
					pass.Reportf(call.Pos(),
						"time-seeded rand.%s breaks reproducibility; derive the seed from the scenario/experiment spec", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// callsTimeNow reports whether any argument subtree calls time.Now.
func callsTimeNow(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok && pass.PkgFuncCall(c, "time", "Now") {
				found = true
			}
			return !found
		})
	}
	return found
}
