// Command tool is package main: binaries may use convenience randomness,
// so nothing here is flagged.
package main

import (
	"math/rand"
	"time"
)

func main() {
	_ = rand.Intn(10)
	_ = rand.New(rand.NewSource(time.Now().UnixNano()))
}
