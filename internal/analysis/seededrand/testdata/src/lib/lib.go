// Package lib is seededrand golden testdata: library code must draw from
// an injected, spec-seeded *rand.Rand.
package lib

import (
	"math/rand"
	"time"
)

// globalDraws use the shared source: flagged.
func globalDraws(n int) int {
	v := rand.Intn(n)                  // want "rand.Intn draws from the global math/rand source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the global"
	_ = rand.Float64()                 // want "rand.Float64 draws from the global"
	return v
}

// timeSeeded defeats reproducibility even though the source is local.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time-seeded rand.NewSource breaks reproducibility"
}

// seeded is the sanctioned pattern: a source derived from a spec seed.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed + 0x9E37))
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}

// suppressed keeps a justified exception visible.
func suppressed(n int) int {
	return rand.Intn(n) //lint:allow seededrand jitter only, never observed by metrics
}
