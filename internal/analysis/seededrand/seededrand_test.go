package seededrand_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/seededrand"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "lib")
}

// TestMainPackageExempt: binaries are outside the reproducibility
// contract.
func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "cmd/tool")
}
