// Package poolalloc enforces the kernel-plane allocation invariant from
// the mechanical-sympathy PR: the explainer hot loops (internal/mat,
// internal/xai/shap, internal/xai/lime) run at zero steady-state
// allocations, with every transient drawn from a pooled workspace
// (sync.Pool buffers, sched.Worker arenas) instead of make. A fresh
// float-slice make in those packages is either pool plumbing — a
// get*/put*/new*/release* accessor, or the cap-guarded growth of a
// pooled buffer — or it is a finding: escaping results and genuinely
// cold paths carry a justified //lint:allow poolalloc directive so the
// exception is visible in review.
package poolalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"nfvxai/internal/analysis"
)

// Analyzer flags un-pooled float-slice allocations in the kernel-plane
// hot paths.
var Analyzer = &analysis.Analyzer{
	Name: "poolalloc",
	Doc: "kernel hot paths (internal/mat, internal/xai/shap, internal/xai/lime) must not make float slices: " +
		"draw scratch from pooled workspaces; escaping results need a justified //lint:allow poolalloc",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.PathMatches("internal/mat", "internal/xai/shap", "internal/xai/lime") {
		return nil, nil
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil || exemptName(fn.Name.Name) {
			continue
		}
		checkFunc(pass, fn)
	}
	return nil, nil
}

// exemptName reports whether the function is pool plumbing by naming
// convention: accessors that hand out or take back pooled storage, and
// constructors, are where the allocations are supposed to live.
func exemptName(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range [...]string{"get", "put", "new", "release"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

// span is a source range; growth-guard exemption works by position
// containment, since the stdlib walk carries no ancestor path.
type span struct{ lo, hi int }

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Pass 1: collect the bodies of if-statements whose condition reads
	// cap(…) — the amortized-growth idiom every pooled buffer uses:
	//
	//	if cap(b.vals) < n { b.vals = make([]float64, n) }
	//
	// A make inside such a body is the pool refilling itself, not a
	// steady-state allocation.
	var guarded []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok || !callsCap(ifst.Cond) {
			return true
		}
		guarded = append(guarded, span{int(ifst.Body.Pos()), int(ifst.Body.End())})
		return true
	})

	// Pass 2: flag float-slice makes outside every growth guard.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return true
		}
		elem, ok := floatSliceElem(pass, call.Args[0])
		if !ok {
			return true
		}
		pos := int(call.Pos())
		for _, g := range guarded {
			if pos >= g.lo && pos < g.hi {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"make([]%s, …) on a kernel hot path; use a pooled workspace (sync.Pool buffer / sched.Worker arena), or justify the escape with //lint:allow poolalloc", elem)
		return true
	})
}

// floatSliceElem reports whether the make type expression is a float
// slice, naming the element type.
func floatSliceElem(pass *analysis.Pass, typeExpr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[typeExpr]
	if !ok || !tv.IsType() {
		return "", false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return "", false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch b.Kind() {
	case types.Float64:
		return "float64", true
	case types.Float32:
		return "float32", true
	}
	return "", false
}

// callsCap reports whether the expression contains a call to the cap
// builtin.
func callsCap(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}
