package poolalloc_test

import (
	"testing"

	"nfvxai/internal/analysis/analysistest"
	"nfvxai/internal/analysis/poolalloc"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", poolalloc.Analyzer, "internal/mat")
}

// TestOutOfScope: the invariant binds the kernel-plane packages;
// unrelated packages may allocate however they like.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", poolalloc.Analyzer, "outside")
}
