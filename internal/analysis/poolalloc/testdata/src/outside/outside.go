// Package outside is poolalloc golden testdata: the invariant binds the
// kernel-plane packages only; everyone else may allocate freely.
package outside

func anything(n int) []float64 {
	return make([]float64, n)
}
