// Package mat is poolalloc golden testdata: float-slice makes on the
// kernel hot path are findings unless they are pool plumbing, growth
// guards, or carry a justified allow.
package mat

import "sync"

type ws struct {
	gram []float64
	rhs  []float64
}

var pool = sync.Pool{New: func() any { return new(ws) }}

// getWS is pool plumbing: exempt by name, allocations expected here.
func getWS(n int) *ws {
	w := pool.Get().(*ws)
	if cap(w.gram) < n*n {
		w.gram = make([]float64, n*n)
	}
	w.gram = w.gram[:n*n]
	w.rhs = make([]float64, n)
	return w
}

// NewVector is a constructor: exempt by name.
func NewVector(n int) []float64 {
	return make([]float64, n)
}

// releaseWS is pool plumbing too.
func releaseWS(w *ws) { pool.Put(w) }

// solve allocates scratch per call: flagged, both element widths.
func solve(n int) float64 {
	tmp := make([]float64, n)   // want "pooled workspace"
	tmp32 := make([]float32, n) // want "pooled workspace"
	idx := make([]int, n)       // ints are not kernel scratch: clean
	_, _, _ = tmp, tmp32, idx
	return 0
}

// grow refills its own buffer under a cap guard: the amortized-growth
// idiom is clean even outside a get/put function.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// escape returns a fresh result with a justified allow: suppressed.
func escape(n int) []float64 {
	out := make([]float64, n) //lint:allow poolalloc escaping API result
	return out
}
