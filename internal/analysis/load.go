package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("nfvxai/internal/wire"). Path-scoped
	// analyzers match substrings of it.
	Path string
	// Dir is the package's directory on disk.
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of a single module from source.
// Imports within the module resolve against the module root; standard
// library imports type-check from GOROOT source via go/importer's
// "source" compiler, so no compiled export data or network is needed.
// Loaded packages are cached, so a Loader amortizes the (dominant) cost
// of type-checking the standard library across every package it loads.
type Loader struct {
	// ModRoot is the module root directory.
	ModRoot string
	// ModPath is the module path from go.mod.
	ModPath string
	// IncludeTests, when set, also parses _test.go files that belong to
	// the package itself (package foo, not foo_test external tests).
	IncludeTests bool

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader returns a Loader rooted at modRoot for module modPath.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*Package{},
	}
}

// ModuleInfo reads the module path out of dir's go.mod.
func ModuleInfo(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// Load type-checks the package at the given import path (which must be
// the module path, or under it).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// In-package test files share the package clause; external _test
	// packages are out of scope for the analyzers (they would need the
	// package under test compiled twice). Keep only the majority clause.
	files = samePackageFiles(files)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Syntax: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = p
	return p, nil
}

// LoadPatterns expands "./..."-style patterns (relative to the module
// root) into packages and loads each. A plain relative dir loads that one
// package; a pattern ending in /... walks the tree, skipping testdata,
// hidden directories and directories without Go files.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			rest = strings.TrimSuffix(rest, "/")
			root := filepath.Join(l.ModRoot, rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(path)
				if base == "testdata" || (strings.HasPrefix(base, ".") && path != root) {
					return filepath.SkipDir
				}
				if names, err := goFilesIn(path, false); err == nil && len(names) > 0 && !seen[path] {
					seen[path] = true
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			dir := filepath.Join(l.ModRoot, pat)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	rel, ok := strings.CutPrefix(path, l.ModPath+"/")
	if !ok {
		return "", fmt.Errorf("analysis: import %q outside module %q", path, l.ModPath)
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel)), nil
}

// goFilesIn lists buildable Go file names in dir, sorted. Files whose
// //go:build constraint is unsatisfied under the default configuration
// (host GOOS/GOARCH, no extra tags) are skipped — without this, a
// tag-gated pair like mat's default_go.go / default_blocked.go would
// type-check as a redeclaration.
func goFilesIn(dir string, includeTests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !buildIncluded(filepath.Join(dir, name)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIncluded evaluates a file's //go:build line (the modern form
// only; the repo carries no legacy +build lines) against the default
// build: host GOOS/GOARCH, toolchain release tags, no custom tags. A
// file with no constraint, or an unreadable one, is included — the
// type-checker will say the rest.
func buildIncluded(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH ||
				tag == runtime.Compiler || strings.HasPrefix(tag, "go1.")
		})
	}
	return true
}

// samePackageFiles keeps the files sharing the non-_test package clause
// (dropping external foo_test packages when tests are included).
func samePackageFiles(files []*ast.File) []*ast.File {
	want := ""
	for _, f := range files {
		name := f.Name.Name
		if !strings.HasSuffix(name, "_test") {
			want = name
			break
		}
	}
	if want == "" {
		return files
	}
	out := files[:0]
	for _, f := range files {
		if f.Name.Name == want {
			out = append(out, f)
		}
	}
	return out
}

// loaderImporter adapts Loader to types.ImporterFrom: module-internal
// imports load recursively through the Loader (and its cache); everything
// else — the standard library — goes through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		// Imported dependencies are always loaded without test files:
		// IncludeTests applies only to the package under analysis.
		saved := l.IncludeTests
		l.IncludeTests = false
		p, err := l.Load(path)
		l.IncludeTests = saved
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
