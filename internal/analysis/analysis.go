// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis. The build environment for
// this repository is hermetic (no module proxy), so the x/tools
// multichecker cannot be vendored; this package reimplements the slice of
// its API the repo's analyzers need — Analyzer, Pass, Diagnostic and a
// package loader with full type information — on the standard library's
// go/ast, go/parser and go/types. The shapes mirror x/tools deliberately:
// if the toolchain ever gains network access, each analyzer's Run
// function ports to the real framework by swapping the import path.
//
// The analyzers themselves live in subpackages (ctxcancel, seededrand,
// boundedmake, lockedcall, errcmp) and machine-enforce the concurrency,
// determinism and decode-safety invariants the stack's reproducibility
// guarantees rest on. cmd/nfvlint is the multichecker that runs them all;
// see CONTRIBUTING.md for the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name for diagnostics and the
// //lint:allow escape hatch, a Doc string stating the enforced invariant,
// and a Run function applied to one type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It
	// must be a valid identifier (lowercase, no spaces).
	Name string
	// Doc states the invariant the analyzer enforces and why it exists.
	// The first line is the summary shown by `nfvlint -list`.
	Doc string
	// Run inspects one package and reports findings via pass.Report. The
	// returned value is ignored by the driver (kept for x/tools shape).
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package; Pkg.Path() is the import path,
	// which path-scoped analyzers (ctxcancel, boundedmake, …) match on.
	Pkg *types.Package
	// TypesInfo records types and object resolution for every expression
	// in Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the package's FileSet and
// a human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// Finding is a resolved diagnostic, ready for printing and sorting.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by file, line and column. Diagnostics on lines carrying
// a matching //lint:allow directive (same line or the line above) are
// suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allow.allows(name, pos) {
					return
				}
				out = append(out, Finding{Position: pos, Analyzer: name, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowSet maps file → line → set of analyzer names allowed on that line.
// An entry on line N suppresses findings on lines N and N+1, so the
// directive can sit either on the flagged line or on its own line above.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[ln]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// collectAllows scans comments for "//lint:allow name1,name2 — reason"
// directives.
func collectAllows(pkg *Package) allowSet {
	out := allowSet{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				// Everything past the first space is the (mandatory by
				// convention, unenforced) justification.
				names, _, _ := strings.Cut(text, " ")
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return out
}
