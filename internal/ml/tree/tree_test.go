package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/metrics"
)

func xorDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(dataset.Classification, "a", "b")
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0.0
		if (x[0] > 0.5) != (x[1] > 0.5) {
			y = 1
		}
		d.Add(x, y)
	}
	return d
}

func stepDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(dataset.Regression, "x", "noise")
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.NormFloat64()}
		y := 0.0
		switch {
		case x[0] > 7:
			y = 30
		case x[0] > 3:
			y = 10
		}
		d.Add(x, y)
	}
	return d
}

func TestRegressionTreeFitsStepFunction(t *testing.T) {
	d := stepDataset(1000, 1)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 6})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = tr.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.999 {
		t.Fatalf("step-function R2 = %v", r2)
	}
	// The informative feature must dominate the importances.
	imp := tr.FeatureImportance()
	if imp[0] < 0.95 {
		t.Fatalf("importance = %v", imp)
	}
}

func TestClassificationTreeLearnsXOR(t *testing.T) {
	// XOR is the canonical case linear models cannot learn but depth-2
	// trees can.
	d := xorDataset(2000, 2)
	tr := New(Config{Task: dataset.Classification, MaxDepth: 4})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, d.Len())
	for i, x := range d.X {
		prob[i] = tr.Predict(x)
	}
	rep := metrics.EvalClassification("tree", prob, d.Y)
	if rep.Accuracy < 0.95 {
		t.Fatalf("XOR accuracy = %v", rep.Accuracy)
	}
}

func TestTreeProbabilitiesInRange(t *testing.T) {
	d := xorDataset(500, 3)
	tr := New(Config{Task: dataset.Classification, MaxDepth: 3, MinLeaf: 20})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := tr.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	d := stepDataset(500, 5)
	for _, depth := range []int{1, 2, 3, 5} {
		tr := New(Config{Task: dataset.Regression, MaxDepth: depth})
		if err := tr.Fit(d); err != nil {
			t.Fatal(err)
		}
		if got := tr.Depth(); got > depth {
			t.Fatalf("depth %d exceeds max %d", got, depth)
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	d := stepDataset(300, 6)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 10, MinLeaf: 25})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes {
		if n.IsLeaf() && n.Cover < 25 {
			t.Fatalf("leaf with cover %v < MinLeaf", n.Cover)
		}
	}
}

func TestCoverConsistency(t *testing.T) {
	// Parent cover equals sum of child covers at every interior node, and
	// root cover equals the dataset size.
	d := stepDataset(700, 7)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 8})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Nodes[0].Cover != float64(d.Len()) {
		t.Fatalf("root cover %v != %d", tr.Nodes[0].Cover, d.Len())
	}
	for i, n := range tr.Nodes {
		if n.IsLeaf() {
			continue
		}
		sum := tr.Nodes[n.Left].Cover + tr.Nodes[n.Right].Cover
		if math.Abs(sum-n.Cover) > 1e-9 {
			t.Fatalf("node %d cover %v != children sum %v", i, n.Cover, sum)
		}
	}
}

func TestLeafValueIsSubsetMean(t *testing.T) {
	d := stepDataset(400, 8)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 4})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Group training rows by leaf and verify the leaf value is their mean.
	sums := map[int]float64{}
	counts := map[int]float64{}
	for i, x := range d.X {
		leaf := tr.LeafIndex(x)
		sums[leaf] += d.Y[i]
		counts[leaf]++
	}
	for leaf, c := range counts {
		mean := sums[leaf] / c
		if math.Abs(tr.Nodes[leaf].Value-mean) > 1e-9 {
			t.Fatalf("leaf %d value %v != subset mean %v", leaf, tr.Nodes[leaf].Value, mean)
		}
	}
}

func TestDecisionPath(t *testing.T) {
	d := stepDataset(500, 9)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 4})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	x := []float64{8.5, 0}
	path := tr.DecisionPath(x)
	if len(path) == 0 {
		t.Fatal("empty decision path on non-stump tree")
	}
	// Replaying the path must reach the same leaf as LeafIndex.
	i := 0
	for _, step := range path {
		n := tr.Nodes[i]
		if n.Feature != step.Feature || n.Threshold != step.Threshold {
			t.Fatal("path does not match tree structure")
		}
		if step.Left {
			i = n.Left
		} else {
			i = n.Right
		}
	}
	if i != tr.LeafIndex(x) {
		t.Fatal("path leaf != LeafIndex leaf")
	}
}

func TestFitIndicesBootstrap(t *testing.T) {
	d := stepDataset(300, 10)
	rng := rand.New(rand.NewSource(11))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	tr := New(Config{Task: dataset.Regression, MaxDepth: 5})
	if err := tr.FitIndices(d, idx, nil); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 2 {
		t.Fatal("bootstrap tree did not split")
	}
}

func TestSampleWeights(t *testing.T) {
	// Two conflicting clusters; weighting one heavily must pull leaf values
	// toward it.
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 50; i++ {
		d.Add([]float64{0}, 0)
		d.Add([]float64{0}, 10)
	}
	idx := make([]int, d.Len())
	w := make([]float64, d.Len())
	for i := range idx {
		idx[i] = i
		if d.Y[i] == 10 {
			w[i] = 9
		} else {
			w[i] = 1
		}
	}
	tr := New(Config{Task: dataset.Regression})
	if err := tr.FitIndices(d, idx, w); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0}); math.Abs(got-9) > 1e-9 {
		t.Fatalf("weighted prediction = %v want 9", got)
	}
}

func TestEmptyFitError(t *testing.T) {
	tr := New(Config{Task: dataset.Regression})
	if err := tr.Fit(dataset.New(dataset.Regression, "x")); err == nil {
		t.Fatal("expected error")
	}
	if err := tr.FitIndices(stepDataset(10, 1), []int{0}, []float64{1}); err == nil {
		t.Fatal("expected sampleWeight length error")
	}
}

func TestPureNodeStopsSplitting(t *testing.T) {
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, 42)
	}
	tr := New(Config{Task: dataset.Regression, MaxDepth: 10})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("pure target grew %d leaves", tr.NumLeaves())
	}
	if tr.Predict([]float64{55}) != 42 {
		t.Fatal("stump value wrong")
	}
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	// With MaxFeatures=1 and two equally informative duplicated features,
	// different seeds should (eventually) pick different features.
	rng := rand.New(rand.NewSource(12))
	d := dataset.New(dataset.Regression, "a", "b")
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		y := 0.0
		if v > 0.5 {
			y = 1
		}
		d.Add([]float64{v, v}, y)
	}
	used := map[int]bool{}
	for seed := int64(0); seed < 10; seed++ {
		tr := New(Config{Task: dataset.Regression, MaxDepth: 1, MaxFeatures: 1, Seed: seed})
		if err := tr.Fit(d); err != nil {
			t.Fatal(err)
		}
		if !tr.Nodes[0].IsLeaf() {
			used[tr.Nodes[0].Feature] = true
		}
	}
	if len(used) < 2 {
		t.Fatalf("feature subsampling never varied the split: %v", used)
	}
}

func TestImportanceSumsToOne(t *testing.T) {
	d := stepDataset(500, 13)
	tr := New(Config{Task: dataset.Regression, MaxDepth: 6})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
}

func TestPropertyPredictionWithinTargetRange(t *testing.T) {
	// A CART prediction is always a weighted mean of training targets, so
	// it must lie within [min(Y), max(Y)].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dataset.New(dataset.Regression, "a", "b")
		n := 20 + rng.Intn(80)
		for i := 0; i < n; i++ {
			d.Add([]float64{rng.NormFloat64(), rng.NormFloat64()}, rng.NormFloat64()*10)
		}
		tr := New(Config{Task: dataset.Regression, MaxDepth: 6})
		if err := tr.Fit(d); err != nil {
			return false
		}
		lo, hi := d.Y[0], d.Y[0]
		for _, y := range d.Y {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		for i := 0; i < 20; i++ {
			p := tr.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeterministicFit(t *testing.T) {
	f := func(seed int64) bool {
		d := stepDataset(200, seed)
		a := New(Config{Task: dataset.Regression, MaxDepth: 5, Seed: 3})
		b := New(Config{Task: dataset.Regression, MaxDepth: 5, Seed: 3})
		if a.Fit(d) != nil || b.Fit(d) != nil {
			return false
		}
		if len(a.Nodes) != len(b.Nodes) {
			return false
		}
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
