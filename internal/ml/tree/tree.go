// Package tree implements CART decision trees for regression (variance
// reduction) and binary classification (Gini impurity). Trees are stored
// as a flat node array with integer child links, which keeps prediction
// cache-friendly and gives the TreeSHAP explainer (internal/xai/treeshap)
// direct access to per-node covers and split structure.
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"nfvxai/internal/dataset"
)

// Leaf marks the absence of a child or split feature.
const Leaf = -1

// Node is one tree node. Interior nodes route x to Left when
// x[Feature] <= Threshold, otherwise Right. Leaves have Feature == Leaf.
type Node struct {
	Feature   int     // split feature, or Leaf
	Threshold float64 // split threshold
	Left      int     // index of left child, or Leaf
	Right     int     // index of right child, or Leaf
	Value     float64 // node prediction (mean target / positive fraction)
	Cover     float64 // training samples routed through this node
}

// IsLeaf reports whether the node is terminal.
func (n Node) IsLeaf() bool { return n.Feature == Leaf }

// Config controls tree induction.
type Config struct {
	Task dataset.Task
	// MaxDepth bounds the tree depth (root = depth 0). 0 means default 12.
	MaxDepth int
	// MinLeaf is the minimum samples in each child (default 1).
	MinLeaf int
	// MinSplit is the minimum samples required to attempt a split (default 2).
	MinSplit int
	// MaxFeatures is the number of features sampled per split; 0 means all
	// (random forests set sqrt(p) or p/3).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MinSplit < 2 {
		c.MinSplit = 2
	}
	return c
}

// Tree is a fitted CART tree.
type Tree struct {
	Nodes []Node
	Cfg   Config

	nFeatures  int
	importance []float64 // accumulated split gain per feature

	// flat is the SoA mirror of Nodes used by the batch-inference fast
	// path; built at fit time (or lazily on first PredictBatch) and
	// invalidated when Nodes is mutated. See flatTree.
	flat   atomic.Pointer[flatTree]
	flatMu sync.Mutex

	// flat32 is the quantized (float32 thresholds, SoA slabs) snapshot
	// derived from flat; built lazily on first quantized batch call and
	// invalidated together with flat. See flatTree32.
	flat32 atomic.Pointer[flatTree32]
}

// flatTree is the batch-inference snapshot of the node table, split SoA
// style into a hot routing array and a cold value array. Nodes are
// renumbered breadth-first so siblings are adjacent (right = left+1):
// routing needs only threshold/feature/left, which packs each node into a
// 16-byte record — one bounds-checked load per traversal step against the
// 48-byte Node struct copy Predict performs, and four records per cache
// line.
//
// The traversal condition is !(x <= threshold) → right, matching Predict
// exactly — including for NaN feature values, which both paths send right.
type flatTree struct {
	routing []flatNode
	value   []float64 // node predictions, same BFS numbering
}

// flatNode is the 16-byte routing record of one node.
type flatNode struct {
	threshold float64
	feature   int32 // split feature, or Leaf
	left      int32 // BFS index of left child; right child is left+1
}

// flatView returns the flattened layout, building it on first use.
// Concurrent PredictBatch callers may race to build; the double-checked
// mutex makes that safe and at-most-once.
func (t *Tree) flatView() *flatTree {
	if f := t.flat.Load(); f != nil {
		return f
	}
	t.flatMu.Lock()
	defer t.flatMu.Unlock()
	if f := t.flat.Load(); f != nil {
		return f
	}
	n := len(t.Nodes)
	f := &flatTree{routing: make([]flatNode, n), value: make([]float64, n)}
	if n > 0 {
		// BFS renumbering: oldOf[newID] is the Nodes index of the node
		// assigned BFS slot newID; a visited interior node claims the next
		// two slots for its children, making siblings adjacent.
		oldOf := make([]int32, 1, n)
		for newID := 0; newID < len(oldOf); newID++ {
			nd := t.Nodes[oldOf[newID]]
			f.value[newID] = nd.Value
			if nd.IsLeaf() {
				f.routing[newID] = flatNode{feature: Leaf}
				continue
			}
			l := int32(len(oldOf))
			oldOf = append(oldOf, int32(nd.Left), int32(nd.Right))
			f.routing[newID] = flatNode{threshold: nd.Threshold, feature: int32(nd.Feature), left: l}
		}
	}
	t.flat.Store(f)
	return f
}

// flatTree32 is the quantized batch-inference snapshot: the routing
// arrays of flatTree split into separate SoA slabs with float32
// thresholds. Splitting thresholds/features/links into their own slabs
// packs 16 thresholds per cache line for the tree-major sweep, and the
// float32 narrowing halves the hot routing footprint. Leaf values stay
// float64 (they alias the flatTree value slab) so accumulation precision
// is untouched.
//
// Threshold rounding contract: each threshold is rounded DOWN to the
// nearest float32 (floorF32). For any float32 input xf this preserves
//
//	xf <= thr32  ⟺  float64(xf) <= thr
//
// so routing a float32-quantized row through the quantized tree is
// bit-equivalent to routing that same rounded row through the exact
// tree: the only deviation a caller can observe comes from quantizing
// the input row itself, never from threshold rounding. NaN inputs route
// right in both layouts via the shared !(x <= thr) condition.
type flatTree32 struct {
	thr   []float32
	feat  []int32
	left  []int32
	value []float64 // aliases flatTree.value; same BFS numbering
	ok    bool      // false when a threshold cannot be floor-rounded
}

// floorF32 rounds v down to the nearest float32. ok is false when no
// finite float32 lower bound exists (v below -MaxFloat32, or NaN).
func floorF32(v float64) (float32, bool) {
	if v != v || v < -math.MaxFloat32 {
		return 0, false
	}
	if v >= math.MaxFloat32 {
		return math.MaxFloat32, true
	}
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f, true
}

// flat32View returns the quantized layout, building it on first use.
// It derives from flatView, which must be fetched BEFORE taking flatMu
// (flatView locks flatMu itself on a cold cache).
func (t *Tree) flat32View() *flatTree32 {
	if q := t.flat32.Load(); q != nil {
		return q
	}
	f := t.flatView()
	t.flatMu.Lock()
	defer t.flatMu.Unlock()
	if q := t.flat32.Load(); q != nil {
		return q
	}
	n := len(f.routing)
	q := &flatTree32{
		thr:   make([]float32, n),
		feat:  make([]int32, n),
		left:  make([]int32, n),
		value: f.value,
		ok:    true,
	}
	for i, nd := range f.routing {
		q.feat[i] = nd.feature
		q.left[i] = nd.left
		if nd.feature == Leaf {
			continue
		}
		thr32, ok := floorF32(nd.threshold)
		if !ok {
			q.ok = false
			break
		}
		q.thr[i] = thr32
	}
	t.flat32.Store(q)
	return q
}

// Quantizable reports whether the tree has a representable quantized
// layout (every threshold admits a finite float32 floor). Ensembles
// check this up front so a quantized sweep never fails mid-batch.
func (t *Tree) Quantizable() bool {
	return len(t.Nodes) > 0 && t.flat32View().ok
}

// quantLanes is the number of rows a quantized sweep advances in
// lock-step. Per-row traversal is a serial dependent-load chain (node →
// feature → child → node …), so a single row can never have more than
// one routing load in flight; round-robining a group of independent rows
// through the levels keeps quantLanes loads outstanding at once, which
// is where the quantized path's speedup actually comes from.
const quantLanes = 16

// PredictBatchAdd32 accumulates w·prediction into out[i] for each of the
// rows rows in the float32 block xb (row-major, the given stride), using
// the quantized layout. It reports false — without touching out — when
// the tree has no representable quantized form; callers must then fall
// back to the exact float64 path.
//
// Rows advance quantLanes at a time, one level per pass: every lane's
// (threshold, feature-value) loads are independent, so the memory system
// overlaps them instead of serializing on one row's pointer chase. A
// lane that reaches its leaf parks there (feat == Leaf keeps j fixed)
// until the slowest lane in the group finishes.
func (t *Tree) PredictBatchAdd32(xb []float32, rows, stride int, out []float64, w float64) bool {
	q := t.flat32View()
	if !q.ok {
		return false
	}
	thr, feat, left, value := q.thr, q.feat, q.left, q.value
	var jbuf [quantLanes]int32
	for base := 0; base < rows; base += quantLanes {
		n := rows - base
		if n > quantLanes {
			n = quantLanes
		}
		for l := 0; l < n; l++ {
			jbuf[l] = 0
		}
		for live := true; live; {
			live = false
			for l := 0; l < n; l++ {
				j := jbuf[l]
				f := feat[j]
				if f == Leaf {
					continue
				}
				live = true
				nj := left[j]
				if !(xb[(base+l)*stride+int(f)] <= thr[j]) { // NaN routes right, as in Predict
					nj++
				}
				jbuf[l] = nj
			}
		}
		for l := 0; l < n; l++ {
			out[base+l] += w * value[jbuf[l]]
		}
	}
	return true
}

// InvalidateFlat discards the flattened batch-inference layouts (exact
// and quantized). Callers that mutate Nodes directly (e.g. boosting's
// Newton leaf correction) must invalidate so the next PredictBatch
// rebuilds from the updated table.
func (t *Tree) InvalidateFlat() {
	t.flat.Store(nil)
	t.flat32.Store(nil)
}

// PredictBatch implements ml.BatchPredictor over the flattened layout.
func (t *Tree) PredictBatch(X [][]float64, out []float64) {
	f := t.flatView()
	routing, value := f.routing, f.value
	for i, x := range X {
		j := int32(0)
		nd := routing[0]
		for nd.feature != Leaf {
			j = nd.left
			if !(x[nd.feature] <= nd.threshold) { // NaN routes right, as in Predict
				j++
			}
			nd = routing[j]
		}
		out[i] = value[j]
	}
}

// PredictBatchAdd accumulates w·Predict(X[i]) into out[i] — the ensemble
// building block: summing tree-by-tree into a shared output slice keeps
// the addition order identical to a per-row Predict loop over the trees.
func (t *Tree) PredictBatchAdd(X [][]float64, out []float64, w float64) {
	f := t.flatView()
	routing, value := f.routing, f.value
	for i, x := range X {
		j := int32(0)
		nd := routing[0]
		for nd.feature != Leaf {
			j = nd.left
			if !(x[nd.feature] <= nd.threshold) { // NaN routes right, as in Predict
				j++
			}
			nd = routing[j]
		}
		out[i] += w * value[j]
	}
}

// New returns an unfitted tree with the given configuration.
func New(cfg Config) *Tree { return &Tree{Cfg: cfg} }

// Fit trains on the full dataset.
func (t *Tree) Fit(d *dataset.Dataset) error {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return t.FitIndices(d, idx, nil)
}

// FitIndices trains on the subset of d selected by idx (with repetitions
// allowed, as produced by bootstrap sampling). sampleWeight may be nil; when
// present it weights each selected row (used by boosting).
func (t *Tree) FitIndices(d *dataset.Dataset, idx []int, sampleWeight []float64) error {
	if len(idx) == 0 || d.NumFeatures() == 0 {
		return errors.New("tree: empty training set")
	}
	cfg := t.Cfg.withDefaults()
	t.nFeatures = d.NumFeatures()
	t.importance = make([]float64, t.nFeatures)
	t.Nodes = t.Nodes[:0]
	b := &builder{
		d:   d,
		cfg: cfg,
		t:   t,
		rng: rand.New(rand.NewSource(cfg.Seed + 0x9E3779B9)),
	}
	if sampleWeight != nil {
		if len(sampleWeight) != d.Len() {
			return fmt.Errorf("tree: sampleWeight length %d != dataset %d", len(sampleWeight), d.Len())
		}
		b.weight = sampleWeight
	}
	own := make([]int, len(idx))
	copy(own, idx)
	t.InvalidateFlat() // Nodes is being replaced; drop any stale SoA views
	b.grow(own, 0)
	t.flatView() // build the batch layout once, at fit time
	return nil
}

// Predict implements ml.Predictor.
func (t *Tree) Predict(x []float64) float64 {
	return t.Nodes[t.LeafIndex(x)].Value
}

// LeafIndex returns the index of the leaf x is routed to.
func (t *Tree) LeafIndex(x []float64) int {
	i := 0
	for {
		n := t.Nodes[i]
		if n.IsLeaf() {
			return i
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// DecisionStep records one routing decision on a prediction path; used by
// the operator-facing explanation reports.
type DecisionStep struct {
	Feature   int
	Threshold float64
	Value     float64 // the feature value observed
	Left      bool    // whether x went left (<= threshold)
}

// DecisionPath returns the sequence of split decisions for x.
func (t *Tree) DecisionPath(x []float64) []DecisionStep {
	var path []DecisionStep
	i := 0
	for {
		n := t.Nodes[i]
		if n.IsLeaf() {
			return path
		}
		left := x[n.Feature] <= n.Threshold
		path = append(path, DecisionStep{Feature: n.Feature, Threshold: n.Threshold, Value: x[n.Feature], Left: left})
		if left {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var rec func(i, d int) int
	rec = func(i, d int) int {
		n := t.Nodes[i]
		if n.IsLeaf() {
			return d
		}
		l := rec(n.Left, d+1)
		r := rec(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return rec(0, 0)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int {
	c := 0
	for _, n := range t.Nodes {
		if n.IsLeaf() {
			c++
		}
	}
	return c
}

// NumFeatures returns the feature dimensionality seen at fit time.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// FeatureImportance returns gain-based importances normalized to sum to 1
// (all zeros for a stump with no splits).
func (t *Tree) FeatureImportance() []float64 {
	out := make([]float64, len(t.importance))
	var total float64
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

// builder carries induction state.
type builder struct {
	d      *dataset.Dataset
	cfg    Config
	t      *Tree
	rng    *rand.Rand
	weight []float64 // optional per-row weights
}

func (b *builder) w(i int) float64 {
	if b.weight == nil {
		return 1
	}
	return b.weight[i]
}

// grow builds the subtree over idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int {
	value, impurity, wsum := b.leafStats(idx)
	self := len(b.t.Nodes)
	b.t.Nodes = append(b.t.Nodes, Node{Feature: Leaf, Left: Leaf, Right: Leaf, Value: value, Cover: wsum})

	if depth >= b.cfg.MaxDepth || len(idx) < b.cfg.MinSplit || impurity <= 1e-12 {
		return self
	}
	feat, thresh, gain, ok := b.bestSplit(idx, impurity, wsum)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return self
	}
	b.t.importance[feat] += gain
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.t.Nodes[self].Feature = feat
	b.t.Nodes[self].Threshold = thresh
	b.t.Nodes[self].Left = l
	b.t.Nodes[self].Right = r
	return self
}

// leafStats returns the node prediction, impurity, and weighted count.
// Impurity is weighted SSE for regression and weighted Gini for
// classification (both scaled by the weight sum so gains are comparable).
func (b *builder) leafStats(idx []int) (value, impurity, wsum float64) {
	var sum float64
	for _, i := range idx {
		w := b.w(i)
		wsum += w
		sum += w * b.d.Y[i]
	}
	if wsum == 0 {
		return 0, 0, 0
	}
	mean := sum / wsum
	if b.cfg.Task == dataset.Classification {
		p := mean // fraction of positive labels
		return p, wsum * p * (1 - p) * 2, wsum
	}
	var sse float64
	for _, i := range idx {
		d := b.d.Y[i] - mean
		sse += b.w(i) * d * d
	}
	return mean, sse, wsum
}

// bestSplit scans candidate features for the split maximizing impurity
// decrease. Features are subsampled when MaxFeatures is set.
func (b *builder) bestSplit(idx []int, parentImpurity, parentW float64) (feat int, thresh, gain float64, ok bool) {
	p := b.d.NumFeatures()
	candidates := make([]int, p)
	for j := range candidates {
		candidates[j] = j
	}
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < p {
		b.rng.Shuffle(p, func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		candidates = candidates[:b.cfg.MaxFeatures]
	}

	type pair struct {
		v, y, w float64
	}
	pairs := make([]pair, 0, len(idx))
	bestGain := 1e-12
	for _, f := range candidates {
		pairs = pairs[:0]
		for _, i := range idx {
			pairs = append(pairs, pair{v: b.d.X[i][f], y: b.d.Y[i], w: b.w(i)})
		}
		sort.Slice(pairs, func(a, c int) bool { return pairs[a].v < pairs[c].v })

		// Prefix statistics: weighted count, sum, sum of squares.
		var lw, lsum, lsq float64
		var tw, tsum, tsq float64
		for _, pr := range pairs {
			tw += pr.w
			tsum += pr.w * pr.y
			tsq += pr.w * pr.y * pr.y
		}
		nLeft := 0
		for k := 0; k < len(pairs)-1; k++ {
			pr := pairs[k]
			lw += pr.w
			lsum += pr.w * pr.y
			lsq += pr.w * pr.y * pr.y
			nLeft++
			if pairs[k+1].v == pr.v {
				continue // cannot split between equal values
			}
			if nLeft < b.cfg.MinLeaf || len(pairs)-nLeft < b.cfg.MinLeaf {
				continue
			}
			rw := tw - lw
			if lw <= 0 || rw <= 0 {
				continue
			}
			var childImpurity float64
			if b.cfg.Task == dataset.Classification {
				pl := lsum / lw
				prr := (tsum - lsum) / rw
				childImpurity = lw*pl*(1-pl)*2 + rw*prr*(1-prr)*2
			} else {
				// SSE = Σw y² − (Σw y)²/Σw for each side.
				lsse := lsq - lsum*lsum/lw
				rsse := (tsq - lsq) - (tsum-lsum)*(tsum-lsum)/rw
				childImpurity = lsse + rsse
			}
			g := parentImpurity - childImpurity
			if g > bestGain {
				bestGain = g
				feat = f
				thresh = (pr.v + pairs[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thresh, bestGain, ok
}
