package tree

import (
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/wire"
)

// treeCodecVersion is bumped whenever the encoded layout changes.
const treeCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: the fitted node
// table, induction config and importance state, floats as exact bit
// patterns. The flattened batch-inference layout is NOT encoded — it is
// a derived structure rebuilt on load (see UnmarshalBinary).
func (t *Tree) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(treeCodecVersion)
	w.U8(uint8(t.Cfg.Task))
	w.Int(t.Cfg.MaxDepth)
	w.Int(t.Cfg.MinLeaf)
	w.Int(t.Cfg.MinSplit)
	w.Int(t.Cfg.MaxFeatures)
	w.I64(t.Cfg.Seed)
	w.Int(t.nFeatures)
	w.F64s(t.importance)
	w.Int(len(t.Nodes))
	for _, n := range t.Nodes {
		w.Int(n.Feature)
		w.F64(n.Threshold)
		w.Int(n.Left)
		w.Int(n.Right)
		w.F64(n.Value)
		w.F64(n.Cover)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous state. The flattened CART routing layout (the PredictBatch
// fast path) is rebuilt eagerly, exactly as FitIndices does at fit time,
// so a loaded tree serves batch traffic without a lazy-build hiccup.
func (t *Tree) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != treeCodecVersion {
		return fmt.Errorf("tree: codec version %d, want %d", v, treeCodecVersion)
	}
	cfg := Config{
		Task:        dataset.Task(r.U8()),
		MaxDepth:    r.Int(),
		MinLeaf:     r.Int(),
		MinSplit:    r.Int(),
		MaxFeatures: r.Int(),
		Seed:        r.I64(),
	}
	nFeatures := r.Int()
	importance := r.F64s()
	n := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("tree: decode: %w", err)
	}
	// Each node is 6 fixed-width fields (48 bytes); bound the allocation
	// by the bytes actually present so a corrupt length prefix cannot
	// demand gigabytes.
	if n < 0 || n > wire.MaxLen || r.Remaining() < n*48 {
		return fmt.Errorf("tree: decode: %w", wire.ErrTruncated)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			Feature:   r.Int(),
			Threshold: r.F64(),
			Left:      r.Int(),
			Right:     r.Int(),
			Value:     r.F64(),
			Cover:     r.F64(),
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("tree: decode: %w", err)
	}
	// The node table must be an actual tree rooted at 0: every child link
	// in range, every node reachable at most once, and every split
	// feature inside the declared width. Range alone is not enough — a
	// shared or self-referential child passes it but makes the BFS in
	// flatView (and Depth's recursion) visit more nodes than exist, and
	// an out-of-width Feature index panics inside the routing loop's
	// x[feature] load at predict time (in ensemble worker goroutines,
	// outside any HTTP recover). A corrupt artifact must fail decode,
	// not crash later.
	if nFeatures < 0 {
		return fmt.Errorf("tree: decode: negative feature count: %w", wire.ErrTruncated)
	}
	// Fit allocates one importance slot per feature, so the declared width
	// is bound to the byte-bounded importance table. Without this check a
	// leaf-only artifact can declare an arbitrarily huge width that every
	// split-feature check below vacuously accepts — and callers that size
	// predict buffers from InputWidth then die in makeslice.
	if len(importance) != nFeatures {
		return fmt.Errorf("tree: decode: %d importance slots for width %d: %w",
			len(importance), nFeatures, wire.ErrTruncated)
	}
	if n > 0 {
		visited := make([]bool, n)
		queue := []int{0}
		visited[0] = true
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			nd := nodes[i]
			if nd.IsLeaf() {
				continue
			}
			if nd.Feature < 0 || nd.Feature >= nFeatures {
				return fmt.Errorf("tree: decode: node %d split feature %d outside width %d: %w",
					i, nd.Feature, nFeatures, wire.ErrTruncated)
			}
			for _, c := range []int{nd.Left, nd.Right} {
				if c < 0 || c >= n {
					return fmt.Errorf("tree: decode: node %d child link %d out of range: %w", i, c, wire.ErrTruncated)
				}
				if visited[c] {
					return fmt.Errorf("tree: decode: node %d reached twice (cycle or shared child): %w", c, wire.ErrTruncated)
				}
				visited[c] = true
				queue = append(queue, c)
			}
		}
	}
	t.Cfg = cfg
	t.nFeatures = nFeatures
	t.importance = importance
	t.Nodes = nodes
	t.flat.Store(nil)
	if n > 0 {
		t.flatView() // rebuild the batch routing layout now, as Fit does
	}
	return nil
}
