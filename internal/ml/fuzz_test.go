package ml

import (
	"bytes"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
)

// FuzzDecodeModel throws hostile artifact bytes at the model codec. The
// decode-safety contract (PR 5, machine-enforced by nfvlint's
// boundedmake): arbitrary input must produce a typed error or a model
// whose whole Predict surface is safe — never a panic and never an
// allocation beyond the bytes present. Seeds are real encoded artifacts
// of every model kind, so the fuzzer starts inside the format and
// mutates envelopes, counts and node graphs rather than flailing at
// magic-byte checks.
func FuzzDecodeModel(f *testing.F) {
	reg := synthDataset(dataset.Regression, 60, 11)
	cls := synthDataset(dataset.Classification, 60, 12)
	seeds := []struct {
		m  Trainable
		ds *dataset.Dataset
	}{
		{&linear.Regression{Ridge: 1e-3}, reg},
		{&linear.Logistic{LR: 0.05, Epochs: 8, BatchSize: 32, Seed: 3}, cls},
		{tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 4, MinLeaf: 3, Seed: 5}), reg},
		{&forest.RandomForest{NumTrees: 3, MaxDepth: 4, MinLeaf: 2, Task: dataset.Regression, Seed: 7}, reg},
		{&forest.GradientBoosting{NumRounds: 4, LearningRate: 0.1, MaxDepth: 3, Task: dataset.Classification, Seed: 9}, cls},
		{&nn.MLP{Hidden: []int{6}, Epochs: 4, BatchSize: 32, Task: dataset.Regression, Seed: 13}, reg},
	}
	for _, s := range seeds {
		if err := s.m.Fit(s.ds); err != nil {
			f.Fatalf("fit seed model: %v", err)
		}
		blob, err := EncodeModel(s.m)
		if err != nil {
			f.Fatalf("encode seed model: %v", err)
		}
		f.Add(blob)
		// A truncated and a bit-flipped variant steer mutation toward the
		// sticky-error and validation paths.
		f.Add(blob[:len(blob)/2])
		flip := bytes.Clone(blob)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(data)
		if err != nil {
			return // typed rejection is the expected path for garbage
		}
		// A decode that claims success must yield a fully servable model:
		// the width is declared, prediction cannot panic, and the model
		// re-encodes (the registry persists decoded models on import).
		w, ok := InputWidth(m)
		if !ok || w < 0 {
			t.Fatalf("decoded model has no usable input width (%d, %v)", w, ok)
		}
		x := make([]float64, w)
		_ = m.Predict(x)
		out := make([]float64, 1)
		if bp, ok := m.(BatchPredictor); ok {
			bp.PredictBatch([][]float64{x}, out)
		}
		if _, err := EncodeModel(m); err != nil {
			t.Fatalf("decoded model does not re-encode: %v", err)
		}
	})
}
