// Model serialization: every zoo member marshals to a versioned binary
// blob (floats as exact IEEE-754 bit patterns, so a round trip is
// bit-identical), and EncodeModel/DecodeModel wrap those blobs with a
// self-describing kind tag. This is the layer the durable artifact plane
// (core.Pipeline.Save/Load, the registry store) builds on.
package ml

import (
	"encoding"
	"errors"
	"fmt"

	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/wire"
)

// Serialized kind tags. They name concrete model types, not zoo kinds:
// "linear" resolves to Regression or Logistic depending on the task, and
// the tag records which one was actually trained.
const (
	KindLinearRegression = "linear.regression"
	KindLogistic         = "linear.logistic"
	KindCART             = "tree.cart"
	KindRandomForest     = "forest.rf"
	KindGBT              = "forest.gbt"
	KindMLP              = "nn.mlp"
)

// modelCodecVersion versions the EncodeModel envelope (magic + kind tag +
// payload); each model payload carries its own codec version too.
const modelCodecVersion = 1

// modelMagic guards against feeding arbitrary bytes to the decoder.
const modelMagic = "NFVM"

// ErrUnknownModelKind reports a serialized kind tag with no registered
// decoder (a newer artifact, or corruption) — and, from EncodeModel, a
// model type without a serializer.
var ErrUnknownModelKind = errors.New("ml: unknown serialized model kind")

// ErrCodecVersion reports an envelope version this build cannot read.
var ErrCodecVersion = errors.New("ml: unsupported model codec version")

// ErrCorruptModel reports an envelope that is not a serialized model at
// all (bad magic) — distinct from a truncated one (wire.ErrTruncated).
var ErrCorruptModel = errors.New("ml: corrupt model envelope")

// KindOf returns the serialization kind tag for a supported model, or ""
// when the model has no codec.
func KindOf(m Predictor) string {
	switch m.(type) {
	case *linear.Regression:
		return KindLinearRegression
	case *linear.Logistic:
		return KindLogistic
	case *tree.Tree:
		return KindCART
	case *forest.RandomForest:
		return KindRandomForest
	case *forest.GradientBoosting:
		return KindGBT
	case *nn.MLP:
		return KindMLP
	default:
		return ""
	}
}

// InputWidth reports the feature-vector width a supported model expects
// (ok false for model types without a codec). The artifact plane uses it
// to validate a decoded model against the dataset schema it travels
// with — a width mismatch would otherwise panic at predict time, inside
// ensemble worker goroutines that no HTTP recover covers.
func InputWidth(m Predictor) (int, bool) {
	switch t := m.(type) {
	case *linear.Regression:
		return len(t.Weights), true
	case *linear.Logistic:
		return len(t.Weights), true
	case *tree.Tree:
		return t.NumFeatures(), true
	case *forest.RandomForest:
		return ensembleWidth(t.Trees), true
	case *forest.GradientBoosting:
		return ensembleWidth(t.Trees), true
	case *nn.MLP:
		return t.InputDim(), true
	default:
		return 0, false
	}
}

// ensembleWidth is the widest member tree's feature count (the width the
// ensemble's batch routing may index).
func ensembleWidth(trees []*tree.Tree) int {
	w := 0
	for _, t := range trees {
		if n := t.NumFeatures(); n > w {
			w = n
		}
	}
	return w
}

// EncodeModel serializes a supported model into a self-describing
// envelope: magic, envelope version, kind tag, payload. Unsupported
// model types (external Predictors) report ErrUnknownModelKind.
func EncodeModel(m Predictor) ([]byte, error) {
	kind := KindOf(m)
	if kind == "" {
		return nil, fmt.Errorf("%w: cannot serialize %T", ErrUnknownModelKind, m)
	}
	payload, err := m.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("ml: encoding %s: %w", kind, err)
	}
	var w wire.Writer
	w.String(modelMagic)
	w.U16(modelCodecVersion)
	w.String(kind)
	w.BytesField(payload)
	return w.Bytes(), nil
}

// DecodeModel reconstructs a model from an EncodeModel envelope. The
// returned Predictor is fully servable: tree models rebuild their
// flattened batch-inference layouts during decode.
func DecodeModel(data []byte) (Predictor, error) {
	r := wire.NewReader(data)
	magic := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ml: decode: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptModel, magic)
	}
	if v := r.U16(); r.Err() == nil && v != modelCodecVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrCodecVersion, v, modelCodecVersion)
	}
	kind := r.String()
	payload := r.BytesField()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ml: decode: %w", err)
	}
	var m interface {
		Predictor
		encoding.BinaryUnmarshaler
	}
	switch kind {
	case KindLinearRegression:
		m = &linear.Regression{}
	case KindLogistic:
		m = &linear.Logistic{}
	case KindCART:
		m = &tree.Tree{}
	case KindRandomForest:
		m = &forest.RandomForest{}
	case KindGBT:
		m = &forest.GradientBoosting{}
	case KindMLP:
		m = &nn.MLP{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModelKind, kind)
	}
	if err := m.UnmarshalBinary(payload); err != nil {
		return nil, err
	}
	return m, nil
}
