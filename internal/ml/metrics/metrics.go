// Package metrics implements the regression and binary-classification
// evaluation metrics reported in the paper's tables: MAE/RMSE/R² for the
// resource-prediction models and accuracy/precision/recall/F1/ROC-AUC for
// the SLO-violation classifiers.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MSE returns the mean squared error between predictions and truth.
func MSE(pred, truth []float64) float64 {
	checkLen(pred, truth)
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, truth []float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	checkLen(pred, truth)
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination. A constant-truth input
// yields R² of 0 (no variance to explain).
func R2(pred, truth []float64) float64 {
	checkLen(pred, truth)
	var mean float64
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// MAPE returns the mean absolute percentage error, skipping zero-truth
// entries; reported as a fraction (0.1 == 10%).
func MAPE(pred, truth []float64) float64 {
	checkLen(pred, truth)
	var s float64
	n := 0
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - truth[i]) / truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse builds a confusion matrix from probability predictions
// thresholded at thresh and binary truth labels.
func Confuse(prob, truth []float64, thresh float64) Confusion {
	checkLen(prob, truth)
	var c Confusion
	for i := range prob {
		predPos := prob[i] >= thresh
		truePos := truth[i] >= 0.5
		switch {
		case predPos && truePos:
			c.TP++
		case predPos && !truePos:
			c.FP++
		case !predPos && truePos:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positive labels.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// ROCAUC returns the area under the ROC curve for probability scores and
// binary labels, computed via the rank statistic (equivalent to the
// Mann-Whitney U), with proper tie handling. Returns 0.5 when either class
// is absent.
func ROCAUC(prob, truth []float64) float64 {
	checkLen(prob, truth)
	n := len(prob)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return prob[idx[a]] < prob[idx[b]] })
	// Fractional ranks with tie averaging.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && prob[idx[j+1]] == prob[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var rankSumPos float64
	nPos, nNeg := 0, 0
	for i := range truth {
		if truth[i] >= 0.5 {
			rankSumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// LogLoss returns the mean binary cross-entropy with probability clipping.
func LogLoss(prob, truth []float64) float64 {
	checkLen(prob, truth)
	const eps = 1e-12
	var s float64
	for i := range prob {
		p := math.Min(math.Max(prob[i], eps), 1-eps)
		if truth[i] >= 0.5 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(prob))
}

// RegressionReport bundles the regression metrics for one model, as
// printed in Table 1.
type RegressionReport struct {
	Model         string
	MAE, RMSE, R2 float64
	MAPE          float64
}

// EvalRegression computes a RegressionReport.
func EvalRegression(model string, pred, truth []float64) RegressionReport {
	return RegressionReport{
		Model: model,
		MAE:   MAE(pred, truth),
		RMSE:  RMSE(pred, truth),
		R2:    R2(pred, truth),
		MAPE:  MAPE(pred, truth),
	}
}

// ClassificationReport bundles the classification metrics for one model,
// as printed in Table 2.
type ClassificationReport struct {
	Model               string
	Accuracy, Precision float64
	Recall, F1, AUC     float64
	LogLoss             float64
}

// EvalClassification computes a ClassificationReport at threshold 0.5.
func EvalClassification(model string, prob, truth []float64) ClassificationReport {
	c := Confuse(prob, truth, 0.5)
	return ClassificationReport{
		Model:     model,
		Accuracy:  c.Accuracy(),
		Precision: c.Precision(),
		Recall:    c.Recall(),
		F1:        c.F1(),
		AUC:       ROCAUC(prob, truth),
		LogLoss:   LogLoss(prob, truth),
	}
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("metrics: empty input")
	}
}
