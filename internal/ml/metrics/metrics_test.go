package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMSEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	if got := MSE(pred, truth); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, -1}, []float64{0, 0}); got != 1 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestR2(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	// Mean predictor has R2 exactly 0.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(mean, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-predictor R2 = %v", got)
	}
	// Constant truth: defined as 0.
	if got := R2([]float64{1, 2}, []float64{5, 5}); got != 0 {
		t.Fatalf("constant-truth R2 = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v", got)
	}
	// Zero-truth entries skipped.
	if got := MAPE([]float64{1, 110}, []float64{0, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero truth = %v", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("all-zero-truth MAPE = %v", got)
	}
}

func TestConfusionCounts(t *testing.T) {
	prob := []float64{0.9, 0.8, 0.3, 0.2, 0.6}
	truth := []float64{1, 0, 1, 0, 1}
	c := Confuse(prob, truth, 0.5)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", got)
	}
	if !strings.Contains(c.String(), "TP=2") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should report zeros")
	}
}

func TestROCAUCPerfectAndRandom(t *testing.T) {
	prob := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []float64{0, 0, 1, 1}
	if got := ROCAUC(prob, truth); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []float64{0.9, 0.8, 0.2, 0.1}
	if got := ROCAUC(inverted, truth); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// Single class present: defined as 0.5.
	if got := ROCAUC([]float64{0.1, 0.9}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestROCAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 under tie averaging.
	prob := []float64{0.5, 0.5, 0.5, 0.5}
	truth := []float64{1, 0, 1, 0}
	if got := ROCAUC(prob, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestROCAUCMatchesPairCount(t *testing.T) {
	// AUC equals the fraction of (pos, neg) pairs ranked correctly.
	rng := rand.New(rand.NewSource(4))
	n := 200
	prob := make([]float64, n)
	truth := make([]float64, n)
	for i := range prob {
		truth[i] = float64(rng.Intn(2))
		prob[i] = 0.3*truth[i] + rng.Float64()*0.8
	}
	var correct, total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if truth[i] >= 0.5 && truth[j] < 0.5 {
				total++
				switch {
				case prob[i] > prob[j]:
					correct++
				case prob[i] == prob[j]:
					correct += 0.5
				}
			}
		}
	}
	want := correct / total
	if got := ROCAUC(prob, truth); math.Abs(got-want) > 1e-10 {
		t.Fatalf("AUC = %v want %v", got, want)
	}
}

func TestLogLoss(t *testing.T) {
	// Confident-correct has low loss, confident-wrong high loss.
	low := LogLoss([]float64{0.99, 0.01}, []float64{1, 0})
	high := LogLoss([]float64{0.01, 0.99}, []float64{1, 0})
	if low >= high {
		t.Fatalf("logloss ordering: %v vs %v", low, high)
	}
	// Clipping keeps extreme probabilities finite.
	if v := LogLoss([]float64{0, 1}, []float64{1, 0}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("logloss not clipped: %v", v)
	}
}

func TestEvalReports(t *testing.T) {
	r := EvalRegression("m", []float64{1, 2}, []float64{1, 3})
	if r.Model != "m" || r.MAE != 0.5 {
		t.Fatalf("regression report %+v", r)
	}
	c := EvalClassification("c", []float64{0.9, 0.1}, []float64{1, 0})
	if c.Accuracy != 1 || c.AUC != 1 || c.F1 != 1 {
		t.Fatalf("classification report %+v", c)
	}
}

func TestCheckLenPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { MSE([]float64{1}, []float64{1, 2}) },
		func() { MAE(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPropertyAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		prob := make([]float64, n)
		truth := make([]float64, n)
		pos := false
		neg := false
		for i := range prob {
			prob[i] = rng.Float64()
			truth[i] = float64(rng.Intn(2))
			if truth[i] == 1 {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true
		}
		transformed := make([]float64, n)
		for i, p := range prob {
			transformed[i] = math.Exp(3 * p) // strictly monotone
		}
		return math.Abs(ROCAUC(prob, truth)-ROCAUC(transformed, truth)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyR2UpperBound(t *testing.T) {
	// R² never exceeds 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		pred := make([]float64, n)
		truth := make([]float64, n)
		for i := range pred {
			pred[i], truth[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return R2(pred, truth) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
