// Package ml defines the model interfaces shared by the learning packages
// (linear, tree, forest, nn) and consumed by the explanation packages in
// internal/xai. Explainers are model-agnostic: they only require Predictor.
//
// Convention: for regression models Predict returns the predicted value;
// for binary classification models Predict returns P(y = 1 | x). This
// uniform real-valued output is exactly what attribution methods explain.
//
// Models that can evaluate many rows at once additionally implement
// BatchPredictor; the explainer hot loops route their perturbation
// matrices through PredictBatchInto / PredictBatchParallel, which dispatch
// to the native batch path when available and fall back to a plain
// Predict loop otherwise, so external models keep working unchanged.
package ml

import (
	"nfvxai/internal/dataset"
	"nfvxai/internal/sched"
)

// Predictor is the minimal model interface the explainers consume.
type Predictor interface {
	// Predict returns the model output for a single feature vector.
	Predict(x []float64) float64
}

// BatchPredictor is a model with a vectorized inference path. PredictBatch
// must produce, for every row, exactly the value Predict would return
// (bit-identical: the explainers' parity tests rely on it), and must be
// safe for concurrent use on a fitted model.
type BatchPredictor interface {
	Predictor
	// PredictBatch fills out[i] with the model output for X[i].
	// len(out) must equal len(X).
	PredictBatch(X [][]float64, out []float64)
}

// Trainable is a model that can be fitted to a dataset.
type Trainable interface {
	Predictor
	// Fit trains the model on d, replacing any previous state.
	Fit(d *dataset.Dataset) error
}

// PredictorFunc adapts a plain function to the Predictor interface.
type PredictorFunc func(x []float64) float64

// Predict implements Predictor.
func (f PredictorFunc) Predict(x []float64) float64 { return f(x) }

// PredictBatch applies m to every row of X, using the model's native batch
// path when it has one.
func PredictBatch(m Predictor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	PredictBatchInto(m, X, out)
	return out
}

// PredictBatchInto fills out[i] with m's output for X[i], dispatching to
// the model's BatchPredictor fast path when implemented. len(out) must
// equal len(X).
func PredictBatchInto(m Predictor, X [][]float64, out []float64) {
	if bp, ok := m.(BatchPredictor); ok {
		bp.PredictBatch(X, out)
		return
	}
	for i, x := range X {
		out[i] = m.Predict(x)
	}
}

// minParallelRows is the batch size below which fanning a generic Predict
// loop across goroutines costs more than it saves.
const minParallelRows = 256

// PredictBatchParallel is PredictBatchInto with worker fan-out for models
// that lack a native batch path: the rows are split into contiguous
// chunks evaluated over the shared sched pool, so Predict must be safe
// for concurrent use — the same requirement xai.ExplainBatch already
// places on any served model. A Predictor that mutates shared state per
// call must either implement BatchPredictor or be wrapped before
// reaching the explainer hot paths. Native BatchPredictors are invoked
// with a single PredictBatch call (ensemble models shard internally over
// the same pool, which composes instead of deadlocking — see sched).
//
// workers is retained for API compatibility but ignored: the shared
// pool's size (sched.Configure) governs fan-out. Batches below
// minParallelRows run inline either way.
func PredictBatchParallel(m Predictor, X [][]float64, out []float64, workers int) {
	if bp, ok := m.(BatchPredictor); ok {
		bp.PredictBatch(X, out)
		return
	}
	_ = workers
	// minChunk of half the threshold keeps the historical cutoff: n >=
	// minParallelRows dispatches, anything smaller runs inline.
	sched.ParallelFor(len(X), minParallelRows/2, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(X[i])
		}
	})
}

// Classify thresholds a probability-output model at 0.5.
func Classify(m Predictor, x []float64) float64 {
	if m.Predict(x) >= 0.5 {
		return 1
	}
	return 0
}

// ClassifyBatch thresholds predictions for every row of X.
func ClassifyBatch(m Predictor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = Classify(m, x)
	}
	return out
}
