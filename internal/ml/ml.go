// Package ml defines the model interfaces shared by the learning packages
// (linear, tree, forest, nn) and consumed by the explanation packages in
// internal/xai. Explainers are model-agnostic: they only require Predictor.
//
// Convention: for regression models Predict returns the predicted value;
// for binary classification models Predict returns P(y = 1 | x). This
// uniform real-valued output is exactly what attribution methods explain.
package ml

import "nfvxai/internal/dataset"

// Predictor is the minimal model interface the explainers consume.
type Predictor interface {
	// Predict returns the model output for a single feature vector.
	Predict(x []float64) float64
}

// Trainable is a model that can be fitted to a dataset.
type Trainable interface {
	Predictor
	// Fit trains the model on d, replacing any previous state.
	Fit(d *dataset.Dataset) error
}

// PredictorFunc adapts a plain function to the Predictor interface.
type PredictorFunc func(x []float64) float64

// Predict implements Predictor.
func (f PredictorFunc) Predict(x []float64) float64 { return f(x) }

// PredictBatch applies m to every row of X.
func PredictBatch(m Predictor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// Classify thresholds a probability-output model at 0.5.
func Classify(m Predictor, x []float64) float64 {
	if m.Predict(x) >= 0.5 {
		return 1
	}
	return 0
}

// ClassifyBatch thresholds predictions for every row of X.
func ClassifyBatch(m Predictor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = Classify(m, x)
	}
	return out
}
