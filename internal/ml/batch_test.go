package ml_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
)

// syntheticData builds a nonlinear dataset wide enough to exercise every
// model's batch path.
func syntheticData(n int, task dataset.Task, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(task, "a", "b", "c", "d", "e", "f")
	for i := 0; i < n; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := math.Sin(x[0])*3 + x[1]*x[2] - 2*x[3] + 0.1*rng.NormFloat64()
		if task == dataset.Classification {
			if y > 0 {
				y = 1
			} else {
				y = 0
			}
		}
		d.Add(x, y)
	}
	return d
}

// fittedModels trains one instance of every model in the zoo.
func fittedModels(t *testing.T) map[string]ml.Predictor {
	t.Helper()
	reg := syntheticData(300, dataset.Regression, 7)
	cls := syntheticData(300, dataset.Classification, 8)

	models := map[string]ml.Predictor{}
	lin := &linear.Regression{Ridge: 1e-3}
	if err := lin.Fit(reg); err != nil {
		t.Fatal(err)
	}
	models["linear"] = lin

	logit := &linear.Logistic{Epochs: 30, BatchSize: 32, Seed: 1}
	if err := logit.Fit(cls); err != nil {
		t.Fatal(err)
	}
	models["logistic"] = logit

	cart := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 7, Seed: 3})
	if err := cart.Fit(reg); err != nil {
		t.Fatal(err)
	}
	models["tree"] = cart

	rf := &forest.RandomForest{NumTrees: 15, MaxDepth: 6, Task: dataset.Regression, Seed: 4}
	if err := rf.Fit(reg); err != nil {
		t.Fatal(err)
	}
	models["forest"] = rf

	gbt := &forest.GradientBoosting{NumRounds: 25, MaxDepth: 3, Task: dataset.Classification, Seed: 5}
	if err := gbt.Fit(cls); err != nil {
		t.Fatal(err)
	}
	models["gbt"] = gbt

	mlp := &nn.MLP{Hidden: []int{12, 6}, Epochs: 10, Task: dataset.Regression, Seed: 6}
	if err := mlp.Fit(reg); err != nil {
		t.Fatal(err)
	}
	models["mlp"] = mlp
	return models
}

// TestPredictBatchParity checks that every native batch path reproduces a
// Predict loop exactly — bit-identical, not just within tolerance — which
// is what lets the explainer rewrites claim unchanged attributions.
func TestPredictBatchParity(t *testing.T) {
	X := syntheticData(700, dataset.Regression, 11).X
	for name, m := range fittedModels(t) {
		bp, ok := m.(ml.BatchPredictor)
		if !ok {
			t.Errorf("%s: does not implement ml.BatchPredictor", name)
			continue
		}
		got := make([]float64, len(X))
		bp.PredictBatch(X, got)
		for i, x := range X {
			if want := m.Predict(x); got[i] != want {
				t.Fatalf("%s: row %d: PredictBatch %v != Predict %v", name, i, got[i], want)
			}
		}
		// The dispatch helpers must route to the same fast path.
		viaHelper := ml.PredictBatch(m, X)
		par := make([]float64, len(X))
		ml.PredictBatchParallel(m, X, par, 4)
		for i := range X {
			if viaHelper[i] != got[i] || par[i] != got[i] {
				t.Fatalf("%s: row %d: helper dispatch mismatch", name, i)
			}
		}
	}
}

// TestPredictBatchNaNRouting pins down the NaN convention: Predict's
// `x <= threshold ? left : right` sends NaN right, and the flattened
// batch walk must agree.
func TestPredictBatchNaNRouting(t *testing.T) {
	reg := syntheticData(200, dataset.Regression, 41)
	rf := &forest.RandomForest{NumTrees: 8, MaxDepth: 6, Task: dataset.Regression, Seed: 13}
	if err := rf.Fit(reg); err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, 0, 24)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			x := append([]float64(nil), reg.X[i]...)
			x[j] = math.NaN()
			X = append(X, x)
		}
	}
	out := make([]float64, len(X))
	rf.PredictBatch(X, out)
	for i, x := range X {
		if want := rf.Predict(x); out[i] != want && !(math.IsNaN(out[i]) && math.IsNaN(want)) {
			t.Fatalf("NaN row %d: PredictBatch %v != Predict %v", i, out[i], want)
		}
	}
}

// TestPredictBatchParallelGeneric checks the worker-chunked fallback for
// models without a native batch path.
func TestPredictBatchParallelGeneric(t *testing.T) {
	m := ml.PredictorFunc(func(x []float64) float64 { return 3*x[0] - x[1] })
	X := make([][]float64, 1000) // above the parallel threshold
	for i := range X {
		X[i] = []float64{float64(i), float64(2 * i)}
	}
	out := make([]float64, len(X))
	ml.PredictBatchParallel(m, X, out, 0)
	for i, x := range X {
		if want := m.Predict(x); out[i] != want {
			t.Fatalf("row %d: %v != %v", i, out[i], want)
		}
	}
}

// TestConcurrentPredictBatch exercises the lazily built flattened-tree
// layout and the ensemble sharding under concurrency; run with -race.
func TestConcurrentPredictBatch(t *testing.T) {
	reg := syntheticData(300, dataset.Regression, 21)
	rf := &forest.RandomForest{NumTrees: 10, MaxDepth: 6, Task: dataset.Regression, Seed: 9}
	if err := rf.Fit(reg); err != nil {
		t.Fatal(err)
	}
	// Drop the fit-time layout so goroutines race to rebuild it.
	for _, tr := range rf.Trees {
		tr.InvalidateFlat()
	}
	X := reg.X
	want := make([]float64, len(X))
	rf.PredictBatch(X, want)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(X))
			rf.PredictBatch(X, out)
			for i := range out {
				if out[i] != want[i] {
					t.Errorf("row %d: concurrent %v != %v", i, out[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestInvalidateFlat checks that direct Node mutation plus invalidation is
// reflected by the batch path (the boosting Newton-step pattern).
func TestInvalidateFlat(t *testing.T) {
	reg := syntheticData(100, dataset.Regression, 31)
	cart := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 3, Seed: 1})
	if err := cart.Fit(reg); err != nil {
		t.Fatal(err)
	}
	for i := range cart.Nodes {
		if cart.Nodes[i].IsLeaf() {
			cart.Nodes[i].Value += 100
		}
	}
	cart.InvalidateFlat()
	out := make([]float64, 1)
	cart.PredictBatch(reg.X[:1], out)
	if want := cart.Predict(reg.X[0]); out[0] != want {
		t.Fatalf("after invalidate: batch %v != predict %v", out[0], want)
	}
}
