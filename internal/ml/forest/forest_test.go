package forest

import (
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/metrics"
)

// friedman1-style nonlinear regression target.
func nonlinearRegression(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(dataset.Regression, "x0", "x1", "x2", "x3", "x4")
	for i := 0; i < n; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) + 10*x[3] + rng.NormFloat64()*0.2
		d.Add(x, y)
	}
	return d
}

func circleClassification(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(dataset.Classification, "a", "b")
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0]*x[0]+x[1]*x[1] < 0.4 {
			y = 1
		}
		d.Add(x, y)
	}
	return d
}

func TestForestRegressionBeatsSingleSplitBaseline(t *testing.T) {
	d := nonlinearRegression(1500, 1)
	train, test := d.Split(rand.New(rand.NewSource(2)), 0.8)
	f := RandomForest{NumTrees: 40, MaxDepth: 10, Task: dataset.Regression, Seed: 3}
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, test.Len())
	for i, x := range test.X {
		pred[i] = f.Predict(x)
	}
	r2 := metrics.R2(pred, test.Y)
	if r2 < 0.85 {
		t.Fatalf("forest test R2 = %v", r2)
	}
}

func TestForestClassificationCircle(t *testing.T) {
	d := circleClassification(2000, 4)
	train, test := d.Split(rand.New(rand.NewSource(5)), 0.8)
	f := RandomForest{NumTrees: 40, MaxDepth: 8, Task: dataset.Classification, Seed: 6}
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, test.Len())
	for i, x := range test.X {
		prob[i] = f.Predict(x)
	}
	rep := metrics.EvalClassification("rf", prob, test.Y)
	if rep.Accuracy < 0.93 || rep.AUC < 0.97 {
		t.Fatalf("rf circle acc=%v auc=%v", rep.Accuracy, rep.AUC)
	}
	for _, p := range prob {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestForestImportanceIdentifiesInformative(t *testing.T) {
	d := nonlinearRegression(1200, 7)
	// x4 is pure noise in the generating function.
	f := RandomForest{NumTrees: 30, MaxDepth: 8, Task: dataset.Regression, Seed: 8}
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if imp[4] > imp[0] || imp[4] > imp[3] {
		t.Fatalf("noise feature ranked above informative: %v", imp)
	}
}

func TestForestDeterministicSeed(t *testing.T) {
	d := nonlinearRegression(300, 9)
	a := RandomForest{NumTrees: 5, Task: dataset.Regression, Seed: 42}
	b := RandomForest{NumTrees: 5, Task: dataset.Regression, Seed: 42}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := d.X[i]
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed differs")
		}
	}
}

func TestForestComponentTrees(t *testing.T) {
	d := nonlinearRegression(300, 10)
	f := RandomForest{NumTrees: 7, Task: dataset.Regression, Seed: 11}
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	trees, w, base := f.ComponentTrees()
	if len(trees) != 7 || len(w) != 7 || base != 0 {
		t.Fatalf("ComponentTrees shape wrong")
	}
	// Weighted sum of component trees must equal the forest prediction.
	x := d.X[0]
	var s float64
	for i, tr := range trees {
		s += w[i] * tr.Predict(x)
	}
	if math.Abs(s-f.Predict(x)) > 1e-12 {
		t.Fatalf("decomposition mismatch: %v vs %v", s, f.Predict(x))
	}
}

func TestForestEmptyError(t *testing.T) {
	var f RandomForest
	if err := f.Fit(dataset.New(dataset.Regression, "x")); err == nil {
		t.Fatal("expected error")
	}
}

func TestGBTRegression(t *testing.T) {
	d := nonlinearRegression(1500, 12)
	train, test := d.Split(rand.New(rand.NewSource(13)), 0.8)
	g := GradientBoosting{NumRounds: 150, LearningRate: 0.1, MaxDepth: 3, Task: dataset.Regression, Seed: 14}
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, test.Len())
	for i, x := range test.X {
		pred[i] = g.Predict(x)
	}
	if r2 := metrics.R2(pred, test.Y); r2 < 0.9 {
		t.Fatalf("gbt test R2 = %v", r2)
	}
}

func TestGBTClassification(t *testing.T) {
	d := circleClassification(2000, 15)
	train, test := d.Split(rand.New(rand.NewSource(16)), 0.8)
	g := GradientBoosting{NumRounds: 120, LearningRate: 0.15, MaxDepth: 3, Task: dataset.Classification, Seed: 17}
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, test.Len())
	for i, x := range test.X {
		prob[i] = g.Predict(x)
		if prob[i] < 0 || prob[i] > 1 {
			t.Fatalf("probability out of range: %v", prob[i])
		}
	}
	rep := metrics.EvalClassification("gbt", prob, test.Y)
	if rep.Accuracy < 0.93 || rep.AUC < 0.97 {
		t.Fatalf("gbt circle acc=%v auc=%v", rep.Accuracy, rep.AUC)
	}
}

func TestGBTMoreRoundsReduceTrainError(t *testing.T) {
	d := nonlinearRegression(600, 18)
	short := GradientBoosting{NumRounds: 10, Task: dataset.Regression, Seed: 19}
	long := GradientBoosting{NumRounds: 200, Task: dataset.Regression, Seed: 19}
	if err := short.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(d); err != nil {
		t.Fatal(err)
	}
	pshort := make([]float64, d.Len())
	plong := make([]float64, d.Len())
	for i, x := range d.X {
		pshort[i] = short.Predict(x)
		plong[i] = long.Predict(x)
	}
	if metrics.MSE(plong, d.Y) >= metrics.MSE(pshort, d.Y) {
		t.Fatal("more boosting rounds did not reduce training error")
	}
}

func TestGBTRawScoreDecomposition(t *testing.T) {
	d := nonlinearRegression(300, 20)
	g := GradientBoosting{NumRounds: 25, Task: dataset.Regression, Seed: 21}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	trees, w, base := g.ComponentTrees()
	x := d.X[3]
	s := base
	for i, tr := range trees {
		s += w[i] * tr.Predict(x)
	}
	if math.Abs(s-g.RawScore(x)) > 1e-12 {
		t.Fatalf("ComponentTrees decomposition mismatch: %v vs %v", s, g.RawScore(x))
	}
	if g.Predict(x) != g.RawScore(x) {
		t.Fatal("regression Predict should equal RawScore")
	}
}

func TestGBTSubsample(t *testing.T) {
	d := nonlinearRegression(500, 22)
	g := GradientBoosting{NumRounds: 60, Subsample: 0.5, Task: dataset.Regression, Seed: 23}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = g.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.8 {
		t.Fatalf("subsampled gbt R2 = %v", r2)
	}
}

func TestGBTEmptyError(t *testing.T) {
	var g GradientBoosting
	if err := g.Fit(dataset.New(dataset.Regression, "x")); err == nil {
		t.Fatal("expected error")
	}
}

func TestGBTImportanceNormalized(t *testing.T) {
	d := nonlinearRegression(600, 24)
	g := GradientBoosting{NumRounds: 40, Task: dataset.Regression, Seed: 25}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := g.FeatureImportance()
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("gbt importance sums to %v", sum)
	}
}
