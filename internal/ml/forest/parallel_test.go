package forest

import (
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/tree"
)

// sequentialFit replays the seed's sequential fitting loop: the same RNG
// consumption order (n bootstrap draws then one split seed per tree), one
// tree after another. The parallel Fit must be bit-identical to it.
func sequentialFit(t *testing.T, f *RandomForest, d *dataset.Dataset) []*tree.Tree {
	t.Helper()
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		p := d.NumFeatures()
		if f.Task == dataset.Classification {
			maxFeat = int(math.Sqrt(float64(p)))
		} else {
			maxFeat = p / 3
		}
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	rng := rand.New(rand.NewSource(f.Seed + 0x5DEECE66D))
	n := d.Len()
	trees := make([]*tree.Tree, f.NumTrees)
	for ti := range trees {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tr := tree.New(tree.Config{
			Task:        f.Task,
			MaxDepth:    f.MaxDepth,
			MinLeaf:     f.MinLeaf,
			MaxFeatures: maxFeat,
			Seed:        rng.Int63(),
		})
		if err := tr.FitIndices(d, idx, nil); err != nil {
			t.Fatal(err)
		}
		trees[ti] = tr
	}
	return trees
}

func TestParallelFitMatchesSequential(t *testing.T) {
	d := nonlinearRegression(250, 42)
	f := &RandomForest{NumTrees: 12, MaxDepth: 6, MinLeaf: 2, Task: dataset.Regression, Seed: 99}
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	ref := sequentialFit(t, f, d)
	if len(ref) != len(f.Trees) {
		t.Fatalf("tree count %d != %d", len(f.Trees), len(ref))
	}
	for ti := range ref {
		a, b := f.Trees[ti].Nodes, ref[ti].Nodes
		if len(a) != len(b) {
			t.Fatalf("tree %d: node count %d != %d", ti, len(a), len(b))
		}
		for ni := range a {
			if a[ni] != b[ni] {
				t.Fatalf("tree %d node %d: parallel %+v != sequential %+v", ti, ni, a[ni], b[ni])
			}
		}
	}
	for _, x := range d.X[:50] {
		var s float64
		for _, tr := range ref {
			s += tr.Predict(x)
		}
		if want := s / float64(len(ref)); f.Predict(x) != want {
			t.Fatalf("prediction drift: %v != %v", f.Predict(x), want)
		}
	}
}
