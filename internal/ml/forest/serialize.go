package forest

import (
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/wire"
)

// forestCodecVersion is bumped whenever either ensemble layout changes.
const forestCodecVersion = 1

// encodeTrees appends the ensemble's trees as length-prefixed tree blobs.
func encodeTrees(w *wire.Writer, trees []*tree.Tree) error {
	w.Int(len(trees))
	for i, t := range trees {
		blob, err := t.MarshalBinary()
		if err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
		w.BytesField(blob)
	}
	return nil
}

// decodeTrees reads the tree blobs written by encodeTrees.
func decodeTrees(r *wire.Reader) ([]*tree.Tree, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Each tree blob carries at least an 8-byte length prefix; bound the
	// allocation by the bytes actually present.
	if n < 0 || n > wire.MaxLen || r.Remaining() < n*8 {
		return nil, wire.ErrTruncated
	}
	trees := make([]*tree.Tree, n)
	for i := range trees {
		blob := r.BytesField()
		if err := r.Err(); err != nil {
			return nil, err
		}
		t := &tree.Tree{}
		if err := t.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("tree %d: %w", i, err)
		}
		trees[i] = t
	}
	return trees, nil
}

// MarshalBinary implements encoding.BinaryMarshaler: hyperparameters plus
// every fitted tree, floats bit-exact.
func (f *RandomForest) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(forestCodecVersion)
	w.Int(f.NumTrees)
	w.Int(f.MaxDepth)
	w.Int(f.MinLeaf)
	w.Int(f.MaxFeatures)
	w.U8(uint8(f.Task))
	w.I64(f.Seed)
	if err := encodeTrees(&w, f.Trees); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous state. Each member tree rebuilds its flattened batch-routing
// layout as it decodes.
func (f *RandomForest) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != forestCodecVersion {
		return fmt.Errorf("forest: codec version %d, want %d", v, forestCodecVersion)
	}
	nf := RandomForest{
		NumTrees:    r.Int(),
		MaxDepth:    r.Int(),
		MinLeaf:     r.Int(),
		MaxFeatures: r.Int(),
		Task:        dataset.Task(r.U8()),
		Seed:        r.I64(),
	}
	trees, err := decodeTrees(r)
	if err != nil {
		return fmt.Errorf("forest: decode: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("forest: decode: %w", err)
	}
	nf.Trees = trees
	nf.Quantize = f.Quantize // runtime knob, not model state: survives decode
	*f = nf
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the boosted
// ensemble: hyperparameters, base score and every round's tree.
func (g *GradientBoosting) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(forestCodecVersion)
	w.Int(g.NumRounds)
	w.F64(g.LearningRate)
	w.Int(g.MaxDepth)
	w.Int(g.MinLeaf)
	w.F64(g.Subsample)
	w.U8(uint8(g.Task))
	w.I64(g.Seed)
	w.F64(g.Base)
	if err := encodeTrees(&w, g.Trees); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous state.
func (g *GradientBoosting) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != forestCodecVersion {
		return fmt.Errorf("forest: codec version %d, want %d", v, forestCodecVersion)
	}
	ng := GradientBoosting{
		NumRounds:    r.Int(),
		LearningRate: r.F64(),
		MaxDepth:     r.Int(),
		MinLeaf:      r.Int(),
		Subsample:    r.F64(),
		Task:         dataset.Task(r.U8()),
		Seed:         r.I64(),
		Base:         r.F64(),
	}
	trees, err := decodeTrees(r)
	if err != nil {
		return fmt.Errorf("forest: decode: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("forest: decode: %w", err)
	}
	ng.Trees = trees
	ng.Quantize = g.Quantize // runtime knob, not model state: survives decode
	*g = ng
	return nil
}
