package forest

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"nfvxai/internal/dataset"
)

// quantScenarios is the seeded property-test matrix: a spread of target
// shapes, feature scales (including values near float32 resolution
// limits) and dataset sizes.
func quantScenarios() map[string]*dataset.Dataset {
	scale := func(d *dataset.Dataset, s float64) *dataset.Dataset {
		for _, row := range d.X {
			for j := range row {
				row[j] *= s
			}
		}
		return d
	}
	return map[string]*dataset.Dataset{
		"friedman":       nonlinearRegression(800, 11),
		"friedman-big":   scale(nonlinearRegression(800, 12), 1e6),
		"friedman-tiny":  scale(nonlinearRegression(800, 13), 1e-6),
		"circle":         circleClassification(900, 14),
		"circle-shifted": scale(circleClassification(900, 15), 37.5),
	}
}

func relErr(q, e float64) float64 {
	return math.Abs(q-e) / math.Max(1, math.Abs(e))
}

// TestQuantParityForest: for every seeded scenario, a Quantize-enabled
// forest's batch output must stay within the documented 1e-6 relative
// error of the exact path — either because the quantized kernels honor
// the bound, or because the probe rejected them and the exact path
// serves the batch.
func TestQuantParityForest(t *testing.T) {
	for name, d := range quantScenarios() {
		train, test := d.Split(rand.New(rand.NewSource(21)), 0.8)
		f := &RandomForest{NumTrees: 25, MaxDepth: 8, Task: d.Task, Seed: 7, Quantize: true}
		if err := f.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact := make([]float64, test.Len())
		for i, x := range test.X {
			exact[i] = f.Predict(x)
		}
		// Two batches: the first is the probing batch (served exact), the
		// second exercises whichever path the verdict selected.
		for pass := 0; pass < 2; pass++ {
			got := make([]float64, test.Len())
			f.PredictBatch(test.X, got)
			for i := range got {
				if re := relErr(got[i], exact[i]); re > quantRelTol {
					t.Fatalf("%s pass %d row %d: quantized %v exact %v relerr %v (verdict %d)",
						name, pass, i, got[i], exact[i], re, atomic.LoadInt32(&f.quantVerdict))
				}
			}
		}
		if v := atomic.LoadInt32(&f.quantVerdict); v == quantUnknown {
			t.Fatalf("%s: probe did not run", name)
		}
	}
}

// TestQuantParityGBT is TestQuantParityForest for the boosted ensemble
// (margin accumulation plus the sigmoid link for classification).
func TestQuantParityGBT(t *testing.T) {
	for name, d := range quantScenarios() {
		train, test := d.Split(rand.New(rand.NewSource(22)), 0.8)
		g := &GradientBoosting{NumRounds: 40, MaxDepth: 3, Task: d.Task, Seed: 9, Quantize: true}
		if err := g.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact := make([]float64, test.Len())
		for i, x := range test.X {
			exact[i] = g.Predict(x)
		}
		for pass := 0; pass < 2; pass++ {
			got := make([]float64, test.Len())
			g.PredictBatch(test.X, got)
			for i := range got {
				if re := relErr(got[i], exact[i]); re > quantRelTol {
					t.Fatalf("%s pass %d row %d: quantized %v exact %v relerr %v (verdict %d)",
						name, pass, i, got[i], exact[i], re, atomic.LoadInt32(&g.quantVerdict))
				}
			}
		}
	}
}

// TestQuantDefaultBitExact pins the compatibility contract: with
// Quantize unset (the default), PredictBatch is bit-identical to a
// Predict loop — the quantized plane changes nothing unless opted into.
// The first batch of a Quantize-enabled ensemble (the probing batch)
// must be equally bit-exact.
func TestQuantDefaultBitExact(t *testing.T) {
	for name, d := range quantScenarios() {
		train, test := d.Split(rand.New(rand.NewSource(23)), 0.8)
		f := &RandomForest{NumTrees: 20, MaxDepth: 8, Task: d.Task, Seed: 3}
		if err := f.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := &GradientBoosting{NumRounds: 30, MaxDepth: 3, Task: d.Task, Seed: 4}
		if err := g.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		check := func(kind string, predict func(x []float64) float64, batch func(X [][]float64, out []float64)) {
			got := make([]float64, test.Len())
			batch(test.X, got)
			for i, x := range test.X {
				if want := predict(x); got[i] != want {
					t.Fatalf("%s %s row %d: batch %v predict %v (must be bit-identical)", name, kind, i, got[i], want)
				}
			}
		}
		check("forest-default", f.Predict, f.PredictBatch)
		check("gbt-default", g.Predict, g.PredictBatch)

		fq := &RandomForest{NumTrees: 20, MaxDepth: 8, Task: d.Task, Seed: 3, Quantize: true}
		if err := fq.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		check("forest-probe-batch", fq.Predict, fq.PredictBatch)
	}
}

// TestQuantOverflowFallsBack: thresholds beyond float32 range have no
// quantized form; the ensemble must silently serve exact results.
func TestQuantOverflowFallsBack(t *testing.T) {
	d := dataset.New(dataset.Regression, "x")
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 1e39 // splits land beyond MaxFloat32
		d.Add([]float64{x}, x/1e39)
	}
	f := &RandomForest{NumTrees: 5, MaxDepth: 4, Task: dataset.Regression, Seed: 1, Quantize: true}
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got := make([]float64, d.Len())
		f.PredictBatch(d.X, got)
		for i, x := range d.X {
			if want := f.Predict(x); got[i] != want {
				t.Fatalf("pass %d row %d: %v != exact %v", pass, i, got[i], want)
			}
		}
	}
	if v := atomic.LoadInt32(&f.quantVerdict); v != quantRejected {
		t.Fatalf("verdict = %d, want rejected", v)
	}
}
