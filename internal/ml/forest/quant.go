// Quantized batch inference: the float32/SoA kernel path behind the
// Quantize knob on both ensembles.
//
// The sweep is tree-major over float32 row blocks: each sched worker
// carves a per-block float32 copy of its rows from its arena, then every
// tree's quantized slabs stream over the whole block before the next
// tree is touched — the routing slabs stay hot in cache across rows
// instead of being re-fetched per row. Accumulation is float64
// throughout (leaf values are never narrowed), so the only precision
// loss is the float32 rounding of the input rows; floor-rounded
// thresholds make tree routing exact for those rounded rows (see
// tree.flatTree32).
//
// Accuracy contract: quantized output must stay within quantRelTol
// (1e-6) relative error of the exact path. The first quantized batch is
// served from the exact path while every row is probed against the
// quantized result; any deviation beyond tolerance permanently rejects
// the quantized path for that ensemble (until the next Fit/decode), so
// callers never observe an out-of-contract result.
package forest

import (
	"math"
	"sync/atomic"

	"nfvxai/internal/dataset"
	"nfvxai/internal/sched"
)

const (
	quantUnknown  int32 = 0 // not yet probed
	quantAccepted int32 = 1 // probe passed; quantized path serves batches
	quantRejected int32 = 2 // probe failed; permanent exact fallback

	// quantRelTol is the documented relative-error bound for the
	// quantized path versus exact evaluation.
	quantRelTol = 1e-6

	// quantBlock is the number of rows converted to float32 at a time;
	// bounds each worker's arena to quantBlock·d float32s.
	quantBlock = 128
)

// quantWithin reports |q-e| <= quantRelTol·max(1, |e|).
func quantWithin(q, e float64) bool {
	if q == e {
		return true // covers ±Inf and exact matches
	}
	if q != q || e != e {
		return q != q && e != e // NaN only matches NaN
	}
	return math.Abs(q-e) <= quantRelTol*math.Max(1, math.Abs(e))
}

// probeQuant runs the quantized path over X and compares every row with
// the exact results already in out, storing the verdict. The exact
// results are left untouched, so the probing batch itself is always
// bit-identical to the exact path.
func probeQuant(verdict *int32, X [][]float64, out []float64, quant func(X [][]float64, out []float64) bool) {
	q := make([]float64, len(X))
	if !quant(X, q) {
		storeVerdict(verdict, quantRejected)
		return
	}
	for i := range q {
		if !quantWithin(q[i], out[i]) {
			storeVerdict(verdict, quantRejected)
			return
		}
	}
	storeVerdict(verdict, quantAccepted)
}

func storeVerdict(verdict *int32, v int32) { atomic.StoreInt32(verdict, v) }

// QuantActive reports whether the quantized kernels are serving batches:
// Quantize is set and the parity probe accepted. False both before the
// probing batch and after a rejection, so operators (and benchmarks) can
// tell which path a measurement actually exercised.
func (f *RandomForest) QuantActive() bool {
	return f.Quantize && atomic.LoadInt32(&f.quantVerdict) == quantAccepted
}

// QuantActive mirrors RandomForest.QuantActive.
func (g *GradientBoosting) QuantActive() bool {
	return g.Quantize && atomic.LoadInt32(&g.quantVerdict) == quantAccepted
}

// quantSweep runs the shared tree-major block sweep for one shard:
// out[i] starts at init, accumulates wTree·tree(X[i]) over all trees,
// then finish (may be nil) maps each accumulated value.
func quantSweep(trees []treeAdder32, init, wTree float64, X [][]float64, out []float64, w *sched.Worker, lo, hi int, finish func(float64) float64) {
	d := 0
	if hi > lo {
		d = len(X[lo])
	}
	for blo := lo; blo < hi; blo += quantBlock {
		bhi := blo + quantBlock
		if bhi > hi {
			bhi = hi
		}
		rows := bhi - blo
		xb := w.Floats32(0, rows*d)
		for i := 0; i < rows; i++ {
			row := X[blo+i]
			base := i * d
			for j, v := range row {
				xb[base+j] = float32(v)
			}
		}
		for i := blo; i < bhi; i++ {
			out[i] = init
		}
		for _, t := range trees {
			t.PredictBatchAdd32(xb, rows, d, out[blo:bhi], wTree)
		}
		if finish != nil {
			for i := blo; i < bhi; i++ {
				out[i] = finish(out[i])
			}
		}
	}
}

// treeAdder32 is the slice-element view quantSweep needs of a tree.
type treeAdder32 interface {
	PredictBatchAdd32(xb []float32, rows, stride int, out []float64, w float64) bool
	Quantizable() bool
}

// predictBatchQuant evaluates the forest over the quantized kernels.
// Returns false (leaving out unspecified) when any tree has no
// representable quantized form; the caller falls back to exact.
func (f *RandomForest) predictBatchQuant(X [][]float64, out []float64) bool {
	trees := make([]treeAdder32, len(f.Trees))
	for i, t := range f.Trees {
		if !t.Quantizable() {
			return false
		}
		trees[i] = t
	}
	nt := float64(len(f.Trees))
	shardEnsemble(len(f.Trees), X, func(w *sched.Worker, lo, hi int) {
		quantSweep(trees, 0, 1, X, out, w, lo, hi, func(v float64) float64 { return v / nt })
	})
	return true
}

// predictBatchQuant evaluates the boosted ensemble over the quantized
// kernels: Base + lr·Σtree, through the sigmoid link for classification.
func (g *GradientBoosting) predictBatchQuant(X [][]float64, out []float64) bool {
	trees := make([]treeAdder32, len(g.Trees))
	for i, t := range g.Trees {
		if !t.Quantizable() {
			return false
		}
		trees[i] = t
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	var finish func(float64) float64
	if g.Task == dataset.Classification {
		finish = sigmoid
	}
	shardEnsemble(len(g.Trees), X, func(w *sched.Worker, lo, hi int) {
		quantSweep(trees, g.Base, lr, X, out, w, lo, hi, finish)
	})
	return true
}
