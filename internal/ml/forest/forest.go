// Package forest implements tree ensembles: bagged random forests and
// gradient-boosted trees (squared loss for regression, logistic loss for
// binary classification). Both expose their underlying CART trees so the
// TreeSHAP explainer can attribute ensemble predictions exactly.
package forest

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/sched"
)

// RandomForest is a bootstrap-aggregated ensemble of CART trees with
// per-split feature subsampling.
type RandomForest struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// MaxDepth bounds each tree (default 10).
	MaxDepth int
	// MinLeaf is the per-leaf minimum (default 2).
	MinLeaf int
	// MaxFeatures per split; 0 = sqrt(p) for classification, p/3 for
	// regression (the usual defaults).
	MaxFeatures int
	// Task selects the split criterion and prediction semantics.
	Task dataset.Task
	// Seed drives bootstrap and feature subsampling.
	Seed int64
	// Quantize opts batch prediction into the float32/SoA tree kernels.
	// The first quantized batch is fully parity-checked against the exact
	// path (and served from it); the ensemble permanently falls back to
	// exact evaluation if any probed row deviates by more than
	// quantRelTol relative error. Not serialized: it is a runtime knob,
	// not model state, and it never changes Predict or serialized bytes.
	Quantize bool

	Trees []*tree.Tree

	// quantVerdict is the cached probe outcome (quantUnknown/Accepted/
	// Rejected), accessed atomically. A plain int32 rather than an
	// atomic.Int32 so the struct stays copyable (serialize does *f = nf).
	quantVerdict int32
}

// Fit trains the ensemble on d.
func (f *RandomForest) Fit(d *dataset.Dataset) error {
	if d.Len() == 0 || d.NumFeatures() == 0 {
		return errors.New("forest: empty dataset")
	}
	nTrees := f.NumTrees
	if nTrees <= 0 {
		nTrees = 50
	}
	depth := f.MaxDepth
	if depth <= 0 {
		depth = 10
	}
	minLeaf := f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		p := d.NumFeatures()
		if f.Task == dataset.Classification {
			maxFeat = int(math.Sqrt(float64(p)))
		} else {
			maxFeat = p / 3
		}
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	// Pre-draw every tree's bootstrap sample and split seed from the one
	// forest RNG in the exact order the sequential loop consumed them, so
	// the parallel fit below is bit-identical to sequential fitting at the
	// same Seed.
	rng := rand.New(rand.NewSource(f.Seed + 0x5DEECE66D))
	f.Trees = make([]*tree.Tree, nTrees)
	n := d.Len()
	boot := make([][]int, nTrees)
	seeds := make([]int64, nTrees)
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot[t] = idx
		seeds[t] = rng.Int63()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nTrees {
		workers = nTrees
	}
	var (
		wg     sync.WaitGroup
		next   = make(chan int)
		errMu  sync.Mutex
		fitErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tr := tree.New(tree.Config{
					Task:        f.Task,
					MaxDepth:    depth,
					MinLeaf:     minLeaf,
					MaxFeatures: maxFeat,
					Seed:        seeds[t],
				})
				if err := tr.FitIndices(d, boot[t], nil); err != nil {
					errMu.Lock()
					if fitErr == nil {
						fitErr = err
					}
					errMu.Unlock()
					continue
				}
				f.Trees[t] = tr
			}
		}()
	}
	for t := 0; t < nTrees; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	if fitErr != nil {
		f.Trees = nil
		return fitErr
	}
	atomic.StoreInt32(&f.quantVerdict, quantUnknown) // new trees: re-probe
	return nil
}

// Predict implements ml.Predictor: the mean of tree outputs, which for
// classification trees (leaf value = positive fraction) is the forest's
// probability estimate.
func (f *RandomForest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.Trees))
}

// PredictBatch implements ml.BatchPredictor: rows are sharded over the
// shared sched pool, and each shard sums the trees' flattened batch
// outputs in ensemble order (so every row gets the same addition order —
// and thus bit-identical output — as a Predict loop). With Quantize set
// the float32 kernel path may take over after its parity probe; see
// quant.go.
func (f *RandomForest) PredictBatch(X [][]float64, out []float64) {
	if f.Quantize && len(X) > 0 {
		switch atomic.LoadInt32(&f.quantVerdict) {
		case quantAccepted:
			if f.predictBatchQuant(X, out) {
				return
			}
			atomic.StoreInt32(&f.quantVerdict, quantRejected)
		case quantUnknown:
			f.predictBatchExact(X, out)
			probeQuant(&f.quantVerdict, X, out, f.predictBatchQuant)
			return
		}
	}
	f.predictBatchExact(X, out)
}

func (f *RandomForest) predictBatchExact(X [][]float64, out []float64) {
	shardEnsemble(len(f.Trees), X, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 0
		}
		for _, t := range f.Trees {
			t.PredictBatchAdd(X[lo:hi], out[lo:hi], 1)
		}
		nt := float64(len(f.Trees))
		for i := lo; i < hi; i++ {
			out[i] /= nt
		}
	})
}

// FeatureImportance averages normalized gain importance across trees.
func (f *RandomForest) FeatureImportance() []float64 {
	if len(f.Trees) == 0 {
		return nil
	}
	out := make([]float64, f.Trees[0].NumFeatures())
	for _, t := range f.Trees {
		for j, v := range t.FeatureImportance() {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(f.Trees))
	}
	return out
}

// ComponentTrees implements the treeshap.Ensemble contract: the additive
// decomposition of the model as (trees, per-tree weight, base value).
// A forest is the uniform average of its trees with no offset.
func (f *RandomForest) ComponentTrees() ([]*tree.Tree, []float64, float64) {
	w := make([]float64, len(f.Trees))
	for i := range w {
		w[i] = 1 / float64(len(f.Trees))
	}
	return f.Trees, w, 0
}

// GradientBoosting is a gradient-boosted tree ensemble. For regression it
// minimizes squared loss; for classification it boosts log-odds with
// logistic loss and Newton leaf steps, and Predict returns a probability.
type GradientBoosting struct {
	// NumRounds is the number of boosting rounds (default 100).
	NumRounds int
	// LearningRate is the shrinkage factor (default 0.1).
	LearningRate float64
	// MaxDepth bounds each weak learner (default 3).
	MaxDepth int
	// MinLeaf per-leaf minimum (default 5).
	MinLeaf int
	// Subsample is the row-sampling fraction per round (default 1.0).
	Subsample float64
	// Task selects the loss.
	Task dataset.Task
	// Seed drives subsampling.
	Seed int64
	// Quantize opts batch prediction into the float32/SoA tree kernels;
	// same probe-then-commit contract as RandomForest.Quantize.
	Quantize bool

	Trees []*tree.Tree
	Base  float64 // initial prediction (mean target / prior log-odds)

	// quantVerdict mirrors RandomForest.quantVerdict.
	quantVerdict int32
}

// Fit trains the ensemble on d.
func (g *GradientBoosting) Fit(d *dataset.Dataset) error {
	if d.Len() == 0 || d.NumFeatures() == 0 {
		return errors.New("forest: empty dataset")
	}
	rounds := g.NumRounds
	if rounds <= 0 {
		rounds = 100
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	depth := g.MaxDepth
	if depth <= 0 {
		depth = 3
	}
	minLeaf := g.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 5
	}
	sub := g.Subsample
	if sub <= 0 || sub > 1 {
		sub = 1
	}
	rng := rand.New(rand.NewSource(g.Seed + 0x2545F4914F6CDD1D))
	n := d.Len()

	// Initial score.
	var mean float64
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(n)
	if g.Task == dataset.Classification {
		p := math.Min(math.Max(mean, 1e-6), 1-1e-6)
		g.Base = math.Log(p / (1 - p))
	} else {
		g.Base = mean
	}

	score := make([]float64, n)
	for i := range score {
		score[i] = g.Base
	}
	// residual holds the pseudo-residual targets for the weak learner; we
	// train trees on a view dataset sharing X but with replaced Y.
	residual := make([]float64, n)
	view := &dataset.Dataset{Names: d.Names, X: d.X, Y: residual, Task: dataset.Regression}

	g.Trees = g.Trees[:0]
	sampleSize := int(sub * float64(n))
	if sampleSize < 1 {
		sampleSize = 1
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			if g.Task == dataset.Classification {
				residual[i] = d.Y[i] - sigmoid(score[i])
			} else {
				residual[i] = d.Y[i] - score[i]
			}
		}
		idx := perm
		if sampleSize < n {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			idx = perm[:sampleSize]
		}
		tr := tree.New(tree.Config{
			Task:     dataset.Regression,
			MaxDepth: depth,
			MinLeaf:  minLeaf,
			Seed:     rng.Int63(),
		})
		if err := tr.FitIndices(view, idx, nil); err != nil {
			return err
		}
		if g.Task == dataset.Classification {
			newtonLeaves(tr, d, score, idx)
		}
		for i := 0; i < n; i++ {
			score[i] += lr * tr.Predict(d.X[i])
		}
		g.Trees = append(g.Trees, tr)
	}
	atomic.StoreInt32(&g.quantVerdict, quantUnknown) // new trees: re-probe
	return nil
}

// newtonLeaves replaces each leaf's value with the Newton step
// Σ(y−p) / Σ p(1−p) over the training rows routed to that leaf, the
// standard second-order correction for logistic-loss boosting.
func newtonLeaves(tr *tree.Tree, d *dataset.Dataset, score []float64, idx []int) {
	num := make(map[int]float64)
	den := make(map[int]float64)
	for _, i := range idx {
		leaf := tr.LeafIndex(d.X[i])
		p := sigmoid(score[i])
		num[leaf] += d.Y[i] - p
		den[leaf] += p * (1 - p)
	}
	for leaf, nv := range num {
		dv := den[leaf]
		if dv < 1e-12 {
			dv = 1e-12
		}
		tr.Nodes[leaf].Value = nv / dv
	}
	tr.InvalidateFlat() // leaf values changed under the SoA snapshot
}

// PredictBatch implements ml.BatchPredictor; see RandomForest.PredictBatch
// for the sharding scheme. Accumulation starts at Base and adds the
// shrunk tree outputs in boosting order, matching RawScore exactly.
func (g *GradientBoosting) PredictBatch(X [][]float64, out []float64) {
	if g.Quantize && len(X) > 0 {
		switch atomic.LoadInt32(&g.quantVerdict) {
		case quantAccepted:
			if g.predictBatchQuant(X, out) {
				return
			}
			atomic.StoreInt32(&g.quantVerdict, quantRejected)
		case quantUnknown:
			g.predictBatchExact(X, out)
			probeQuant(&g.quantVerdict, X, out, g.predictBatchQuant)
			return
		}
	}
	g.predictBatchExact(X, out)
}

func (g *GradientBoosting) predictBatchExact(X [][]float64, out []float64) {
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	shardEnsemble(len(g.Trees), X, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = g.Base
		}
		for _, t := range g.Trees {
			t.PredictBatchAdd(X[lo:hi], out[lo:hi], lr)
		}
		if g.Task == dataset.Classification {
			for i := lo; i < hi; i++ {
				out[i] = sigmoid(out[i])
			}
		}
	})
}

// shardEnsemble splits the rows of X into contiguous chunks over the
// shared sched pool. The minimum chunk keeps small batches (or tiny
// ensembles) inline: below ~16k tree·row evaluations the dispatch costs
// more than the traversals.
func shardEnsemble(nTrees int, X [][]float64, eval func(w *sched.Worker, lo, hi int)) {
	minChunk := 1
	if nTrees > 0 {
		if mc := 8192 / nTrees; mc > 1 {
			minChunk = mc
		}
	}
	sched.ParallelFor(len(X), minChunk, eval)
}

// RawScore returns the additive ensemble output before any link function.
func (g *GradientBoosting) RawScore(x []float64) float64 {
	s := g.Base
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	for _, t := range g.Trees {
		s += lr * t.Predict(x)
	}
	return s
}

// Predict implements ml.Predictor. Classification returns P(y=1|x).
func (g *GradientBoosting) Predict(x []float64) float64 {
	s := g.RawScore(x)
	if g.Task == dataset.Classification {
		return sigmoid(s)
	}
	return s
}

// FeatureImportance averages normalized gain importance across rounds.
func (g *GradientBoosting) FeatureImportance() []float64 {
	if len(g.Trees) == 0 {
		return nil
	}
	out := make([]float64, g.Trees[0].NumFeatures())
	for _, t := range g.Trees {
		for j, v := range t.FeatureImportance() {
			out[j] += v
		}
	}
	var total float64
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for j := range out {
			out[j] /= total
		}
	}
	return out
}

// ComponentTrees implements the treeshap.Ensemble contract. The returned
// attribution explains the ensemble's raw (margin) score; for
// classification that is the log-odds, which is the standard output space
// for TreeSHAP on boosted models.
func (g *GradientBoosting) ComponentTrees() ([]*tree.Tree, []float64, float64) {
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	w := make([]float64, len(g.Trees))
	for i := range w {
		w[i] = lr
	}
	return g.Trees, w, g.Base
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
