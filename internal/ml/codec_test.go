package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/wire"
)

// synthDataset builds a small nonlinear dataset for codec round trips.
func synthDataset(task dataset.Task, n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(task, "a", "b", "c", "d")
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := 2*x[0] - x[1]*x[1] + 0.5*x[2] + 0.1*rng.NormFloat64()
		if task == dataset.Classification {
			if y > 0 {
				y = 1
			} else {
				y = 0
			}
		}
		d.Add(x, y)
	}
	return d
}

// trainedModels fits one of every serializable model type.
func trainedModels(t *testing.T) map[string]Predictor {
	t.Helper()
	reg := synthDataset(dataset.Regression, 300, 11)
	cls := synthDataset(dataset.Classification, 300, 12)
	models := map[string]Trainable{
		KindLinearRegression: &linear.Regression{Ridge: 1e-3},
		KindLogistic:         &linear.Logistic{LR: 0.05, Epochs: 40, BatchSize: 32, Seed: 3},
		KindCART:             tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 6, MinLeaf: 3, Seed: 5}),
		KindRandomForest:     &forest.RandomForest{NumTrees: 12, MaxDepth: 6, MinLeaf: 2, Task: dataset.Regression, Seed: 7},
		KindGBT:              &forest.GradientBoosting{NumRounds: 25, LearningRate: 0.1, MaxDepth: 3, Task: dataset.Classification, Seed: 9},
		KindMLP:              &nn.MLP{Hidden: []int{16, 8}, Epochs: 20, BatchSize: 32, Task: dataset.Regression, Seed: 13},
	}
	out := map[string]Predictor{}
	for kind, m := range models {
		ds := reg
		if kind == KindLogistic || kind == KindGBT {
			ds = cls
		}
		if err := m.Fit(ds); err != nil {
			t.Fatalf("fit %s: %v", kind, err)
		}
		out[kind] = m
	}
	return out
}

func TestEncodeDecodeRoundTripBitIdentical(t *testing.T) {
	probe := synthDataset(dataset.Regression, 64, 99).X
	for kind, m := range trainedModels(t) {
		blob, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		loaded, err := DecodeModel(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if got := KindOf(loaded); got != kind {
			t.Fatalf("%s: decoded kind %s", kind, got)
		}
		wantRow := make([]float64, len(probe))
		gotRow := make([]float64, len(probe))
		for i, x := range probe {
			wantRow[i] = m.Predict(x)
			gotRow[i] = loaded.Predict(x)
		}
		for i := range probe {
			if math.Float64bits(wantRow[i]) != math.Float64bits(gotRow[i]) {
				t.Fatalf("%s: Predict row %d: %v != %v (bits differ)", kind, i, gotRow[i], wantRow[i])
			}
		}
		// The batch fast path of the loaded model (rebuilt flat layouts for
		// tree models) must also be bit-identical.
		wantBatch := PredictBatch(m, probe)
		gotBatch := PredictBatch(loaded, probe)
		for i := range probe {
			if math.Float64bits(wantBatch[i]) != math.Float64bits(gotBatch[i]) {
				t.Fatalf("%s: PredictBatch row %d: %v != %v (bits differ)", kind, i, gotBatch[i], wantBatch[i])
			}
		}
		// Double round trip is byte-stable (canonical encoding).
		blob2, err := EncodeModel(loaded)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", kind, err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("%s: re-encoded blob differs (%d vs %d bytes)", kind, len(blob), len(blob2))
		}
	}
}

func TestDecodeModelErrors(t *testing.T) {
	m := &linear.Regression{Weights: []float64{1, 2}, Intercept: 3}
	blob, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeModel(blob[:len(blob)-4]); !errors.Is(err, wire.ErrTruncated) {
		t.Errorf("truncated: err = %v, want wire.ErrTruncated", err)
	}
	if _, err := DecodeModel([]byte("not a model artifact at all")); err == nil {
		t.Error("garbage: expected error")
	}

	var w wire.Writer
	w.String("XXXX")
	if _, err := DecodeModel(w.Bytes()); !errors.Is(err, ErrCorruptModel) {
		t.Errorf("bad magic: err = %v, want ErrCorruptModel", err)
	}

	var w2 wire.Writer
	w2.String("NFVM")
	w2.U16(99)
	if _, err := DecodeModel(w2.Bytes()); !errors.Is(err, ErrCodecVersion) {
		t.Errorf("future version: err = %v, want ErrCodecVersion", err)
	}

	var w3 wire.Writer
	w3.String("NFVM")
	w3.U16(1)
	w3.String("quantum.annealer")
	w3.BytesField(nil)
	if _, err := DecodeModel(w3.Bytes()); !errors.Is(err, ErrUnknownModelKind) {
		t.Errorf("unknown kind: err = %v, want ErrUnknownModelKind", err)
	}

	if _, err := EncodeModel(PredictorFunc(func(x []float64) float64 { return 0 })); !errors.Is(err, ErrUnknownModelKind) {
		t.Errorf("unsupported type: err = %v, want ErrUnknownModelKind", err)
	}
}

func TestDecodeTreeRejectsBadChildLinks(t *testing.T) {
	fit := func() *tree.Tree {
		tr := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 4, Seed: 1})
		if err := tr.Fit(synthDataset(dataset.Regression, 100, 21)); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Every corruption of the node graph must fail decode — not panic
	// later inside flatView/Predict/Depth (these artifacts arrive over
	// POST /v1/models/import).
	cases := map[string]func(*tree.Tree){
		"out of range": func(tr *tree.Tree) { tr.Nodes[0].Left = 1 << 30 },
		"negative":     func(tr *tree.Tree) { tr.Nodes[0].Right = -7 },
		"self loop":    func(tr *tree.Tree) { tr.Nodes[0].Left = 0 },
		"shared child": func(tr *tree.Tree) { tr.Nodes[0].Right = tr.Nodes[0].Left },
		"cycle": func(tr *tree.Tree) {
			// Point a deep interior node back at the root.
			for i := range tr.Nodes {
				if !tr.Nodes[i].IsLeaf() && i > 0 {
					tr.Nodes[i].Left = 0
					return
				}
			}
			t.Skip("tree too small for cycle case")
		},
	}
	for name, corrupt := range cases {
		tr := fit()
		corrupt(tr)
		blob, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var loaded tree.Tree
		if err := loaded.UnmarshalBinary(blob); err == nil {
			t.Errorf("%s: expected structure validation error", name)
		}
	}
}

// TestDecodeRejectsHugeLengthPrefixes: a tiny corrupt blob claiming a
// huge element count must fail with ErrTruncated before allocating.
func TestDecodeRejectsHugeLengthPrefixes(t *testing.T) {
	var w wire.Writer
	w.U16(1)       // dataset codec version
	w.U8(0)        // task
	w.Int(1 << 27) // names: claims 128M strings in a ~30-byte buffer
	w.Int(0)       // (never reached)
	if _, err := dataset.ReadWire(wire.NewReader(w.Bytes())); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("err = %v, want wire.ErrTruncated", err)
	}
}

func TestDatasetWireRoundTrip(t *testing.T) {
	d := synthDataset(dataset.Classification, 50, 33)
	var w wire.Writer
	d.AppendWire(&w)
	got, err := dataset.ReadWire(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != d.Task || got.Len() != d.Len() || len(got.Names) != len(d.Names) {
		t.Fatalf("shape mismatch: %v", got)
	}
	for i, row := range d.X {
		for j, v := range row {
			if math.Float64bits(got.X[i][j]) != math.Float64bits(v) {
				t.Fatalf("X[%d][%d] differs", i, j)
			}
		}
		if math.Float64bits(got.Y[i]) != math.Float64bits(d.Y[i]) {
			t.Fatalf("Y[%d] differs", i)
		}
	}
}
