// Package linear implements linear and logistic models: ordinary/ridge
// least-squares regression (solved exactly via QR / normal equations) and
// L2-regularized logistic regression (fitted with mini-batch Adam). These
// serve both as the paper's interpretable baselines and as the surrogate
// solvers used inside LIME.
package linear

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nfvxai/internal/dataset"
	"nfvxai/internal/mat"
	"nfvxai/internal/sched"
)

// Regression is a linear least-squares model y = wᵀx + b with optional
// ridge penalty on w (the intercept is never penalized, which is achieved
// by centering).
type Regression struct {
	// Ridge is the L2 penalty λ (0 = OLS).
	Ridge float64

	Weights   []float64
	Intercept float64
}

// Fit trains on d. It returns an error for an empty dataset or a singular
// design that even the ridge fallback cannot solve.
func (m *Regression) Fit(d *dataset.Dataset) error {
	n, p := d.Len(), d.NumFeatures()
	if n == 0 || p == 0 {
		return errors.New("linear: empty dataset")
	}
	// Center features and target so the intercept drops out of the solve
	// and the ridge penalty does not shrink it.
	xm := make([]float64, p)
	for _, row := range d.X {
		for j, v := range row {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(n)
	}
	var ym float64
	for _, y := range d.Y {
		ym += y
	}
	ym /= float64(n)

	a := mat.NewDense(n, p)
	b := make([]float64, n)
	for i, row := range d.X {
		ar := a.Row(i)
		for j, v := range row {
			ar[j] = v - xm[j]
		}
		b[i] = d.Y[i] - ym
	}
	w, err := mat.SolveRidge(a, b, m.Ridge)
	if err != nil {
		return fmt.Errorf("linear: solve failed: %w", err)
	}
	m.Weights = w
	m.Intercept = ym - mat.Dot(w, xm)
	return nil
}

// Predict implements ml.Predictor.
func (m *Regression) Predict(x []float64) float64 {
	return mat.Dot(m.Weights, x) + m.Intercept
}

// PredictBatch implements ml.BatchPredictor: a mat-vec sweep X·w + b,
// sharded over the shared sched pool for large batches (rows are
// independent dot products, so output stays bit-identical to Predict).
func (m *Regression) PredictBatch(X [][]float64, out []float64) {
	sched.ParallelFor(len(X), 256, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = mat.Dot(m.Weights, X[i]) + m.Intercept
		}
	})
}

// Gradient returns ∂Predict/∂x = w (constant for a linear model), making
// the model differentiable for gradient-based explainers (intgrad).
func (m *Regression) Gradient(x []float64) []float64 {
	return append([]float64(nil), m.Weights...)
}

// Logistic is a binary logistic-regression model producing P(y=1|x),
// fitted with mini-batch Adam on the L2-regularized cross-entropy.
type Logistic struct {
	// L2 is the weight penalty; LR the Adam step size; Epochs the number of
	// passes; BatchSize the mini-batch size (0 = full batch); Seed the
	// shuffling seed.
	L2        float64
	LR        float64
	Epochs    int
	BatchSize int
	Seed      int64

	Weights   []float64
	Intercept float64
}

// Fit trains on d; labels must be in {0, 1}.
func (m *Logistic) Fit(d *dataset.Dataset) error {
	n, p := d.Len(), d.NumFeatures()
	if n == 0 || p == 0 {
		return errors.New("linear: empty dataset")
	}
	lr := m.LR
	if lr == 0 {
		lr = 0.05
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	batch := m.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}
	rng := rand.New(rand.NewSource(m.Seed + 1))

	w := make([]float64, p)
	var b float64
	// Adam state.
	mw := make([]float64, p)
	vw := make([]float64, p)
	var mb, vb float64
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	gw := make([]float64, p)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			for j := range gw {
				gw[j] = 0
			}
			var gb float64
			for _, i := range order[start:end] {
				x := d.X[i]
				z := mat.Dot(w, x) + b
				pHat := sigmoid(z)
				g := pHat - d.Y[i]
				for j, v := range x {
					gw[j] += g * v
				}
				gb += g
			}
			inv := 1 / float64(end-start)
			step++
			c1 := 1 - math.Pow(beta1, float64(step))
			c2 := 1 - math.Pow(beta2, float64(step))
			for j := range w {
				g := gw[j]*inv + m.L2*w[j]
				mw[j] = beta1*mw[j] + (1-beta1)*g
				vw[j] = beta2*vw[j] + (1-beta2)*g*g
				w[j] -= lr * (mw[j] / c1) / (math.Sqrt(vw[j]/c2) + eps)
			}
			g := gb * inv
			mb = beta1*mb + (1-beta1)*g
			vb = beta2*vb + (1-beta2)*g*g
			b -= lr * (mb / c1) / (math.Sqrt(vb/c2) + eps)
		}
	}
	m.Weights = w
	m.Intercept = b
	return nil
}

// Predict implements ml.Predictor, returning P(y=1|x).
func (m *Logistic) Predict(x []float64) float64 {
	return sigmoid(mat.Dot(m.Weights, x) + m.Intercept)
}

// PredictBatch implements ml.BatchPredictor: a mat-vec sweep through the
// link function, sharded like Regression.PredictBatch.
func (m *Logistic) PredictBatch(X [][]float64, out []float64) {
	sched.ParallelFor(len(X), 256, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = sigmoid(mat.Dot(m.Weights, X[i]) + m.Intercept)
		}
	})
}

// Gradient returns ∂P(y=1|x)/∂x = p(1−p)·w, making the model
// differentiable for gradient-based explainers (intgrad).
func (m *Logistic) Gradient(x []float64) []float64 {
	p := m.Predict(x)
	out := make([]float64, len(m.Weights))
	for j, w := range m.Weights {
		out[j] = p * (1 - p) * w
	}
	return out
}

func sigmoid(z float64) float64 {
	// Numerically stable in both tails.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
