package linear

import (
	"fmt"

	"nfvxai/internal/wire"
)

// linearCodecVersion is bumped whenever either model's layout changes.
const linearCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: the ridge penalty
// and the fitted coefficients, bit-exact.
func (m *Regression) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(linearCodecVersion)
	w.F64(m.Ridge)
	w.F64(m.Intercept)
	w.F64s(m.Weights)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous state.
func (m *Regression) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != linearCodecVersion {
		return fmt.Errorf("linear: codec version %d, want %d", v, linearCodecVersion)
	}
	nm := Regression{Ridge: r.F64(), Intercept: r.F64(), Weights: r.F64s()}
	if err := r.Err(); err != nil {
		return fmt.Errorf("linear: decode: %w", err)
	}
	*m = nm
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the training
// hyperparameters (so a loaded model can be refit identically) and the
// fitted coefficients, bit-exact.
func (m *Logistic) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(linearCodecVersion)
	w.F64(m.L2)
	w.F64(m.LR)
	w.Int(m.Epochs)
	w.Int(m.BatchSize)
	w.I64(m.Seed)
	w.F64(m.Intercept)
	w.F64s(m.Weights)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous state.
func (m *Logistic) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != linearCodecVersion {
		return fmt.Errorf("linear: codec version %d, want %d", v, linearCodecVersion)
	}
	nm := Logistic{
		L2:        r.F64(),
		LR:        r.F64(),
		Epochs:    r.Int(),
		BatchSize: r.Int(),
		Seed:      r.I64(),
		Intercept: r.F64(),
		Weights:   r.F64s(),
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("linear: decode: %w", err)
	}
	*m = nm
	return nil
}
