package linear

import (
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/metrics"
)

func TestRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(dataset.Regression, "x1", "x2", "x3")
	for i := 0; i < 500; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := 3*x[0] - 2*x[1] + 0.5*x[2] + 7
		d.Add(x, y)
	}
	var m Regression
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for j, w := range want {
		if math.Abs(m.Weights[j]-w) > 1e-8 {
			t.Fatalf("w[%d] = %v want %v", j, m.Weights[j], w)
		}
	}
	if math.Abs(m.Intercept-7) > 1e-8 {
		t.Fatalf("intercept = %v", m.Intercept)
	}
}

func TestRegressionWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.New(dataset.Regression, "x1", "x2")
	for i := 0; i < 2000; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, 2*x[0]-x[1]+rng.NormFloat64()*0.1)
	}
	var m Regression
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 0.02 || math.Abs(m.Weights[1]+1) > 0.02 {
		t.Fatalf("weights = %v", m.Weights)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = m.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.99 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestRegressionRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(dataset.Regression, "x1", "x2")
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, 5*x[0]+5*x[1])
	}
	m0 := Regression{}
	m1 := Regression{Ridge: 1000}
	if err := m0.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m1.Fit(d); err != nil {
		t.Fatal(err)
	}
	n0 := math.Hypot(m0.Weights[0], m0.Weights[1])
	n1 := math.Hypot(m1.Weights[0], m1.Weights[1])
	if n1 >= n0 {
		t.Fatalf("ridge did not shrink: %v vs %v", n1, n0)
	}
}

func TestRegressionCollinearFallback(t *testing.T) {
	// Duplicate columns: OLS normal equations are singular, but the ridge
	// path or QR fallback should still error out cleanly rather than panic.
	d := dataset.New(dataset.Regression, "a", "b")
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		v := rng.NormFloat64()
		d.Add([]float64{v, v}, 2*v)
	}
	var m Regression
	err := m.Fit(d)
	if err == nil {
		// If a solution is produced it must at least predict well.
		pred := make([]float64, d.Len())
		for i, x := range d.X {
			pred[i] = m.Predict(x)
		}
		if r2 := metrics.R2(pred, d.Y); r2 < 0.99 {
			t.Fatalf("collinear fit bad R2 %v", r2)
		}
	}
	// Ridge always solves it.
	mr := Regression{Ridge: 0.1}
	if err := mr.Fit(d); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionEmptyError(t *testing.T) {
	var m Regression
	if err := m.Fit(dataset.New(dataset.Regression, "x")); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestLogisticSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.New(dataset.Classification, "x1", "x2")
	for i := 0; i < 600; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		d.Add(x, y)
	}
	m := Logistic{LR: 0.1, Epochs: 150, BatchSize: 64}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, d.Len())
	for i, x := range d.X {
		prob[i] = m.Predict(x)
	}
	rep := metrics.EvalClassification("logit", prob, d.Y)
	if rep.Accuracy < 0.97 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}
	if rep.AUC < 0.99 {
		t.Fatalf("AUC = %v", rep.AUC)
	}
}

func TestLogisticProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := dataset.New(dataset.Classification, "x")
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64()
		y := 0.0
		if x > 0 {
			y = 1
		}
		d.Add([]float64{x}, y)
	}
	m := Logistic{Epochs: 100}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-100, -1, 0, 1, 100} {
		p := m.Predict([]float64{v})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("P(%v) = %v out of range", v, p)
		}
	}
	// Monotone in the informative feature.
	if m.Predict([]float64{-3}) >= m.Predict([]float64{3}) {
		t.Fatal("logistic not monotone in informative feature")
	}
}

func TestLogisticL2Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := dataset.New(dataset.Classification, "x")
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()
		y := 0.0
		if x > 0 {
			y = 1
		}
		d.Add([]float64{x}, y)
	}
	m0 := Logistic{Epochs: 300}
	m1 := Logistic{Epochs: 300, L2: 1}
	if err := m0.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m1.Fit(d); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.Weights[0]) >= math.Abs(m0.Weights[0]) {
		t.Fatalf("L2 did not shrink: %v vs %v", m1.Weights[0], m0.Weights[0])
	}
}

func TestLogisticDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := dataset.New(dataset.Classification, "x1", "x2")
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0] > x[1] {
			y = 1
		}
		d.Add(x, y)
	}
	a := Logistic{Seed: 42, Epochs: 50, BatchSize: 16}
	b := Logistic{Seed: 42, Epochs: 50, BatchSize: 16}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestLogisticEmptyError(t *testing.T) {
	var m Logistic
	if err := m.Fit(dataset.New(dataset.Classification, "x")); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestSigmoidStable(t *testing.T) {
	if v := sigmoid(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	if v := sigmoid(0); v != 0.5 {
		t.Fatalf("sigmoid(0) = %v", v)
	}
	// Symmetry: sigmoid(-z) == 1 - sigmoid(z).
	for _, z := range []float64{0.1, 1, 5, 20} {
		if math.Abs(sigmoid(-z)-(1-sigmoid(z))) > 1e-15 {
			t.Fatalf("sigmoid asymmetric at %v", z)
		}
	}
}
