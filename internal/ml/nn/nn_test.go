package nn

import (
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/metrics"
)

func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(dataset.Regression, "a", "b")
	for i := 0; i < 800; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, 2*x[0]-3*x[1]+1)
	}
	m := MLP{Hidden: []int{16}, Epochs: 120, Task: dataset.Regression, Seed: 2}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = m.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.99 {
		t.Fatalf("linear R2 = %v", r2)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(dataset.Classification, "a", "b")
	for i := 0; i < 1200; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if (x[0] > 0) != (x[1] > 0) {
			y = 1
		}
		d.Add(x, y)
	}
	m := MLP{Hidden: []int{16, 8}, Epochs: 200, Task: dataset.Classification, Seed: 4}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, d.Len())
	for i, x := range d.X {
		prob[i] = m.Predict(x)
		if prob[i] < 0 || prob[i] > 1 {
			t.Fatalf("probability %v", prob[i])
		}
	}
	rep := metrics.EvalClassification("mlp", prob, d.Y)
	if rep.Accuracy < 0.95 {
		t.Fatalf("XOR accuracy = %v", rep.Accuracy)
	}
}

func TestMLPNonlinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*4 - 2
		d.Add([]float64{x}, math.Sin(2*x))
	}
	m := MLP{Hidden: []int{32, 16}, Epochs: 300, Task: dataset.Regression, Seed: 6}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = m.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.97 {
		t.Fatalf("sine R2 = %v", r2)
	}
}

func TestMLPTanhActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 600; i++ {
		x := rng.NormFloat64()
		d.Add([]float64{x}, x*x)
	}
	m := MLP{Hidden: []int{24}, Act: Tanh, Epochs: 300, Task: dataset.Regression, Seed: 8}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, d.Len())
	for i, x := range d.X {
		pred[i] = m.Predict(x)
	}
	if r2 := metrics.R2(pred, d.Y); r2 < 0.9 {
		t.Fatalf("tanh quadratic R2 = %v", r2)
	}
}

func TestMLPDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64()
		d.Add([]float64{v}, v)
	}
	a := MLP{Hidden: []int{8}, Epochs: 20, Task: dataset.Regression, Seed: 99}
	b := MLP{Hidden: []int{8}, Epochs: 20, Task: dataset.Regression, Seed: 99}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := []float64{rng.NormFloat64()}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestMLPErrors(t *testing.T) {
	var m MLP
	if err := m.Fit(dataset.New(dataset.Regression, "x")); err == nil {
		t.Fatal("expected empty-dataset error")
	}
	bad := MLP{Hidden: []int{0}}
	d := dataset.New(dataset.Regression, "x")
	d.Add([]float64{1}, 1)
	if err := bad.Fit(d); err == nil {
		t.Fatal("expected invalid-width error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic predicting before Fit")
			}
		}()
		(&MLP{}).Predict([]float64{1})
	}()
}

func TestMLPPredictWidthPanics(t *testing.T) {
	d := dataset.New(dataset.Regression, "a", "b")
	d.Add([]float64{1, 2}, 3)
	d.Add([]float64{2, 3}, 5)
	m := MLP{Hidden: []int{4}, Epochs: 5, Task: dataset.Regression}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input width")
		}
	}()
	m.Predict([]float64{1})
}

func TestMLPNumParams(t *testing.T) {
	d := dataset.New(dataset.Regression, "a", "b", "c")
	for i := 0; i < 10; i++ {
		d.Add([]float64{1, 2, 3}, 1)
	}
	m := MLP{Hidden: []int{5}, Epochs: 1, Task: dataset.Regression}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	// (3+1)*5 + (5+1)*1 = 26.
	if got := m.NumParams(); got != 26 {
		t.Fatalf("NumParams = %d want 26", got)
	}
}

func TestMLPL2Regularizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64()
		d.Add([]float64{v}, 5*v)
	}
	free := MLP{Hidden: []int{8}, Epochs: 100, Task: dataset.Regression, Seed: 1}
	reg := MLP{Hidden: []int{8}, Epochs: 100, Task: dataset.Regression, Seed: 1, L2: 0.5}
	if err := free.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := reg.Fit(d); err != nil {
		t.Fatal(err)
	}
	norm := func(m *MLP) float64 {
		var s float64
		for _, w := range m.weights {
			for _, v := range w {
				s += v * v
			}
		}
		return s
	}
	if norm(&reg) >= norm(&free) {
		t.Fatalf("L2 did not shrink weights: %v vs %v", norm(&reg), norm(&free))
	}
}
