// Package nn implements a multilayer perceptron trained with mini-batch
// Adam: linear output + squared loss for regression, sigmoid output +
// cross-entropy for binary classification. It is the "black box" model of
// the paper — the one whose predictions most need post-hoc explanation.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nfvxai/internal/dataset"
	"nfvxai/internal/sched"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// ReLU is max(0, x).
	ReLU Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
)

// MLP is a fully connected feed-forward network.
type MLP struct {
	// Hidden lists hidden-layer widths (default [32, 16]).
	Hidden []int
	// Act is the hidden activation (default ReLU).
	Act Activation
	// LR is the Adam step size (default 0.01).
	LR float64
	// Epochs is the number of passes (default 200).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// L2 is the weight decay coefficient.
	L2 float64
	// Task selects the output unit and loss.
	Task dataset.Task
	// Seed drives initialization and shuffling.
	Seed int64

	// weights[l] is an (in+1)×out matrix (last row is the bias) mapping
	// layer l activations to layer l+1 pre-activations.
	weights [][]float64
	dims    []int // layer widths including input and output
}

// Fit trains the network on d, replacing any previous parameters.
func (m *MLP) Fit(d *dataset.Dataset) error {
	n, p := d.Len(), d.NumFeatures()
	if n == 0 || p == 0 {
		return errors.New("nn: empty dataset")
	}
	hidden := m.Hidden
	if len(hidden) == 0 {
		hidden = []int{32, 16}
	}
	for _, h := range hidden {
		if h <= 0 {
			return fmt.Errorf("nn: invalid hidden width %d", h)
		}
	}
	lr := m.LR
	if lr == 0 {
		lr = 0.01
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	batch := m.BatchSize
	if batch <= 0 || batch > n {
		batch = 32
		if batch > n {
			batch = n
		}
	}

	m.dims = append(append([]int{p}, hidden...), 1)
	rng := rand.New(rand.NewSource(m.Seed + 0x1F123BB5))
	m.weights = make([][]float64, len(m.dims)-1)
	for l := range m.weights {
		in, out := m.dims[l], m.dims[l+1]
		w := make([]float64, (in+1)*out)
		// He/Xavier-style initialization.
		scale := math.Sqrt(2 / float64(in))
		if m.Act == Tanh {
			scale = math.Sqrt(1 / float64(in))
		}
		for i := 0; i < in*out; i++ {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights[l] = w
	}

	// Adam state.
	mw := make([][]float64, len(m.weights))
	vw := make([][]float64, len(m.weights))
	gw := make([][]float64, len(m.weights))
	for l := range m.weights {
		mw[l] = make([]float64, len(m.weights[l]))
		vw[l] = make([]float64, len(m.weights[l]))
		gw[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	acts := m.newActivations()
	deltas := m.newDeltas()
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			for l := range gw {
				for i := range gw[l] {
					gw[l][i] = 0
				}
			}
			for _, i := range order[start:end] {
				m.backprop(d.X[i], d.Y[i], acts, deltas, gw)
			}
			inv := 1 / float64(end-start)
			step++
			c1 := 1 - math.Pow(beta1, float64(step))
			c2 := 1 - math.Pow(beta2, float64(step))
			for l := range m.weights {
				w := m.weights[l]
				for i := range w {
					g := gw[l][i]*inv + m.L2*w[i]
					mw[l][i] = beta1*mw[l][i] + (1-beta1)*g
					vw[l][i] = beta2*vw[l][i] + (1-beta2)*g*g
					w[i] -= lr * (mw[l][i] / c1) / (math.Sqrt(vw[l][i]/c2) + eps)
				}
			}
		}
	}
	return nil
}

func (m *MLP) newActivations() [][]float64 {
	acts := make([][]float64, len(m.dims))
	for l, w := range m.dims {
		acts[l] = make([]float64, w)
	}
	return acts
}

func (m *MLP) newDeltas() [][]float64 {
	deltas := make([][]float64, len(m.dims))
	for l, w := range m.dims {
		deltas[l] = make([]float64, w)
	}
	return deltas
}

// forward fills acts with layer activations for input x and returns the
// raw output (pre-link).
func (m *MLP) forward(x []float64, acts [][]float64) float64 {
	copy(acts[0], x)
	for l, w := range m.weights {
		in, out := m.dims[l], m.dims[l+1]
		src := acts[l]
		dst := acts[l+1]
		last := l == len(m.weights)-1
		for j := 0; j < out; j++ {
			z := w[in*out+j] // bias row
			for i := 0; i < in; i++ {
				z += src[i] * w[i*out+j]
			}
			if last {
				dst[j] = z
			} else {
				dst[j] = m.activate(z)
			}
		}
	}
	return acts[len(acts)-1][0]
}

func (m *MLP) activate(z float64) float64 {
	if m.Act == Tanh {
		return math.Tanh(z)
	}
	if z > 0 {
		return z
	}
	return 0
}

// activateGrad returns the derivative given the *activation value* a.
func (m *MLP) activateGrad(a float64) float64 {
	if m.Act == Tanh {
		return 1 - a*a
	}
	if a > 0 {
		return 1
	}
	return 0
}

// backprop accumulates gradients for one example into gw.
func (m *MLP) backprop(x []float64, y float64, acts, deltas [][]float64, gw [][]float64) {
	raw := m.forward(x, acts)
	// Output delta: both squared loss (linear output) and cross-entropy
	// (sigmoid output) reduce to (prediction − target) on the raw score.
	var outDelta float64
	if m.Task == dataset.Classification {
		outDelta = sigmoid(raw) - y
	} else {
		outDelta = raw - y
	}
	L := len(m.weights)
	deltas[L][0] = outDelta
	for l := L - 1; l >= 0; l-- {
		in, out := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		src := acts[l]
		dl := deltas[l+1]
		g := gw[l]
		for j := 0; j < out; j++ {
			dj := dl[j]
			if dj == 0 {
				continue
			}
			for i := 0; i < in; i++ {
				g[i*out+j] += src[i] * dj
			}
			g[in*out+j] += dj
		}
		if l > 0 {
			prev := deltas[l]
			for i := 0; i < in; i++ {
				var s float64
				for j := 0; j < out; j++ {
					s += w[i*out+j] * dl[j]
				}
				prev[i] = s * m.activateGrad(src[i])
			}
		}
	}
}

// Predict implements ml.Predictor: the regression value, or P(y=1|x) for
// classification.
func (m *MLP) Predict(x []float64) float64 {
	if len(m.weights) == 0 {
		panic("nn: Predict before Fit")
	}
	if len(x) != m.dims[0] {
		panic(fmt.Sprintf("nn: input width %d != %d", len(x), m.dims[0]))
	}
	acts := m.newActivations()
	raw := m.forward(x, acts)
	if m.Task == dataset.Classification {
		return sigmoid(raw)
	}
	return raw
}

// batchChunk bounds the rows processed per layer-wise sweep so the two
// activation buffers stay cache-resident regardless of batch size.
const batchChunk = 512

// PredictBatch implements ml.BatchPredictor with a layer-wise forward
// pass: instead of allocating a fresh activation stack per row (what
// Predict does), each chunk advances through each weight matrix together
// — one matrix-matrix product per layer over two reused buffers. Chunks
// are distributed over the shared sched pool, with the two activation
// buffers carved from each worker's arena so steady-state batches stop
// allocating. Rows are independent and each chunk writes only its own
// out range, so outputs stay bit-identical to Predict regardless of
// worker count.
func (m *MLP) PredictBatch(X [][]float64, out []float64) {
	if len(m.weights) == 0 {
		panic("nn: PredictBatch before Fit")
	}
	maxDim := 0
	for _, w := range m.dims {
		if w > maxDim {
			maxDim = w
		}
	}
	sched.ParallelFor(len(X), batchChunk, func(wk *sched.Worker, plo, phi int) {
		cur := wk.Floats(0, batchChunk*maxDim)
		nxt := wk.Floats(1, batchChunk*maxDim)
		for lo := plo; lo < phi; lo += batchChunk {
			hi := lo + batchChunk
			if hi > phi {
				hi = phi
			}
			rows := hi - lo
			for r := 0; r < rows; r++ {
				x := X[lo+r]
				if len(x) != m.dims[0] {
					panic(fmt.Sprintf("nn: input width %d != %d", len(x), m.dims[0]))
				}
				copy(cur[r*maxDim:], x)
			}
			for l, w := range m.weights {
				in, outW := m.dims[l], m.dims[l+1]
				last := l == len(m.weights)-1
				for r := 0; r < rows; r++ {
					src := cur[r*maxDim : r*maxDim+in]
					dst := nxt[r*maxDim : r*maxDim+outW]
					for j := 0; j < outW; j++ {
						z := w[in*outW+j] // bias row
						for i := 0; i < in; i++ {
							z += src[i] * w[i*outW+j]
						}
						if last {
							dst[j] = z
						} else {
							dst[j] = m.activate(z)
						}
					}
				}
				cur, nxt = nxt, cur
			}
			for r := 0; r < rows; r++ {
				raw := cur[r*maxDim]
				if m.Task == dataset.Classification {
					raw = sigmoid(raw)
				}
				out[lo+r] = raw
			}
		}
	})
}

// Gradient returns ∂Predict/∂x at x — for classification the gradient of
// the output probability. It backpropagates a unit output delta down to
// the input layer; gradient-based explainers (integrated gradients,
// saliency) consume this.
func (m *MLP) Gradient(x []float64) []float64 {
	if len(m.weights) == 0 {
		panic("nn: Gradient before Fit")
	}
	if len(x) != m.dims[0] {
		panic(fmt.Sprintf("nn: input width %d != %d", len(x), m.dims[0]))
	}
	acts := m.newActivations()
	raw := m.forward(x, acts)
	deltas := m.newDeltas()
	L := len(m.weights)
	if m.Task == dataset.Classification {
		p := sigmoid(raw)
		deltas[L][0] = p * (1 - p)
	} else {
		deltas[L][0] = 1
	}
	for l := L - 1; l >= 0; l-- {
		in, out := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		src := acts[l]
		dl := deltas[l+1]
		prev := deltas[l]
		for i := 0; i < in; i++ {
			var s float64
			for j := 0; j < out; j++ {
				s += w[i*out+j] * dl[j]
			}
			if l > 0 {
				s *= m.activateGrad(src[i])
			}
			prev[i] = s
		}
	}
	return append([]float64(nil), deltas[0]...)
}

// InputDim returns the input width the fitted network expects (0 before
// Fit). The artifact plane validates loaded models against their
// embedded dataset schema with this.
func (m *MLP) InputDim() int {
	if len(m.dims) == 0 {
		return 0
	}
	return m.dims[0]
}

// NumParams returns the trainable parameter count.
func (m *MLP) NumParams() int {
	c := 0
	for _, w := range m.weights {
		c += len(w)
	}
	return c
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
