package nn

import (
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/wire"
)

// nnCodecVersion is bumped whenever the encoded layout changes.
const nnCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: architecture,
// training hyperparameters and every weight matrix, bit-exact.
func (m *MLP) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U16(nnCodecVersion)
	w.Ints(m.Hidden)
	w.U8(uint8(m.Act))
	w.F64(m.LR)
	w.Int(m.Epochs)
	w.Int(m.BatchSize)
	w.F64(m.L2)
	w.U8(uint8(m.Task))
	w.I64(m.Seed)
	w.Ints(m.dims)
	w.Int(len(m.weights))
	for _, layer := range m.weights {
		w.F64s(layer)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing any
// previous parameters. The layer shapes are validated against dims so a
// corrupted blob fails here instead of panicking inside forward.
func (m *MLP) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U16(); r.Err() == nil && v != nnCodecVersion {
		return fmt.Errorf("nn: codec version %d, want %d", v, nnCodecVersion)
	}
	nm := MLP{
		Hidden:    r.Ints(),
		Act:       Activation(r.U8()),
		LR:        r.F64(),
		Epochs:    r.Int(),
		BatchSize: r.Int(),
		L2:        r.F64(),
		Task:      dataset.Task(r.U8()),
		Seed:      r.I64(),
		dims:      r.Ints(),
	}
	nLayers := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	// Each layer carries at least an 8-byte length prefix; bound the
	// allocation by the bytes actually present.
	if nLayers < 0 || nLayers > wire.MaxLen || r.Remaining() < nLayers*8 {
		return fmt.Errorf("nn: decode: %w", wire.ErrTruncated)
	}
	weights := make([][]float64, nLayers)
	for l := range weights {
		weights[l] = r.F64s()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	// Fit keeps len(dims) == len(weights)+1 (and both empty before Fit);
	// an unfit blob with free-standing dims would otherwise report an
	// arbitrary InputDim that callers size predict buffers from.
	if nLayers == 0 && len(nm.dims) != 0 {
		return fmt.Errorf("nn: decode: 0 layers but %d dims: %w", len(nm.dims), wire.ErrTruncated)
	}
	if nLayers > 0 {
		if len(nm.dims) != nLayers+1 {
			return fmt.Errorf("nn: decode: %d layers but %d dims: %w", nLayers, len(nm.dims), wire.ErrTruncated)
		}
		for l, layer := range weights {
			in, out := nm.dims[l], nm.dims[l+1]
			if in <= 0 || out <= 0 || len(layer) != (in+1)*out {
				return fmt.Errorf("nn: decode: layer %d has %d weights, want (%d+1)*%d: %w",
					l, len(layer), in, out, wire.ErrTruncated)
			}
		}
	}
	nm.weights = weights
	*m = nm
	return nil
}
