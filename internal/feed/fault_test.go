package feed

import (
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFaultStallSilencesFeed(t *testing.T) {
	h := NewHub()
	defer h.CloseAll()
	// StallProb 1: every fault draw stalls, so after the first tick the
	// feed is permanently silent (each stall ends into another stall).
	f, err := h.Open("stalling", tinySpec(), Options{
		Simulate: true, Rate: 86400,
		Fault: &Fault{StallProb: 1, StallTicks: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return f.Stats().Stalls >= 2 }, "stalls")
	st := f.Stats()
	if st.SimEpochs != 0 {
		// The very first tick already stalls (the fault draw precedes the
		// world step), so a fully stalled feed publishes nothing.
		t.Fatalf("stats = %+v; a StallProb=1 feed must publish no epochs", st)
	}
}

func TestFaultBurstFloodsSubscribers(t *testing.T) {
	h := NewHub()
	defer h.CloseAll()
	// BurstProb 1 with a tiny subscriber buffer: every tick replays the
	// full catch-up step, flooding the buffer and forcing drops — the
	// exact overload the serving plane must absorb.
	f, err := h.Open("bursting", tinySpec(), Options{
		Simulate: true, Rate: 60, Buffer: 1,
		Fault: &Fault{BurstProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cancel, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitFor(t, 2*time.Second, func() bool {
		st := f.Stats()
		return st.Bursts >= 2 && st.Dropped > 0
	}, "bursts and dropped records")
	if st := f.Stats(); st.SimEpochs == 0 {
		t.Fatalf("stats = %+v; bursts must still publish records", st)
	}
}

func TestFaultFreeFeedUnchanged(t *testing.T) {
	h := NewHub()
	defer h.CloseAll()
	f, err := h.Open("plain", tinySpec(), Options{Simulate: true, Rate: 86400})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return f.Stats().SimEpochs >= 3 }, "epochs")
	if st := f.Stats(); st.Stalls != 0 || st.Bursts != 0 {
		t.Fatalf("stats = %+v; fault counters must stay zero without Fault", st)
	}
}
