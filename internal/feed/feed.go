// Package feed is the streaming data plane: named live telemetry feeds
// that fan telemetry.Record streams out to subscribers over channels. A
// feed is either driven by the discrete-event simulator — a registered
// scenario's sim.World advanced continuously on a background goroutine,
// throttled so virtual time tracks wall time at a configurable rate — or
// fed externally through Ingest with records in the same wire schema, so
// real infrastructure telemetry can replace the simulator without touching
// anything downstream. Monitors (monitor.go) attach models to feeds for
// online prediction scoring and drift detection (drift.go); the serving
// layer rides the same subscriptions for SSE explanation streams.
package feed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
)

// ErrFeedExists reports an Open for a name already in use.
var ErrFeedExists = errors.New("feed already exists")

// ErrFeedNotFound reports a lookup of an unknown feed.
var ErrFeedNotFound = errors.New("feed not found")

// ErrFeedClosed reports an operation against a closed feed.
var ErrFeedClosed = errors.New("feed closed")

// ErrTooManyFeeds reports an Open against a hub at its Max.
var ErrTooManyFeeds = errors.New("too many feeds")

// Options configures one feed.
type Options struct {
	// Simulate drives the feed from the scenario's simulated world; false
	// makes the feed ingest-only (external records via Ingest).
	Simulate bool `json:"simulate"`
	// Seed perturbs the simulated traffic (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Rate is virtual seconds advanced per wall second (default 60: one
	// virtual minute per second, i.e. a 5 s epoch record every ~83 ms).
	Rate float64 `json:"rate,omitempty"`
	// Buffer is the per-subscriber channel depth (default 256). A slow
	// subscriber drops records rather than stalling the feed.
	Buffer int `json:"buffer,omitempty"`
	// Fault, when set on a simulated feed, injects delivery faults —
	// stalls and burst floods — for resilience testing (chaos suite).
	Fault *Fault `json:"fault,omitempty"`
}

// Fault configures deterministic fault injection on a simulated feed:
// each simulator tick may start a stall (the feed goes silent, then the
// catch-up cap bounds the replay) or a burst (the tick replays the
// maximum catch-up step at once, flooding subscribers). Faults draw from
// their own seeded stream, so a given seed and tick count always injects
// the same fault sequence.
type Fault struct {
	// StallProb is the per-tick probability of starting a stall.
	StallProb float64 `json:"stall_prob,omitempty"`
	// StallTicks is how many ticks a stall silences (default 5).
	StallTicks int `json:"stall_ticks,omitempty"`
	// BurstProb is the per-tick probability of a catch-up burst.
	BurstProb float64 `json:"burst_prob,omitempty"`
}

// MaxRate bounds how fast a simulated feed may run (one virtual day per
// wall second) — the cap on background CPU one POST /v1/feeds can demand.
const MaxRate = 86400.0

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Rate == 0 {
		o.Rate = 60
	}
	if o.Buffer <= 0 {
		o.Buffer = 256
	}
	return o
}

// Stats is a point-in-time snapshot of one feed's throughput counters.
type Stats struct {
	// Records counts everything published (simulated + ingested).
	Records uint64 `json:"records"`
	// Ingested counts externally ingested records.
	Ingested uint64 `json:"ingested"`
	// SimEpochs counts simulator-produced records.
	SimEpochs uint64 `json:"sim_epochs"`
	// Dropped counts per-subscriber deliveries lost to full buffers.
	Dropped uint64 `json:"dropped"`
	// Subscribers is the current subscription count.
	Subscribers int `json:"subscribers"`
	// VirtualSec is how far the simulated world has advanced.
	VirtualSec float64 `json:"virtual_sec"`
	// Stalls and Bursts count injected feed faults (Options.Fault).
	Stalls uint64 `json:"stalls,omitempty"`
	Bursts uint64 `json:"bursts,omitempty"`
}

// subscriber is one fan-out target.
type subscriber struct {
	ch      chan telemetry.Record
	dropped uint64
}

// Feed is one named telemetry stream.
type Feed struct {
	name string
	spec core.ScenarioSpec
	opts Options

	mu        sync.Mutex
	subs      map[int]*subscriber
	nextSub   int
	closed    bool
	records   uint64
	ingested  uint64
	simEpochs uint64
	dropped   uint64
	virtual   float64
	stalls    uint64
	bursts    uint64
	simErr    error

	cancel context.CancelFunc
	done   chan struct{} // nil unless simulating
}

// newFeed builds and (when opts.Simulate) starts a feed.
func newFeed(name string, spec core.ScenarioSpec, opts Options) (*Feed, error) {
	if !core.ValidSegment(name) {
		return nil, fmt.Errorf("feed: name %q: want one URL path segment of [A-Za-z0-9._-]", name)
	}
	opts = opts.withDefaults()
	if opts.Rate < 0 || opts.Rate > MaxRate {
		return nil, fmt.Errorf("feed: rate %g out of (0, %g]", opts.Rate, MaxRate)
	}
	spec = spec.WithDefaults()
	sc, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	f := &Feed{name: name, spec: spec, opts: opts, subs: map[int]*subscriber{}}
	if opts.Simulate {
		ctx, cancel := context.WithCancel(context.Background())
		f.cancel = cancel
		f.done = make(chan struct{})
		go f.runSim(ctx, sc)
	}
	return f, nil
}

// Name returns the feed's registry key.
func (f *Feed) Name() string { return f.name }

// Spec returns the scenario spec defining the feed's telemetry schema.
func (f *Feed) Spec() core.ScenarioSpec { return f.spec }

// Options returns the feed's (defaulted) options.
func (f *Feed) Options() Options { return f.opts }

// runSim advances the scenario's world continuously, pacing virtual time
// to wall time at opts.Rate. Records are published from inside the
// engine's epoch callback.
func (f *Feed) runSim(ctx context.Context, sc core.Scenario) {
	defer close(f.done)
	w, h, err := sc.BuildWorld(f.opts.Seed, nil)
	if err != nil {
		f.mu.Lock()
		f.simErr = err
		f.mu.Unlock()
		return
	}
	h.OnEpoch(func(rec telemetry.Record) {
		f.mu.Lock()
		f.simEpochs++
		f.virtual = rec.TimeSec
		f.publishLocked(rec)
		f.mu.Unlock()
	})
	// One wall tick per epoch, clamped so extreme rates neither spin the
	// scheduler (< 2 ms) nor stall the stream (> 1 s).
	epochWall := time.Duration(sc.EpochSec / f.opts.Rate * float64(time.Second))
	if epochWall < 2*time.Millisecond {
		epochWall = 2 * time.Millisecond
	}
	if epochWall > time.Second {
		epochWall = time.Second
	}
	// Cap per-tick catch-up so a stalled process bursts at most this much
	// virtual time instead of replaying the whole gap at once.
	maxStep := 100 * sc.EpochSec
	// Fault injection draws from its own seeded stream, decoupled from the
	// world's traffic randomness: the same seed and tick sequence injects
	// the same stalls and bursts regardless of scenario.
	var (
		faultRng   *rand.Rand
		stallLeft  int
		stallTicks int
	)
	if f.opts.Fault != nil {
		faultRng = rand.New(rand.NewSource(f.opts.Seed ^ 0x5DEECE66D))
		stallTicks = f.opts.Fault.StallTicks
		if stallTicks <= 0 {
			stallTicks = 5
		}
	}
	ticker := time.NewTicker(epochWall)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			dv := now.Sub(last).Seconds() * f.opts.Rate
			last = now
			if dv > maxStep {
				dv = maxStep
			}
			if fault := f.opts.Fault; fault != nil {
				if stallLeft > 0 {
					// Mid-stall: the feed stays silent; virtual time does
					// not advance, so the stall reads as a telemetry gap.
					stallLeft--
					continue
				}
				switch {
				case fault.StallProb > 0 && faultRng.Float64() < fault.StallProb:
					stallLeft = stallTicks
					f.mu.Lock()
					f.stalls++
					f.mu.Unlock()
					continue
				case fault.BurstProb > 0 && faultRng.Float64() < fault.BurstProb:
					// Burst flood: replay the maximum catch-up step in one
					// tick, stressing subscriber buffers and drop paths.
					dv = maxStep
					f.mu.Lock()
					f.bursts++
					f.mu.Unlock()
				}
			}
			w.Run(dv)
		}
	}
}

// Ingest publishes an externally produced record. The record must match
// the feed's scenario schema: one chain result per scenario group, in
// order — a mismatched record would silently scramble the downstream
// feature extraction. A zero HourOfDay is derived from TimeSec.
func (f *Feed) Ingest(rec telemetry.Record) error {
	groups := f.spec.Groups
	if len(rec.Chain.PerGroup) != len(groups) {
		return fmt.Errorf("feed %s: record has %d group results, scenario %s has %d groups",
			f.name, len(rec.Chain.PerGroup), f.spec.Name, len(groups))
	}
	for i, gr := range rec.Chain.PerGroup {
		if gr.Name != groups[i].Name {
			return fmt.Errorf("feed %s: group %d is %q, scenario %s wants %q",
				f.name, i, gr.Name, f.spec.Name, groups[i].Name)
		}
	}
	if rec.HourOfDay == 0 && rec.TimeSec != 0 {
		rec.HourOfDay = math.Mod(rec.TimeSec/3600, 24)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("feed %s: %w", f.name, ErrFeedClosed)
	}
	f.ingested++
	f.publishLocked(rec)
	return nil
}

// publishLocked fans one record out to every subscriber, non-blocking:
// a full buffer drops the record for that subscriber. Callers hold f.mu.
func (f *Feed) publishLocked(rec telemetry.Record) {
	if f.closed {
		return
	}
	f.records++
	for _, s := range f.subs {
		select {
		case s.ch <- rec:
		default:
			s.dropped++
			f.dropped++
		}
	}
}

// Subscribe registers a fan-out channel. The returned cancel is
// idempotent and closes the channel; the channel is also closed when the
// feed itself closes, so consumers terminate on `for range`.
func (f *Feed) Subscribe() (<-chan telemetry.Record, func(), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, nil, fmt.Errorf("feed %s: %w", f.name, ErrFeedClosed)
	}
	id := f.nextSub
	f.nextSub++
	s := &subscriber{ch: make(chan telemetry.Record, f.opts.Buffer)}
	f.subs[id] = s
	cancel := func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if sub, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(sub.ch)
		}
	}
	return s.ch, cancel, nil
}

// Stats returns a snapshot of the feed's counters.
func (f *Feed) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Records:     f.records,
		Ingested:    f.ingested,
		SimEpochs:   f.simEpochs,
		Dropped:     f.dropped,
		Subscribers: len(f.subs),
		VirtualSec:  f.virtual,
		Stalls:      f.stalls,
		Bursts:      f.bursts,
	}
}

// Err reports a simulator startup failure, if any.
func (f *Feed) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.simErr
}

// Close stops the simulator goroutine (waiting for it to exit) and closes
// every subscriber channel. It is idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	if f.cancel != nil {
		f.cancel()
		<-f.done
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, s := range f.subs {
		delete(f.subs, id)
		close(s.ch)
	}
}

// Hub is the concurrent-safe catalog of named feeds.
type Hub struct {
	// Max, when > 0, bounds how many feeds may be open at once — each
	// simulated feed owns a background goroutine, so the cap bounds
	// background CPU. Enforced inside Open, under the hub lock.
	Max int

	mu    sync.Mutex
	feeds map[string]*Feed
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{feeds: map[string]*Feed{}} }

// Open creates (and for Simulate feeds, starts) a feed.
func (h *Hub) Open(name string, spec core.ScenarioSpec, opts Options) (*Feed, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.feeds[name]; ok {
		return nil, fmt.Errorf("feed %q: %w", name, ErrFeedExists)
	}
	if h.Max > 0 && len(h.feeds) >= h.Max {
		return nil, fmt.Errorf("feed %q: %w (%d open)", name, ErrTooManyFeeds, len(h.feeds))
	}
	f, err := newFeed(name, spec, opts)
	if err != nil {
		return nil, err
	}
	h.feeds[name] = f
	return f, nil
}

// Get returns the named feed.
func (h *Hub) Get(name string) (*Feed, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.feeds[name]
	if !ok {
		return nil, fmt.Errorf("feed %q: %w", name, ErrFeedNotFound)
	}
	return f, nil
}

// List returns every feed, sorted by name.
func (h *Hub) List() []*Feed {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Feed, 0, len(h.feeds))
	for _, f := range h.feeds {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close stops and removes the named feed.
func (h *Hub) Close(name string) error {
	h.mu.Lock()
	f, ok := h.feeds[name]
	delete(h.feeds, name)
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("feed %q: %w", name, ErrFeedNotFound)
	}
	f.Close()
	return nil
}

// CloseAll stops and removes every feed — process shutdown.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	feeds := make([]*Feed, 0, len(h.feeds))
	for name, f := range h.feeds {
		feeds = append(feeds, f)
		delete(h.feeds, name)
	}
	h.mu.Unlock()
	for _, f := range feeds {
		f.Close()
	}
}
