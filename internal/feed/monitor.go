package feed

import (
	"errors"
	"sync"
	"time"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/telemetry"
)

// MonitorConfig binds one model to one feed for online scoring.
type MonitorConfig struct {
	// Model labels the monitored model in stats (the registry name).
	Model string
	// Extractor turns the record stream into (features, next-epoch
	// target) examples; set MaxRows on it to bound the streaming
	// training window.
	Extractor *telemetry.Extractor
	// Predict scores a feature vector with the live model. It is called
	// on the monitor goroutine; implementations that resolve the model
	// through a registry naturally pick up hot-swapped pipelines.
	Predict func([]float64) float64
	// Drift configures the drift detector.
	Drift DriftConfig
	// OnDrift, when non-nil, is invoked (on the monitor goroutine) for
	// every drift trigger — the hook the serving layer uses to submit
	// retrain jobs. Record consumption continues while it runs.
	OnDrift func(DriftReport)
}

// MonitorStats is a snapshot of one monitor's progress.
type MonitorStats struct {
	Model string `json:"model"`
	// Records counts raw feed records consumed; Examples counts completed
	// (features, target) pairs scored for drift.
	Records  uint64 `json:"records"`
	Examples uint64 `json:"examples"`
	// Rows is the current streaming dataset size available to retraining.
	Rows int `json:"rows"`
	// Drifts counts triggers; LastDrift is the most recent report.
	Drifts        uint64       `json:"drifts"`
	BaselineReady bool         `json:"baseline_ready"`
	LastDrift     *DriftReport `json:"last_drift,omitempty"`
	LastDriftAt   time.Time    `json:"last_drift_at,omitempty"`
}

// Monitor consumes a feed subscription on its own goroutine: every record
// flows through the extractor; every completed example is scored against
// the live model and fed to the drift detector. All state behind mu so
// retrain jobs can snapshot the dataset while the stream keeps flowing.
type Monitor struct {
	cfg    MonitorConfig
	cancel func()
	done   chan struct{}

	mu        sync.Mutex
	drift     *DriftMonitor
	records   uint64
	examples  uint64
	drifts    uint64
	lastDrift *DriftReport
	lastAt    time.Time
}

// Attach subscribes a monitor to the feed and starts its goroutine.
func Attach(f *Feed, cfg MonitorConfig) (*Monitor, error) {
	if cfg.Extractor == nil {
		return nil, errors.New("feed: monitor needs an extractor")
	}
	if cfg.Predict == nil {
		return nil, errors.New("feed: monitor needs a predict function")
	}
	ch, cancel, err := f.Subscribe()
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:    cfg,
		cancel: cancel,
		done:   make(chan struct{}),
		drift:  NewDriftMonitor(cfg.Drift),
	}
	go m.loop(ch)
	return m, nil
}

func (m *Monitor) loop(ch <-chan telemetry.Record) {
	defer close(m.done)
	for rec := range ch {
		m.mu.Lock()
		m.records++
		var report DriftReport
		hit := false
		if m.cfg.Extractor.Push(rec) {
			ds := m.cfg.Extractor.Dataset()
			x := ds.X[ds.Len()-1]
			y := ds.Y[ds.Len()-1]
			pred := m.cfg.Predict(x)
			m.examples++
			report, hit = m.drift.Observe(x, y, pred)
			if hit {
				m.drifts++
				r := report
				m.lastDrift = &r
				m.lastAt = time.Now()
			}
		}
		m.mu.Unlock()
		if hit && m.cfg.OnDrift != nil {
			m.cfg.OnDrift(report)
		}
	}
}

// DatasetSnapshot deep-copies the streamed dataset accumulated so far —
// what a retrain job trains from while the monitor keeps appending.
func (m *Monitor) DatasetSnapshot() *dataset.Dataset {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Extractor.Dataset().Tail(0)
}

// ResetDrift rebuilds the drift baseline — call after swapping in a
// retrained model, whose error profile defines a new "normal".
func (m *Monitor) ResetDrift() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drift.Reset()
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MonitorStats{
		Model:         m.cfg.Model,
		Records:       m.records,
		Examples:      m.examples,
		Rows:          m.cfg.Extractor.Dataset().Len(),
		Drifts:        m.drifts,
		BaselineReady: m.drift.BaselineReady(),
		LastDriftAt:   m.lastAt,
	}
	if m.lastDrift != nil {
		r := *m.lastDrift
		s.LastDrift = &r
	}
	return s
}

// Stop cancels the subscription and waits for the goroutine to drain.
// Safe to call more than once, and also after the feed itself closed.
func (m *Monitor) Stop() {
	m.cancel()
	<-m.done
}
