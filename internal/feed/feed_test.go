package feed

import (
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
)

// tinySpec is a fast two-hop scenario for feed tests.
func tinySpec() core.ScenarioSpec {
	return core.ScenarioSpec{
		Name: "tiny",
		Groups: []core.GroupSpec{
			{Name: "fw", Kind: "firewall", Replicas: 1, CoresPerInstance: 2},
			{Name: "mon", Kind: "monitor", Replicas: 1, CoresPerInstance: 1},
		},
		Traffic: core.TrafficSpec{BaseFPS: 20000},
		SLO:     core.SLOSpec{MaxLatencyMs: 5, MaxLossRate: 0.01},
	}
}

// tinyRecord builds a schema-matching record for ingest tests.
func tinyRecord(tsec, util float64) telemetry.Record {
	return telemetry.Record{
		TimeSec:   tsec,
		HourOfDay: tsec / 3600,
		Demand:    traffic.Demand{TimeSec: tsec, PPS: 1000 * util, BPS: 5e5 * util, NewFlows: 50, ActiveFlows: 500, AvgPktBytes: 500},
		Chain: chain.Result{
			PerGroup: []chain.GroupResult{
				{Name: "fw", Replicas: 1, Utilization: util, LatencyMs: 0.5, StateFactor: 1},
				{Name: "mon", Replicas: 1, Utilization: util / 2, LatencyMs: 0.2, StateFactor: 1},
			},
			LatencyMs: 1.0, LossRate: 0.001,
		},
		TotalCores: 3,
	}
}

func TestSimulatedFeedPublishes(t *testing.T) {
	h := NewHub()
	// One virtual day per wall second: epoch records arrive at the 2 ms
	// tick floor, so a fraction of a second yields plenty.
	f, err := h.Open("sim", tinySpec(), Options{Simulate: true, Rate: 86400})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var last telemetry.Record
	for i := 0; i < 10; i++ {
		select {
		case rec := <-ch:
			if len(rec.Chain.PerGroup) != 2 || rec.Chain.PerGroup[0].Name != "fw" {
				t.Fatalf("bad record schema: %+v", rec.Chain.PerGroup)
			}
			if rec.TimeSec <= last.TimeSec {
				t.Fatalf("time went backwards: %v after %v", rec.TimeSec, last.TimeSec)
			}
			last = rec
		case <-time.After(10 * time.Second):
			t.Fatalf("no record %d after 10s; stats %+v", i, f.Stats())
		}
	}
	st := f.Stats()
	if st.SimEpochs < 10 || st.Records < 10 || st.VirtualSec <= 0 {
		t.Fatalf("stats %+v", st)
	}
	h.CloseAll()
	if _, _, err := f.Subscribe(); err == nil {
		t.Fatal("subscribe on closed feed accepted")
	}
	// The subscriber channel must be closed so consumers terminate.
	for range ch {
	}
}

func TestIngestValidatesSchema(t *testing.T) {
	h := NewHub()
	f, err := h.Open("ext", tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.CloseAll()
	ch, cancel, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := f.Ingest(tinyRecord(5, 0.4)); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-ch:
		if rec.Demand.PPS != 400 {
			t.Fatalf("record %+v", rec.Demand)
		}
	case <-time.After(time.Second):
		t.Fatal("ingested record not delivered")
	}
	// Wrong group count and wrong group name are rejected.
	bad := tinyRecord(10, 0.4)
	bad.Chain.PerGroup = bad.Chain.PerGroup[:1]
	if err := f.Ingest(bad); err == nil {
		t.Fatal("short record accepted")
	}
	bad = tinyRecord(10, 0.4)
	bad.Chain.PerGroup[1].Name = "nope"
	if err := f.Ingest(bad); err == nil {
		t.Fatal("misnamed group accepted")
	}
	// HourOfDay derives from TimeSec when omitted.
	rec := tinyRecord(6*3600, 0.4)
	rec.HourOfDay = 0
	if err := f.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.HourOfDay != 6 {
		t.Fatalf("hour_of_day %v, want 6", got.HourOfDay)
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub()
	f, err := h.Open("drops", tinySpec(), Options{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.CloseAll()
	_, cancel, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := f.Ingest(tinyRecord(float64(i*5), 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Dropped != 8 || st.Ingested != 10 {
		t.Fatalf("stats %+v, want 8 dropped of 10", st)
	}
}

func TestHubOpenGetClose(t *testing.T) {
	h := NewHub()
	if _, err := h.Open("bad name", tinySpec(), Options{}); err == nil {
		t.Fatal("invalid feed name accepted")
	}
	if _, err := h.Open("a", tinySpec(), Options{Rate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := h.Open("a", tinySpec(), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Open("a", tinySpec(), Options{}); err == nil {
		t.Fatal("duplicate feed accepted")
	}
	if _, err := h.Get("a"); err != nil {
		t.Fatal(err)
	}
	if len(h.List()) != 1 {
		t.Fatalf("list %v", h.List())
	}
	if err := h.Close("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.Close("a"); err == nil {
		t.Fatal("double close accepted")
	}
	if _, err := h.Get("a"); err == nil {
		t.Fatal("closed feed still resolvable")
	}
}

// TestMonitorDetectsDriftAndSnapshot drives a monitor with stable records
// then shifted ones and expects exactly one drift trigger (cooldown
// armed), with the streamed dataset bounded by MaxRows.
func TestMonitorDetectsDriftAndSnapshot(t *testing.T) {
	h := NewHub()
	f, err := h.Open("mon", tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.CloseAll()

	ext := telemetry.NewExtractor(telemetry.TargetBottleneckUtil, 5, []string{"fw", "mon"})
	ext.MaxRows = 64
	var mu sync.Mutex
	var reports []DriftReport
	m, err := Attach(f, MonitorConfig{
		Model:     "m",
		Extractor: ext,
		// A deliberately biased predictor: always 0.4, so baseline error is
		// small while utilization ≈ 0.4 and blows up when the stream shifts.
		Predict: func(x []float64) float64 { return 0.4 },
		Drift:   DriftConfig{Baseline: 16, Recent: 8, ErrorRatio: 3, MeanShift: 1e9, Cooldown: 1000},
		OnDrift: func(r DriftReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := f.Ingest(tinyRecord(float64(i*5), 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 40; i < 80; i++ {
		if err := f.Ingest(tinyRecord(float64(i*5), 0.95)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Stats()
		if st.Records == 80 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor consumed %d of 80", st.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := m.Stats()
	if st.Drifts != 1 || st.LastDrift == nil || st.LastDrift.Kind != "error" {
		t.Fatalf("stats %+v", st)
	}
	mu.Lock()
	nr := len(reports)
	mu.Unlock()
	if nr != 1 {
		t.Fatalf("OnDrift fired %d times, want 1 (cooldown)", nr)
	}
	ds := m.DatasetSnapshot()
	if ds.Len() == 0 || ds.Len() > 64+16 {
		t.Fatalf("snapshot rows %d, want (0, 80] bounded by MaxRows slack", ds.Len())
	}
	m.ResetDrift()
	if m.Stats().BaselineReady {
		t.Fatal("baseline survived reset")
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestDriftMonitorFeatureShift(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{Baseline: 20, Recent: 10, ErrorRatio: 1e9, MeanShift: 4})
	x := []float64{1, 10}
	for i := 0; i < 20; i++ {
		// Small jitter so the baseline std is non-zero.
		x[0] = 1 + 0.01*float64(i%3)
		if _, hit := m.Observe(x, 5, 5); hit {
			t.Fatal("drift during baseline")
		}
	}
	if !m.BaselineReady() {
		t.Fatal("baseline not frozen")
	}
	hits := 0
	var rep DriftReport
	for i := 0; i < 15; i++ {
		x[0] = 50 // massive shift on feature 0
		if r, hit := m.Observe(x, 5, 5); hit {
			hits++
			rep = r
		}
	}
	if hits != 1 || rep.Kind != "feature-shift" || rep.Feature != 0 {
		t.Fatalf("hits %d report %+v", hits, rep)
	}
}
