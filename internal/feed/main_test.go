package feed

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// TestMain fails the package when feed goroutines (simulation loops,
// fan-out, monitors) outlive the tests — Hub/Feed Close must reap them.
func TestMain(m *testing.M) { leakcheck.Main(m) }
