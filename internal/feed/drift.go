package feed

import (
	"fmt"
	"math"
)

// DriftConfig tunes the drift monitor. Zero values select the defaults,
// so an empty JSON object is a usable configuration.
type DriftConfig struct {
	// Baseline is how many (prediction, outcome) observations freeze the
	// reference window (default 64). The baseline captures "what normal
	// looked like right after (re)training".
	Baseline int `json:"baseline,omitempty"`
	// Recent is the sliding comparison window (default 32).
	Recent int `json:"recent,omitempty"`
	// ErrorRatio flags drift when the recent mean absolute prediction
	// error exceeds ErrorRatio × the baseline MAE (default 2).
	ErrorRatio float64 `json:"error_ratio,omitempty"`
	// MeanShift flags drift when any feature's recent mean moves more
	// than MeanShift baseline standard deviations from its baseline mean
	// (default 4).
	MeanShift float64 `json:"mean_shift,omitempty"`
	// Cooldown is how many observations after a trigger before the
	// monitor can fire again (default Baseline) — one retrain gets a
	// chance to land before the next alarm.
	Cooldown int `json:"cooldown,omitempty"`
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Baseline <= 0 {
		c.Baseline = 64
	}
	if c.Recent <= 0 {
		c.Recent = 32
	}
	if c.ErrorRatio <= 0 {
		c.ErrorRatio = 2
	}
	if c.MeanShift <= 0 {
		c.MeanShift = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Baseline
	}
	return c
}

// DriftReport describes one drift trigger.
type DriftReport struct {
	// Kind is "error" (prediction-error blowup) or "feature-shift"
	// (input distribution moved).
	Kind string `json:"kind"`
	// Feature is the shifted feature's column index (feature-shift only).
	Feature int `json:"feature,omitempty"`
	// Score is the observed statistic: the MAE ratio for "error", the
	// shift in baseline standard deviations for "feature-shift".
	Score float64 `json:"score"`
	// Threshold is the configured trigger level the score exceeded.
	Threshold float64 `json:"threshold"`
	// BaselineMAE / RecentMAE document the error comparison.
	BaselineMAE float64 `json:"baseline_mae"`
	RecentMAE   float64 `json:"recent_mae"`
	// At is the observation count when the trigger fired.
	At uint64 `json:"at"`
}

// String implements fmt.Stringer for logs.
func (r DriftReport) String() string {
	if r.Kind == "feature-shift" {
		return fmt.Sprintf("drift(feature %d shifted %.2fσ > %.2fσ at obs %d)", r.Feature, r.Score, r.Threshold, r.At)
	}
	return fmt.Sprintf("drift(MAE %.4g = %.2f× baseline %.4g > %.2f× at obs %d)", r.RecentMAE, r.Score, r.BaselineMAE, r.Threshold, r.At)
}

// DriftMonitor detects model/data drift from a stream of (features,
// outcome, prediction) observations: it freezes a baseline of prediction
// error and feature statistics right after training, then compares a
// sliding recent window against it. It is not safe for concurrent use;
// the Monitor serializes access.
type DriftMonitor struct {
	cfg DriftConfig

	// Baseline accumulation, frozen once baseCount reaches cfg.Baseline.
	frozen    bool
	baseCount int
	baseErr   float64   // running |err| sum, then frozen MAE
	baseSum   []float64 // per-feature value sums, then frozen means
	baseSumSq []float64 // per-feature squared sums, then frozen stds
	// Sliding recent window (rings of length cfg.Recent).
	recErr   []float64
	recFeat  [][]float64
	recPos   int
	recCount int
	errSum   float64
	featSum  []float64

	seen     uint64
	cooldown int
}

// NewDriftMonitor builds a monitor with cfg (zero fields defaulted).
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor {
	return &DriftMonitor{cfg: cfg.withDefaults()}
}

// Config returns the defaulted configuration.
func (m *DriftMonitor) Config() DriftConfig { return m.cfg }

// Seen returns how many observations the monitor has consumed.
func (m *DriftMonitor) Seen() uint64 { return m.seen }

// BaselineReady reports whether the reference window is frozen.
func (m *DriftMonitor) BaselineReady() bool { return m.frozen }

// Reset drops all state so the next observations rebuild the baseline —
// called after a retrained model is swapped in, because both the error
// distribution and "normal" feature statistics changed with it.
func (m *DriftMonitor) Reset() {
	cfg, seen := m.cfg, m.seen
	*m = DriftMonitor{cfg: cfg, seen: seen}
}

// Observe consumes one scored example and reports whether it triggered
// drift. x must have a consistent width across calls.
func (m *DriftMonitor) Observe(x []float64, outcome, pred float64) (DriftReport, bool) {
	m.seen++
	absErr := math.Abs(outcome - pred)
	if !m.frozen {
		if m.baseSum == nil {
			m.baseSum = make([]float64, len(x))
			m.baseSumSq = make([]float64, len(x))
		}
		m.baseErr += absErr
		for j, v := range x {
			m.baseSum[j] += v
			m.baseSumSq[j] += v * v
		}
		m.baseCount++
		if m.baseCount >= m.cfg.Baseline {
			m.freeze()
		}
		return DriftReport{}, false
	}

	// Slide the recent window.
	if m.recErr == nil {
		m.recErr = make([]float64, m.cfg.Recent)
		m.recFeat = make([][]float64, m.cfg.Recent)
		m.featSum = make([]float64, len(x))
	}
	if m.recCount == m.cfg.Recent {
		old := m.recFeat[m.recPos]
		m.errSum -= m.recErr[m.recPos]
		for j, v := range old {
			m.featSum[j] -= v
		}
	}
	m.recErr[m.recPos] = absErr
	if m.recFeat[m.recPos] == nil {
		m.recFeat[m.recPos] = make([]float64, len(x))
	}
	copy(m.recFeat[m.recPos], x)
	m.errSum += absErr
	for j, v := range x {
		m.featSum[j] += v
	}
	m.recPos = (m.recPos + 1) % m.cfg.Recent
	if m.recCount < m.cfg.Recent {
		m.recCount++
	}

	if m.cooldown > 0 {
		m.cooldown--
		return DriftReport{}, false
	}
	if m.recCount < m.cfg.Recent {
		return DriftReport{}, false
	}

	recMAE := m.errSum / float64(m.recCount)
	baseMAE := math.Max(m.baseErr, 1e-9)
	if ratio := recMAE / baseMAE; ratio > m.cfg.ErrorRatio {
		m.cooldown = m.cfg.Cooldown
		return DriftReport{
			Kind: "error", Score: ratio, Threshold: m.cfg.ErrorRatio,
			BaselineMAE: m.baseErr, RecentMAE: recMAE, At: m.seen,
		}, true
	}
	for j := range m.featSum {
		mean := m.baseSum[j]
		std := m.baseSumSq[j]
		// Floor the scale so constant baseline features still allow a
		// meaningful (topology-change) trigger without dividing by zero.
		scale := math.Max(std, 1e-9+1e-6*math.Abs(mean))
		recMean := m.featSum[j] / float64(m.recCount)
		if shift := math.Abs(recMean-mean) / scale; shift > m.cfg.MeanShift {
			m.cooldown = m.cfg.Cooldown
			return DriftReport{
				Kind: "feature-shift", Feature: j, Score: shift, Threshold: m.cfg.MeanShift,
				BaselineMAE: m.baseErr, RecentMAE: recMAE, At: m.seen,
			}, true
		}
	}
	return DriftReport{}, false
}

// freeze converts the baseline accumulators into frozen statistics:
// baseErr becomes the baseline MAE, baseSum the means, baseSumSq the
// standard deviations.
func (m *DriftMonitor) freeze() {
	n := float64(m.baseCount)
	m.baseErr /= n
	for j := range m.baseSum {
		mean := m.baseSum[j] / n
		variance := m.baseSumSq[j]/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		m.baseSum[j] = mean
		m.baseSumSq[j] = math.Sqrt(variance)
	}
	m.frozen = true
}
