package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCatchesLeak proves the detector sees a blocked goroutine and
// recovers once it exits.
func TestCatchesLeak(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	err := Check(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Check missed a blocked goroutine")
	}
	if !strings.Contains(err.Error(), "leakcheck_test") {
		t.Errorf("leak report does not name the leaking test: %v", err)
	}

	close(block)
	if err := Check(DefaultDeadline); err != nil {
		t.Errorf("Check still failing after goroutine exit: %v", err)
	}
}

// TestBenignFiltered: the test framework's own goroutines never count.
func TestBenignFiltered(t *testing.T) {
	if err := Check(50 * time.Millisecond); err != nil {
		t.Errorf("baseline not clean: %v", err)
	}
}
