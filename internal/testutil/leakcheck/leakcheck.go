// Package leakcheck verifies that a test binary's goroutines wind down
// after the tests finish — the machine-checked form of the serving
// plane's shutdown contract (Server.Close waits for job runners, feeds
// stop their simulation goroutines, SSE writers exit with their
// requests). A leaked goroutine in these packages is a process that can
// never drain cleanly in production.
//
// Wire it into a package with a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The check retries until a deadline because goroutine teardown is
// asynchronous (closed servers unwind handlers, worker pools notice
// cancellation); only goroutines still alive at the deadline are leaks.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultDeadline bounds how long Main waits for goroutines to unwind.
const DefaultDeadline = 5 * time.Second

// benign identifies goroutine stacks that are expected to outlive tests:
// the testing framework itself, signal handling, and net/http keep-alive
// connections owned by default transports (they die on their own idle
// timeout and hold no test resources).
var benign = []string{
	"testing.(*M).Run",
	"testing.Main(",
	"testing.tRunner", // sibling tests mid-run (CheckTest); hangs are testing's to report
	"testing.runFuzzing",
	"runtime.Goexit",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConn",
}

// Main runs the package's tests and fails the binary when goroutines are
// still alive DefaultDeadline after the last test returned.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(DefaultDeadline); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until every non-benign goroutine has exited, or returns an
// error describing the leaked stacks once the deadline passes.
func Check(deadline time.Duration) error {
	var leaked []string
	delay := 1 * time.Millisecond
	for end := time.Now().Add(deadline); ; {
		leaked = leakedStacks()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(end) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return fmt.Errorf("%d goroutine(s) still running after tests:\n\n%s",
		len(leaked), strings.Join(leaked, "\n"))
}

// CheckTest registers a cleanup that fails t if goroutines spawned
// during the test have not exited shortly after it finishes. Prefer
// Main for whole-package coverage; use this to pin down a single test.
func CheckTest(t *testing.T, deadline time.Duration) {
	t.Helper()
	t.Cleanup(func() {
		if err := Check(deadline); err != nil {
			t.Errorf("leakcheck: %v", err)
		}
	})
}

// leakedStacks returns the non-benign goroutine stack stanzas. The
// calling goroutine is excluded by id, not by frame matching, so leaks
// inside this package's own helpers stay visible.
func leakedStacks() []string {
	self := goroutineHeader(false)
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
stanzas:
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		if strings.TrimSpace(stanza) == "" || strings.HasPrefix(stanza, self) {
			continue
		}
		for _, b := range benign {
			if strings.Contains(stanza, b) {
				continue stanzas
			}
		}
		leaked = append(leaked, stanza)
	}
	return leaked
}

// goroutineHeader returns "goroutine N " for the current goroutine.
func goroutineHeader(all bool) string {
	buf := make([]byte, 64)
	runtime.Stack(buf, all)
	line, _, _ := strings.Cut(string(buf), "[")
	return line
}
