package wire

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U16(65535)
	w.U64(1 << 62)
	w.I64(-42)
	w.Int(123456789)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.F64(math.NaN())
	w.Bool(true)
	w.Bool(false)
	w.String("hello, wire")
	w.String("")
	w.BytesField([]byte{1, 2, 3})
	w.F64s(nil)
	w.F64s([]float64{1.5, -2.25, math.SmallestNonzeroFloat64})
	w.Ints([]int{-1, 0, 1 << 40})
	w.Strings([]string{"a", "", "c"})
	w.F64Mat([][]float64{{1, 2}, {3}, nil})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf = %v", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.String(); got != "hello, wire" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.BytesField(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("BytesField = %v", got)
	}
	if got := r.F64s(); got != nil {
		t.Errorf("empty F64s = %v", got)
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || fs[2] != math.SmallestNonzeroFloat64 {
		t.Errorf("F64s = %v", fs)
	}
	is := r.Ints()
	if len(is) != 3 || is[0] != -1 || is[2] != 1<<40 {
		t.Errorf("Ints = %v", is)
	}
	ss := r.Strings()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "c" {
		t.Errorf("Strings = %v", ss)
	}
	m := r.F64Mat()
	if len(m) != 3 || len(m[0]) != 2 || m[0][1] != 2 || len(m[1]) != 1 || m[2] != nil {
		t.Errorf("F64Mat = %v", m)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestBitIdenticalFloats(t *testing.T) {
	values := []float64{0, math.Copysign(0, -1), math.Pi, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.NaN()}
	var w Writer
	w.F64s(values)
	r := NewReader(w.Bytes())
	got := r.F64s()
	for i, v := range values {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Errorf("value %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(v))
		}
	}
}

func TestTruncation(t *testing.T) {
	var w Writer
	w.String("a long enough payload")
	w.F64s([]float64{1, 2, 3})
	full := w.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		_ = r.F64s()
		_ = r.U64() // always reads past the (already truncated) end
		if err := r.Err(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestImplausibleLength(t *testing.T) {
	var w Writer
	w.Int(MaxLen + 1)
	r := NewReader(w.Bytes())
	_ = r.String()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}

	var w2 Writer
	w2.Int(-5)
	r2 := NewReader(w2.Bytes())
	_ = r2.F64s()
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("negative length err = %v, want ErrTruncated", r2.Err())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.U64()
	first := r.Err()
	_ = r.String()
	_ = r.F64Mat()
	if r.Err() != first {
		t.Error("sticky error was replaced")
	}
}
