// Package wire implements the minimal binary encoding shared by the
// durable-artifact plane: little-endian fixed-width scalars with
// length-prefixed strings, slices and matrices. Floats are encoded as
// their IEEE-754 bit patterns (math.Float64bits), so a round trip is
// bit-identical — the property the model-serialization parity tests
// assert all the way up through Pipeline.Save/Load.
//
// The Reader uses a sticky error: every accessor returns the zero value
// once the input has been exhausted or corrupted, and Err() reports the
// first failure. Decoders therefore read a whole structure linearly and
// check Err() once at the end, which keeps the per-model codecs short and
// makes "truncated artifact" a single typed error (ErrTruncated) the
// registry's corruption tests can assert with errors.Is.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a read past the end of the input — the signature
// of a torn or truncated artifact.
var ErrTruncated = errors.New("wire: truncated input")

// MaxLen bounds any single length prefix (strings, slices, matrix rows).
// It rejects absurd lengths from corrupted inputs before they turn into
// multi-gigabyte allocations.
const MaxLen = 1 << 28

// Writer appends binary values to a growing buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 (two's complement via uint64).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.Int(len(v))
	for _, f := range v {
		w.F64(f)
	}
}

// Ints appends a length-prefixed []int (as int64s).
func (w *Writer) Ints(v []int) {
	w.Int(len(v))
	for _, i := range v {
		w.Int(i)
	}
}

// Strings appends a length-prefixed []string.
func (w *Writer) Strings(v []string) {
	w.Int(len(v))
	for _, s := range v {
		w.String(s)
	}
}

// F64Mat appends a row-count-prefixed [][]float64 (rows may differ in
// width; each row carries its own length).
func (w *Writer) F64Mat(m [][]float64) {
	w.Int(len(m))
	for _, row := range m {
		w.F64s(row)
	}
}

// Reader consumes binary values from a buffer with a sticky error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over data (not copied).
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the sticky error (first one wins).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, or nil after recording ErrTruncated.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf)))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// length reads and bounds-checks a length prefix.
func (r *Reader) length() int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > MaxLen {
		r.fail(fmt.Errorf("%w: implausible length %d", ErrTruncated, n))
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// BytesField reads a length-prefixed byte slice (copied).
func (r *Reader) BytesField() []byte {
	n := r.length()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	// Bound the allocation by the bytes actually present.
	if r.Remaining() < n*8 {
		r.fail(fmt.Errorf("%w: %d floats declared, %d bytes remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	if r.Remaining() < n*8 {
		r.fail(fmt.Errorf("%w: %d ints declared, %d bytes remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Strings reads a length-prefixed []string. Each element carries at
// least an 8-byte length prefix, so the allocation is bounded by the
// bytes actually present — a corrupt count cannot demand gigabytes.
func (r *Reader) Strings() []string {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	if r.Remaining() < n*8 {
		r.fail(fmt.Errorf("%w: %d strings declared, %d bytes remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// F64Mat reads a row-count-prefixed [][]float64. Like Strings, the row
// allocation is bounded by the bytes present (8-byte length prefix per
// row minimum).
func (r *Reader) F64Mat() [][]float64 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	if r.Remaining() < n*8 {
		r.fail(fmt.Errorf("%w: %d rows declared, %d bytes remain", ErrTruncated, n, r.Remaining()))
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.F64s()
	}
	if r.err != nil {
		return nil
	}
	return out
}
