package perm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// linModel is a linear model with closed-form occlusion sensitivities:
// phi_j = w_j (x_j − mean_B(x_j)).
type linModel struct{ w []float64 }

func (m linModel) Predict(x []float64) float64 {
	var s float64
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

func occlusionFixture(t *testing.T, d, nb int, seed int64) (linModel, [][]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := linModel{w: make([]float64, d)}
	x := make([]float64, d)
	bg := make([][]float64, nb)
	for j := 0; j < d; j++ {
		m.w[j] = rng.NormFloat64()
		x[j] = rng.NormFloat64()
	}
	for i := range bg {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		bg[i] = row
	}
	return m, bg, x
}

func TestOcclusionClosedForm(t *testing.T) {
	m, bg, x := occlusionFixture(t, 6, 40, 1)
	o := &Occlusion{Model: m, Background: bg}
	attr, err := o.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		var mean float64
		for _, b := range bg {
			mean += b[j]
		}
		mean /= float64(len(bg))
		want := m.w[j] * (x[j] - mean)
		if math.Abs(attr.Phi[j]-want) > 1e-9 {
			t.Fatalf("phi[%d] = %v want %v", j, attr.Phi[j], want)
		}
	}
	if attr.Value != m.Predict(x) {
		t.Fatalf("value = %v want %v", attr.Value, m.Predict(x))
	}
}

func TestOcclusionRegisteredAsLadderFloor(t *testing.T) {
	m, ok := xai.LookupMethod("occlusion")
	if !ok {
		t.Fatal("occlusion not registered")
	}
	if m.Kind != xai.KindLocal {
		t.Fatalf("kind = %v, want local", m.Kind)
	}
	if m.Caps.Additive {
		t.Fatal("occlusion sensitivities are not an additive decomposition; Additive must be false")
	}
	if !m.Caps.NeedsBackground || !m.Caps.SupportsBatch || !m.Caps.Deterministic {
		t.Fatalf("caps = %+v; want background+batch+deterministic", m.Caps)
	}
	if xai.LadderRungs[len(xai.LadderRungs)-1] != "occlusion" {
		t.Fatalf("ladder = %v; occlusion must be the floor rung", xai.LadderRungs)
	}
}

func TestOcclusionValidation(t *testing.T) {
	m, bg, x := occlusionFixture(t, 4, 10, 2)
	o := &Occlusion{Model: m, Background: bg}
	if _, err := o.Explain(context.Background(), x[:2]); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	empty := &Occlusion{Model: m}
	if _, err := empty.Explain(context.Background(), x); err == nil {
		t.Fatal("empty background must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Explain(ctx, x); err == nil {
		t.Fatal("cancelled context must error")
	}
}

func TestOcclusionConcurrentBaseOnce(t *testing.T) {
	m, bg, x := occlusionFixture(t, 5, 20, 3)
	o := &Occlusion{Model: m, Background: bg}
	const n = 16
	results := make([]float64, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			attr, err := o.Explain(context.Background(), x)
			if err == nil {
				results[i] = attr.Base
			}
			errs[i] = err
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("base diverged across concurrent calls: %v vs %v", results[i], results[0])
		}
	}
	var _ ml.Predictor = m // occlusion serves any predictor
}
