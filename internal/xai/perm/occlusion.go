package perm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// init registers single-feature occlusion as a *local* method: the
// cheapest attribution in the registry (d × background predictions in one
// batched call) and therefore the floor rung of the serving layer's
// budget-degradation ladder (treeshap → kernelshap → occlusion). Its
// scores are interventional sensitivities, not an additive decomposition,
// so Additive stays false and additivity metrics are never reported for
// it.
func init() {
	xai.Register(xai.Method{
		Name: "occlusion",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			NeedsBackground: true,
			SupportsBatch:   true,
			Deterministic:   true,
		},
		Build: func(t xai.Target, _ xai.Options) (xai.Explainer, error) {
			return &Occlusion{Model: t.Model, Background: t.Background, Names: t.Names}, nil
		},
	})
}

// Occlusion attributes a prediction by single-feature interventional
// occlusion: phi[j] = f(x) − E_b[f(x with x[j] ← b[j])], the drop in
// output when feature j alone is replaced by background values. It is the
// d-coalition corner of the KernelSHAP design — no sampling, no solve —
// trading interaction awareness for a hard d×|background| prediction
// budget.
type Occlusion struct {
	Model ml.Predictor
	// Background rows define the replacement distribution and base value.
	Background [][]float64
	// Names are optional feature names copied into attributions.
	Names []string

	// The base value depends only on the frozen model and background;
	// computed once and shared across concurrent Explain calls.
	baseOnce sync.Once
	baseVal  float64
}

// Explain computes the occlusion attribution of the model at x.
func (o *Occlusion) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	d := len(x)
	if d == 0 {
		return xai.Attribution{}, errors.New("occlusion: empty input")
	}
	nb := len(o.Background)
	if nb == 0 {
		return xai.Attribution{}, errors.New("occlusion: empty background")
	}
	for i, b := range o.Background {
		if len(b) != d {
			return xai.Attribution{}, fmt.Errorf("occlusion: background row %d has %d features, want %d", i, len(b), d)
		}
	}
	if err := xai.Canceled(ctx, "occlusion"); err != nil {
		return xai.Attribution{}, err
	}
	fx := o.Model.Predict(x)
	o.baseOnce.Do(func() {
		preds := make([]float64, nb)
		ml.PredictBatchParallel(o.Model, o.Background, preds, 0)
		var s float64
		for _, p := range preds {
			s += p
		}
		o.baseVal = s / float64(nb)
	})

	// One flat (feature × background) perturbation matrix, one batched
	// model call: row j*nb+b is x with feature j occluded by background b.
	backing := make([]float64, d*nb*d)
	rows := make([][]float64, d*nb)
	r := 0
	for j := 0; j < d; j++ {
		for _, bg := range o.Background {
			row := backing[r*d : (r+1)*d]
			copy(row, x)
			row[j] = bg[j]
			rows[r] = row
			r++
		}
	}
	if err := xai.Canceled(ctx, "occlusion"); err != nil {
		return xai.Attribution{}, err
	}
	preds := make([]float64, len(rows))
	ml.PredictBatchParallel(o.Model, rows, preds, 0)
	phi := make([]float64, d)
	r = 0
	for j := 0; j < d; j++ {
		var s float64
		for b := 0; b < nb; b++ {
			s += preds[r]
			r++
		}
		phi[j] = fx - s/float64(nb)
	}
	return xai.Attribution{Names: o.Names, Phi: phi, Base: o.baseVal, Value: fx}, nil
}
