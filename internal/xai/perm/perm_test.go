package perm

import (
	"context"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/linear"
)

func TestImportanceRanksInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(dataset.Regression, "big", "small", "noise")
	for i := 0; i < 800; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, 10*x[0]+x[1])
	}
	var m linear.Regression
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp, err := Importance(context.Background(), &m, d, Config{Repeats: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(imp[0] > imp[1] && imp[1] > imp[2]) {
		t.Fatalf("importance ordering wrong: %v", imp)
	}
	// Noise importance near zero; dominant ~100x the weak one (w²-scaled).
	if imp[2] > imp[1]*0.5 {
		t.Fatalf("noise importance too high: %v", imp)
	}
}

func TestImportanceClassificationUsesAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(dataset.Classification, "signal", "noise")
	for i := 0; i < 600; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0] > 0 {
			y = 1
		}
		d.Add(x, y)
	}
	m := linear.Logistic{Epochs: 100}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp, err := Importance(context.Background(), &m, d, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] < 0.2 {
		t.Fatalf("signal importance %v too low", imp[0])
	}
	if imp[1] > 0.05 {
		t.Fatalf("noise importance %v too high", imp[1])
	}
}

func TestImportanceCustomLoss(t *testing.T) {
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 50; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	calls := 0
	loss := func(pred, truth []float64) float64 {
		calls++
		return 0
	}
	if _, err := Importance(context.Background(), model, d, Config{Repeats: 2, Loss: loss}); err != nil {
		t.Fatal(err)
	}
	// 1 baseline + 2 repeats × 1 feature.
	if calls != 3 {
		t.Fatalf("loss called %d times want 3", calls)
	}
}

func TestImportanceEmptyError(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := Importance(context.Background(), model, dataset.New(dataset.Regression, "x"), Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestImportanceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.New(dataset.Regression, "a", "b")
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, x[0])
	}
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	i1, err := Importance(context.Background(), model, d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	i2, err := Importance(context.Background(), model, d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for j := range i1 {
		if i1[j] != i2[j] {
			t.Fatal("same seed differs")
		}
	}
}
