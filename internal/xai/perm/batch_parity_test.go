package perm

import (
	"context"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
)

// TestBatchedImportanceParity: each shuffle is now one batched model call;
// the same model behind a plain Predictor (row-loop fallback) must produce
// identical importances, proving the matrix rewrite changed no values.
func TestBatchedImportanceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := dataset.New(dataset.Regression, "a", "b", "c", "d")
	for i := 0; i < 150; i++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.Add(x, 4*x[0]-x[1]+0.1*rng.NormFloat64())
	}
	rf := &forest.RandomForest{NumTrees: 8, MaxDepth: 5, Task: dataset.Regression, Seed: 5}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Repeats: 3, Seed: 12}
	a, err := Importance(context.Background(), rf, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Importance(context.Background(), ml.PredictorFunc(rf.Predict), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("feature %d: native %v != generic %v", j, a[j], b[j])
		}
	}
}
