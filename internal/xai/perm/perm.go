// Package perm implements permutation feature importance (Breiman 2001):
// the increase in model error when one feature column is randomly
// shuffled, breaking its association with the target while preserving its
// marginal distribution. It is the global, attribution-free baseline the
// paper compares SHAP rankings against.
package perm

import (
	"context"
	"errors"
	"math/rand"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/xai"
)

// init registers permutation importance as a *global* method, served
// through the jobs API (global-importance) rather than per-instance
// explain.
func init() {
	xai.Register(xai.Method{
		Name:     "perm",
		Kind:     xai.KindGlobal,
		Caps:     xai.Capabilities{Deterministic: true},
		Defaults: xai.Options{Repeats: 5},
	})
}

// Config controls the importance computation.
type Config struct {
	// Repeats is the number of shuffles averaged per feature (default 5).
	Repeats int
	// Seed drives the shuffles.
	Seed int64
	// Loss maps (pred, truth) to an error to be *increased* by breaking a
	// feature. Defaults to MSE for regression datasets and 1−AUC for
	// classification datasets.
	Loss func(pred, truth []float64) float64
}

// Importance returns the per-feature mean error increase on d.
// Cancellation is checked once per feature column, the unit of shuffled
// batch evaluation.
func Importance(ctx context.Context, model ml.Predictor, d *dataset.Dataset, cfg Config) ([]float64, error) {
	if d.Len() == 0 {
		return nil, errors.New("perm: empty dataset")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 5
	}
	loss := cfg.Loss
	if loss == nil {
		if d.Task == dataset.Classification {
			loss = func(pred, truth []float64) float64 { return 1 - metrics.ROCAUC(pred, truth) }
		} else {
			loss = metrics.MSE
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x9E37))

	p := d.NumFeatures()
	n := d.Len()
	basePred := make([]float64, n)
	ml.PredictBatchParallel(model, d.X, basePred, 0)
	baseLoss := loss(basePred, d.Y)

	// One mutable copy of the design matrix (flat backing) serves every
	// shuffle: only the column under test is overwritten, and it is
	// restored from d.X before moving to the next feature. Each repeat is
	// a single batched model call instead of n row predictions.
	backing := make([]float64, n*p)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*p : (i+1)*p]
		copy(rows[i], d.X[i])
	}

	out := make([]float64, p)
	shuffled := make([]float64, n)
	pred := make([]float64, n)
	for j := 0; j < p; j++ {
		if err := xai.Canceled(ctx, "perm"); err != nil {
			return nil, err
		}
		var total float64
		for r := 0; r < repeats; r++ {
			for i := range shuffled {
				shuffled[i] = d.X[i][j]
			}
			rng.Shuffle(n, func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
			for i := 0; i < n; i++ {
				rows[i][j] = shuffled[i]
			}
			ml.PredictBatchParallel(model, rows, pred, 0)
			total += loss(pred, d.Y) - baseLoss
		}
		for i := 0; i < n; i++ {
			rows[i][j] = d.X[i][j]
		}
		out[j] = total / float64(repeats)
	}
	return out, nil
}
