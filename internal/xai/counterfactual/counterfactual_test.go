package counterfactual

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
)

func background1D(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		out[i] = row
	}
	return out
}

func TestSearchFindsSparseFlip(t *testing.T) {
	// Model depends only on feature 0; the counterfactual should change
	// exactly that one feature.
	rng := rand.New(rand.NewSource(1))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	bg := background1D(rng, 100, 3)
	x := []float64{9, 5, 5} // prediction 9; want <= 2
	cf, err := Search(context.Background(), model, x, bg, Config{Target: Target{Op: "<=", Value: 2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Valid {
		t.Fatalf("no valid counterfactual found: %+v", cf)
	}
	if cf.Sparsity != 1 || cf.Changed[0] != 0 {
		t.Fatalf("expected single change to feature 0, got %+v", cf)
	}
	if cf.Prediction > 2 {
		t.Fatalf("target not met: %v", cf.Prediction)
	}
	// Untouched features unchanged.
	if cf.X[1] != 5 || cf.X[2] != 5 {
		t.Fatalf("untouched features modified: %v", cf.X)
	}
}

func TestSearchRespectsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] + 0.1*x[1] })
	bg := background1D(rng, 100, 2)
	x := []float64{9, 9}
	cf, err := Search(context.Background(), model, x, bg, Config{
		Target:    Target{Op: "<=", Value: 5},
		Immutable: []int{0},
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cf.X[0] != 9 {
		t.Fatalf("immutable feature changed: %v", cf.X)
	}
	// Feature 1 alone can only reach 9 + 0.1*0 = 9 > 5: must be invalid.
	if cf.Valid {
		t.Fatalf("impossible target reported valid: %+v", cf)
	}
}

func TestSearchAlreadySatisfied(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	bg := background1D(rng, 50, 1)
	cf, err := Search(context.Background(), model, []float64{1}, bg, Config{Target: Target{Op: "<=", Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Valid || cf.Sparsity != 0 {
		t.Fatalf("already-valid instance should need no changes: %+v", cf)
	}
}

func TestSearchGreaterEqualTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] + x[1] })
	bg := background1D(rng, 100, 2)
	cf, err := Search(context.Background(), model, []float64{1, 1}, bg, Config{Target: Target{Op: ">=", Value: 15}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Valid {
		t.Fatalf("no counterfactual for reachable >= target: %+v", cf)
	}
	if cf.Prediction < 15 {
		t.Fatalf("prediction %v below target", cf.Prediction)
	}
}

func TestSearchMaxChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Each feature contributes 1; flipping k features moves prediction by
	// at most ~10k, so MaxChanges=1 bounds the achievable change.
	model := ml.PredictorFunc(func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v
		}
		return s
	})
	bg := background1D(rng, 100, 4)
	x := []float64{9, 9, 9, 9} // prediction 36
	cf, err := Search(context.Background(), model, x, bg, Config{Target: Target{Op: "<=", Value: 5}, MaxChanges: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if cf.Sparsity > 1 {
		t.Fatalf("exceeded MaxChanges: %+v", cf)
	}
	if cf.Valid {
		t.Fatal("target unreachable with one change but reported valid")
	}
}

func TestSearchProximityPrefersClose(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	bg := background1D(rng, 200, 1)
	x := []float64{9}
	cf, err := Search(context.Background(), model, x, bg, Config{Target: Target{Op: "<=", Value: 6}, Seed: 11, Restarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Valid {
		t.Fatal("expected valid counterfactual")
	}
	// Candidates near 6 exist (background uniform over 0..10); the chosen
	// value should not be far below the threshold.
	if cf.X[0] < 3 {
		t.Fatalf("counterfactual unnecessarily far: %v", cf.X[0])
	}
	if math.Abs(cf.Proximity) < 1e-9 {
		t.Fatal("proximity should be positive for a changed instance")
	}
}

func TestSearchErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := Search(context.Background(), model, nil, [][]float64{{1}}, Config{}); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := Search(context.Background(), model, []float64{1}, nil, Config{}); err == nil {
		t.Fatal("expected empty-background error")
	}
}

func TestTargetMet(t *testing.T) {
	le := Target{Op: "<=", Value: 5}
	ge := Target{Op: ">=", Value: 5}
	if !le.Met(5) || !le.Met(4) || le.Met(6) {
		t.Fatal("<= semantics wrong")
	}
	if !ge.Met(5) || !ge.Met(6) || ge.Met(4) {
		t.Fatal(">= semantics wrong")
	}
	if le.gap(4) != 0 || le.gap(7) != 2 {
		t.Fatal("gap wrong")
	}
}
