// Package counterfactual implements counterfactual explanation search
// (Wachter et al., 2017 style): given an instance x and a prediction
// target ("what is the smallest change to this chain's telemetry that
// would bring the predicted latency under its SLO?"), find a nearby x′
// meeting the target while changing as few features as little as
// possible. The search is a random-restart greedy coordinate descent over
// background-derived candidate values, which is robust for the tabular,
// low-dimensional telemetry vectors used in NFV management.
package counterfactual

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// init registers counterfactual search in the xai method registry. The
// Explainer adapter reports the found remediation as an attribution whose
// Phi is the per-feature delta x′ − x (Base = f(x), Value = f(x′)), so
// ranked output lists the telemetry changes by magnitude. The goal
// predicate comes from the options' target_op/target_value (default
// "<= 0.5", the violation-clearing query).
func init() {
	xai.Register(xai.Method{
		Name: "counterfactual",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			NeedsBackground: true,
			SupportsBatch:   true,
			Deterministic:   true,
		},
		Defaults: xai.Options{TargetOp: "<=", TargetValue: f64(0.5), MaxChanges: 3},
		Build: func(t xai.Target, o xai.Options) (xai.Explainer, error) {
			op := o.TargetOp
			if op == "" {
				op = "<="
			}
			if op != "<=" && op != ">=" {
				return nil, fmt.Errorf("%w: counterfactual target_op must be <= or >=", xai.ErrInvalidOptions)
			}
			// The pointer distinguishes an omitted target_value (default
			// 0.5, the violation-clearing threshold) from an explicit 0.
			tv := 0.5
			if o.TargetValue != nil {
				tv = *o.TargetValue
			}
			return &Explainer{
				Model:      t.Model,
				Background: t.Background,
				Names:      t.Names,
				Config: Config{
					Target:     Target{Op: op, Value: tv},
					MaxChanges: o.MaxChanges,
					Seed:       o.Seed,
				},
			}, nil
		},
	})
}

// f64 builds the pointer literals the Options defaults need.
func f64(v float64) *float64 { return &v }

// Explainer adapts counterfactual search to the xai.Explainer interface.
type Explainer struct {
	Model      ml.Predictor
	Background [][]float64
	Names      []string
	Config     Config
}

// Explain implements xai.Explainer: Phi[j] = x′[j] − x[j]. The search is
// best-effort — when the target is unreachable within the budget, the
// closest candidate is still reported — so callers judge success by
// comparing Value (the model output at x′) against their target, exactly
// as Counterfactual.Valid would.
func (e *Explainer) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	cf, err := Search(ctx, e.Model, x, e.Background, e.Config)
	if err != nil {
		return xai.Attribution{}, err
	}
	phi := make([]float64, len(x))
	for j := range phi {
		phi[j] = cf.X[j] - x[j]
	}
	return xai.Attribution{
		Names: e.Names,
		Phi:   phi,
		Base:  e.Model.Predict(x),
		Value: cf.Prediction,
	}, nil
}

// Target is the goal predicate for the counterfactual prediction.
type Target struct {
	// Op is "<=" or ">=".
	Op string
	// Value is the prediction threshold to reach.
	Value float64
}

// Met reports whether prediction p satisfies the target.
func (t Target) Met(p float64) bool {
	if t.Op == ">=" {
		return p >= t.Value
	}
	return p <= t.Value
}

// gap returns how far p is from satisfying the target (0 when met).
func (t Target) gap(p float64) float64 {
	if t.Met(p) {
		return 0
	}
	return math.Abs(p - t.Value)
}

// Config controls the search.
type Config struct {
	// Target is the prediction goal.
	Target Target
	// Immutable lists feature indices the search must not change (e.g.
	// time-of-day: an operator cannot change the clock).
	Immutable []int
	// MaxChanges caps the number of features modified (default 3).
	MaxChanges int
	// Restarts is the number of greedy restarts (default 8).
	Restarts int
	// CandidatesPerFeature is how many values are tried per feature per
	// step, drawn from background quantiles (default 7).
	CandidatesPerFeature int
	// Seed drives the restarts.
	Seed int64
}

// Counterfactual is a found explanation.
type Counterfactual struct {
	// X is the counterfactual input.
	X []float64
	// Prediction is the model output at X.
	Prediction float64
	// Changed lists the modified feature indices.
	Changed []int
	// Sparsity is len(Changed); Proximity is the L2 distance to the
	// original in background-std units.
	Sparsity  int
	Proximity float64
	// Valid reports whether the target was met.
	Valid bool
}

// Search finds a counterfactual for x against the model, using background
// rows to derive plausible candidate values per feature. Cancellation is
// checked once per greedy step of every restart.
func Search(ctx context.Context, model ml.Predictor, x []float64, background [][]float64, cfg Config) (Counterfactual, error) {
	d := len(x)
	if d == 0 {
		return Counterfactual{}, errors.New("counterfactual: empty input")
	}
	if len(background) == 0 {
		return Counterfactual{}, errors.New("counterfactual: empty background")
	}
	maxChanges := cfg.MaxChanges
	if maxChanges <= 0 {
		maxChanges = 3
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	nCand := cfg.CandidatesPerFeature
	if nCand <= 0 {
		nCand = 7
	}
	immutable := map[int]bool{}
	for _, j := range cfg.Immutable {
		immutable[j] = true
	}
	candidates := candidateGrid(background, nCand)
	std := featureStd(background)
	rng := rand.New(rand.NewSource(cfg.Seed + 0xCF))

	best := Counterfactual{X: append([]float64(nil), x...), Prediction: model.Predict(x)}
	best.Valid = cfg.Target.Met(best.Prediction)
	if best.Valid {
		return best, nil // already satisfies the target; no change needed
	}
	bestScore := math.Inf(1)

	order := make([]int, d)
	for j := range order {
		order[j] = j
	}
	for r := 0; r < restarts; r++ {
		cur := append([]float64(nil), x...)
		changed := map[int]bool{}
		pred := model.Predict(cur)
		for len(changed) < maxChanges && !cfg.Target.Met(pred) {
			if err := xai.Canceled(ctx, "counterfactual"); err != nil {
				return Counterfactual{}, err
			}
			// Greedy: over mutable features (in random order), pick the
			// single (feature, value) move that most reduces the gap,
			// breaking gap ties by distance from the original value so
			// counterfactuals stay as close to x as possible.
			rng.Shuffle(d, func(a, b int) { order[a], order[b] = order[b], order[a] })
			curGap := cfg.Target.gap(pred)
			bestGap, bestDist := math.Inf(1), math.Inf(1)
			bestJ, bestV := -1, 0.0
			for _, j := range order {
				if immutable[j] {
					continue
				}
				orig := cur[j]
				for _, v := range candidates[j] {
					if v == orig {
						continue
					}
					cur[j] = v
					g := cfg.Target.gap(model.Predict(cur))
					dist := math.Abs(v-x[j]) / std[j]
					if g >= curGap-1e-12 {
						continue // must strictly improve on the current state
					}
					if g < bestGap-1e-12 || (math.Abs(g-bestGap) <= 1e-12 && dist < bestDist) {
						bestGap, bestDist, bestJ, bestV = g, dist, j, v
					}
				}
				cur[j] = orig
			}
			if bestJ < 0 {
				break
			}
			cur[bestJ] = bestV
			changed[bestJ] = true
			pred = model.Predict(cur)
		}
		valid := cfg.Target.Met(pred)
		prox := proximity(x, cur, std)
		// Prefer valid, then fewer changes, then closer.
		score := prox + 10*float64(len(changed))
		if !valid {
			score += 1e6 + cfg.Target.gap(pred)
		}
		if score < bestScore {
			bestScore = score
			cs := make([]int, 0, len(changed))
			for j := range changed {
				cs = append(cs, j)
			}
			sort.Ints(cs)
			best = Counterfactual{
				X:          append([]float64(nil), cur...),
				Prediction: pred,
				Changed:    cs,
				Sparsity:   len(cs),
				Proximity:  prox,
				Valid:      valid,
			}
		}
	}
	return best, nil
}

// candidateGrid returns per-feature candidate values at the background
// quantiles.
func candidateGrid(background [][]float64, n int) [][]float64 {
	d := len(background[0])
	out := make([][]float64, d)
	col := make([]float64, len(background))
	for j := 0; j < d; j++ {
		for i, row := range background {
			col[i] = row[j]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		vals := make([]float64, 0, n)
		for k := 0; k < n; k++ {
			q := float64(k) / float64(n-1)
			pos := q * float64(len(sorted)-1)
			lo := int(pos)
			hi := lo
			if lo+1 < len(sorted) {
				hi = lo + 1
			}
			frac := pos - float64(lo)
			v := sorted[lo]*(1-frac) + sorted[hi]*frac
			if len(vals) == 0 || v != vals[len(vals)-1] {
				vals = append(vals, v)
			}
		}
		out[j] = vals
	}
	return out
}

func featureStd(rows [][]float64) []float64 {
	d := len(rows[0])
	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(rows))
	}
	std := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(rows)))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return std
}

func proximity(a, b, std []float64) float64 {
	var s float64
	for j := range a {
		dv := (a[j] - b[j]) / std[j]
		s += dv * dv
	}
	return math.Sqrt(s)
}
