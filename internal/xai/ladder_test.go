package xai_test

import (
	"testing"
	"time"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"

	_ "nfvxai/internal/xai/perm"     // register occlusion
	_ "nfvxai/internal/xai/treeshap" // register treeshap
)

// flat is a predictor with no tree structure: treeshap is incompatible.
type flat struct{}

func (flat) Predict(x []float64) float64 { return 0 }

// cost models one microsecond per prediction over 50 background rows:
// 50 µs per KernelSHAP coalition.
var microCost = xai.CostModel{PredNs: 1000, Background: 50, Features: 8}

func TestPlanBudgetPassThrough(t *testing.T) {
	// Non-ladder methods and zero budgets run exactly as requested.
	p := xai.PlanBudget(flat{}, "lime", xai.Options{Samples: 500}, time.Second, microCost)
	if p.Method != "lime" || p.Downgraded || p.Opts.Samples != 500 {
		t.Fatalf("lime plan = %+v; want untouched pass-through", p)
	}
	p = xai.PlanBudget(flat{}, "kernelshap", xai.Options{Samples: 2048}, 0, microCost)
	if p.Method != "kernelshap" || p.Downgraded {
		t.Fatalf("no-budget plan = %+v; want pass-through", p)
	}
}

func TestPlanBudgetKernelFits(t *testing.T) {
	// 1 s budget, 50 µs per coalition: 0.7 s usable → 14000 coalitions;
	// the requested 2048 fit untouched.
	p := xai.PlanBudget(flat{}, "kernelshap", xai.Options{Samples: 2048}, time.Second, microCost)
	if p.Method != "kernelshap" || p.Downgraded || p.Opts.Samples != 2048 {
		t.Fatalf("plan = %+v; want full-fidelity kernelshap", p)
	}
}

func TestPlanBudgetKernelReduced(t *testing.T) {
	// 30 ms budget → 21 ms usable → 420 coalitions: reduced and
	// pow2-quantized below the requested 2048.
	p := xai.PlanBudget(flat{}, "kernelshap", xai.Options{Samples: 2048}, 30*time.Millisecond, microCost)
	if p.Method != "kernelshap" || !p.Downgraded {
		t.Fatalf("plan = %+v; want downgraded kernelshap", p)
	}
	if p.Opts.Samples != 256 {
		t.Fatalf("samples = %d; want pow2Floor(420) = 256", p.Opts.Samples)
	}
	if p.Reason == "" {
		t.Fatal("downgrade must carry a reason")
	}
}

func TestPlanBudgetFallsToOcclusion(t *testing.T) {
	// 1 ms budget → 0.7 ms usable → 14 coalitions < MinKernelSamples:
	// the ladder lands on the occlusion floor.
	p := xai.PlanBudget(flat{}, "kernelshap", xai.Options{Samples: 2048}, time.Millisecond, microCost)
	if p.Method != "occlusion" || !p.Downgraded {
		t.Fatalf("plan = %+v; want occlusion floor", p)
	}
	if p.Opts.Samples != 0 {
		t.Fatalf("occlusion samples = %d; want 0 (not a sampling method)", p.Opts.Samples)
	}
	if p.Requested != "kernelshap" {
		t.Fatalf("requested = %q; want kernelshap preserved", p.Requested)
	}
}

func TestPlanBudgetTreeshapIncompatibleDescends(t *testing.T) {
	// treeshap requested on a model with no trees: the ladder descends to
	// kernelshap rather than bouncing the request.
	p := xai.PlanBudget(flat{}, "treeshap", xai.Options{}, time.Second, microCost)
	if p.Method != "kernelshap" || !p.Downgraded {
		t.Fatalf("plan = %+v; want descent to kernelshap", p)
	}
}

func TestPlanBudgetUnmeasuredCostAssumesFit(t *testing.T) {
	// PredNs 0 (unmeasured): the ladder cannot price rungs, so the
	// request runs as asked and the context deadline enforces the budget.
	p := xai.PlanBudget(flat{}, "kernelshap", xai.Options{Samples: 2048},
		time.Millisecond, xai.CostModel{Background: 50, Features: 8})
	if p.Method != "kernelshap" || p.Downgraded {
		t.Fatalf("plan = %+v; want trusting pass-through", p)
	}
}

// treeish satisfies the treeshap compatibility probe if any registered —
// sanity-check that a compatible model stays on the top rung.
func TestPlanBudgetTreeshapCompatibleStays(t *testing.T) {
	m, ok := xai.LookupMethod("treeshap")
	if !ok || m.Compatible == nil {
		t.Skip("treeshap not registered with a compatibility probe")
	}
	var tree ml.Predictor = flat{}
	if !m.Compatible(tree) {
		// Expected: flat{} is not a tree. The descent path is covered
		// above; nothing more to assert here.
		return
	}
	p := xai.PlanBudget(tree, "treeshap", xai.Options{}, time.Millisecond, microCost)
	if p.Method != "treeshap" || p.Downgraded {
		t.Fatalf("plan = %+v; want treeshap kept", p)
	}
}
