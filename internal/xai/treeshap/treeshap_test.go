package treeshap

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/tree"
)

// expValue is the brute-force path-dependent conditional expectation
// (Algorithm 1 in the TreeSHAP paper): follow x on features in S, average
// children by cover otherwise.
func expValue(t *tree.Tree, x []float64, s map[int]bool) float64 {
	var rec func(i int) float64
	rec = func(i int) float64 {
		n := t.Nodes[i]
		if n.IsLeaf() {
			return n.Value
		}
		if s[n.Feature] {
			if x[n.Feature] <= n.Threshold {
				return rec(n.Left)
			}
			return rec(n.Right)
		}
		l, r := t.Nodes[n.Left], t.Nodes[n.Right]
		return (l.Cover*rec(n.Left) + r.Cover*rec(n.Right)) / n.Cover
	}
	return rec(0)
}

// bruteShapley enumerates all subsets to compute exact Shapley values of
// the expValue set function.
func bruteShapley(t *tree.Tree, x []float64) []float64 {
	d := len(x)
	n := 1 << uint(d)
	vals := make([]float64, n)
	for bits := 0; bits < n; bits++ {
		s := map[int]bool{}
		for j := 0; j < d; j++ {
			if bits&(1<<uint(j)) != 0 {
				s[j] = true
			}
		}
		vals[bits] = expValue(t, x, s)
	}
	fact := func(k int) float64 {
		r := 1.0
		for i := 2; i <= k; i++ {
			r *= float64(i)
		}
		return r
	}
	phi := make([]float64, d)
	for j := 0; j < d; j++ {
		bit := 1 << uint(j)
		for bits := 0; bits < n; bits++ {
			if bits&bit != 0 {
				continue
			}
			size := 0
			for b := bits; b != 0; b &= b - 1 {
				size++
			}
			w := fact(size) * fact(d-size-1) / fact(d)
			phi[j] += w * (vals[bits|bit] - vals[bits])
		}
	}
	return phi
}

func randomTree(tb testing.TB, seed int64, nFeatures, depth, rows int) (*tree.Tree, *dataset.Dataset) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, nFeatures)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	d := dataset.New(dataset.Regression, names...)
	for i := 0; i < rows; i++ {
		x := make([]float64, nFeatures)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := 0.0
		for j := range x {
			y += float64(j+1) * x[j]
			if j > 0 {
				y += 2 * x[j] * x[j-1]
			}
		}
		d.Add(x, y+rng.NormFloat64()*0.05)
	}
	tr := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: depth, MinLeaf: 2, Seed: seed})
	if err := tr.Fit(d); err != nil {
		tb.Fatal(err)
	}
	return tr, d
}

func TestTreeSHAPMatchesBruteForce(t *testing.T) {
	// The core correctness property: Algorithm 2 == exhaustive Shapley of
	// the path-dependent value function, across many random trees and
	// inputs (including repeated features along paths).
	for seed := int64(0); seed < 15; seed++ {
		tr, d := randomTree(t, seed, 4, 5, 120)
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, 4)
			for j := range x {
				x[j] = rng.Float64() * 1.2
			}
			want := bruteShapley(tr, x)
			got := shapTree(tr, x)
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					t.Fatalf("seed %d trial %d: phi[%d] = %v want %v (leaves=%d depth=%d)\nx=%v",
						seed, trial, j, got[j], want[j], tr.NumLeaves(), tr.Depth(), x)
				}
			}
			_ = d
		}
	}
}

func TestTreeSHAPAdditivity(t *testing.T) {
	tr, _ := randomTree(t, 42, 6, 8, 500)
	e := &Explainer{Model: Single(tr)}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 30; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64()
		}
		attr, err := e.Explain(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if ae := attr.AdditivityError(); ae > 1e-9 {
			t.Fatalf("additivity error %v", ae)
		}
		if attr.Value != tr.Predict(x) {
			t.Fatal("Value != tree prediction")
		}
	}
}

func TestTreeSHAPDummyFeature(t *testing.T) {
	// A feature never used by any split must get zero attribution.
	rng := rand.New(rand.NewSource(7))
	d := dataset.New(dataset.Regression, "informative", "dummy")
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64()}
		y := 0.0
		if x[0] > 5 {
			y = 100
		}
		d.Add(x, y)
	}
	tr := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: 4})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	e := &Explainer{Model: Single(tr)}
	attr, err := e.Explain(context.Background(), []float64{8, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Phi[1] != 0 {
		t.Fatalf("dummy attribution %v", attr.Phi[1])
	}
	if attr.Phi[0] <= 0 {
		t.Fatalf("informative attribution %v should be positive for x above threshold", attr.Phi[0])
	}
}

func TestExpectedValueMatchesCoverAverage(t *testing.T) {
	tr, d := randomTree(t, 5, 3, 6, 400)
	// For a tree fit on the full data, the cover-weighted expectation must
	// equal the mean training prediction (each row lands in its leaf).
	var mean float64
	for _, x := range d.X {
		mean += tr.Predict(x)
	}
	mean /= float64(d.Len())
	if ev := ExpectedValue(tr); math.Abs(ev-mean) > 1e-9 {
		t.Fatalf("ExpectedValue %v != mean train prediction %v", ev, mean)
	}
}

func TestEnsembleLinearity(t *testing.T) {
	// Ensemble attribution must equal the weighted sum of per-tree
	// attributions.
	t1, _ := randomTree(t, 11, 4, 4, 200)
	t2, _ := randomTree(t, 12, 4, 5, 200)
	x := []float64{0.2, 0.8, 0.5, 0.1}
	e1, _ := (&Explainer{Model: Single(t1)}).Explain(context.Background(), x)
	e2, _ := (&Explainer{Model: Single(t2)}).Explain(context.Background(), x)

	combo := comboEnsemble{trees: []*tree.Tree{t1, t2}, w: []float64{0.3, 0.7}, base: 5}
	attr, err := (&Explainer{Model: combo}).Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range attr.Phi {
		want := 0.3*e1.Phi[j] + 0.7*e2.Phi[j]
		if math.Abs(attr.Phi[j]-want) > 1e-12 {
			t.Fatalf("linearity violated at %d: %v vs %v", j, attr.Phi[j], want)
		}
	}
	if math.Abs(attr.Base-(5+0.3*e1.Base+0.7*e2.Base)) > 1e-12 {
		t.Fatal("ensemble base wrong")
	}
}

type comboEnsemble struct {
	trees []*tree.Tree
	w     []float64
	base  float64
}

func (c comboEnsemble) ComponentTrees() ([]*tree.Tree, []float64, float64) {
	return c.trees, c.w, c.base
}

func TestRandomForestTreeSHAP(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := dataset.New(dataset.Regression, "a", "b", "c")
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d.Add(x, 5*x[0]+x[1]*x[1])
	}
	f := forest.RandomForest{NumTrees: 15, MaxDepth: 6, Task: dataset.Regression, Seed: 21}
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	e := &Explainer{Model: &f}
	attr, err := e.Explain(context.Background(), []float64{0.9, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ae := attr.AdditivityError(); ae > 1e-9 {
		t.Fatalf("forest additivity error %v", ae)
	}
	if math.Abs(attr.Value-f.Predict([]float64{0.9, 0.5, 0.5})) > 1e-12 {
		t.Fatal("forest Value mismatch")
	}
	// The dominant feature must receive the largest |phi|.
	if attr.Ranking()[0] != 0 {
		t.Fatalf("expected feature 0 to dominate, ranking %v, phi %v", attr.Ranking(), attr.Phi)
	}
}

func TestGradientBoostingTreeSHAP(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := dataset.New(dataset.Regression, "a", "b")
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.Add(x, 3*x[0]-x[1])
	}
	g := forest.GradientBoosting{NumRounds: 30, Task: dataset.Regression, Seed: 23}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	e := &Explainer{Model: &g}
	x := []float64{0.8, 0.2}
	attr, err := e.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(attr.Value-g.RawScore(x)) > 1e-9 {
		t.Fatalf("gbt Value %v != raw score %v", attr.Value, g.RawScore(x))
	}
	if ae := attr.AdditivityError(); ae > 1e-9 {
		t.Fatalf("gbt additivity error %v", ae)
	}
}

func TestExplainerErrors(t *testing.T) {
	e := &Explainer{Model: comboEnsemble{}}
	if _, err := e.Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected empty-ensemble error")
	}
	t1, _ := randomTree(t, 30, 3, 3, 100)
	bad := comboEnsemble{trees: []*tree.Tree{t1}, w: []float64{1, 2}}
	if _, err := (&Explainer{Model: bad}).Explain(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("expected weight-mismatch error")
	}
	if _, err := (&Explainer{Model: Single(t1)}).Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected feature-width error")
	}
}

func TestStumpTree(t *testing.T) {
	// A single-leaf tree attributes nothing.
	d := dataset.New(dataset.Regression, "x")
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, 7)
	}
	tr := tree.New(tree.Config{Task: dataset.Regression})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	attr, err := (&Explainer{Model: Single(tr)}).Explain(context.Background(), []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Phi[0] != 0 || attr.Base != 7 || attr.Value != 7 {
		t.Fatalf("stump attribution %+v", attr)
	}
}

func BenchmarkTreeSHAPDepth8(b *testing.B) {
	tr, _ := randomTree(b, 99, 8, 8, 2000)
	x := make([]float64, 8)
	for j := range x {
		x[j] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shapTree(tr, x)
	}
}
