// Package treeshap implements the path-dependent TreeSHAP algorithm
// (Lundberg, Erion & Lee, 2018): exact Shapley values for CART trees and
// tree ensembles in O(leaves · depth²) per tree, using per-node training
// covers to define the conditional expectations. The attribution explains
// the ensemble's additive raw score (for gradient boosting that is the
// margin/log-odds).
package treeshap

import (
	"context"
	"errors"
	"fmt"

	"nfvxai/internal/ml"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/xai"
)

// init registers TreeSHAP in the xai method registry. It is exact and
// deterministic but tree-only: the model must decompose into an additive
// ensemble of CART trees (Ensemble, or a bare *tree.Tree).
func init() {
	xai.Register(xai.Method{
		Name: "treeshap",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			TreeOnly:      true,
			SupportsBatch: true,
			Deterministic: true,
			Additive:      true,
		},
		Compatible: func(m ml.Predictor) bool {
			_, ok := asEnsemble(m)
			return ok
		},
		Build: func(t xai.Target, _ xai.Options) (xai.Explainer, error) {
			ens, ok := asEnsemble(t.Model)
			if !ok {
				return nil, fmt.Errorf("%w: treeshap needs an additive tree ensemble", xai.ErrUnsupportedModel)
			}
			return &Explainer{Model: ens, Names: t.Names}, nil
		},
	})
}

// asEnsemble adapts a predictor to the additive-tree contract when it has
// one: Ensemble implementations pass through, lone CART trees are wrapped.
func asEnsemble(m ml.Predictor) (Ensemble, bool) {
	switch t := m.(type) {
	case Ensemble:
		return t, true
	case *tree.Tree:
		return Single(t), true
	default:
		return nil, false
	}
}

// Ensemble is the additive tree-model contract: a weighted sum of CART
// trees plus a constant base offset. forest.RandomForest and
// forest.GradientBoosting implement it.
type Ensemble interface {
	ComponentTrees() (trees []*tree.Tree, weights []float64, base float64)
}

// singleTree adapts one CART tree to the Ensemble interface.
type singleTree struct{ t *tree.Tree }

func (s singleTree) ComponentTrees() ([]*tree.Tree, []float64, float64) {
	return []*tree.Tree{s.t}, []float64{1}, 0
}

// Single wraps a lone CART tree as an Ensemble.
func Single(t *tree.Tree) Ensemble { return singleTree{t} }

// Explainer computes TreeSHAP attributions for an additive tree ensemble.
type Explainer struct {
	Model Ensemble
	// Names are optional feature names copied into attributions.
	Names []string
}

// Explain returns the exact (path-dependent) Shapley attribution at x.
// Cancellation is checked once per component tree.
func (e *Explainer) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	trees, weights, base := e.Model.ComponentTrees()
	if len(trees) == 0 {
		return xai.Attribution{}, errors.New("treeshap: empty ensemble")
	}
	if len(trees) != len(weights) {
		return xai.Attribution{}, fmt.Errorf("treeshap: %d trees but %d weights", len(trees), len(weights))
	}
	d := len(x)
	phi := make([]float64, d)
	baseValue := base
	value := base
	for i, t := range trees {
		if err := xai.Canceled(ctx, "treeshap"); err != nil {
			return xai.Attribution{}, err
		}
		if t.NumFeatures() > d {
			return xai.Attribution{}, fmt.Errorf("treeshap: tree expects %d features, input has %d", t.NumFeatures(), d)
		}
		w := weights[i]
		tp := shapTree(t, x)
		for j := range tp {
			phi[j] += w * tp[j]
		}
		baseValue += w * ExpectedValue(t)
		value += w * t.Predict(x)
	}
	return xai.Attribution{Names: e.Names, Phi: phi, Base: baseValue, Value: value}, nil
}

// ExpectedValue returns the cover-weighted mean leaf value of the tree,
// i.e. the path-dependent expectation E[f] that TreeSHAP measures
// contributions against.
func ExpectedValue(t *tree.Tree) float64 {
	var rec func(i int) float64
	rec = func(i int) float64 {
		n := t.Nodes[i]
		if n.IsLeaf() {
			return n.Value
		}
		l, r := t.Nodes[n.Left], t.Nodes[n.Right]
		return (l.Cover*rec(n.Left) + r.Cover*rec(n.Right)) / n.Cover
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return rec(0)
}

// pathElem is one entry of the feature path maintained by the recursion.
// Fields follow the paper's notation: d = feature index, z = fraction of
// paths flowing through when the feature is "cold" (not fixed to x),
// o = fraction when "hot" (fixed to x), w = permutation weight.
type pathElem struct {
	d    int
	z, o float64
	w    float64
}

// shapTree computes per-feature Shapley contributions for a single tree.
func shapTree(t *tree.Tree, x []float64) []float64 {
	phi := make([]float64, len(x))
	if len(t.Nodes) == 0 {
		return phi
	}
	// The unique-feature path can hold at most depth+2 entries.
	recurse(t, x, phi, 0, nil, 1, 1, -1)
	return phi
}

// recurse implements RECURSE from Algorithm 2. m is the current unique
// path (1-based semantics preserved by convention: element 0 is the
// placeholder for the root "no feature" entry).
func recurse(t *tree.Tree, x []float64, phi []float64, j int, m []pathElem, pz, po float64, pi int) {
	m = extend(m, pz, po, pi)
	n := t.Nodes[j]
	if n.IsLeaf() {
		for i := 1; i < len(m); i++ {
			w := unwoundSum(m, i)
			phi[m[i].d] += w * (m[i].o - m[i].z) * n.Value
		}
		return
	}
	hot, cold := n.Left, n.Right
	if x[n.Feature] > n.Threshold {
		hot, cold = n.Right, n.Left
	}
	iz, io := 1.0, 1.0
	// If the feature already occurs on the path, undo its previous
	// extension and inherit its fractions.
	for k := 1; k < len(m); k++ {
		if m[k].d == n.Feature {
			iz, io = m[k].z, m[k].o
			m = unwind(m, k)
			break
		}
	}
	rj := n.Cover
	recurse(t, x, phi, hot, m, iz*t.Nodes[hot].Cover/rj, io, n.Feature)
	recurse(t, x, phi, cold, m, iz*t.Nodes[cold].Cover/rj, 0, n.Feature)
}

// extend implements EXTEND: grow the path by one feature with cold/hot
// fractions pz/po and update the permutation weights.
func extend(m []pathElem, pz, po float64, pi int) []pathElem {
	l := len(m) // current element count (0 on first call)
	out := make([]pathElem, l+1)
	copy(out, m)
	w := 0.0
	if l == 0 {
		w = 1
	}
	out[l] = pathElem{d: pi, z: pz, o: po, w: w}
	for i := l - 1; i >= 0; i-- {
		out[i+1].w += po * out[i].w * float64(i+1) / float64(l+1)
		out[i].w = pz * out[i].w * float64(l-i) / float64(l+1)
	}
	return out
}

// unwind implements UNWIND: remove path element i, reversing its EXTEND.
func unwind(m []pathElem, i int) []pathElem {
	l := len(m) - 1 // index of the last element
	out := make([]pathElem, l)
	copy(out, m[:l])
	// Restore weights.
	oi, zi := m[i].o, m[i].z
	n := m[l].w
	if oi != 0 {
		for j := l - 1; j >= 0; j-- {
			tmp := out[j].w
			out[j].w = n * float64(l+1) / (float64(j+1) * oi)
			n = tmp - out[j].w*zi*float64(l-j)/float64(l+1)
		}
	} else {
		for j := l - 1; j >= 0; j-- {
			out[j].w = out[j].w * float64(l+1) / (zi * float64(l-j))
		}
	}
	// Shift elements above i down.
	for j := i; j < l; j++ {
		out[j].d, out[j].z, out[j].o = m[j+1].d, m[j+1].z, m[j+1].o
	}
	return out
}

// unwoundSum returns the sum of weights after notionally unwinding element
// i, without materializing the unwound path.
func unwoundSum(m []pathElem, i int) float64 {
	l := len(m) - 1
	oi, zi := m[i].o, m[i].z
	var total float64
	if oi != 0 {
		n := m[l].w
		for j := l - 1; j >= 0; j-- {
			tmp := n * float64(l+1) / (float64(j+1) * oi)
			total += tmp
			n = m[j].w - tmp*zi*float64(l-j)/float64(l+1)
		}
	} else {
		for j := l - 1; j >= 0; j-- {
			total += m[j].w * float64(l+1) / (zi * float64(l-j))
		}
	}
	return total
}
