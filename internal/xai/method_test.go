package xai

import (
	"context"
	"errors"
	"testing"

	"nfvxai/internal/ml"
)

// constExplainer is a trivial local explainer for registry tests.
type constExplainer struct{ phi float64 }

func (c constExplainer) Explain(_ context.Context, x []float64) (Attribution, error) {
	phi := make([]float64, len(x))
	for j := range phi {
		phi[j] = c.phi
	}
	return Attribution{Phi: phi}, nil
}

// flatModel is a minimal predictor for compatibility checks.
type flatModel struct{}

func (flatModel) Predict([]float64) float64 { return 0 }

// registerTestMethods registers two throwaway methods once per test
// binary; individual tests share them.
func registerTestMethods(t *testing.T) {
	t.Helper()
	if _, ok := LookupMethod("test-local"); ok {
		return
	}
	Register(Method{
		Name:     "test-local",
		Kind:     KindLocal,
		Defaults: Options{Samples: 7},
		Build: func(tg Target, o Options) (Explainer, error) {
			return constExplainer{phi: float64(len(tg.Background))}, nil
		},
	})
	Register(Method{
		Name: "test-global",
		Kind: KindGlobal,
	})
	Register(Method{
		Name:       "test-picky",
		Kind:       KindLocal,
		Compatible: func(m ml.Predictor) bool { return false },
		Build: func(Target, Options) (Explainer, error) {
			return constExplainer{}, nil
		},
	})
}

func TestRegisterAndLookup(t *testing.T) {
	registerTestMethods(t)
	m, ok := LookupMethod("test-local")
	if !ok || m.Name != "test-local" || m.Kind != KindLocal {
		t.Fatalf("lookup: %+v ok=%v", m, ok)
	}
	if _, ok := LookupMethod("nope"); ok {
		t.Fatal("lookup of unregistered method succeeded")
	}
	// Methods() is sorted and contains the registrations.
	names := MethodNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MethodNames unsorted: %v", names)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	registerTestMethods(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Method{Name: "test-local", Kind: KindLocal})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(Method{})
}

func TestMethodsForFiltersIncompatible(t *testing.T) {
	registerTestMethods(t)
	var saw []string
	for _, m := range MethodsFor(flatModel{}) {
		saw = append(saw, m.Name)
	}
	has := func(name string) bool {
		for _, n := range saw {
			if n == name {
				return true
			}
		}
		return false
	}
	if !has("test-local") || !has("test-global") {
		t.Fatalf("compatible methods missing from %v", saw)
	}
	if has("test-picky") {
		t.Fatalf("incompatible method listed: %v", saw)
	}
}

func TestBuildExplainerErrors(t *testing.T) {
	registerTestMethods(t)
	tgt := Target{Model: flatModel{}, Background: [][]float64{{1}, {2}}}
	if _, _, err := BuildExplainer("nope", tgt, Options{}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, _, err := BuildExplainer("test-global", tgt, Options{}); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("global method on local path: %v", err)
	}
	if _, _, err := BuildExplainer("test-picky", tgt, Options{}); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("incompatible model: %v", err)
	}
}

func TestBuildExplainerTruncatesBackground(t *testing.T) {
	registerTestMethods(t)
	bg := [][]float64{{1}, {2}, {3}, {4}}
	e, _, err := BuildExplainer("test-local", Target{Model: flatModel{}, Background: bg}, Options{BackgroundSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// constExplainer encodes len(background) in its phi.
	a, err := e.Explain(context.Background(), []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Phi[0] != 2 {
		t.Fatalf("background not truncated: phi %v", a.Phi)
	}
}

func TestOptionsKeyDistinguishesParams(t *testing.T) {
	a := Options{Samples: 128, Seed: 1}
	b := Options{Samples: 256, Seed: 1}
	if a.Key() == b.Key() {
		t.Fatal("different options share a key")
	}
	if a.Key() != (Options{Samples: 128, Seed: 1}).Key() {
		t.Fatal("equal options produce different keys")
	}
}

func TestCanceled(t *testing.T) {
	if err := Canceled(context.Background(), "m"); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx, "m")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
}

func TestExplainBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	xs := [][]float64{{1}, {2}, {3}}
	_, err := ExplainBatch(ctx, blockingExplainer{}, xs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
}

// blockingExplainer honors ctx like the real explainers do.
type blockingExplainer struct{}

func (blockingExplainer) Explain(ctx context.Context, x []float64) (Attribution, error) {
	if err := ctx.Err(); err != nil {
		return Attribution{}, err
	}
	return Attribution{Phi: make([]float64, len(x))}, nil
}
