package lime

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
)

// TestBatchedNeighborhoodParity: the neighborhood is now scored through
// the model's batch path; hiding the same model behind a plain Predictor
// (forcing the row-loop fallback) must not change the attribution.
func TestBatchedNeighborhoodParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := dataset.New(dataset.Regression, "a", "b", "c", "d", "e")
	for i := 0; i < 200; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.Add(x, x[0]*3-x[1]*x[2]+0.1*rng.NormFloat64())
	}
	rf := &forest.RandomForest{NumTrees: 10, MaxDepth: 5, Task: dataset.Regression, Seed: 2}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	bg := d.X[:30]
	x := d.X[40]
	native := &Explainer{Model: rf, Background: bg, NumSamples: 400, Seed: 6}
	generic := &Explainer{Model: ml.PredictorFunc(rf.Predict), Background: bg, NumSamples: 400, Seed: 6}
	a, err := native.ExplainDetailed(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generic.ExplainDetailed(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LocalR2-b.LocalR2) > 1e-9 {
		t.Fatalf("LocalR2 drift: %v vs %v", a.LocalR2, b.LocalR2)
	}
	for j := range a.Phi {
		if diff := math.Abs(a.Phi[j] - b.Phi[j]); diff > 1e-9 {
			t.Fatalf("phi[%d]: native %v vs generic %v (diff %g)", j, a.Phi[j], b.Phi[j], diff)
		}
	}
}
