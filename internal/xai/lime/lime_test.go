package lime

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
)

func background(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func TestLimeLinearModelSigns(t *testing.T) {
	// For a linear model, LIME coefficients must have the sign of
	// w_j·(x_j − E[x_j]) and be ordered by that magnitude.
	rng := rand.New(rand.NewSource(1))
	model := ml.PredictorFunc(func(x []float64) float64 {
		return 5*x[0] - 3*x[1] + 0.0*x[2]
	})
	bg := background(rng, 100, 3)
	x := []float64{2, 2, 2}
	e := &Explainer{Model: model, Background: bg, NumSamples: 3000, Seed: 2}
	res, err := e.ExplainDetailed(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi[0] <= 0 {
		t.Fatalf("phi[0] = %v want > 0", res.Phi[0])
	}
	if res.Phi[1] >= 0 {
		t.Fatalf("phi[1] = %v want < 0", res.Phi[1])
	}
	if math.Abs(res.Phi[2]) > 0.35 {
		t.Fatalf("irrelevant feature |phi| = %v", math.Abs(res.Phi[2]))
	}
	if math.Abs(res.Phi[0]) <= math.Abs(res.Phi[2]) {
		t.Fatal("informative feature not ranked above noise")
	}
	// A linear model is globally additive in the binary representation;
	// the surrogate captures the z-induced variation, with residual noise
	// only from which background row supplied the replacements.
	if res.LocalR2 < 0.5 {
		t.Fatalf("local R2 = %v", res.LocalR2)
	}
}

func TestLimeApproximatesShapOnAdditiveModel(t *testing.T) {
	// On an additive model with binary masking the LIME coefficient for
	// feature j estimates E_b[f_j(x_j) − f_j(b_j)], the same quantity SHAP
	// assigns; check rough agreement.
	rng := rand.New(rand.NewSource(3))
	model := ml.PredictorFunc(func(x []float64) float64 {
		return 2*x[0] + x[1]*x[1]
	})
	bg := background(rng, 200, 2)
	x := []float64{1.5, 2}
	e := &Explainer{Model: model, Background: bg, NumSamples: 4000, Seed: 4}
	res, err := e.ExplainDetailed(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	var m0, m1 float64
	for _, b := range bg {
		m0 += 2*x[0] - 2*b[0]
		m1 += x[1]*x[1] - b[1]*b[1]
	}
	m0 /= float64(len(bg))
	m1 /= float64(len(bg))
	if math.Abs(res.Phi[0]-m0) > 0.4 {
		t.Fatalf("phi[0] = %v want ≈ %v", res.Phi[0], m0)
	}
	if math.Abs(res.Phi[1]-m1) > 0.6 {
		t.Fatalf("phi[1] = %v want ≈ %v", res.Phi[1], m1)
	}
}

func TestLimeDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] * x[1] })
	bg := background(rng, 50, 2)
	e1 := &Explainer{Model: model, Background: bg, NumSamples: 500, Seed: 7}
	e2 := &Explainer{Model: model, Background: bg, NumSamples: 500, Seed: 7}
	a1, err := e1.Explain(context.Background(), []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e2.Explain(context.Background(), []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a1.Phi {
		if a1.Phi[j] != a2.Phi[j] {
			t.Fatal("same seed differs")
		}
	}
}

func TestLimeValueIsModelOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := ml.PredictorFunc(func(x []float64) float64 { return 3 * x[0] })
	bg := background(rng, 30, 1)
	e := &Explainer{Model: model, Background: bg, NumSamples: 300, Seed: 9}
	attr, err := e.Explain(context.Background(), []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Value != 6 {
		t.Fatalf("Value = %v want 6", attr.Value)
	}
}

func TestLimeKernelWidthAffectsLocality(t *testing.T) {
	// A narrow kernel should fit the local slope of a piecewise function
	// better than an extremely wide kernel at a point near a regime
	// boundary; at minimum the two must differ, proving the kernel is
	// actually applied.
	rng := rand.New(rand.NewSource(10))
	model := ml.PredictorFunc(func(x []float64) float64 {
		if x[0] > 0 {
			return 10 * x[0]
		}
		return -x[0]
	})
	bg := background(rng, 200, 1)
	narrow := &Explainer{Model: model, Background: bg, NumSamples: 2000, KernelWidth: 0.2, Seed: 11}
	wide := &Explainer{Model: model, Background: bg, NumSamples: 2000, KernelWidth: 50, Seed: 11}
	an, err := narrow.Explain(context.Background(), []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	aw, err := wide.Explain(context.Background(), []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if an.Phi[0] == aw.Phi[0] {
		t.Fatal("kernel width has no effect")
	}
}

func TestLimeErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := (&Explainer{Model: model}).Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected empty-background error")
	}
	if _, err := (&Explainer{Model: model, Background: [][]float64{{1, 2}}}).Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected width mismatch error")
	}
	if _, err := (&Explainer{Model: model, Background: [][]float64{{1}}}).Explain(context.Background(), nil); err == nil {
		t.Fatal("expected empty-input error")
	}
}

func TestLimeAdditivityGap(t *testing.T) {
	// LIME does not enforce efficiency; but base + Σ phi should still be
	// in the vicinity of f(x) for additive models (the surrogate passes
	// near the anchored instance).
	rng := rand.New(rand.NewSource(12))
	model := ml.PredictorFunc(func(x []float64) float64 { return 4*x[0] + x[1] })
	bg := background(rng, 100, 2)
	e := &Explainer{Model: model, Background: bg, NumSamples: 3000, Seed: 13}
	attr, err := e.Explain(context.Background(), []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if attr.AdditivityError() > 1.0 {
		t.Fatalf("additivity gap %v too large for additive model", attr.AdditivityError())
	}
}
