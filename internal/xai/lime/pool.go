// Pooled scratch for the LIME hot path. One ExplainDetailed call builds
// four large transients — the (n+1)×(d+1) binary design matrix, the
// perturbation matrix of n+1 hybrid rows, and the target/weight vectors.
// Under a serving workload those dominate the allocation profile;
// sync.Pool recycles them across calls.
//
// Everything here is handed out dirty: the neighborhood loop writes
// every design-matrix cell, every perturbation-row element, and every
// target and weight before anything reads them, so no zeroing is needed
// on reuse.
package lime

import (
	"math/rand"
	"sync"
)

// neighborhoodBuf holds one call's neighborhood storage: the flat
// design-matrix backing (wrapped by mat.NewDenseData), the targets and
// kernel weights, the perturbation matrix (flat backing plus row
// headers, re-carved per call because d varies between pooled users),
// and the surrogate coefficient vector (phi copies out of it before
// release).
type neighborhoodBuf struct {
	aData    []float64
	y        []float64
	w        []float64
	zBacking []float64
	zRows    [][]float64
	coef     []float64
}

var neighborhoodPool = sync.Pool{New: func() any { return new(neighborhoodBuf) }}

// getNeighborhood returns storage for rows perturbed samples over d
// features (the design matrix gets d+1 columns for the intercept).
func getNeighborhood(rows, d int) *neighborhoodBuf {
	b := neighborhoodPool.Get().(*neighborhoodBuf)
	if cap(b.aData) < rows*(d+1) {
		b.aData = make([]float64, rows*(d+1))
	}
	b.aData = b.aData[:rows*(d+1)]
	if cap(b.y) < rows {
		b.y = make([]float64, rows)
	}
	b.y = b.y[:rows]
	if cap(b.w) < rows {
		b.w = make([]float64, rows)
	}
	b.w = b.w[:rows]
	if cap(b.zBacking) < rows*d {
		b.zBacking = make([]float64, rows*d)
	}
	b.zBacking = b.zBacking[:rows*d]
	if cap(b.zRows) < rows {
		b.zRows = make([][]float64, rows)
	}
	b.zRows = b.zRows[:rows]
	for i := range b.zRows {
		b.zRows[i] = b.zBacking[i*d : (i+1)*d]
	}
	if cap(b.coef) < d+1 {
		b.coef = make([]float64, d+1)
	}
	b.coef = b.coef[:d+1]
	return b
}

// release returns the buffer to the pool. The caller must be done with
// the design matrix and every slice handed out: they alias the pooled
// storage and will be scribbled over by the next call.
func (b *neighborhoodBuf) release() { neighborhoodPool.Put(b) }

// seededRand is a pooled deterministic rng; re-seeding through the
// rand.Source interface resets the stream exactly as a fresh
// rand.NewSource(seed) would, so pooling never changes a seed's draws.
type seededRand struct {
	src rand.Source
	*rand.Rand
}

var rngPool = sync.Pool{New: func() any {
	src := rand.NewSource(0)
	return &seededRand{src: src, Rand: rand.New(src)}
}}

func getRNG(seed int64) *seededRand {
	r := rngPool.Get().(*seededRand)
	r.src.Seed(seed)
	return r
}

func putRNG(r *seededRand) { rngPool.Put(r) }
