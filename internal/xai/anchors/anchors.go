// Package anchors implements anchor explanations (Ribeiro et al., AAAI
// 2018) for tabular models: a minimal rule — a conjunction of feature
// predicates like "util_ids > 0.72 AND burst = high" — such that inputs
// satisfying the rule almost always receive the same model verdict as the
// explained instance. Anchors give NFV operators reusable playbook
// conditions rather than per-instance attributions.
package anchors

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// init registers anchors in the xai method registry. The Explainer
// adapter renders the found rule as an attribution: anchored features
// carry the rule's precision as their score, so ranked output surfaces
// the conditions of the playbook rule.
func init() {
	xai.Register(xai.Method{
		Name: "anchors",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			NeedsBackground: true,
			SupportsBatch:   true,
			Deterministic:   true,
		},
		Defaults: xai.Options{Threshold: 0.95, Samples: 300},
		Build: func(t xai.Target, o xai.Options) (xai.Explainer, error) {
			return &Explainer{
				Model:      t.Model,
				Background: t.Background,
				Names:      t.Names,
				Config: Config{
					Threshold: o.Threshold,
					Samples:   o.Samples,
					Seed:      o.Seed,
				},
			}, nil
		},
	})
}

// Explainer adapts the anchor search to the xai.Explainer interface. The
// returned attribution sets Phi[j] to the rule's precision for every
// anchored feature j (0 elsewhere), Base to the rule's coverage, and
// Value to the model output at x — a ranked view of which telemetry
// conditions pin the verdict.
type Explainer struct {
	Model      ml.Predictor
	Background [][]float64
	Names      []string
	Config     Config
}

// Explain implements xai.Explainer.
func (e *Explainer) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	a, err := Explain(ctx, e.Model, x, e.Background, e.Config)
	if err != nil {
		return xai.Attribution{}, err
	}
	phi := make([]float64, len(x))
	for _, p := range a.Predicates {
		phi[p.Feature] = a.Precision
	}
	return xai.Attribution{
		Names: e.Names,
		Phi:   phi,
		Base:  a.Coverage,
		Value: e.Model.Predict(x),
	}, nil
}

// Predicate constrains one feature to a half-open quantile interval.
type Predicate struct {
	Feature int
	// Lo and Hi bound the feature value (inclusive lo, exclusive hi);
	// either may be infinite (represented by LoOpen/HiOpen).
	Lo, Hi         float64
	LoOpen, HiOpen bool // true when the corresponding bound is absent
}

// Matches reports whether x satisfies the predicate.
func (p Predicate) Matches(x []float64) bool {
	v := x[p.Feature]
	if !p.LoOpen && v < p.Lo {
		return false
	}
	if !p.HiOpen && v >= p.Hi {
		return false
	}
	return true
}

// Format renders the predicate with a feature name.
func (p Predicate) Format(name string) string {
	switch {
	case p.LoOpen && p.HiOpen:
		return name + " = any"
	case p.LoOpen:
		return fmt.Sprintf("%s < %.4g", name, p.Hi)
	case p.HiOpen:
		return fmt.Sprintf("%s >= %.4g", name, p.Lo)
	default:
		return fmt.Sprintf("%.4g <= %s < %.4g", p.Lo, name, p.Hi)
	}
}

// Anchor is a found rule with its quality estimates.
type Anchor struct {
	Predicates []Predicate
	// Precision is the estimated probability that inputs matching the
	// rule get the same verdict as the explained instance.
	Precision float64
	// Coverage is the fraction of background rows matching the rule.
	Coverage float64
}

// Format renders the rule.
func (a Anchor) Format(names []string) string {
	if len(a.Predicates) == 0 {
		return "TRUE (empty anchor)"
	}
	parts := make([]string, len(a.Predicates))
	for i, p := range a.Predicates {
		name := fmt.Sprintf("f%d", p.Feature)
		if p.Feature < len(names) {
			name = names[p.Feature]
		}
		parts[i] = p.Format(name)
	}
	return strings.Join(parts, " AND ")
}

// Config controls the anchor search.
type Config struct {
	// Threshold is the target precision (default 0.95).
	Threshold float64
	// Bins is the number of quantile bins per feature (default 4).
	Bins int
	// Samples is the Monte Carlo budget per precision estimate
	// (default 300).
	Samples int
	// MaxPredicates bounds rule length (default 4).
	MaxPredicates int
	// Seed drives sampling.
	Seed int64
}

// Explain finds an anchor for the model's verdict at x. The verdict of an
// input z is (model.Predict(z) >= 0.5) for probability models, or
// sign-of-deviation agreement for regression via the supplied verdict
// function in ExplainVerdict; Explain uses the 0.5 threshold.
func Explain(ctx context.Context, model ml.Predictor, x []float64, background [][]float64, cfg Config) (Anchor, error) {
	return ExplainVerdict(ctx, model, x, background, cfg, func(p float64) bool { return p >= 0.5 })
}

// ExplainVerdict finds an anchor under a custom verdict function mapping
// the model output to a class. Cancellation is checked once per candidate
// precision estimate, the unit of Monte Carlo work.
func ExplainVerdict(ctx context.Context, model ml.Predictor, x []float64, background [][]float64, cfg Config, verdict func(float64) bool) (Anchor, error) {
	if len(x) == 0 {
		return Anchor{}, errors.New("anchors: empty input")
	}
	if len(background) < 4 {
		return Anchor{}, errors.New("anchors: background too small")
	}
	threshold := cfg.Threshold
	if threshold <= 0 || threshold > 1 {
		threshold = 0.95
	}
	bins := cfg.Bins
	if bins < 2 {
		bins = 4
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 300
	}
	maxPred := cfg.MaxPredicates
	if maxPred <= 0 {
		maxPred = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0xA2C4))
	want := verdict(model.Predict(x))

	// Candidate predicates: for each feature, the quantile bin containing
	// x's value.
	candidates := make([]Predicate, 0, len(x))
	for j := range x {
		candidates = append(candidates, binOf(background, j, x[j], bins))
	}

	// Greedy anchor construction: repeatedly add the predicate that most
	// increases estimated precision until the threshold is met.
	var current []Predicate
	used := map[int]bool{}
	best := Anchor{Precision: estimatePrecision(model, x, background, nil, samples, rng, verdict, want)}
	for len(current) < maxPred && best.Precision < threshold {
		bestGain := -1.0
		bestIdx := -1
		var bestPrec float64
		for ci, cand := range candidates {
			if used[ci] {
				continue
			}
			if err := xai.Canceled(ctx, "anchors"); err != nil {
				return Anchor{}, err
			}
			trial := append(append([]Predicate(nil), current...), cand)
			prec := estimatePrecision(model, x, background, trial, samples, rng, verdict, want)
			if gain := prec - best.Precision; gain > bestGain {
				bestGain = gain
				bestIdx = ci
				bestPrec = prec
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		current = append(current, candidates[bestIdx])
		best = Anchor{Predicates: append([]Predicate(nil), current...), Precision: bestPrec}
	}
	best.Coverage = coverage(background, best.Predicates)
	return best, nil
}

// estimatePrecision samples perturbed inputs that keep the anchored
// features at x and draw the rest from the background, and returns the
// fraction with the wanted verdict.
func estimatePrecision(model ml.Predictor, x []float64, background [][]float64, preds []Predicate, samples int, rng *rand.Rand, verdict func(float64) bool, want bool) float64 {
	anchored := map[int]bool{}
	for _, p := range preds {
		anchored[p.Feature] = true
	}
	z := make([]float64, len(x))
	agree := 0
	for s := 0; s < samples; s++ {
		bg := background[rng.Intn(len(background))]
		for j := range z {
			if anchored[j] {
				z[j] = x[j]
			} else {
				z[j] = bg[j]
			}
		}
		if verdict(model.Predict(z)) == want {
			agree++
		}
	}
	return float64(agree) / float64(samples)
}

// coverage is the fraction of background rows satisfying all predicates.
func coverage(background [][]float64, preds []Predicate) float64 {
	if len(preds) == 0 {
		return 1
	}
	hit := 0
	for _, row := range background {
		ok := true
		for _, p := range preds {
			if !p.Matches(row) {
				ok = false
				break
			}
		}
		if ok {
			hit++
		}
	}
	return float64(hit) / float64(len(background))
}

// binOf returns the quantile-bin predicate containing value v of feature j.
func binOf(background [][]float64, j int, v float64, bins int) Predicate {
	col := make([]float64, len(background))
	for i, row := range background {
		col[i] = row[j]
	}
	sort.Float64s(col)
	// Bin edges at quantiles 1/bins .. (bins-1)/bins.
	edges := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		pos := float64(b) / float64(bins) * float64(len(col)-1)
		lo := int(pos)
		hi := lo
		if lo+1 < len(col) {
			hi = lo + 1
		}
		frac := pos - float64(lo)
		e := col[lo]*(1-frac) + col[hi]*frac
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	p := Predicate{Feature: j, LoOpen: true, HiOpen: true}
	for _, e := range edges {
		if v < e {
			p.Hi = e
			p.HiOpen = false
			break
		}
		p.Lo = e
		p.LoOpen = false
	}
	return p
}
