package anchors

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"nfvxai/internal/ml"
)

func uniformBackground(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		out[i] = row
	}
	return out
}

func TestAnchorFindsDecisiveFeature(t *testing.T) {
	// Model: class 1 iff x0 > 0.75. The anchor for a deep positive
	// instance should pin feature 0 (top quantile bin) and reach high
	// precision; other features are irrelevant.
	rng := rand.New(rand.NewSource(1))
	model := ml.PredictorFunc(func(x []float64) float64 {
		if x[0] > 0.75 {
			return 1
		}
		return 0
	})
	bg := uniformBackground(rng, 400, 3)
	x := []float64{0.9, 0.5, 0.5}
	a, err := Explain(context.Background(), model, x, bg, Config{Threshold: 0.95, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision < 0.95 {
		t.Fatalf("precision %v below threshold", a.Precision)
	}
	if len(a.Predicates) != 1 || a.Predicates[0].Feature != 0 {
		t.Fatalf("anchor should pin feature 0 only: %+v", a.Predicates)
	}
	if a.Coverage <= 0 || a.Coverage > 0.5 {
		t.Fatalf("coverage %v implausible for top-quartile rule", a.Coverage)
	}
	if !strings.Contains(a.Format([]string{"util", "b", "c"}), "util") {
		t.Fatalf("format: %q", a.Format([]string{"util", "b", "c"}))
	}
}

func TestAnchorConjunction(t *testing.T) {
	// Class 1 iff BOTH x0 and x1 are high: the anchor needs two predicates.
	rng := rand.New(rand.NewSource(3))
	model := ml.PredictorFunc(func(x []float64) float64 {
		if x[0] > 0.7 && x[1] > 0.7 {
			return 1
		}
		return 0
	})
	bg := uniformBackground(rng, 500, 4)
	x := []float64{0.9, 0.9, 0.2, 0.2}
	a, err := Explain(context.Background(), model, x, bg, Config{Threshold: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision < 0.9 {
		t.Fatalf("precision %v", a.Precision)
	}
	feats := map[int]bool{}
	for _, p := range a.Predicates {
		feats[p.Feature] = true
	}
	if !feats[0] || !feats[1] {
		t.Fatalf("anchor missing a decisive feature: %+v", a.Predicates)
	}
}

func TestAnchorNegativeClass(t *testing.T) {
	// Anchors also explain "predicted healthy" verdicts.
	rng := rand.New(rand.NewSource(5))
	model := ml.PredictorFunc(func(x []float64) float64 {
		if x[0] > 0.9 {
			return 1
		}
		return 0
	})
	bg := uniformBackground(rng, 300, 2)
	x := []float64{0.1, 0.5} // deep in class 0
	a, err := Explain(context.Background(), model, x, bg, Config{Threshold: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision < 0.9 {
		t.Fatalf("negative-class anchor precision %v", a.Precision)
	}
}

func TestAnchorRespectsMaxPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := ml.PredictorFunc(func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		if s > 3 {
			return 1
		}
		return 0
	})
	bg := uniformBackground(rng, 300, 6)
	x := []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	a, err := Explain(context.Background(), model, x, bg, Config{Threshold: 0.999, MaxPredicates: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Predicates) > 2 {
		t.Fatalf("rule length %d exceeds bound", len(a.Predicates))
	}
}

func TestAnchorErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := Explain(context.Background(), model, nil, uniformBackground(rand.New(rand.NewSource(1)), 10, 1), Config{}); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := Explain(context.Background(), model, []float64{1}, [][]float64{{1}}, Config{}); err == nil {
		t.Fatal("expected small-background error")
	}
}

func TestPredicateMatching(t *testing.T) {
	p := Predicate{Feature: 0, Lo: 0.5, Hi: 1.0}
	if !p.Matches([]float64{0.5}) || !p.Matches([]float64{0.99}) {
		t.Fatal("inclusive lo / exclusive hi wrong")
	}
	if p.Matches([]float64{1.0}) || p.Matches([]float64{0.49}) {
		t.Fatal("bounds not enforced")
	}
	open := Predicate{Feature: 0, LoOpen: true, HiOpen: true}
	if !open.Matches([]float64{123}) {
		t.Fatal("open predicate must match everything")
	}
	if got := open.Format("x"); got != "x = any" {
		t.Fatalf("format %q", got)
	}
	lo := Predicate{Feature: 0, Lo: 2, HiOpen: true}
	if got := lo.Format("x"); got != "x >= 2" {
		t.Fatalf("format %q", got)
	}
	hi := Predicate{Feature: 0, Hi: 2, LoOpen: true}
	if got := hi.Format("x"); got != "x < 2" {
		t.Fatalf("format %q", got)
	}
}

func TestBinOfPartitionsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bg := uniformBackground(rng, 1000, 1)
	// Every value must fall into the bin predicate built around it.
	for trial := 0; trial < 50; trial++ {
		v := rng.Float64()
		p := binOf(bg, 0, v, 4)
		if !p.Matches([]float64{v}) {
			t.Fatalf("value %v not in own bin %+v", v, p)
		}
	}
	// Extremes get one-sided predicates.
	pLow := binOf(bg, 0, -10, 4)
	if !pLow.HiOpen == false && !pLow.LoOpen {
		t.Fatalf("low extreme predicate %+v", pLow)
	}
	if !pLow.Matches([]float64{-10}) {
		t.Fatal("low extreme not matched")
	}
	pHigh := binOf(bg, 0, 10, 4)
	if !pHigh.Matches([]float64{10}) {
		t.Fatal("high extreme not matched")
	}
}

func TestEmptyAnchorFormat(t *testing.T) {
	if got := (Anchor{}).Format(nil); !strings.Contains(got, "TRUE") {
		t.Fatalf("empty anchor format %q", got)
	}
}
