// Package intgrad implements Integrated Gradients (Sundararajan, Taly &
// Yan, ICML 2017): attribution by integrating the model's input gradient
// along the straight path from a baseline to the input. IG satisfies the
// completeness axiom — attributions sum exactly to f(x) − f(baseline) in
// the limit of fine integration — making it the gradient-based
// counterpart to SHAP for differentiable models like the repository's
// MLP.
package intgrad

import (
	"context"
	"errors"
	"fmt"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// GradModel is a differentiable predictor.
type GradModel interface {
	Predict(x []float64) float64
	// Gradient returns ∂Predict/∂x at x.
	Gradient(x []float64) []float64
}

// init registers integrated gradients in the xai method registry. It is
// gradient-only: the model must implement GradModel (the repository's
// MLP, linear and logistic models do, including through the pipeline's
// standardizing wrapper). The baseline defaults to the background column
// means, the usual tabular reference point.
func init() {
	xai.Register(xai.Method{
		Name: "intgrad",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			NeedsBackground: true, // baseline = background means
			GradientOnly:    true,
			SupportsBatch:   true,
			Deterministic:   true,
			Additive:        true,
		},
		Defaults: xai.Options{Steps: 64},
		Compatible: func(m ml.Predictor) bool {
			_, ok := m.(GradModel)
			return ok
		},
		Build: func(t xai.Target, o xai.Options) (xai.Explainer, error) {
			gm, ok := t.Model.(GradModel)
			if !ok {
				return nil, fmt.Errorf("%w: intgrad needs a differentiable model", xai.ErrUnsupportedModel)
			}
			return &Explainer{
				Model:    gm,
				Baseline: xai.ColumnMeans(t.Background),
				Steps:    o.Steps,
				Names:    t.Names,
			}, nil
		},
	})
}

// Explainer computes integrated-gradients attributions.
type Explainer struct {
	Model GradModel
	// Baseline is the reference input (e.g. feature means); required.
	Baseline []float64
	// Steps is the Riemann resolution (default 64).
	Steps int
	// Names are optional feature names copied into attributions.
	Names []string
}

// Explain implements xai.Explainer; cancellation is checked once per
// integration step.
func (e *Explainer) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	if len(x) == 0 {
		return xai.Attribution{}, errors.New("intgrad: empty input")
	}
	if len(e.Baseline) != len(x) {
		return xai.Attribution{}, fmt.Errorf("intgrad: baseline width %d != input %d", len(e.Baseline), len(x))
	}
	steps := e.Steps
	if steps <= 0 {
		steps = 64
	}
	d := len(x)
	avg := make([]float64, d)
	z := make([]float64, d)
	// Midpoint rule over alpha in (0, 1): markedly lower error than the
	// left Riemann sum at equal steps.
	for s := 0; s < steps; s++ {
		if err := xai.Canceled(ctx, "intgrad"); err != nil {
			return xai.Attribution{}, err
		}
		alpha := (float64(s) + 0.5) / float64(steps)
		for j := range z {
			z[j] = e.Baseline[j] + alpha*(x[j]-e.Baseline[j])
		}
		g := e.Model.Gradient(z)
		for j := range avg {
			avg[j] += g[j]
		}
	}
	phi := make([]float64, d)
	for j := range phi {
		phi[j] = (x[j] - e.Baseline[j]) * avg[j] / float64(steps)
	}
	return xai.Attribution{
		Names: e.Names,
		Phi:   phi,
		Base:  e.Model.Predict(e.Baseline),
		Value: e.Model.Predict(x),
	}, nil
}

// Saliency returns the plain input-gradient attribution g(x) ⊙ x−baseline
// (a single-step approximation, for comparison in ablations).
func Saliency(m GradModel, x, baseline []float64) []float64 {
	g := m.Gradient(x)
	out := make([]float64, len(x))
	for j := range out {
		out[j] = g[j] * (x[j] - baseline[j])
	}
	return out
}
