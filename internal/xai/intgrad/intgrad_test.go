package intgrad

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml/nn"
)

// quadModel is an analytic differentiable model for exact checks:
// f(x) = 3x0 + x1² − 2x0x1.
type quadModel struct{}

func (quadModel) Predict(x []float64) float64 {
	return 3*x[0] + x[1]*x[1] - 2*x[0]*x[1]
}

func (quadModel) Gradient(x []float64) []float64 {
	return []float64{3 - 2*x[1], 2*x[1] - 2*x[0]}
}

func TestCompletenessAxiom(t *testing.T) {
	e := &Explainer{Model: quadModel{}, Baseline: []float64{0, 0}, Steps: 256}
	x := []float64{1.5, -2}
	attr, err := e.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	// Completeness: Σφ = f(x) − f(baseline). The integrand is polynomial,
	// so the midpoint rule is near-exact at 256 steps.
	if ae := attr.AdditivityError(); ae > 1e-9 {
		t.Fatalf("completeness violated: %v", ae)
	}
}

func TestLinearModelExact(t *testing.T) {
	// For a linear model IG is exact at any resolution: φ_j = w_j(x_j−b_j).
	lin := linModel{w: []float64{2, -5, 0.5}}
	e := &Explainer{Model: lin, Baseline: []float64{1, 1, 1}, Steps: 1}
	x := []float64{3, 0, 2}
	attr, err := e.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2 * 2, -5 * -1, 0.5 * 1}
	for j := range want {
		if math.Abs(attr.Phi[j]-want[j]) > 1e-12 {
			t.Fatalf("phi[%d] = %v want %v", j, attr.Phi[j], want[j])
		}
	}
}

type linModel struct{ w []float64 }

func (m linModel) Predict(x []float64) float64 {
	var s float64
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

func (m linModel) Gradient(x []float64) []float64 {
	return append([]float64(nil), m.w...)
}

func TestDummyFeatureZero(t *testing.T) {
	e := &Explainer{Model: quadModel{}, Baseline: []float64{0, 0}, Steps: 64}
	// Feature 1 at the baseline value contributes nothing regardless of
	// path position only if x1 == baseline1.
	attr, err := e.Explain(context.Background(), []float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Phi[1] != 0 {
		t.Fatalf("unchanged feature attribution %v", attr.Phi[1])
	}
}

func TestErrors(t *testing.T) {
	e := &Explainer{Model: quadModel{}, Baseline: []float64{0}}
	if _, err := e.Explain(context.Background(), nil); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := e.Explain(context.Background(), []float64{1, 2}); err == nil {
		t.Fatal("expected baseline-width error")
	}
}

func TestMLPGradientMatchesFiniteDifference(t *testing.T) {
	// The analytic backprop gradient must match central finite differences
	// — this validates both Gradient and, transitively, training backprop.
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(dataset.Regression, "a", "b", "c")
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, x[0]*x[1]+math.Sin(x[2]))
	}
	m := &nn.MLP{Hidden: []int{16, 8}, Act: nn.Tanh, Epochs: 40, Task: dataset.Regression, Seed: 2}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		g := m.Gradient(x)
		for j := range x {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[j] += h
			xm[j] -= h
			fd := (m.Predict(xp) - m.Predict(xm)) / (2 * h)
			if math.Abs(g[j]-fd) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("gradient[%d] = %v, finite diff %v", j, g[j], fd)
			}
		}
	}
}

func TestMLPClassificationGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(dataset.Classification, "a", "b")
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		d.Add(x, y)
	}
	m := &nn.MLP{Hidden: []int{8}, Act: nn.Tanh, Epochs: 60, Task: dataset.Classification, Seed: 4}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	x := []float64{0.3, -0.2}
	g := m.Gradient(x)
	for j := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[j] += h
		xm[j] -= h
		fd := (m.Predict(xp) - m.Predict(xm)) / (2 * h)
		if math.Abs(g[j]-fd) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("prob gradient[%d] = %v, finite diff %v", j, g[j], fd)
		}
	}
}

func TestIntegratedGradientsOnMLP(t *testing.T) {
	// End-to-end: IG on a trained MLP satisfies completeness and ranks
	// the informative feature above a noise feature.
	rng := rand.New(rand.NewSource(5))
	d := dataset.New(dataset.Regression, "signal", "noise")
	for i := 0; i < 800; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.Add(x, 4*x[0])
	}
	m := &nn.MLP{Hidden: []int{16}, Epochs: 80, Task: dataset.Regression, Seed: 6}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	e := &Explainer{Model: m, Baseline: []float64{0, 0}, Steps: 128}
	attr, err := e.Explain(context.Background(), []float64{1.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	// ReLU nets are piecewise linear: midpoint integration is accurate
	// but not exact; allow a small completeness tolerance.
	if ae := attr.AdditivityError(); ae > 0.02*math.Abs(attr.Value-attr.Base)+1e-6 {
		t.Fatalf("completeness error %v", ae)
	}
	if math.Abs(attr.Phi[0]) <= math.Abs(attr.Phi[1]) {
		t.Fatalf("signal not ranked above noise: %v", attr.Phi)
	}
}

func TestSaliency(t *testing.T) {
	got := Saliency(quadModel{}, []float64{1, 2}, []float64{0, 0})
	// g(x) = [3−4, 4−2] = [−1, 2]; saliency = g ⊙ (x−b) = [−1, 4].
	if got[0] != -1 || got[1] != 4 {
		t.Fatalf("saliency %v", got)
	}
}
