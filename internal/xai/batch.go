package xai

import (
	"context"
	"fmt"
	"sync"

	"nfvxai/internal/sched"
)

// ExplainBatch explains every instance in xs with e, fanning the work
// out over the shared sched pool. Attributions are returned in input
// order. The explainer must be safe for concurrent use (the repository's
// explainers are: they keep no mutable state across Explain calls).
// workers is retained for API compatibility but ignored: the shared
// pool's size (sched.Configure) governs fan-out, and an explainer whose
// inner hot loops also use the pool composes with this outer layer
// instead of multiplying goroutines.
//
// All instances are attempted even when some fail; the first error (by
// input order) is returned alongside the successful attributions, with
// the failed slots left as zero values. When ctx is cancelled mid-batch,
// unstarted instances are skipped with the context error.
func ExplainBatch(ctx context.Context, e Explainer, xs [][]float64, workers int) ([]Attribution, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	_ = workers
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	sched.ParallelFor(len(xs), 1, func(w *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			attrs[i], errs[i] = e.Explain(ctx, xs[i])
		}
	})
	return attrs, firstError(errs)
}

// ExplainBatchGated is ExplainBatch drawing workers from gate, a shared
// semaphore bounding explain concurrency across callers — a server uses
// one gate for all in-flight batch requests so K concurrent batches share
// cap(gate) workers instead of spawning K independent pools. Instances
// still waiting for a slot when ctx is cancelled are abandoned with the
// context error.
func ExplainBatchGated(ctx context.Context, e Explainer, xs [][]float64, gate chan struct{}) ([]Attribution, error) {
	attrs, errs := ExplainBatchGatedErrs(ctx, e, xs, gate)
	return attrs, firstError(errs)
}

// ExplainBatchGatedErrs is ExplainBatchGated returning the per-instance
// errors instead of collapsing them to the first one. The serving layer
// uses it for deadline-budgeted batches, where some instances completing
// and others timing out is a partial success to report per item, not a
// request-level failure. errs is nil when xs is empty; otherwise
// len(errs) == len(xs) and errs[i] == nil marks a valid attrs[i].
func ExplainBatchGatedErrs(ctx context.Context, e Explainer, xs [][]float64, gate chan struct{}) ([]Attribution, []error) {
	if len(xs) == 0 {
		return nil, nil
	}
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-gate }()
			attrs[i], errs[i] = e.Explain(ctx, xs[i])
		}(i)
	}
	wg.Wait()
	return attrs, errs
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xai: explaining instance %d: %w", i, err)
		}
	}
	return nil
}
