package xai

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ExplainBatch explains every instance in xs with e, fanning the work out
// over a pool of workers. Attributions are returned in input order. The
// explainer must be safe for concurrent use (the repository's explainers
// are: they keep no mutable state across Explain calls). workers <= 0
// selects GOMAXPROCS.
//
// All instances are attempted even when some fail; the first error (by
// input order) is returned alongside the successful attributions, with the
// failed slots left as zero values. When ctx is cancelled mid-batch,
// undispatched instances are skipped and the context error is reported.
func ExplainBatch(ctx context.Context, e Explainer, xs [][]float64, workers int) ([]Attribution, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				attrs[i], errs[i] = e.Explain(ctx, xs[i])
			}
		}()
	}
dispatch:
	for i := range xs {
		select {
		case next <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return attrs, firstError(errs)
}

// ExplainBatchGated is ExplainBatch drawing workers from gate, a shared
// semaphore bounding explain concurrency across callers — a server uses
// one gate for all in-flight batch requests so K concurrent batches share
// cap(gate) workers instead of spawning K independent pools. Instances
// still waiting for a slot when ctx is cancelled are abandoned with the
// context error.
func ExplainBatchGated(ctx context.Context, e Explainer, xs [][]float64, gate chan struct{}) ([]Attribution, error) {
	attrs, errs := ExplainBatchGatedErrs(ctx, e, xs, gate)
	return attrs, firstError(errs)
}

// ExplainBatchGatedErrs is ExplainBatchGated returning the per-instance
// errors instead of collapsing them to the first one. The serving layer
// uses it for deadline-budgeted batches, where some instances completing
// and others timing out is a partial success to report per item, not a
// request-level failure. errs is nil when xs is empty; otherwise
// len(errs) == len(xs) and errs[i] == nil marks a valid attrs[i].
func ExplainBatchGatedErrs(ctx context.Context, e Explainer, xs [][]float64, gate chan struct{}) ([]Attribution, []error) {
	if len(xs) == 0 {
		return nil, nil
	}
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-gate }()
			attrs[i], errs[i] = e.Explain(ctx, xs[i])
		}(i)
	}
	wg.Wait()
	return attrs, errs
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xai: explaining instance %d: %w", i, err)
		}
	}
	return nil
}
