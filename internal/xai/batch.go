package xai

import (
	"fmt"
	"runtime"
	"sync"
)

// ExplainBatch explains every instance in xs with e, fanning the work out
// over a pool of workers. Attributions are returned in input order. The
// explainer must be safe for concurrent use (the repository's explainers
// are: they keep no mutable state across Explain calls). workers <= 0
// selects GOMAXPROCS.
//
// All instances are attempted even when some fail; the first error (by
// input order) is returned alongside the successful attributions, with the
// failed slots left as zero values.
func ExplainBatch(e Explainer, xs [][]float64, workers int) ([]Attribution, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				attrs[i], errs[i] = e.Explain(xs[i])
			}
		}()
	}
	for i := range xs {
		next <- i
	}
	close(next)
	wg.Wait()
	return attrs, firstError(errs)
}

// ExplainBatchGated is ExplainBatch drawing workers from gate, a shared
// semaphore bounding explain concurrency across callers — a server uses
// one gate for all in-flight batch requests so K concurrent batches share
// cap(gate) workers instead of spawning K independent pools.
func ExplainBatchGated(e Explainer, xs [][]float64, gate chan struct{}) ([]Attribution, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	attrs := make([]Attribution, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gate <- struct{}{}
			defer func() { <-gate }()
			attrs[i], errs[i] = e.Explain(xs[i])
		}(i)
	}
	wg.Wait()
	return attrs, firstError(errs)
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xai: explaining instance %d: %w", i, err)
		}
	}
	return nil
}
