package xai

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowSumExplainer delays each instance so a deadline lands mid-batch.
type slowSumExplainer struct{ delay time.Duration }

func (s slowSumExplainer) Explain(ctx context.Context, x []float64) (Attribution, error) {
	select {
	case <-ctx.Done():
		return Attribution{}, Canceled(ctx, "slow")
	case <-time.After(s.delay):
	}
	return sumExplainer{}.Explain(ctx, x)
}

func TestExplainBatchGatedErrsPartialOnDeadline(t *testing.T) {
	xs := make([][]float64, 20)
	for i := range xs {
		xs[i] = []float64{float64(i)}
	}
	// Gate of 1 serializes the work: 20 × 5 ms ≫ the 25 ms deadline, so
	// the first instances finish and the tail times out.
	gate := make(chan struct{}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	attrs, errs := ExplainBatchGatedErrs(ctx, slowSumExplainer{5 * time.Millisecond}, xs, gate)
	if len(attrs) != len(xs) || len(errs) != len(xs) {
		t.Fatalf("got %d attrs, %d errs; want %d aligned", len(attrs), len(errs), len(xs))
	}
	ok, timedOut := 0, 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			if attrs[i].Value != float64(i) {
				t.Fatalf("attrs[%d].Value = %v, want %v", i, attrs[i].Value, float64(i))
			}
			ok++
		case errors.Is(errs[i], context.DeadlineExceeded):
			timedOut++
		default:
			t.Fatalf("errs[%d] = %v; want nil or deadline", i, errs[i])
		}
	}
	if ok == 0 {
		t.Fatal("no instance finished before the deadline; the test proved nothing")
	}
	if timedOut == 0 {
		t.Fatal("no instance timed out; the deadline never landed mid-batch")
	}
}

func TestExplainBatchGatedErrsAllOK(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	gate := make(chan struct{}, 2)
	attrs, errs := ExplainBatchGatedErrs(context.Background(), sumExplainer{}, xs, gate)
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
		if attrs[i].Value != xs[i][0] {
			t.Fatalf("attrs[%d] wrong", i)
		}
	}
}

func TestExplainBatchGatedErrsEmpty(t *testing.T) {
	attrs, errs := ExplainBatchGatedErrs(context.Background(), sumExplainer{}, nil, make(chan struct{}, 1))
	if attrs != nil || errs != nil {
		t.Fatalf("empty batch: %v, %v; want nil, nil", attrs, errs)
	}
}

func TestExplainBatchGatedStillAllOrNothing(t *testing.T) {
	// The legacy wrapper keeps its contract: any failure fails the batch.
	xs := [][]float64{{1}, {}, {3}} // empty instance errors
	gate := make(chan struct{}, 2)
	if _, err := ExplainBatchGated(context.Background(), sumExplainer{}, xs, gate); err == nil {
		t.Fatal("want error for failing instance")
	}
}
