package xai

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// sumExplainer attributes each feature its own value (base 0).
type sumExplainer struct{}

func (sumExplainer) Explain(_ context.Context, x []float64) (Attribution, error) {
	if len(x) == 0 {
		return Attribution{}, errors.New("empty")
	}
	var v float64
	for _, f := range x {
		v += f
	}
	return Attribution{Phi: append([]float64(nil), x...), Value: v}, nil
}

func TestExplainBatchOrderAndValues(t *testing.T) {
	xs := make([][]float64, 50)
	for i := range xs {
		xs[i] = []float64{float64(i), 1}
	}
	for _, workers := range []int{0, 1, 4, 100} {
		attrs, err := ExplainBatch(context.Background(), sumExplainer{}, xs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(attrs) != len(xs) {
			t.Fatalf("workers=%d: got %d attributions", workers, len(attrs))
		}
		for i, a := range attrs {
			if want := float64(i) + 1; a.Value != want {
				t.Fatalf("workers=%d: attrs[%d].Value = %v want %v", workers, i, a.Value, want)
			}
			if a.Phi[0] != float64(i) {
				t.Fatalf("workers=%d: attrs[%d] out of order", workers, i)
			}
		}
	}
}

func TestExplainBatchEmpty(t *testing.T) {
	attrs, err := ExplainBatch(context.Background(), sumExplainer{}, nil, 4)
	if err != nil || attrs != nil {
		t.Fatalf("empty batch: %v, %v", attrs, err)
	}
}

func TestExplainBatchGated(t *testing.T) {
	xs := make([][]float64, 40)
	for i := range xs {
		xs[i] = []float64{float64(i)}
	}
	gate := make(chan struct{}, 3)
	attrs, err := ExplainBatchGated(context.Background(), sumExplainer{}, xs, gate)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range attrs {
		if a.Value != float64(i) {
			t.Fatalf("attrs[%d].Value = %v", i, a.Value)
		}
	}
	// Two batches sharing one gate still complete (no token leak).
	if _, err := ExplainBatchGated(context.Background(), sumExplainer{}, xs[:5], gate); err != nil {
		t.Fatal(err)
	}
	if got, err := ExplainBatchGated(context.Background(), sumExplainer{}, nil, gate); got != nil || err != nil {
		t.Fatalf("empty gated batch: %v, %v", got, err)
	}
	// Errors propagate with successful slots intact.
	bad := [][]float64{{1}, {}}
	attrs2, err := ExplainBatchGated(context.Background(), sumExplainer{}, bad, gate)
	if err == nil || attrs2[0].Value != 1 {
		t.Fatalf("gated error path: %v %v", attrs2, err)
	}
}

func TestExplainBatchError(t *testing.T) {
	xs := [][]float64{{1}, {}, {3}}
	attrs, err := ExplainBatch(context.Background(), sumExplainer{}, xs, 2)
	if err == nil {
		t.Fatal("want error for empty instance")
	}
	if want := "instance 1"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
	// Successful slots are still populated.
	if attrs[0].Value != 1 || attrs[2].Value != 3 {
		t.Fatalf("successful slots lost: %+v", attrs)
	}
}
