package xai

import (
	"math"
	"strings"
	"testing"
)

func TestAttributionSumAndAdditivity(t *testing.T) {
	a := Attribution{Phi: []float64{1, -0.5, 2}, Base: 10, Value: 12.5}
	if a.Sum() != 12.5 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.AdditivityError() != 0 {
		t.Fatalf("AdditivityError = %v", a.AdditivityError())
	}
	b := Attribution{Phi: []float64{1}, Base: 0, Value: 3}
	if b.AdditivityError() != 2 {
		t.Fatalf("AdditivityError = %v", b.AdditivityError())
	}
}

func TestRankingByAbsoluteValue(t *testing.T) {
	a := Attribution{Phi: []float64{0.5, -3, 1, 0}}
	r := a.Ranking()
	want := []int{1, 2, 0, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranking = %v want %v", r, want)
		}
	}
}

func TestRankingStableOnTies(t *testing.T) {
	a := Attribution{Phi: []float64{1, -1, 1}}
	r := a.Ranking()
	if r[0] != 0 || r[1] != 1 || r[2] != 2 {
		t.Fatalf("tied ranking not stable: %v", r)
	}
}

func TestTopK(t *testing.T) {
	a := Attribution{Phi: []float64{0.1, 5, -2}}
	top := a.TopK(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := a.TopK(99); len(got) != 3 {
		t.Fatalf("TopK overflow = %v", got)
	}
}

func TestNames(t *testing.T) {
	a := Attribution{Names: []string{"cpu"}, Phi: []float64{1, 2}}
	if a.Name(0) != "cpu" {
		t.Fatalf("Name(0) = %q", a.Name(0))
	}
	if a.Name(1) != "f1" {
		t.Fatalf("Name(1) = %q", a.Name(1))
	}
}

func TestStringRendering(t *testing.T) {
	a := Attribution{Names: []string{"load", "drops"}, Phi: []float64{2, -1}, Base: 5, Value: 6}
	s := a.String()
	if !strings.Contains(s, "load") || !strings.Contains(s, "drops") {
		t.Fatalf("String missing names: %q", s)
	}
	if strings.Index(s, "load") > strings.Index(s, "drops") {
		t.Fatal("String not ranked by |phi|")
	}
}

func TestMeanAbs(t *testing.T) {
	attrs := []Attribution{
		{Phi: []float64{1, -2}},
		{Phi: []float64{3, 0}},
	}
	got := MeanAbs(attrs)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("MeanAbs = %v", got)
	}
	if MeanAbs(nil) != nil {
		t.Fatal("MeanAbs(nil) should be nil")
	}
}

func TestMeanAbsNonNegative(t *testing.T) {
	attrs := []Attribution{{Phi: []float64{-5, -1}}}
	for _, v := range MeanAbs(attrs) {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("MeanAbs produced %v", v)
		}
	}
}
