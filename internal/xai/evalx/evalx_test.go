package evalx

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/shap"
)

func TestDeletionCurveShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := ml.PredictorFunc(func(x []float64) float64 { return 10*x[0] + x[1] })
	bg := make([][]float64, 50)
	for i := range bg {
		bg[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	x := []float64{3, 3}
	c, err := Deletion(model, x, []int{0, 1}, bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pred) != 3 {
		t.Fatalf("curve length %d", len(c.Pred))
	}
	if c.Pred[0] != model.Predict(x) {
		t.Fatal("curve must start at the original prediction")
	}
	// Deleting the dominant feature first must move the prediction more
	// than deleting the weak one first.
	c2, err := Deletion(model, x, []int{1, 0}, bg)
	if err != nil {
		t.Fatal(err)
	}
	drop1 := math.Abs(c.Pred[1] - c.Pred[0])
	drop2 := math.Abs(c2.Pred[1] - c2.Pred[0])
	if drop1 <= drop2 {
		t.Fatalf("dominant-first drop %v <= weak-first drop %v", drop1, drop2)
	}
}

func TestDeletionGapPositiveForGoodAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := ml.PredictorFunc(func(x []float64) float64 {
		return 20*x[0] + 5*x[1] + 0.1*x[2] + 0.01*x[3]
	})
	bg := make([][]float64, 40)
	for i := range bg {
		bg[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	x := []float64{2, 2, 2, 2}
	k := &shap.Kernel{Model: model, Background: bg, NumSamples: 2048}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := DeletionGap(model, x, attr, bg, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 {
		t.Fatalf("deletion gap %v should be positive for a correct attribution", gap)
	}
	// An adversarial (reversed) attribution must do worse than the true one.
	rev := attr
	rev.Phi = append([]float64(nil), attr.Phi...)
	for i, j := 0, len(rev.Phi)-1; i < j; i, j = i+1, j-1 {
		rev.Phi[i], rev.Phi[j] = rev.Phi[j], rev.Phi[i]
	}
	gapRev, err := DeletionGap(model, x, rev, bg, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gapRev >= gap {
		t.Fatalf("reversed attribution gap %v >= true gap %v", gapRev, gap)
	}
}

func TestDeletionErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := Deletion(model, []float64{1}, []int{0}, nil); err == nil {
		t.Fatal("expected empty-background error")
	}
	if _, err := Deletion(model, []float64{1}, []int{5}, [][]float64{{1}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

type fixedExplainer struct {
	phi func(x []float64) []float64
}

func (f fixedExplainer) Explain(_ context.Context, x []float64) (xai.Attribution, error) {
	return xai.Attribution{Phi: f.phi(x)}, nil
}

func TestStabilityPerfectAndNoisy(t *testing.T) {
	// An explainer that ignores the input is perfectly stable.
	stable := fixedExplainer{phi: func(x []float64) []float64 { return []float64{3, 2, 1} }}
	s, err := Stability(context.Background(), stable, []float64{1, 1, 1}, 0.5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.999 {
		t.Fatalf("stable explainer score %v", s)
	}
	// An explainer whose ranking depends on noise scores lower.
	rng := rand.New(rand.NewSource(2))
	unstable := fixedExplainer{phi: func(x []float64) []float64 {
		return []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}}
	u, err := Stability(context.Background(), unstable, []float64{1, 1, 1}, 0.5, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u >= s {
		t.Fatalf("unstable %v should score below stable %v", u, s)
	}
}

func TestRankAgreement(t *testing.T) {
	a := []float64{3, 2, 1}
	if got := RankAgreement(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self agreement %v", got)
	}
	// Sign-insensitive: agreement uses |phi|.
	b := []float64{-3, -2, -1}
	if got := RankAgreement(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sign-flipped agreement %v", got)
	}
	rev := []float64{1, 2, 3}
	if got := RankAgreement(a, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed agreement %v", got)
	}
}

func TestTopKIntersection(t *testing.T) {
	a := []float64{10, 9, 0.1, 0.2}
	b := []float64{8, 11, 0.3, 0.1}
	if got := TopKIntersection(a, b, 2); got != 1 {
		t.Fatalf("full overlap = %v", got)
	}
	c := []float64{0.1, 0.2, 10, 9}
	if got := TopKIntersection(a, c, 2); got != 0 {
		t.Fatalf("no overlap = %v", got)
	}
	if TopKIntersection(a, b, 0) != 0 || TopKIntersection(a, []float64{1}, 2) != 0 {
		t.Fatal("degenerate inputs")
	}
	if got := TopKIntersection(a, b, 99); got != 1 {
		t.Fatalf("k overflow = %v", got)
	}
}

func TestSummarizeFidelity(t *testing.T) {
	attrs := []xai.Attribution{
		{Phi: []float64{1}, Base: 0, Value: 1},   // error 0
		{Phi: []float64{1}, Base: 0, Value: 1.5}, // error 0.5
	}
	s := SummarizeFidelity(attrs)
	if s.N != 2 || math.Abs(s.MeanAdditivityErr-0.25) > 1e-12 || s.MaxAdditivityErr != 0.5 {
		t.Fatalf("summary %+v", s)
	}
	if z := SummarizeFidelity(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestSparsity(t *testing.T) {
	a := xai.Attribution{Phi: []float64{8, 1, 1}}
	if got := Sparsity(a, 1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("sparsity = %v", got)
	}
	if got := Sparsity(a, 3); got != 1 {
		t.Fatalf("full sparsity = %v", got)
	}
	if Sparsity(xai.Attribution{Phi: []float64{0, 0}}, 1) != 0 {
		t.Fatal("zero attribution sparsity")
	}
}
