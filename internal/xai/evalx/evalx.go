// Package evalx implements the explanation-quality metrics from the
// paper's evaluation: perturbation (deletion/insertion) curves, stability
// under input noise, rank agreement between attribution methods, and
// aggregate fidelity summaries. These are the measures that let the paper
// argue one explanation method should be trusted over another.
package evalx

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"nfvxai/internal/ml"
	"nfvxai/internal/stats"
	"nfvxai/internal/xai"
)

// DeletionCurve measures how fast the prediction collapses toward the
// baseline as the top-ranked features (per the attribution) are replaced
// by their background means. A good explanation identifies the features
// whose removal moves the prediction the most, so its curve drops faster
// than a random-order curve.
type DeletionCurve struct {
	// Order is the feature deletion order used.
	Order []int
	// Pred[k] is the model output after deleting the first k features
	// (Pred[0] is the original prediction).
	Pred []float64
}

// AUC returns the area under the |Pred − finalBaseline| curve, normalized
// by steps; lower means faster collapse (better explanation).
func (c DeletionCurve) AUC() float64 {
	if len(c.Pred) < 2 {
		return 0
	}
	final := c.Pred[len(c.Pred)-1]
	var area float64
	for _, p := range c.Pred {
		area += math.Abs(p - final)
	}
	return area / float64(len(c.Pred))
}

// Deletion computes the deletion curve for x under the given feature
// order, replacing deleted features with the background column means.
// All len(order)+1 cumulative-deletion rows are materialized up front and
// scored with one call through the model's batch-inference fast path,
// matching a per-row Predict loop bit for bit.
func Deletion(model ml.Predictor, x []float64, order []int, background [][]float64) (DeletionCurve, error) {
	if len(background) == 0 {
		return DeletionCurve{}, errors.New("evalx: empty background")
	}
	means := xai.ColumnMeans(background)
	d := len(x)
	n := len(order) + 1
	backing := make([]float64, n*d)
	rows := make([][]float64, n)
	cur := backing[:d]
	copy(cur, x)
	rows[0] = cur
	for k, j := range order {
		if j < 0 || j >= d {
			return DeletionCurve{}, errors.New("evalx: order index out of range")
		}
		next := backing[(k+1)*d : (k+2)*d]
		copy(next, cur)
		next[j] = means[j]
		rows[k+1] = next
		cur = next
	}
	preds := make([]float64, n)
	ml.PredictBatchInto(model, rows, preds)
	return DeletionCurve{Order: order, Pred: preds}, nil
}

// DeletionGap compares attribution-ordered deletion against random-order
// deletion averaged over trials: positive gap means the attribution
// collapses the prediction faster than chance (the paper's Figure 3
// statistic, averaged over instances).
func DeletionGap(model ml.Predictor, x []float64, attr xai.Attribution, background [][]float64, trials int, seed int64) (float64, error) {
	guided, err := Deletion(model, x, attr.Ranking(), background)
	if err != nil {
		return 0, err
	}
	if trials <= 0 {
		trials = 10
	}
	rng := rand.New(rand.NewSource(seed + 0xDE1))
	d := len(x)
	var randAUC float64
	for t := 0; t < trials; t++ {
		order := rng.Perm(d)
		c, err := Deletion(model, x, order, background)
		if err != nil {
			return 0, err
		}
		randAUC += c.AUC()
	}
	randAUC /= float64(trials)
	return randAUC - guided.AUC(), nil
}

// Stability measures explanation robustness: explain x and noisy copies
// x+ε, and report the mean Spearman rank correlation between the original
// attribution and each noisy attribution. 1.0 = perfectly stable.
func Stability(ctx context.Context, explainer xai.Explainer, x []float64, sigma float64, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		trials = 5
	}
	base, err := explainer.Explain(ctx, x)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed + 0x57AB))
	var total float64
	noisy := make([]float64, len(x))
	for t := 0; t < trials; t++ {
		for j := range x {
			noisy[j] = x[j] + rng.NormFloat64()*sigma
		}
		a, err := explainer.Explain(ctx, noisy)
		if err != nil {
			return 0, err
		}
		total += stats.Spearman(absVec(base.Phi), absVec(a.Phi))
	}
	return total / float64(trials), nil
}

// StabilityScaled is Stability with per-feature noise scales (sigma[j] is
// the noise std for feature j), which is what heterogeneous telemetry
// features require.
func StabilityScaled(ctx context.Context, explainer xai.Explainer, x []float64, sigma []float64, trials int, seed int64) (float64, error) {
	if len(sigma) != len(x) {
		return 0, errors.New("evalx: sigma length mismatch")
	}
	if trials <= 0 {
		trials = 5
	}
	base, err := explainer.Explain(ctx, x)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed + 0x57AC))
	var total float64
	noisy := make([]float64, len(x))
	for t := 0; t < trials; t++ {
		for j := range x {
			noisy[j] = x[j] + rng.NormFloat64()*sigma[j]
		}
		a, err := explainer.Explain(ctx, noisy)
		if err != nil {
			return 0, err
		}
		total += stats.Spearman(absVec(base.Phi), absVec(a.Phi))
	}
	return total / float64(trials), nil
}

// RankAgreement returns the Spearman correlation between the |Phi|
// rankings of two attributions (or any two importance vectors).
func RankAgreement(a, b []float64) float64 {
	return stats.Spearman(absVec(a), absVec(b))
}

// TopKIntersection returns |topK(a) ∩ topK(b)| / k, a second agreement
// measure that only cares about the head of the ranking.
func TopKIntersection(a, b []float64, k int) float64 {
	if k <= 0 || len(a) != len(b) || len(a) == 0 {
		return 0
	}
	if k > len(a) {
		k = len(a)
	}
	ta := xai.Attribution{Phi: a}.TopK(k)
	tb := xai.Attribution{Phi: b}.TopK(k)
	set := map[int]bool{}
	for _, j := range ta {
		set[j] = true
	}
	hits := 0
	for _, j := range tb {
		if set[j] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// FidelitySummary aggregates additivity errors over a batch of
// attributions (mean and max |base + Σφ − f(x)|).
type FidelitySummary struct {
	MeanAdditivityErr float64
	MaxAdditivityErr  float64
	N                 int
}

// SummarizeFidelity computes a FidelitySummary.
func SummarizeFidelity(attrs []xai.Attribution) FidelitySummary {
	var s FidelitySummary
	s.N = len(attrs)
	for _, a := range attrs {
		e := a.AdditivityError()
		s.MeanAdditivityErr += e
		if e > s.MaxAdditivityErr {
			s.MaxAdditivityErr = e
		}
	}
	if s.N > 0 {
		s.MeanAdditivityErr /= float64(s.N)
	}
	return s
}

// Sparsity returns the fraction of attribution mass concentrated in the
// top-k features; concentrated explanations are easier for operators to
// act on.
func Sparsity(attr xai.Attribution, k int) float64 {
	var total float64
	for _, p := range attr.Phi {
		total += math.Abs(p)
	}
	if total == 0 {
		return 0
	}
	var top float64
	for _, j := range attr.TopK(k) {
		top += math.Abs(attr.Phi[j])
	}
	return top / total
}

func absVec(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = math.Abs(v)
	}
	return out
}
