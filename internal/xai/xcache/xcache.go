// Package xcache is the content-addressed explanation result cache: a
// sharded in-process LRU (tier 1) with byte-size accounting and TTL,
// fronted by a single-flight coalescer (flight.go) and optionally backed
// by a persistent blob tier (tier2.go) so warm-started or newly joined
// cluster nodes serve hits for explanations computed elsewhere.
//
// Keys are content-addressed: artifact digest × method name × the
// canonical xai.Options fingerprint × instance hash. A cache entry is
// keyed by artifact digest — never by model name — so retrain, hot-swap
// and import need no flush: a new artifact has a new digest and simply
// misses. DropDigest exists only to bound memory by releasing entries a
// swapped-out pipeline can never serve again.
//
// Attributions returned by Get/Do are shared across callers; treat them
// as immutable.
package xcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfvxai/internal/xai"
)

// Key identifies one explanation result. All four fields derive from
// content, never from mutable names: Digest is the pipeline artifact
// digest, Method the registry method name, Opts the normalized
// xai.Options fingerprint (Options.Key()), Instance the hash of the
// explained instance (InstanceHash).
type Key struct {
	Digest   string
	Method   string
	Opts     string
	Instance string
}

// String is the canonical flat form the shards and the flight table are
// keyed by. Digest, Method and Instance never contain '|', and Opts is
// a fixed-arity fingerprint, so the concatenation is injective.
func (k Key) String() string {
	return k.Digest + "|" + k.Method + "|" + k.Opts + "|" + k.Instance
}

// InstanceHash fingerprints a feature vector by its exact float64 bit
// patterns (little-endian), so two instances hash equal iff every
// feature is bit-identical — the same condition under which a seeded
// explainer reproduces the same attribution.
func InstanceHash(x []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Cacheable reports whether an attribution may be stored: a full
// computation always, a progressive/anytime partial only when it
// converged — a deadline-truncated estimate must not be served to
// callers who asked with a laxer (or no) budget.
func Cacheable(attr xai.Attribution) bool {
	return attr.Diag == nil || attr.Diag.Converged
}

// Config sizes a Cache.
type Config struct {
	// MaxBytes bounds tier-1 memory (accounted per entrySize; default
	// 64 MiB, split evenly across shards).
	MaxBytes int64
	// TTL expires entries this long after insertion; <= 0 disables
	// expiry (content-addressed keys never go stale, TTL only bounds
	// how long a cold fleet keeps dead working sets around).
	TTL time.Duration
	// Tier2, when non-nil, persists cacheable entries and is consulted
	// on tier-1 misses. See Store in tier2.go.
	Tier2 Store
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

const (
	numShards = 8
	// entryOverhead approximates the per-entry bookkeeping bytes (entry
	// struct, map slot, list element) added to the payload size.
	entryOverhead = 192
	defaultMax    = 64 << 20
)

// Cache is the two-tier explanation result cache. All methods are safe
// for concurrent use.
type Cache struct {
	shards   [numShards]shard
	perShard int64
	ttl      time.Duration
	now      func() time.Time

	flightMu sync.Mutex
	flight   map[string]*call

	tier2 Store

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evicted   atomic.Int64
	expired   atomic.Int64
	entries   atomic.Int64
	bytes     atomic.Int64
	t2hits    atomic.Int64
	t2puts    atomic.Int64
	t2errors  atomic.Int64

	digMu sync.Mutex
	dig   map[string]*digestCounters

	// Negative cache: (digest, method) pairs known to be unbuildable —
	// capability mismatches between a model and an explanation method.
	// The verdict is a property of the frozen artifact, so it never goes
	// stale; entries leave only with their digest (DropDigest). Tiny
	// (methods × artifacts), so no byte accounting.
	negMu   sync.Mutex
	neg     map[string]struct{}
	negHits atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recent
	bytes int64
}

type entry struct {
	key     string
	digest  string
	attr    xai.Attribution
	size    int64
	expires time.Time // zero = no TTL
}

type digestCounters struct {
	hits, misses, coalesced, evicted atomic.Int64
	entries, bytes                   atomic.Int64
}

// New builds a Cache from cfg.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultMax
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Cache{
		perShard: (cfg.MaxBytes + numShards - 1) / numShards,
		ttl:      cfg.TTL,
		now:      cfg.Now,
		tier2:    cfg.Tier2,
		flight:   make(map[string]*call),
		dig:      make(map[string]*digestCounters),
		neg:      make(map[string]struct{}),
	}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

func (c *Cache) shardFor(ks string) *shard {
	h := fnv.New32a()
	h.Write([]byte(ks))
	return &c.shards[h.Sum32()%numShards]
}

func (c *Cache) digCounters(digest string) *digestCounters {
	c.digMu.Lock()
	dc, ok := c.dig[digest]
	if !ok {
		dc = &digestCounters{}
		c.dig[digest] = dc
	}
	c.digMu.Unlock()
	return dc
}

// entrySize is the byte accounting for one cached attribution: fixed
// overhead plus the float payload plus the key. Shared Names backing is
// deliberately not charged (every entry of a pipeline aliases the same
// slice).
func entrySize(ks string, attr xai.Attribution) int64 {
	n := int64(entryOverhead + len(ks) + 8*len(attr.Phi))
	if attr.Diag != nil {
		n += 48 + int64(8*len(attr.Diag.CIHalf))
	}
	return n
}

// Get returns the cached attribution for k, expiring it lazily when its
// TTL has passed. A miss here is not counted — the flight path (Do)
// counts one miss per underlying computation, so hits+misses+coalesced
// tallies requests, and misses alone tallies computes.
func (c *Cache) Get(k Key) (xai.Attribution, bool) {
	ks := k.String()
	s := c.shardFor(ks)
	s.mu.Lock()
	el, ok := s.items[ks]
	if !ok {
		s.mu.Unlock()
		return xai.Attribution{}, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		s.removeLocked(el, e)
		s.mu.Unlock()
		c.expired.Add(1)
		c.entryGone(e, false)
		return xai.Attribution{}, false
	}
	s.lru.MoveToFront(el)
	s.mu.Unlock()
	c.hits.Add(1)
	c.digCounters(e.digest).hits.Add(1)
	return e.attr, true
}

// Put inserts an attribution, evicting the shard's least-recently-used
// entries while it is over its byte budget. Callers should gate on
// Cacheable; Put itself stores whatever it is given.
func (c *Cache) Put(k Key, attr xai.Attribution) {
	ks := k.String()
	e := &entry{key: ks, digest: k.Digest, attr: attr, size: entrySize(ks, attr)}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	s := c.shardFor(ks)
	var dropped []*entry
	s.mu.Lock()
	if el, ok := s.items[ks]; ok {
		old := el.Value.(*entry)
		s.bytes -= old.size
		el.Value = e
		s.bytes += e.size
		s.lru.MoveToFront(el)
		c.bytes.Add(e.size - old.size)
		c.digCounters(k.Digest).bytes.Add(e.size - old.size)
		s.mu.Unlock()
		return
	}
	s.items[ks] = s.lru.PushFront(e)
	s.bytes += e.size
	for s.bytes > c.perShard && s.lru.Len() > 1 {
		tail := s.lru.Back()
		te := tail.Value.(*entry)
		s.removeLocked(tail, te)
		dropped = append(dropped, te)
	}
	s.mu.Unlock()
	c.entries.Add(1)
	c.bytes.Add(e.size)
	dc := c.digCounters(k.Digest)
	dc.entries.Add(1)
	dc.bytes.Add(e.size)
	for _, te := range dropped {
		c.evicted.Add(1)
		c.entryGone(te, true)
	}
}

// removeLocked unlinks el/e from the shard; stats are settled by the
// caller after the shard lock is released.
func (s *shard) removeLocked(el *list.Element, e *entry) {
	s.lru.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
}

// entryGone settles the gauge (and optionally per-digest eviction)
// counters for an entry removed from its shard.
func (c *Cache) entryGone(e *entry, evicted bool) {
	c.entries.Add(-1)
	c.bytes.Add(-e.size)
	dc := c.digCounters(e.digest)
	dc.entries.Add(-1)
	dc.bytes.Add(-e.size)
	if evicted {
		dc.evicted.Add(1)
	}
}

// negKey is the negative-cache key for one (digest, method) verdict.
// Digests are hex and method names never contain NUL, so the join is
// injective.
func negKey(digest, method string) string { return digest + "\x00" + method }

// NegPut records that method cannot be built for the artifact identified
// by digest (a capability mismatch). The serving layer's 409 path calls
// this once so every later request for the same pair answers from the
// verdict instead of re-running the registry build.
func (c *Cache) NegPut(digest, method string) {
	c.negMu.Lock()
	c.neg[negKey(digest, method)] = struct{}{}
	c.negMu.Unlock()
}

// NegGet reports whether (digest, method) is a recorded-unsupported
// pair. A true return counts as a negative hit in Stats.
func (c *Cache) NegGet(digest, method string) bool {
	c.negMu.Lock()
	_, ok := c.neg[negKey(digest, method)]
	c.negMu.Unlock()
	if ok {
		c.negHits.Add(1)
	}
	return ok
}

// DropDigest removes every tier-1 entry keyed by digest and returns how
// many were dropped. Called after a hot-swap retires an artifact: the
// old digest can never be requested again (keys embed the digest), so
// its entries are pure memory waste. Tier-2 entries are left in place —
// they are content-addressed and harmless, and another node may still
// serve the old artifact.
func (c *Cache) DropDigest(digest string) int {
	var dropped []*entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*entry); e.digest == digest {
				s.removeLocked(el, e)
				dropped = append(dropped, e)
			}
			el = next
		}
		s.mu.Unlock()
	}
	for _, e := range dropped {
		c.entryGone(e, false)
	}
	c.digMu.Lock()
	delete(c.dig, digest)
	c.digMu.Unlock()
	prefix := digest + "\x00"
	c.negMu.Lock()
	for k := range c.neg {
		if strings.HasPrefix(k, prefix) {
			delete(c.neg, k)
		}
	}
	c.negMu.Unlock()
	return len(dropped)
}

// Stats is a point-in-time snapshot of the global counters.
type Stats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	Evicted    int64 `json:"evicted"`
	Expired    int64 `json:"expired"`
	Entries    int64 `json:"entries"`
	Bytes      int64 `json:"bytes"`
	NegHits    int64 `json:"neg_hits,omitempty"`
	NegEntries int64 `json:"neg_entries,omitempty"`
	Tier2Hits  int64 `json:"tier2_hits,omitempty"`
	Tier2Puts  int64 `json:"tier2_puts,omitempty"`
	Tier2Errs  int64 `json:"tier2_errors,omitempty"`
	Tier2      bool  `json:"tier2"`
	MaxBytes   int64 `json:"max_bytes"`
	TTLSeconds int64 `json:"ttl_seconds,omitempty"`
}

// DigestStats is the per-artifact slice of the counters.
type DigestStats struct {
	Digest    string `json:"digest"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Evicted   int64  `json:"evicted"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// Stats snapshots the global counters.
func (c *Cache) Stats() Stats {
	c.negMu.Lock()
	negEntries := int64(len(c.neg))
	c.negMu.Unlock()
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Coalesced:  c.coalesced.Load(),
		Evicted:    c.evicted.Load(),
		Expired:    c.expired.Load(),
		Entries:    c.entries.Load(),
		Bytes:      c.bytes.Load(),
		NegHits:    c.negHits.Load(),
		NegEntries: negEntries,
		Tier2Hits:  c.t2hits.Load(),
		Tier2Puts:  c.t2puts.Load(),
		Tier2Errs:  c.t2errors.Load(),
		Tier2:      c.tier2 != nil,
		MaxBytes:   c.perShard * numShards,
		TTLSeconds: int64(c.ttl / time.Second),
	}
}

// DigestStatsFor snapshots one artifact's counters; ok is false when the
// digest has never touched the cache.
func (c *Cache) DigestStatsFor(digest string) (DigestStats, bool) {
	c.digMu.Lock()
	dc, ok := c.dig[digest]
	c.digMu.Unlock()
	if !ok {
		return DigestStats{}, false
	}
	return dc.snapshot(digest), true
}

// PerDigest snapshots every artifact's counters, sorted by digest for
// stable output.
func (c *Cache) PerDigest() []DigestStats {
	c.digMu.Lock()
	out := make([]DigestStats, 0, len(c.dig))
	for d, dc := range c.dig {
		out = append(out, dc.snapshot(d))
	}
	c.digMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

func (dc *digestCounters) snapshot(digest string) DigestStats {
	return DigestStats{
		Digest:    digest,
		Hits:      dc.hits.Load(),
		Misses:    dc.misses.Load(),
		Coalesced: dc.coalesced.Load(),
		Evicted:   dc.evicted.Load(),
		Entries:   dc.entries.Load(),
		Bytes:     dc.bytes.Load(),
	}
}

// Len returns the number of tier-1 entries.
func (c *Cache) Len() int { return int(c.entries.Load()) }
