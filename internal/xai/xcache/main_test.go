package xcache

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }
