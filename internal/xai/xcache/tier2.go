package xcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"nfvxai/internal/wire"
	"nfvxai/internal/xai"
)

// Store is the persistence backend for the optional second cache tier.
// It is the blob subset of the registry's object-store surface —
// registry.BlobBackend satisfies it structurally — and the name is
// deliberate: the lockedcall analyzer flags any method call on a Store
// while a mutex is held, which is exactly the invariant the shards must
// keep (Store I/O only in the lock-free flight path).
//
// Get returns a not-found error for absent keys; the cache treats every
// Get error as a miss and every Put error as a dropped write (counted,
// never fatal) — tier 2 is an accelerator, not a source of truth.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
}

// tier2Key places entries under a per-digest prefix so an object-store
// operator can list or expire one artifact's explanations; the leaf is a
// hash of the full canonical key, keeping names flat and filesystem-safe.
func tier2Key(k Key) string {
	sum := sha256.Sum256([]byte(k.String()))
	return "xcache/" + k.Digest + "/" + hex.EncodeToString(sum[:])[:40]
}

func (c *Cache) tier2Get(k Key) (xai.Attribution, bool) {
	data, err := c.tier2.Get(tier2Key(k))
	if err != nil {
		return xai.Attribution{}, false
	}
	attr, err := decodeAttribution(data)
	if err != nil {
		c.t2errors.Add(1)
		return xai.Attribution{}, false
	}
	c.t2hits.Add(1)
	return attr, true
}

// tier2Put persists one cacheable entry. It runs synchronously in the
// leader after the computation: a blob write is noise next to the
// sampling work a miss just paid for, and the synchronous form keeps the
// no-goroutine leak discipline for free. Errors are counted and dropped.
func (c *Cache) tier2Put(k Key, attr xai.Attribution) {
	if c.tier2 == nil {
		return
	}
	if err := c.tier2.Put(tier2Key(k), encodeAttribution(attr)); err != nil {
		c.t2errors.Add(1)
		return
	}
	c.t2puts.Add(1)
}

// attrMagic/attrVersion head every tier-2 blob so foreign bytes fail
// loudly instead of decoding into garbage attributions.
const (
	attrMagic   = 0x7841 // "xA"
	attrVersion = 1
)

// encodeAttribution serializes an attribution (including names and the
// anytime diagnostics) in the repository's versioned wire format.
func encodeAttribution(attr xai.Attribution) []byte {
	w := &wire.Writer{}
	w.U16(attrMagic)
	w.U8(attrVersion)
	w.F64s(attr.Phi)
	w.F64(attr.Base)
	w.F64(attr.Value)
	w.Strings(attr.Names)
	w.Bool(attr.Diag != nil)
	if attr.Diag != nil {
		w.Bool(attr.Diag.Converged)
		w.Int(attr.Diag.SamplesUsed)
		w.Int(attr.Diag.Blocks)
		w.F64s(attr.Diag.CIHalf)
	}
	return w.Bytes()
}

func decodeAttribution(data []byte) (xai.Attribution, error) {
	r := wire.NewReader(data)
	if m := r.U16(); m != attrMagic {
		return xai.Attribution{}, fmt.Errorf("xcache: bad tier-2 magic %#x", m)
	}
	if v := r.U8(); v != attrVersion {
		return xai.Attribution{}, fmt.Errorf("xcache: unsupported tier-2 version %d", v)
	}
	var attr xai.Attribution
	attr.Phi = r.F64s()
	attr.Base = r.F64()
	attr.Value = r.F64()
	attr.Names = r.Strings()
	if r.Bool() {
		d := &xai.Diag{}
		d.Converged = r.Bool()
		d.SamplesUsed = r.Int()
		d.Blocks = r.Int()
		d.CIHalf = r.F64s()
		attr.Diag = d
	}
	if err := r.Err(); err != nil {
		return xai.Attribution{}, fmt.Errorf("xcache: tier-2 decode: %w", err)
	}
	return attr, nil
}

// DirStore is a filesystem Store for single-node deployments whose
// registry store is directory-backed (no BlobBackend to share): entries
// live as flat files under dir, named by the hex leaf of the tier-2 key,
// so a restarted explaind warm-serves its own previous computations.
type DirStore struct{ dir string }

// NewDirStore creates dir if needed and returns a Store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xcache: tier-2 dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path flattens the key: tier-2 keys are "xcache/<digest>/<hexleaf>",
// and a single directory of "<digest>-<hexleaf>" files keeps cleanup a
// plain glob away.
func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, filepath.Base(filepath.Dir(key))+"-"+filepath.Base(key))
}

// Put writes atomically (temp + rename) so a crashed writer never leaves
// a torn blob for the decoder to reject.
func (s *DirStore) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// Get reads one entry; absent keys return the underlying not-found error.
func (s *DirStore) Get(key string) ([]byte, error) {
	return os.ReadFile(s.path(key))
}
