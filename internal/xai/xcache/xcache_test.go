package xcache

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfvxai/internal/xai"
)

func testKey(digest string, i int) Key {
	return Key{Digest: digest, Method: "kernelshap", Opts: "opts", Instance: fmt.Sprintf("inst%d", i)}
}

func testAttr(v float64) xai.Attribution {
	return xai.Attribution{Names: []string{"a", "b"}, Phi: []float64{v, -v}, Base: 1, Value: 1 + v - v}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Config{})
	k := testKey("d1", 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache must miss")
	}
	want := testAttr(2)
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %+v, %v; want %+v", got, ok, want)
	}
	// The instance hash distinguishes bit-different inputs.
	if InstanceHash([]float64{1, 2}) == InstanceHash([]float64{1, 2 + 1e-15}) {
		t.Fatal("InstanceHash must separate bit-different instances")
	}
	if InstanceHash([]float64{1, 2}) != InstanceHash([]float64{1, 2}) {
		t.Fatal("InstanceHash must be deterministic")
	}
	// NaN has a fixed bit pattern per math.NaN(): equal to itself here.
	if InstanceHash([]float64{math.NaN()}) != InstanceHash([]float64{math.NaN()}) {
		t.Fatal("InstanceHash of identical NaN bits must agree")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c := New(Config{TTL: time.Minute, Now: clock})
	k := testKey("d1", 0)
	c.Put(k, testAttr(1))
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry must hit")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry must miss")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after expiry: %+v", st)
	}
}

// TestEvictionUnderBytePressure: a tiny byte budget forces LRU eviction;
// the gauges stay consistent and recently used entries survive.
func TestEvictionUnderBytePressure(t *testing.T) {
	// Each entry is ~entryOverhead+key+2 floats ≈ 250 bytes; 8 shards at
	// 1 KiB each hold only a few entries per shard.
	c := New(Config{MaxBytes: 8 << 10})
	for i := 0; i < 500; i++ {
		c.Put(testKey("d1", i), testAttr(float64(i)))
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("byte pressure must evict")
	}
	if st.Entries+st.Evicted != 500 {
		t.Fatalf("entries %d + evicted %d != 500", st.Entries, st.Evicted)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d above budget %d", st.Bytes, st.MaxBytes)
	}
	if c.Len() == 0 {
		t.Fatal("eviction must not empty the cache")
	}
	ds, ok := c.DigestStatsFor("d1")
	if !ok || ds.Entries != st.Entries || ds.Evicted != st.Evicted {
		t.Fatalf("digest stats out of sync: %+v vs %+v", ds, st)
	}
}

func TestDropDigest(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 10; i++ {
		c.Put(testKey("old", i), testAttr(float64(i)))
		c.Put(testKey("new", i), testAttr(float64(i)))
	}
	if n := c.DropDigest("old"); n != 10 {
		t.Fatalf("DropDigest = %d, want 10", n)
	}
	if _, ok := c.Get(testKey("old", 3)); ok {
		t.Fatal("dropped digest must miss")
	}
	if _, ok := c.Get(testKey("new", 3)); !ok {
		t.Fatal("surviving digest must hit")
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	if _, ok := c.DigestStatsFor("old"); ok {
		t.Fatal("dropped digest stats must be gone")
	}
}

// TestCoalesce64: 64 concurrent identical requests run exactly one
// computation — one miss, 63 coalesced joins.
func TestCoalesce64(t *testing.T) {
	c := New(Config{})
	k := testKey("d1", 0)
	var computes atomic.Int64
	started := make(chan struct{})
	compute := func(context.Context) (xai.Attribution, error) {
		<-started // hold every follower in the flight until all 64 arrived
		computes.Add(1)
		return testAttr(7), nil
	}
	var wg sync.WaitGroup
	var hits, misses, joins atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			attr, outcome, err := c.Do(context.Background(), k, compute)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if attr.Phi[0] != 7 {
				t.Errorf("Phi[0] = %v", attr.Phi[0])
			}
			switch outcome {
			case OutcomeHit:
				hits.Add(1)
			case OutcomeMiss:
				misses.Add(1)
			case OutcomeCoalesced:
				joins.Add(1)
			}
		}()
	}
	// Let goroutines pile into the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(started)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	if misses.Load() != 1 {
		t.Fatalf("miss outcomes = %d, want 1", misses.Load())
	}
	if hits.Load()+joins.Load() != 63 {
		t.Fatalf("hit %d + coalesced %d outcomes != 63", hits.Load(), joins.Load())
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats.Misses = %d, want 1 (misses must count computes)", st.Misses)
	}
	if st.Hits+st.Coalesced != 63 {
		t.Fatalf("stats hits %d + coalesced %d != 63", st.Hits, st.Coalesced)
	}
}

// TestFollowerRetriesAfterLeaderTimeout: a leader failing with its own
// context error must not poison followers whose budgets are still live —
// one of them retries as the new leader.
func TestFollowerRetriesAfterLeaderTimeout(t *testing.T) {
	c := New(Config{})
	k := testKey("d1", 0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	var calls atomic.Int64
	compute := func(ctx context.Context) (xai.Attribution, error) {
		if calls.Add(1) == 1 {
			close(inFlight)
			<-ctx.Done()
			return xai.Attribution{}, ctx.Err()
		}
		return testAttr(5), nil
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, k, compute)
		leaderDone <- err
	}()
	<-inFlight
	followerDone := make(chan error, 1)
	go func() {
		attr, _, err := c.Do(context.Background(), k, compute)
		if err == nil && attr.Phi[0] != 5 {
			err = fmt.Errorf("follower got %v", attr.Phi)
		}
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower must retry and succeed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("compute calls = %d, want 2 (canceled leader + retrying follower)", got)
	}
}

// TestPartialResultsNotCached: an unconverged anytime attribution fans
// out to the flight but never lands in the cache.
func TestPartialResultsNotCached(t *testing.T) {
	c := New(Config{})
	k := testKey("d1", 0)
	partial := testAttr(3)
	partial.Diag = &xai.Diag{Converged: false, SamplesUsed: 128, Blocks: 1}
	var computes atomic.Int64
	compute := func(context.Context) (xai.Attribution, error) {
		computes.Add(1)
		return partial, nil
	}
	for i := 0; i < 3; i++ {
		if _, outcome, err := c.Do(context.Background(), k, compute); err != nil || outcome != OutcomeMiss {
			t.Fatalf("call %d: outcome %v err %v", i, outcome, err)
		}
	}
	if computes.Load() != 3 {
		t.Fatalf("unconverged results must recompute every time, got %d computes", computes.Load())
	}
	converged := partial
	converged.Diag = &xai.Diag{Converged: true, SamplesUsed: 1024, Blocks: 8}
	if !Cacheable(converged) || Cacheable(partial) {
		t.Fatal("Cacheable must track Diag.Converged")
	}
}

type memStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts int
}

func (s *memStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	s.m[key] = append([]byte(nil), data...)
	s.puts++
	return nil
}

func (s *memStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	if !ok {
		return nil, errors.New("not found")
	}
	return data, nil
}

// TestTier2SharedAcrossCaches: a second cache (a restarted node, or a
// peer sharing the object store) serves a tier-2 hit without computing.
func TestTier2SharedAcrossCaches(t *testing.T) {
	st := &memStore{}
	a := New(Config{Tier2: st})
	k := testKey("d1", 0)
	want := testAttr(9)
	want.Diag = &xai.Diag{Converged: true, SamplesUsed: 2048, Blocks: 16, CIHalf: []float64{0.01, 0.02}}
	if _, outcome, err := a.Do(context.Background(), k, func(context.Context) (xai.Attribution, error) {
		return want, nil
	}); err != nil || outcome != OutcomeMiss {
		t.Fatalf("first Do: outcome %v err %v", outcome, err)
	}
	if s := a.Stats(); s.Tier2Puts != 1 {
		t.Fatalf("tier2 puts = %d", s.Tier2Puts)
	}

	b := New(Config{Tier2: st}) // fresh node, same bucket
	attr, outcome, err := b.Do(context.Background(), k, func(context.Context) (xai.Attribution, error) {
		t.Error("tier-2 hit must not compute")
		return xai.Attribution{}, nil
	})
	if err != nil || outcome != OutcomeHit {
		t.Fatalf("tier-2 Do: outcome %v err %v", outcome, err)
	}
	if !reflect.DeepEqual(attr, want) {
		t.Fatalf("tier-2 round trip: got %+v want %+v", attr, want)
	}
	s := b.Stats()
	if s.Tier2Hits != 1 || s.Misses != 0 || s.Hits != 1 {
		t.Fatalf("tier-2 stats: %+v", s)
	}
	// The promoted entry now hits tier 1 directly.
	if _, ok := b.Get(k); !ok {
		t.Fatal("tier-2 hit must promote into tier 1")
	}
}

func TestTier2CorruptBlobIsMiss(t *testing.T) {
	st := &memStore{}
	k := testKey("d1", 0)
	if err := st.Put(tier2Key(k), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Tier2: st})
	var computes atomic.Int64
	attr, outcome, err := c.Do(context.Background(), k, func(context.Context) (xai.Attribution, error) {
		computes.Add(1)
		return testAttr(4), nil
	})
	if err != nil || outcome != OutcomeMiss || computes.Load() != 1 {
		t.Fatalf("corrupt tier-2 entry must fall through to compute: %v %v %d", outcome, err, computes.Load())
	}
	if attr.Phi[0] != 4 {
		t.Fatalf("Phi = %v", attr.Phi)
	}
	if s := c.Stats(); s.Tier2Errs != 1 {
		t.Fatalf("tier-2 errors = %d, want 1", s.Tier2Errs)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	ds, err := NewDirStore(t.TempDir() + "/xc")
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("deadbeef", 1)
	want := encodeAttribution(testAttr(6))
	if err := ds.Put(tier2Key(k), want); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get(tier2Key(k))
	if err != nil {
		t.Fatal(err)
	}
	attr, err := decodeAttribution(got)
	if err != nil || attr.Phi[0] != 6 {
		t.Fatalf("decode: %+v %v", attr, err)
	}
	if _, err := ds.Get(tier2Key(testKey("deadbeef", 2))); err == nil {
		t.Fatal("absent key must error")
	}
}

func TestEncodeDecodeVersionGuard(t *testing.T) {
	data := encodeAttribution(testAttr(1))
	if _, err := decodeAttribution(data); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF // clobber the magic
	if _, err := decodeAttribution(bad); err == nil {
		t.Fatal("bad magic must fail decode")
	}
	if _, err := decodeAttribution(data[:3]); err == nil {
		t.Fatal("truncated blob must fail decode")
	}
}

func TestNegativeCache(t *testing.T) {
	c := New(Config{})
	if c.NegGet("d1", "intgrad") {
		t.Fatal("empty negative cache must miss")
	}
	c.NegPut("d1", "intgrad")
	c.NegPut("d1", "pdp")
	c.NegPut("d2", "intgrad")
	if !c.NegGet("d1", "intgrad") || !c.NegGet("d1", "pdp") || !c.NegGet("d2", "intgrad") {
		t.Fatal("recorded verdicts must hit")
	}
	if c.NegGet("d1", "lime") || c.NegGet("d3", "intgrad") {
		t.Fatal("unrecorded pairs must miss")
	}
	st := c.Stats()
	if st.NegEntries != 3 {
		t.Fatalf("NegEntries = %d, want 3", st.NegEntries)
	}
	if st.NegHits != 3 {
		t.Fatalf("NegHits = %d, want 3", st.NegHits)
	}
	// NegPut is idempotent.
	c.NegPut("d1", "intgrad")
	if st := c.Stats(); st.NegEntries != 3 {
		t.Fatalf("NegEntries after duplicate put = %d, want 3", st.NegEntries)
	}
	// Dropping a digest drops exactly its verdicts.
	c.DropDigest("d1")
	if c.NegGet("d1", "intgrad") || c.NegGet("d1", "pdp") {
		t.Fatal("dropped digest's verdicts must miss")
	}
	if !c.NegGet("d2", "intgrad") {
		t.Fatal("other digest's verdict must survive DropDigest")
	}
	if st := c.Stats(); st.NegEntries != 1 {
		t.Fatalf("NegEntries after drop = %d, want 1", st.NegEntries)
	}
}
