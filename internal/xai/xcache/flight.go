package xcache

import (
	"context"
	"errors"

	"nfvxai/internal/xai"
)

// Outcome classifies how one request through Do (or the pipeline's
// cache-aware paths) was served. Its String form is what the serving
// layer reports in the X-Cache response header.
type Outcome uint8

const (
	// OutcomeBypass: the request never touched the cache (no cache
	// configured, non-deterministic method, or an explicit no_cache).
	OutcomeBypass Outcome = iota
	// OutcomeMiss: this request ran the underlying computation.
	OutcomeMiss
	// OutcomeHit: served from tier 1 or tier 2 without computing.
	OutcomeHit
	// OutcomeCoalesced: joined an identical in-flight computation and
	// received the leader's result.
	OutcomeCoalesced
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeCoalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

// call is one in-flight computation; followers block on done and then
// read attr/err. Fields are written exactly once, before close(done).
type call struct {
	done chan struct{}
	attr xai.Attribution
	err  error
}

// Do returns the cached attribution for k, computing it via compute on a
// miss. Concurrent Do calls for the same key coalesce: one leader runs
// compute under its own context while followers wait on the leader's
// result (inheriting its budget semantics — a converged-early or partial
// anytime result fans out as-is). The result is stored only when
// Cacheable; callers gate method-level determinism before calling Do.
//
// A follower whose own context expires stops waiting with its context
// error. If the leader fails with a context error (its budget, not the
// follower's), a follower whose context is still live retries as the new
// leader instead of inheriting a foreign timeout.
func (c *Cache) Do(ctx context.Context, k Key, compute func(context.Context) (xai.Attribution, error)) (xai.Attribution, Outcome, error) {
	ks := k.String()
	for {
		if attr, ok := c.Get(k); ok {
			return attr, OutcomeHit, nil
		}
		c.flightMu.Lock()
		if f, ok := c.flight[ks]; ok {
			c.flightMu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.coalesced.Add(1)
					c.digCounters(k.Digest).coalesced.Add(1)
					return f.attr, OutcomeCoalesced, nil
				}
				if isCtxErr(f.err) && ctx.Err() == nil {
					continue
				}
				return xai.Attribution{}, OutcomeCoalesced, f.err
			case <-ctx.Done():
				return xai.Attribution{}, OutcomeCoalesced, ctx.Err()
			}
		}
		f := &call{done: make(chan struct{})}
		c.flight[ks] = f
		c.flightMu.Unlock()

		attr, outcome, err := c.lead(ctx, k, ks, compute)

		f.attr, f.err = attr, err
		c.flightMu.Lock()
		delete(c.flight, ks)
		c.flightMu.Unlock()
		close(f.done)
		return attr, outcome, err
	}
}

// lead runs the leader's side of one flight: consult tier 2, else
// compute, then populate both tiers when the result is cacheable. No
// shard lock is held anywhere in this path — tier-2 Store I/O and the
// model computation run lock-free by construction.
func (c *Cache) lead(ctx context.Context, k Key, ks string, compute func(context.Context) (xai.Attribution, error)) (xai.Attribution, Outcome, error) {
	if c.tier2 != nil {
		if attr, ok := c.tier2Get(k); ok {
			c.Put(k, attr)
			c.hits.Add(1)
			c.digCounters(k.Digest).hits.Add(1)
			return attr, OutcomeHit, nil
		}
	}
	// One miss per underlying computation: misses counts computes,
	// hits+misses+coalesced counts requests.
	c.misses.Add(1)
	c.digCounters(k.Digest).misses.Add(1)
	attr, err := compute(ctx)
	if err != nil {
		return xai.Attribution{}, OutcomeMiss, err
	}
	if Cacheable(attr) {
		c.Put(k, attr)
		c.tier2Put(k, attr)
	}
	return attr, OutcomeMiss, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
