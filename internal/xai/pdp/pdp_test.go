package pdp

import (
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
)

func grid2D(rng *rand.Rand, n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.NormFloat64()}
	}
	return X
}

func TestPDPMonotoneModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := grid2D(rng, 300)
	model := ml.PredictorFunc(func(x []float64) float64 { return 3*x[0] + x[1] })
	c, err := Compute(model, X, 0, Config{GridSize: 15})
	if err != nil {
		t.Fatal(err)
	}
	if c.MonotoneFraction() != 1 {
		t.Fatalf("linear PDP not monotone: %v", c.Mean)
	}
	// Slope recoverable from endpoints: Δmean/Δgrid ≈ 3.
	slope := (c.Mean[len(c.Mean)-1] - c.Mean[0]) / (c.Grid[len(c.Grid)-1] - c.Grid[0])
	if slope < 2.9 || slope > 3.1 {
		t.Fatalf("PDP slope = %v want 3", slope)
	}
}

func TestPDPFlatForIrrelevantFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := grid2D(rng, 200)
	model := ml.PredictorFunc(func(x []float64) float64 { return 5 * x[0] })
	c, err := Compute(model, X, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Range() != 0 {
		t.Fatalf("irrelevant feature PDP range = %v", c.Range())
	}
}

func TestICECurves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := grid2D(rng, 50)
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] * x[1] })
	c, err := Compute(model, X, 0, Config{GridSize: 5, WithICE: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ICE) != 50 {
		t.Fatalf("ICE rows = %d", len(c.ICE))
	}
	// PDP must be the mean of ICE curves.
	for g := range c.Grid {
		var mean float64
		for i := range c.ICE {
			mean += c.ICE[i][g]
		}
		mean /= float64(len(c.ICE))
		if diff := mean - c.Mean[g]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("PDP != mean(ICE) at grid %d", g)
		}
	}
}

func TestPDPNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X := make([][]float64, 400)
	for i := range X {
		X[i] = []float64{rng.Float64()*4 - 2}
	}
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] * x[0] })
	c, err := Compute(model, X, 0, Config{GridSize: 21})
	if err != nil {
		t.Fatal(err)
	}
	if c.MonotoneFraction() > 0.8 {
		t.Fatalf("quadratic PDP reported monotone: %v", c.MonotoneFraction())
	}
	if c.Range() < 1 {
		t.Fatalf("quadratic PDP range too small: %v", c.Range())
	}
}

func TestPDPErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := Compute(model, nil, 0, Config{}); err == nil {
		t.Fatal("expected empty-data error")
	}
	if _, err := Compute(model, [][]float64{{1}}, 5, Config{}); err == nil {
		t.Fatal("expected feature-range error")
	}
}

func TestGridDeduplicates(t *testing.T) {
	// Constant column must produce a single grid point, not GridSize copies.
	X := [][]float64{{7}, {7}, {7}}
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] })
	c, err := Compute(model, X, 0, Config{GridSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Grid) != 1 {
		t.Fatalf("grid = %v", c.Grid)
	}
	if c.MonotoneFraction() != 1 {
		t.Fatal("single-point curve should be trivially monotone")
	}
}
