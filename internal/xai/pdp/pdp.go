// Package pdp implements partial dependence (PDP) and individual
// conditional expectation (ICE) curves: the model's average response as
// one feature sweeps a grid while the others stay at observed values.
// Operators use these to sanity-check monotonicity assumptions, e.g. "CPU
// prediction should rise with offered load".
package pdp

import (
	"errors"
	"sort"

	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// init registers partial dependence as a *global* method: it summarizes
// the whole model per feature, so the serving layer runs it through the
// asynchronous jobs API (pdp-grid) rather than the per-instance explain
// path.
func init() {
	xai.Register(xai.Method{
		Name:     "pdp",
		Kind:     xai.KindGlobal,
		Caps:     xai.Capabilities{NeedsBackground: true, Deterministic: true},
		Defaults: xai.Options{GridSize: 20},
	})
}

// Curve is a partial-dependence result for one feature.
type Curve struct {
	Feature int
	Grid    []float64 // swept feature values
	Mean    []float64 // PDP: average prediction at each grid point
	// ICE[i][g] is the prediction for background row i at grid point g;
	// nil unless requested.
	ICE [][]float64
}

// Config controls curve computation.
type Config struct {
	// GridSize is the number of grid points (default 20), spread over the
	// feature's observed quantiles.
	GridSize int
	// WithICE requests per-instance curves in addition to the mean.
	WithICE bool
}

// Compute returns the PDP (and optionally ICE) curve for the given feature
// over the rows of X.
func Compute(model ml.Predictor, X [][]float64, feature int, cfg Config) (Curve, error) {
	if len(X) == 0 {
		return Curve{}, errors.New("pdp: empty data")
	}
	if feature < 0 || feature >= len(X[0]) {
		return Curve{}, errors.New("pdp: feature index out of range")
	}
	gs := cfg.GridSize
	if gs <= 0 {
		gs = 20
	}
	grid := quantileGrid(X, feature, gs)
	curve := Curve{Feature: feature, Grid: grid, Mean: make([]float64, len(grid))}
	if cfg.WithICE {
		curve.ICE = make([][]float64, len(X))
		for i := range curve.ICE {
			curve.ICE[i] = make([]float64, len(grid))
		}
	}
	// One mutable copy of X (flat backing); each grid point rewrites the
	// swept column and scores the whole matrix in a single batched call.
	n, d := len(X), len(X[0])
	backing := make([]float64, n*d)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*d : (i+1)*d]
		copy(rows[i], X[i])
	}
	preds := make([]float64, n)
	for g, v := range grid {
		for i := range rows {
			rows[i][feature] = v
		}
		ml.PredictBatchParallel(model, rows, preds, 0)
		var sum float64
		for i, p := range preds {
			sum += p
			if cfg.WithICE {
				curve.ICE[i][g] = p
			}
		}
		curve.Mean[g] = sum / float64(n)
	}
	return curve, nil
}

// Range returns max(Mean) − min(Mean), a scalar summary of how much the
// model responds to the feature (flat PDP ⇒ irrelevant feature).
func (c Curve) Range() float64 {
	if len(c.Mean) == 0 {
		return 0
	}
	lo, hi := c.Mean[0], c.Mean[0]
	for _, v := range c.Mean[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// MonotoneFraction returns the fraction of adjacent grid steps that move
// in the majority direction; 1.0 means a perfectly monotone response.
func (c Curve) MonotoneFraction() float64 {
	if len(c.Mean) < 2 {
		return 1
	}
	up, down := 0, 0
	for i := 1; i < len(c.Mean); i++ {
		switch {
		case c.Mean[i] > c.Mean[i-1]:
			up++
		case c.Mean[i] < c.Mean[i-1]:
			down++
		}
	}
	total := up + down
	if total == 0 {
		return 1
	}
	if up > down {
		return float64(up) / float64(total)
	}
	return float64(down) / float64(total)
}

// quantileGrid builds a grid over the observed quantiles of the feature,
// deduplicating repeated values.
func quantileGrid(X [][]float64, feature, gs int) []float64 {
	vals := make([]float64, len(X))
	for i, row := range X {
		vals[i] = row[feature]
	}
	sort.Float64s(vals)
	grid := make([]float64, 0, gs)
	for g := 0; g < gs; g++ {
		q := float64(g) / float64(gs-1)
		pos := q * float64(len(vals)-1)
		lo := int(pos)
		hi := lo
		if lo+1 < len(vals) {
			hi = lo + 1
		}
		frac := pos - float64(lo)
		v := vals[lo]*(1-frac) + vals[hi]*frac
		if len(grid) == 0 || v != grid[len(grid)-1] {
			grid = append(grid, v)
		}
	}
	return grid
}
