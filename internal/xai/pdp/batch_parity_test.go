package pdp

import (
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
)

// TestBatchedCurveParity: grid evaluation now runs through the model's
// batch path; the same model behind a plain Predictor (row-loop fallback)
// must produce identical PDP and ICE values.
func TestBatchedCurveParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := dataset.New(dataset.Regression, "a", "b", "c", "d")
	for i := 0; i < 150; i++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.Add(x, x[0]*x[0]-2*x[1]+0.1*rng.NormFloat64())
	}
	rf := &forest.RandomForest{NumTrees: 8, MaxDepth: 5, Task: dataset.Regression, Seed: 3}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	cfg := Config{GridSize: 15, WithICE: true}
	a, err := Compute(rf, d.X, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(ml.PredictorFunc(rf.Predict), d.X, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := range a.Mean {
		if a.Mean[g] != b.Mean[g] {
			t.Fatalf("grid %d: native %v != generic %v", g, a.Mean[g], b.Mean[g])
		}
	}
	for i := range a.ICE {
		for g := range a.ICE[i] {
			if a.ICE[i][g] != b.ICE[i][g] {
				t.Fatalf("ICE[%d][%d]: native %v != generic %v", i, g, a.ICE[i][g], b.ICE[i][g])
			}
		}
	}
}
