package xai

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"nfvxai/internal/ml"
)

// Kind classifies an explanation method by the scope of its output.
type Kind int

const (
	// KindLocal methods attribute a single prediction (SHAP, LIME, ...).
	KindLocal Kind = iota
	// KindGlobal methods summarize the whole model (PDP, permutation
	// importance, surrogate trees); they run through the jobs API, not the
	// per-instance explain path.
	KindGlobal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindGlobal:
		return "global"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Capabilities are the static properties of a method that the serving
// layer uses to validate a request before paying for the computation.
type Capabilities struct {
	// NeedsBackground: the method requires a non-empty background sample.
	NeedsBackground bool `json:"needs_background"`
	// TreeOnly: the method only applies to additive tree models.
	TreeOnly bool `json:"tree_only"`
	// GradientOnly: the method requires a differentiable model.
	GradientOnly bool `json:"gradient_only"`
	// SupportsBatch: Explain is safe for concurrent fan-out (all the
	// repository's explainers are; external registrations may not be).
	SupportsBatch bool `json:"supports_batch"`
	// Deterministic: equal (input, options) produce bit-identical output.
	Deterministic bool `json:"deterministic"`
	// Additive: the attribution is an additive decomposition
	// (Value ≈ Base + Σ Phi), so additivity-based faithfulness metrics
	// apply. False for rule/delta encodings (anchors, counterfactual).
	Additive bool `json:"additive"`
}

// Options is the typed parameter set shared by every registered method.
// Zero values mean "method default"; each method documents which fields it
// reads in its registration's Defaults.
type Options struct {
	// Samples bounds stochastic evaluation budgets (KernelSHAP coalitions,
	// LIME neighborhood size, anchors Monte Carlo draws).
	Samples int `json:"samples,omitempty"`
	// BackgroundSize truncates the background sample handed to the method.
	BackgroundSize int `json:"background_size,omitempty"`
	// Seed drives all sampling; 0 inherits the caller's (pipeline) seed.
	Seed int64 `json:"seed,omitempty"`
	// TopK bounds ranked output. No Build reads it — it shapes the
	// caller's rendering of the attribution (the serving layer honors it
	// as an alternative spelling of its top-level "topk" field, and the
	// pipeline's explainer cache normalizes it out of its keys).
	TopK int `json:"topk,omitempty"`
	// KernelWidth is the LIME proximity-kernel width.
	KernelWidth float64 `json:"kernel_width,omitempty"`
	// KeepProb is the LIME per-feature keep probability.
	KeepProb float64 `json:"keep_prob,omitempty"`
	// Ridge regularizes surrogate/WLS solves.
	Ridge float64 `json:"ridge,omitempty"`
	// Steps is the integrated-gradients Riemann resolution.
	Steps int `json:"steps,omitempty"`
	// GridSize is the PDP grid resolution.
	GridSize int `json:"grid_size,omitempty"`
	// Repeats is the permutation-importance shuffle count.
	Repeats int `json:"repeats,omitempty"`
	// MaxDepth bounds surrogate-tree complexity.
	MaxDepth int `json:"max_depth,omitempty"`
	// Threshold is the anchors target precision.
	Threshold float64 `json:"threshold,omitempty"`
	// TargetOp / TargetValue define the counterfactual goal predicate
	// ("<=" or ">=" against the model output). TargetValue is a pointer so
	// an explicit 0 target is distinguishable from "use the method
	// default" — the same omitted-vs-zero pattern the jobs API uses for
	// audit strength.
	TargetOp    string   `json:"target_op,omitempty"`
	TargetValue *float64 `json:"target_value,omitempty"`
	// MaxChanges caps counterfactual sparsity.
	MaxChanges int `json:"max_changes,omitempty"`
}

// Key returns a canonical fingerprint of the options, used as (part of)
// explainer-cache keys. Two Options with equal (dereferenced) fields
// share a key.
func (o Options) Key() string {
	tv := "-"
	if o.TargetValue != nil {
		tv = fmt.Sprintf("%g", *o.TargetValue)
	}
	return fmt.Sprintf("s%d|b%d|sd%d|k%d|kw%g|kp%g|r%g|st%d|g%d|rp%d|md%d|th%g|%s%s|mc%d",
		o.Samples, o.BackgroundSize, o.Seed, o.TopK, o.KernelWidth, o.KeepProb,
		o.Ridge, o.Steps, o.GridSize, o.Repeats, o.MaxDepth, o.Threshold,
		o.TargetOp, tv, o.MaxChanges)
}

// Target bundles everything a method needs to build an explainer for one
// frozen model.
type Target struct {
	Model      ml.Predictor
	Background [][]float64
	Names      []string
}

// Method is one registered explanation method: its identity, capability
// flags, default options, and constructors.
type Method struct {
	// Name is the registry key ("treeshap", "lime", ...).
	Name string
	Kind Kind
	Caps Capabilities
	// Defaults documents the option fields the method reads, with their
	// default values (informational; constructors re-default internally).
	Defaults Options
	// Compatible reports whether the method can explain the model.
	// nil means every model is supported.
	Compatible func(model ml.Predictor) bool
	// Build constructs a local explainer for the target. nil for global
	// methods, which run through the jobs subsystem instead.
	Build func(t Target, o Options) (Explainer, error)
}

// ErrUnknownMethod reports a lookup of an unregistered method name.
var ErrUnknownMethod = errors.New("unknown explanation method")

// ErrUnsupportedModel reports a method/model capability mismatch (e.g.
// TreeSHAP on an MLP). The serving layer maps it to HTTP 409.
var ErrUnsupportedModel = errors.New("method does not support this model")

// ErrInvalidOptions reports option values a method cannot accept (e.g. a
// counterfactual target_op that is neither "<=" nor ">="). Build
// implementations wrap it so the serving layer can map the failure to
// HTTP 400 — a client-input error, not a server fault.
var ErrInvalidOptions = errors.New("invalid method options")

var (
	regMu   sync.RWMutex
	methods = map[string]Method{}
)

// Register adds a method to the package-level registry. The shipped
// methods register from their packages' init functions; external packages
// may add their own. Registering an empty or duplicate name panics: both
// are programmer errors that must fail at start-up, not at request time.
func Register(m Method) {
	if m.Name == "" {
		panic("xai: Register with empty method name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := methods[m.Name]; dup {
		panic(fmt.Sprintf("xai: method %q registered twice", m.Name))
	}
	methods[m.Name] = m
}

// LookupMethod returns the named method.
func LookupMethod(name string) (Method, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := methods[name]
	return m, ok
}

// Methods returns every registered method, sorted by name.
func Methods() []Method {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Method, 0, len(methods))
	for _, m := range methods {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MethodNames returns the sorted registered method names.
func MethodNames() []string {
	ms := Methods()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// MethodsFor returns the registered methods applicable to the model:
// global methods always apply, local ones according to Compatible.
func MethodsFor(model ml.Predictor) []Method {
	var out []Method
	for _, m := range Methods() {
		if m.Compatible == nil || m.Compatible(model) {
			out = append(out, m)
		}
	}
	return out
}

// BuildExplainer resolves a method by name, validates it against the
// target model, and constructs the explainer. Global methods are rejected
// with ErrUnsupportedModel: they have no per-instance explainer and must
// run through the jobs API.
func BuildExplainer(name string, t Target, o Options) (Explainer, Method, error) {
	m, ok := LookupMethod(name)
	if !ok {
		return nil, Method{}, fmt.Errorf("%w: %q", ErrUnknownMethod, name)
	}
	if m.Kind != KindLocal || m.Build == nil {
		return nil, m, fmt.Errorf("%w: %q is a global method; submit it as a job", ErrUnsupportedModel, name)
	}
	if m.Compatible != nil && !m.Compatible(t.Model) {
		return nil, m, fmt.Errorf("%w: %q", ErrUnsupportedModel, name)
	}
	if m.Caps.NeedsBackground && len(t.Background) == 0 {
		return nil, m, fmt.Errorf("%w: %q needs a background sample", ErrUnsupportedModel, name)
	}
	if n := o.BackgroundSize; n > 0 && n < len(t.Background) {
		t.Background = t.Background[:n]
	}
	e, err := m.Build(t, o)
	if err != nil {
		return nil, m, err
	}
	return e, m, nil
}

// Canceled adapts a context error for explainers: it returns a non-nil
// error iff ctx is done, wrapped with the method name so batch failures
// identify their source. Hot sampling loops call this between blocks.
func Canceled(ctx context.Context, method string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: %w", method, err)
	}
	return nil
}
