// Package surrogate implements global surrogate explanation: a shallow
// CART tree is trained to mimic the black-box model's *predictions* (not
// the original labels), and its fidelity — how much of the model's
// behaviour the interpretable tree captures — is reported. High-fidelity
// shallow surrogates give operators a global, auditable picture of an NFV
// predictor's policy ("if packet_rate > 41k and dpi_enabled then scale").
package surrogate

import (
	"errors"
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/xai"
)

// init registers the global surrogate as a *global* method, served
// through the jobs API (surrogate-tree) rather than per-instance explain.
func init() {
	xai.Register(xai.Method{
		Name:     "surrogate",
		Kind:     xai.KindGlobal,
		Caps:     xai.Capabilities{Deterministic: true},
		Defaults: xai.Options{MaxDepth: 4},
	})
}

// Result is a fitted surrogate with fidelity diagnostics.
type Result struct {
	Tree *tree.Tree
	// FidelityR2 is the R² of the surrogate against the model's
	// predictions on held-out data (regression view, also meaningful for
	// probability outputs).
	FidelityR2 float64
	// Agreement is the fraction of held-out rows where thresholded
	// surrogate and model predictions agree; only set for classification.
	Agreement float64
	// Depth and Leaves describe surrogate complexity.
	Depth, Leaves int
}

// Fit trains a surrogate of the model. train supplies the inputs the
// surrogate learns from; test measures fidelity (pass distinct rows to
// avoid optimistic estimates). maxDepth bounds surrogate complexity.
func Fit(model ml.Predictor, train, test *dataset.Dataset, maxDepth int) (Result, error) {
	if train.Len() == 0 || test.Len() == 0 {
		return Result{}, errors.New("surrogate: empty train or test split")
	}
	if maxDepth <= 0 {
		maxDepth = 4
	}
	// Relabel the training inputs with the model's own predictions.
	mimic := &dataset.Dataset{
		Names: train.Names,
		X:     train.X,
		Y:     ml.PredictBatch(model, train.X),
		Task:  dataset.Regression, // always regress on the model output
	}
	tr := tree.New(tree.Config{Task: dataset.Regression, MaxDepth: maxDepth, MinLeaf: 5})
	if err := tr.Fit(mimic); err != nil {
		return Result{}, fmt.Errorf("surrogate: fit: %w", err)
	}
	modelPred := ml.PredictBatch(model, test.X)
	surrPred := ml.PredictBatch(tr, test.X)
	res := Result{
		Tree:       tr,
		FidelityR2: metrics.R2(surrPred, modelPred),
		Depth:      tr.Depth(),
		Leaves:     tr.NumLeaves(),
	}
	if train.Task == dataset.Classification {
		agree := 0
		for i := range modelPred {
			if (modelPred[i] >= 0.5) == (surrPred[i] >= 0.5) {
				agree++
			}
		}
		res.Agreement = float64(agree) / float64(len(modelPred))
	}
	return res, nil
}

// DepthSweep fits surrogates at increasing depth and reports fidelity per
// depth — the paper's "fidelity vs complexity" trade-off curve.
func DepthSweep(model ml.Predictor, train, test *dataset.Dataset, maxDepth int) ([]Result, error) {
	if maxDepth <= 0 {
		maxDepth = 6
	}
	out := make([]Result, 0, maxDepth)
	for depth := 1; depth <= maxDepth; depth++ {
		r, err := Fit(model, train, test, depth)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
