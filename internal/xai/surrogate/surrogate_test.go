package surrogate

import (
	"math/rand"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
)

func splitData(n int, seed int64, task dataset.Task) (*dataset.Dataset, *dataset.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(task, "a", "b", "c")
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64(), rng.NormFloat64()}
		y := 0.0
		if task == dataset.Classification {
			if x[0] > 5 {
				y = 1
			}
		} else {
			if x[0] > 5 {
				y = 20
			}
			y += x[1]
		}
		d.Add(x, y)
	}
	return d.Split(rng, 0.7)
}

func TestSurrogateMimicsTreeFriendlyModel(t *testing.T) {
	train, test := splitData(1000, 1, dataset.Regression)
	f := forest.RandomForest{NumTrees: 20, MaxDepth: 6, Task: dataset.Regression, Seed: 2}
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	res, err := Fit(&f, train, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FidelityR2 < 0.9 {
		t.Fatalf("fidelity R2 = %v", res.FidelityR2)
	}
	if res.Depth > 3 {
		t.Fatalf("surrogate depth %d exceeds bound", res.Depth)
	}
}

func TestSurrogateClassificationAgreement(t *testing.T) {
	train, test := splitData(1000, 3, dataset.Classification)
	f := forest.RandomForest{NumTrees: 20, MaxDepth: 6, Task: dataset.Classification, Seed: 4}
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	res, err := Fit(&f, train, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreement < 0.95 {
		t.Fatalf("agreement = %v", res.Agreement)
	}
}

func TestSurrogateExplainsModelNotLabels(t *testing.T) {
	// The surrogate must mimic the model even when the model is wrong
	// about the labels: fit a constant-ish model and check the surrogate
	// tracks it, not the ground truth.
	train, test := splitData(500, 5, dataset.Regression)
	constModel := ml.PredictorFunc(func(x []float64) float64 { return 7 })
	res, err := Fit(constModel, train, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The surrogate of a constant model is a stump predicting 7.
	if res.Leaves != 1 {
		t.Fatalf("constant model surrogate has %d leaves", res.Leaves)
	}
	if got := res.Tree.Predict(test.X[0]); got != 7 {
		t.Fatalf("surrogate predicts %v want 7", got)
	}
}

func TestDepthSweepFidelityNondecreasing(t *testing.T) {
	train, test := splitData(800, 6, dataset.Regression)
	f := forest.RandomForest{NumTrees: 15, MaxDepth: 8, Task: dataset.Regression, Seed: 7}
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	sweep, err := DepthSweep(&f, train, test, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	// Fidelity should broadly improve with depth; require the last depth
	// to beat the first.
	if sweep[4].FidelityR2 <= sweep[0].FidelityR2 {
		t.Fatalf("fidelity did not improve with depth: %v vs %v", sweep[0].FidelityR2, sweep[4].FidelityR2)
	}
}

func TestSurrogateErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	empty := dataset.New(dataset.Regression, "x")
	full := dataset.New(dataset.Regression, "x")
	full.Add([]float64{1}, 1)
	if _, err := Fit(model, empty, full, 3); err == nil {
		t.Fatal("expected error for empty train")
	}
	if _, err := Fit(model, full, empty, 3); err == nil {
		t.Fatal("expected error for empty test")
	}
}
