package xai

import (
	"time"

	"nfvxai/internal/ml"
)

// The budget-degradation ladder: when a request carries a latency budget
// that cannot fit the requested method at its requested fidelity, the
// serving layer walks down this order — exact TreeSHAP where the model
// supports it, KernelSHAP with a reduced coalition budget, and finally
// single-feature occlusion (the "perm" rung: d×background predictions,
// no sampling) — and reports the rung it landed on. Only ladder methods
// participate; an explicitly requested non-ladder method (lime, intgrad,
// ...) runs as asked under the deadline and times out with a typed error
// if the budget truly cannot fit it.

// LadderRungs is the degradation order, fastest-exact first.
var LadderRungs = []string{"treeshap", "kernelshap", "occlusion"}

// MinKernelSamples is the smallest coalition budget the ladder will run
// KernelSHAP with; below it the WLS estimate is noise and occlusion's
// exact single-feature sensitivities are strictly better per prediction.
const MinKernelSamples = 32

// budgetFraction is how much of the request budget the ladder plans to
// spend inside the explainer's sampling loop, reserving the rest for
// base-value evaluation, solves, and serialization.
const budgetFraction = 0.7

// CostModel carries the measured quantities PlanBudget prices rungs with.
type CostModel struct {
	// PredNs is the estimated wall nanoseconds of one single-row model
	// prediction (amortized from a batched measurement). Zero means
	// unmeasured: the ladder then assumes everything fits and leaves
	// enforcement to the context deadline.
	PredNs float64
	// Background is the background-sample row count — every KernelSHAP
	// coalition and occlusion column costs this many predictions.
	Background int
	// Features is the model's input dimension.
	Features int
}

// coalitionNs is the modeled cost of evaluating one coalition.
func (c CostModel) coalitionNs() float64 {
	nb := c.Background
	if nb < 1 {
		nb = 1
	}
	return c.PredNs * float64(nb)
}

// Plan is a budget-fitting decision for one explain request.
type Plan struct {
	// Method is the rung to run; Opts are the (possibly reduced) options.
	Method string
	Opts   Options
	// Requested is the method the client asked for (or the model default).
	Requested string
	// Downgraded is true when Method differs from Requested or the sample
	// budget was reduced to fit.
	Downgraded bool
	// Reason explains a downgrade in one operator-readable clause.
	Reason string
}

// PlanBudget fits the requested method to a latency budget, walking the
// degradation ladder when it cannot fit as asked. opts.Samples should
// carry the effective sample budget the request would run with (callers
// resolve their defaults first, so "reduced" is relative to what would
// actually have run). Methods outside the ladder pass through untouched.
func PlanBudget(model ml.Predictor, requested string, opts Options, budget time.Duration, cost CostModel) Plan {
	plan := Plan{Method: requested, Opts: opts, Requested: requested}
	start := ladderIndex(requested)
	if start < 0 || budget <= 0 {
		return plan // not a ladder method (or no budget): run as requested
	}
	usable := budgetFraction * float64(budget.Nanoseconds())
	for _, rung := range LadderRungs[start:] {
		switch rung {
		case "treeshap":
			// Exact and cheap (no background sweep); the only question is
			// whether the model decomposes into trees.
			if m, ok := LookupMethod(rung); ok && (m.Compatible == nil || m.Compatible(model)) {
				plan.Method = rung
				return plan
			}
		case "kernelshap":
			want := opts.Samples
			if want <= 0 {
				want = 2048
			}
			fit := want
			if cost.PredNs > 0 {
				fit = int(usable / cost.coalitionNs())
			}
			if fit >= MinKernelSamples {
				samples := want
				if fit < want {
					// Quantize downgrades to powers of two so near-identical
					// budgets reuse one cached explainer instead of churning
					// the LRU with every request's exact fit.
					samples = pow2Floor(fit)
					plan.Downgraded = true
					plan.Reason = "coalition budget reduced to fit latency budget"
				}
				plan.Method = rung
				plan.Opts.Samples = samples
				plan.Downgraded = plan.Downgraded || rung != requested
				if rung != requested {
					plan.Reason = requested + " not applicable; using kernelshap"
				}
				return plan
			}
		case "occlusion":
			// The floor: always accepted. If even d×background predictions
			// cannot finish, the deadline turns it into a typed timeout.
			plan.Method = rung
			plan.Opts.Samples = 0
			plan.Downgraded = rung != requested
			if plan.Downgraded {
				plan.Reason = "budget below minimum kernelshap fidelity; using occlusion"
			}
			return plan
		}
	}
	return plan
}

// ladderIndex returns the position of method in LadderRungs, or -1.
func ladderIndex(method string) int {
	for i, r := range LadderRungs {
		if r == method {
			return i
		}
	}
	return -1
}

// pow2Floor returns the largest power of two ≤ n (n ≥ 1).
func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
