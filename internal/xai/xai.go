// Package xai defines the explanation types shared by the attribution
// methods (shap, treeshap, lime), the global methods (perm, pdp,
// surrogate), and the quality metrics (evalx). The core currency is the
// Attribution: an additive per-feature decomposition of a single model
// prediction, Value ≈ Base + Σ Phi.
package xai

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Attribution is an additive feature-attribution explanation of one
// prediction: the model output decomposes as Base + Σ Phi[j].
type Attribution struct {
	// Names holds optional feature names (may be nil).
	Names []string
	// Phi is the per-feature contribution.
	Phi []float64
	// Base is the reference (expected) model output the contributions are
	// measured against.
	Base float64
	// Value is the model output being explained.
	Value float64
	// Diag carries anytime-estimation diagnostics for explainers that can
	// return partial results under a deadline (progressive KernelSHAP).
	// Nil for exact or non-progressive methods.
	Diag *Diag
}

// Diag describes how an anytime estimator arrived at an attribution:
// whether it ran to statistical convergence or was cut short by a
// deadline, how much of its sampling budget it spent, and how uncertain
// each Phi[j] still is. A partial (Converged == false) attribution is a
// valid estimate — it still satisfies the efficiency constraint — just a
// noisier one.
type Diag struct {
	// Converged is true when the estimator stopped because its confidence
	// intervals tightened below tolerance (or the estimate is exact), false
	// when it stopped at a deadline or exhausted its sample budget first.
	Converged bool
	// SamplesUsed counts the coalition evaluations actually spent.
	SamplesUsed int
	// Blocks counts the completed sampling blocks the estimate averages.
	Blocks int
	// CIHalf is the per-feature 95% confidence half-width of Phi, estimated
	// from the spread of per-block estimates. Nil when fewer than two
	// blocks completed (no spread to measure) or the estimate is exact.
	CIHalf []float64
}

// Sum returns Base + Σ Phi, which should match Value for methods that
// satisfy the efficiency/local-accuracy axiom.
func (a Attribution) Sum() float64 {
	s := a.Base
	for _, p := range a.Phi {
		s += p
	}
	return s
}

// AdditivityError returns |Sum() − Value|, the violation of local accuracy.
func (a Attribution) AdditivityError() float64 {
	return math.Abs(a.Sum() - a.Value)
}

// Ranking returns feature indices ordered by decreasing |Phi|.
func (a Attribution) Ranking() []int {
	idx := make([]int, len(a.Phi))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return math.Abs(a.Phi[idx[i]]) > math.Abs(a.Phi[idx[j]])
	})
	return idx
}

// TopK returns the indices of the k largest-|Phi| features (all when k
// exceeds the feature count).
func (a Attribution) TopK(k int) []int {
	r := a.Ranking()
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}

// Name returns the display name of feature j.
func (a Attribution) Name(j int) string {
	if j < len(a.Names) {
		return a.Names[j]
	}
	return fmt.Sprintf("f%d", j)
}

// String renders the attribution as a ranked table for operator reports.
func (a Attribution) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "prediction=%.4g base=%.4g\n", a.Value, a.Base)
	for _, j := range a.Ranking() {
		sign := "+"
		if a.Phi[j] < 0 {
			sign = "-"
		}
		fmt.Fprintf(&sb, "  %-24s %s%.4g\n", a.Name(j), sign, math.Abs(a.Phi[j]))
	}
	return sb.String()
}

// Explainer produces a local attribution for a single input. Explain
// must honor ctx: implementations check cancellation inside their
// sampling hot loops and return ctx's error promptly once it is done, so
// servers can bound request deadlines and abort queued batch work.
type Explainer interface {
	Explain(ctx context.Context, x []float64) (Attribution, error)
}

// ColumnMeans returns the per-column mean of a row matrix — the shared
// "average background" helper used for integrated-gradients baselines
// (intgrad) and deletion curves (evalx). Returns nil for no rows.
func ColumnMeans(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	means := make([]float64, len(rows[0]))
	for _, r := range rows {
		for j, v := range r {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(len(rows))
	}
	return means
}

// MeanAbs aggregates local attributions into a global importance profile:
// the mean absolute contribution per feature (the standard "summary plot"
// statistic).
func MeanAbs(attrs []Attribution) []float64 {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]float64, len(attrs[0].Phi))
	for _, a := range attrs {
		for j, p := range a.Phi {
			out[j] += math.Abs(p)
		}
	}
	for j := range out {
		out[j] /= float64(len(attrs))
	}
	return out
}
