// Masked coalition evaluation for additive tree ensembles.
//
// A KernelSHAP perturbed row is always a two-source hybrid: feature j
// comes from x when the coalition mask holds j, from one background row b
// otherwise. For a fixed (tree, b) pair, a split node where x and b fall
// on the SAME side routes every hybrid the same way regardless of the
// mask — only the nodes where they diverge consult the mask at all. So
// per Explain we precompute, for every (tree, background) pair, a reduced
// "divergence tree" with the agreeing chains collapsed: its interior
// nodes carry just a feature index with an x-side and a b-side child, and
// its leaves carry the tree's prediction for that hybrid region. A
// coalition evaluation is then a walk of a few mask lookups — no row
// assembly, no float compares — and a pair whose paths never diverge
// collapses to a single constant.
//
// The fast path applies when the model decomposes as
// link(base + Σ w_t · tree_t(x)) with link = identity or the logistic
// sigmoid (random forests, gradient-boosted trees); the decomposition is
// verified numerically against Predict before use, and any mismatch
// falls back to the generic batched evaluator.

package shap

import (
	"context"
	"math"

	"nfvxai/internal/ml/tree"
	"nfvxai/internal/xai"
)

// componentEnsemble mirrors treeshap.Ensemble: the additive decomposition
// of a model as (trees, per-tree weights, base offset). Declared locally
// to keep shap importing only the tree package.
type componentEnsemble interface {
	ComponentTrees() ([]*tree.Tree, []float64, float64)
}

// maskedEvaluator is the per-Kernel state of the fast path.
type maskedEvaluator struct {
	trees []*tree.Tree
	w     []float64
	base  float64
	link  func(float64) float64 // nil = identity
}

// verifyTol is the relative reconstruction tolerance for accepting the
// additive decomposition.
const verifyTol = 1e-9

// newMaskedEvaluator inspects the model and returns a masked evaluator if
// the (link ∘ additive-trees) decomposition reproduces Predict on the
// probe rows, else nil.
func newMaskedEvaluator(k *Kernel) *maskedEvaluator {
	ce, ok := k.Model.(componentEnsemble)
	if !ok {
		return nil
	}
	trees, w, base := ce.ComponentTrees()
	if len(trees) == 0 || len(trees) != len(w) {
		return nil
	}
	probes := k.Background
	if len(probes) > 3 {
		probes = probes[:3]
	}
	for _, link := range []func(float64) float64{nil, stableSigmoid} {
		ok := true
		for _, p := range probes {
			raw := base
			for t, tr := range trees {
				raw += w[t] * tr.Predict(p)
			}
			if link != nil {
				raw = link(raw)
			}
			want := k.Model.Predict(p)
			if math.Abs(raw-want) > verifyTol*math.Max(1, math.Abs(want)) {
				ok = false
				break
			}
		}
		if ok {
			return &maskedEvaluator{trees: trees, w: w, base: base, link: link}
		}
	}
	return nil
}

func stableSigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// reduced is one (tree, background) divergence tree in flat preorder
// storage. feature[i] < 0 marks a leaf whose prediction is value[i];
// interior nodes route to xChild when the coalition mask keeps the
// feature (hybrid takes x's value) and to bChild otherwise.
type reduced struct {
	feature []int32
	xChild  []int32
	bChild  []int32
	value   []float64
}

func (r *reduced) reset() {
	r.feature = r.feature[:0]
	r.xChild = r.xChild[:0]
	r.bChild = r.bChild[:0]
	r.value = r.value[:0]
}

// build collapses the subtree at node j for the hybrid family (x, b) and
// returns the reduced index of the emitted node.
func (r *reduced) build(nodes []tree.Node, j int, x, b []float64) int32 {
	for {
		nd := nodes[j]
		if nd.IsLeaf() {
			id := int32(len(r.feature))
			r.feature = append(r.feature, -1)
			r.xChild = append(r.xChild, 0)
			r.bChild = append(r.bChild, 0)
			r.value = append(r.value, nd.Value)
			return id
		}
		dx := x[nd.Feature] <= nd.Threshold
		db := b[nd.Feature] <= nd.Threshold
		if dx == db {
			// Both sources agree: the mask is irrelevant here; collapse.
			if dx {
				j = nd.Left
			} else {
				j = nd.Right
			}
			continue
		}
		id := int32(len(r.feature))
		r.feature = append(r.feature, int32(nd.Feature))
		r.xChild = append(r.xChild, 0)
		r.bChild = append(r.bChild, 0)
		r.value = append(r.value, 0)
		xj, bj := nd.Left, nd.Right
		if !dx {
			xj, bj = nd.Right, nd.Left
		}
		xc := r.build(nodes, xj, x, b)
		bc := r.build(nodes, bj, x, b)
		r.xChild[id] = xc
		r.bChild[id] = bc
		return id
	}
}

// evalCoalitions fills vals[ci] with the coalition value of masks[ci]
// (mean over background of the hybrid prediction). The accumulation
// order — trees in ensemble order per background row, background rows in
// order — matches the row-at-a-time evaluator, so results agree to within
// floating-point reassociation of the per-tree weights (≪ 1e-9).
// Cancellation is checked once per background row, the outer unit of work.
func (e *maskedEvaluator) evalCoalitions(ctx context.Context, x []float64, bg [][]float64, masks [][]bool, vals []float64) error {
	nc := len(masks)
	nb := len(bg)
	// acc[bi*nc+ci] accumulates Σ_t w_t·tree_t(hybrid); the bi-major
	// layout keeps each (tree, background) sweep writing one contiguous
	// nc-length stripe. Pooled (and therefore pre-cleared — it is
	// written with +=): this is the largest allocation of a forest
	// Explain, nb·nc floats per call.
	accp := getAcc(nb * nc)
	defer putAcc(accp)
	acc := *accp
	// Pooled divergence-tree storage: reset (not reallocated) per
	// (tree, background) pair, retained across Explain calls.
	r := reducedPool.Get().(*reduced)
	defer reducedPool.Put(r)
	for bi, b := range bg {
		if err := xai.Canceled(ctx, "shap"); err != nil {
			return err
		}
		row := acc[bi*nc : (bi+1)*nc]
		for ti, tr := range e.trees {
			wt := e.w[ti]
			r.reset()
			r.build(tr.Nodes, 0, x, b)
			if r.feature[0] < 0 {
				// x and b never diverge in this tree: constant contribution.
				v := wt * r.value[0]
				for ci := range row {
					row[ci] += v
				}
				continue
			}
			feat, xc, bc, val := r.feature, r.xChild, r.bChild, r.value
			for ci, m := range masks {
				j := int32(0)
				f := feat[0]
				for f >= 0 {
					if m[f] {
						j = xc[j]
					} else {
						j = bc[j]
					}
					f = feat[j]
				}
				row[ci] += wt * val[j]
			}
		}
	}
	for ci := range vals {
		var s float64
		for bi := 0; bi < nb; bi++ {
			v := e.base + acc[bi*nc+ci]
			if e.link != nil {
				v = e.link(v)
			}
			s += v
		}
		vals[ci] = s / float64(nb)
	}
	return nil
}
