// Package shap implements SHAP (SHapley Additive exPlanations) for
// arbitrary black-box models: the KernelSHAP weighted-least-squares
// estimator of Lundberg & Lee (NIPS 2017) plus an exact exponential-time
// Shapley computation used as a correctness oracle on small feature
// counts. Feature removal is interventional: absent features are replaced
// by values drawn from a background dataset, and the value of a coalition
// is the mean model output over the background replacements.
package shap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"nfvxai/internal/mat"
	"nfvxai/internal/ml"
	"nfvxai/internal/xai"
)

// init registers KernelSHAP in the xai method registry as the
// model-agnostic local attribution method. It needs a background sample
// and is deterministic for a fixed (options, background) pair.
func init() {
	xai.Register(xai.Method{
		Name: "kernelshap",
		Kind: xai.KindLocal,
		Caps: xai.Capabilities{
			NeedsBackground: true,
			SupportsBatch:   true,
			Deterministic:   true,
			Additive:        true,
		},
		Defaults: xai.Options{Samples: 2048, Ridge: 1e-9},
		Build: func(t xai.Target, o xai.Options) (xai.Explainer, error) {
			return &Kernel{
				Model:      t.Model,
				Background: t.Background,
				NumSamples: o.Samples,
				Ridge:      o.Ridge,
				Seed:       o.Seed,
				Names:      t.Names,
			}, nil
		},
	})
}

// Kernel is a KernelSHAP explainer. Background must be non-empty; its
// rows define the reference distribution for absent features and the base
// value (mean prediction over background).
//
// Explain assembles the full (coalition × background) perturbation matrix
// and evaluates it through the model's batch path (ml.PredictBatchParallel),
// so models implementing ml.BatchPredictor — trees, forests, GBTs, MLPs,
// linear models — are scored over contiguous buffers instead of one
// pointer-chased Predict call per perturbed row. Plain Predictors fall
// back to a worker-chunked Predict loop and produce identical results.
type Kernel struct {
	Model ml.Predictor
	// Background rows are reference inputs; 50–200 rows is typical.
	Background [][]float64
	// NumSamples bounds the number of coalitions evaluated (default 2048).
	// When 2^d−2 fits in the budget, all coalitions are enumerated and the
	// estimator is exact (for the given background).
	NumSamples int
	// Ridge regularizes the WLS solve (default 1e-9, numerical only).
	Ridge float64
	// Seed drives coalition sampling.
	Seed int64
	// Names are optional feature names copied into attributions.
	Names []string
	// RowAtATime disables the batched fast path and the base-value cache,
	// reproducing the seed's one-Predict-per-perturbation behavior. It
	// exists as the benchmark baseline; serving code leaves it false.
	RowAtATime bool
	// BlockSamples sets the progressive path's per-block coalition count
	// (default 128). Smaller blocks react to deadlines faster at the cost
	// of more WLS solves.
	BlockSamples int
	// ConvergeTol is the progressive path's relative convergence tolerance
	// (default 0.02): sampling stops early once every per-feature 95% CI
	// half-width falls below ConvergeTol × the attribution scale. Negative
	// disables early convergence (tests use this for a fixed block count).
	ConvergeTol float64

	// The base value E[f(background)] depends only on the frozen model and
	// background, so it is computed once and shared across Explain calls —
	// xai.ExplainBatch invokes Explain from many goroutines, hence the Once.
	// Mutating Model or Background after the first Explain invalidates it;
	// build a fresh Kernel instead.
	baseOnce sync.Once
	baseVal  float64

	// The masked tree-ensemble evaluator (treefast.go) is detected once:
	// whether the model decomposes into additive trees does not change
	// for a frozen model.
	fastOnce sync.Once
	fast     *maskedEvaluator
}

// Explain computes the SHAP attribution of the model at x. Cancellation
// is honored between coalition-evaluation blocks.
func (k *Kernel) Explain(ctx context.Context, x []float64) (xai.Attribution, error) {
	d := len(x)
	if d == 0 {
		return xai.Attribution{}, errors.New("shap: empty input")
	}
	if len(k.Background) == 0 {
		return xai.Attribution{}, errors.New("shap: empty background")
	}
	for i, b := range k.Background {
		if len(b) != d {
			return xai.Attribution{}, fmt.Errorf("shap: background row %d has %d features, want %d", i, len(b), d)
		}
	}
	base := k.baseValue()
	fx := k.Model.Predict(x)

	if d == 1 {
		// Single feature: the entire gap is its contribution.
		return xai.Attribution{Names: k.Names, Phi: []float64{fx - base}, Base: base, Value: fx}, nil
	}

	budget := k.NumSamples
	if budget <= 0 {
		budget = 2048
	}
	// A context deadline selects the progressive anytime estimator: sample
	// in blocks, stop at convergence or at the deadline, and return the
	// partial estimate instead of a timeout error. Without a deadline the
	// classic single-solve path below runs bit-identically to before.
	if _, hasDeadline := ctx.Deadline(); hasDeadline && !k.RowAtATime {
		return k.explainProgressive(ctx, x, base, fx, budget)
	}
	// Pooled draw scratch: masks and vals alias buf until release, which
	// is safe because solvePhi below copies nothing out of them.
	buf := getCoalitionBuf()
	defer buf.release()
	var masks [][]bool
	var weights []float64
	if total := (1 << uint(d)) - 2; d <= 20 && total <= budget {
		masks, weights = enumerateCoalitionsBuf(d, buf)
	} else {
		rng := getRNG(k.Seed + 0x9E3779B9)
		masks, weights = sampleCoalitionsBuf(rng.Rand, d, budget, buf)
		putRNG(rng)
	}

	// Evaluate the value function for every coalition.
	vals := buf.valsFor(len(masks))
	if k.RowAtATime {
		for i, m := range masks {
			if err := xai.Canceled(ctx, "shap"); err != nil {
				return xai.Attribution{}, err
			}
			vals[i] = k.coalitionValue(x, m)
		}
	} else if err := k.evalCoalitions(ctx, x, masks, vals); err != nil {
		return xai.Attribution{}, err
	}

	phi, err := solvePhi(masks, weights, vals, base, fx, k.ridge())
	if err != nil {
		return xai.Attribution{}, err
	}
	return xai.Attribution{Names: k.Names, Phi: phi, Base: base, Value: fx}, nil
}

func (k *Kernel) ridge() float64 {
	if k.Ridge > 0 {
		return k.Ridge
	}
	return 1e-9
}

// solvePhi solves the constrained WLS for one set of evaluated coalitions:
// phi[d-1] is eliminated via the efficiency constraint Σ phi = fx − base
// and recovered from the remainder, so every solution — including the
// per-block solutions of the progressive estimator — sums exactly to
// fx − base.
func solvePhi(masks [][]bool, weights, vals []float64, base, fx, ridge float64) ([]float64, error) {
	d := len(masks[0])
	// Design matrix, target and solution come from pooled scratch; only
	// phi (the returned attribution) is allocated.
	sb := solvePool.Get().(*solveBuf)
	defer solvePool.Put(sb)
	a := sb.a.Reshape(len(masks), d-1)
	if cap(sb.b) < len(masks) {
		sb.b = make([]float64, len(masks))
	}
	b := sb.b[:len(masks)]
	for i, m := range masks {
		zd := 0.0
		if m[d-1] {
			zd = 1
		}
		row := a.Row(i)
		for j := 0; j < d-1; j++ {
			zj := 0.0
			if m[j] {
				zj = 1
			}
			row[j] = zj - zd
		}
		b[i] = vals[i] - base - zd*(fx-base)
	}
	if cap(sb.sol) < d-1 {
		sb.sol = make([]float64, d-1)
	}
	sol := sb.sol[:d-1]
	if err := mat.SolveWeightedRidgeInto(a, b, weights, ridge, sol); err != nil {
		return nil, fmt.Errorf("shap: WLS solve: %w", err)
	}
	//lint:allow poolalloc phi escapes into the returned Attribution
	phi := make([]float64, d)
	copy(phi, sol)
	var sum float64
	for _, p := range sol {
		sum += p
	}
	phi[d-1] = (fx - base) - sum
	return phi, nil
}

func (k *Kernel) baseValue() float64 {
	if k.RowAtATime {
		return k.computeBase()
	}
	k.baseOnce.Do(func() { k.baseVal = k.computeBase() })
	return k.baseVal
}

func (k *Kernel) computeBase() float64 {
	var s float64
	if k.RowAtATime {
		for _, b := range k.Background {
			s += k.Model.Predict(b)
		}
	} else {
		//lint:allow poolalloc base-value scratch, once per explainer lifetime
		preds := make([]float64, len(k.Background))
		ml.PredictBatchParallel(k.Model, k.Background, preds, 0)
		for _, p := range preds {
			s += p
		}
	}
	return s / float64(len(k.Background))
}

// coalitionValue returns E_b[f(z)] where z takes x on mask-true features
// and the background row elsewhere — the row-at-a-time reference
// implementation kept as the benchmark/parity baseline.
func (k *Kernel) coalitionValue(x []float64, mask []bool) float64 {
	//lint:allow poolalloc single-coalition probe, not on the batched hot path
	z := make([]float64, len(x))
	var s float64
	for _, bg := range k.Background {
		for j := range z {
			if mask[j] {
				z[j] = x[j]
			} else {
				z[j] = bg[j]
			}
		}
		s += k.Model.Predict(z)
	}
	return s / float64(len(k.Background))
}

// evalBlockRows bounds the perturbation-matrix block: at the default
// budget (1024 coalitions × 60 background rows) blocks keep the backing
// buffer under ~2 MB while still amortizing each PredictBatch dispatch
// over thousands of contiguous rows.
const evalBlockRows = 16384

// evalCoalitions fills vals[i] with the coalition value of masks[i]: the
// mean model output over the background replacements. Additive tree
// ensembles take the masked divergence-tree path (treefast.go); all other
// models get the (coalition × background) perturbation rows of a block
// assembled in one flat backing buffer and evaluated with a single
// batched model call. The generic reduction sums each coalition's
// background predictions in row order, so it is bit-identical to
// coalitionValue; the masked path agrees to within float reassociation.
// ctx is checked once per block / background row.
func (k *Kernel) evalCoalitions(ctx context.Context, x []float64, masks [][]bool, vals []float64) error {
	k.fastOnce.Do(func() { k.fast = newMaskedEvaluator(k) })
	if k.fast != nil {
		return k.fast.evalCoalitions(ctx, x, k.Background, masks, vals)
	}
	d := len(x)
	nb := len(k.Background)
	perBlock := evalBlockRows / nb
	if perBlock < 1 {
		perBlock = 1
	}
	rowsCap := perBlock * nb
	// Pooled block scratch: rows are fully rewritten (copy + overrides)
	// and preds fully rewritten before any read, so no zeroing; the row
	// headers are re-carved because d differs between pooled users.
	eb := evalPool.Get().(*evalBuf)
	defer evalPool.Put(eb)
	if cap(eb.backing) < rowsCap*d {
		eb.backing = make([]float64, rowsCap*d)
	}
	backing := eb.backing[:rowsCap*d]
	if cap(eb.rows) < rowsCap {
		eb.rows = make([][]float64, rowsCap)
	}
	rows := eb.rows[:rowsCap]
	for r := range rows {
		rows[r] = backing[r*d : (r+1)*d]
	}
	if cap(eb.preds) < rowsCap {
		eb.preds = make([]float64, rowsCap)
	}
	preds := eb.preds[:rowsCap]
	if cap(eb.kept) < d {
		eb.kept = make([]int, 0, d)
	}
	kept := eb.kept[:0] // mask-true feature indices, rebuilt per coalition
	for lo := 0; lo < len(masks); lo += perBlock {
		if err := xai.Canceled(ctx, "shap"); err != nil {
			return err
		}
		hi := lo + perBlock
		if hi > len(masks) {
			hi = len(masks)
		}
		r := 0
		for _, m := range masks[lo:hi] {
			kept = kept[:0]
			for j, on := range m {
				if on {
					kept = append(kept, j)
				}
			}
			for _, bg := range k.Background {
				mat.HybridRow(rows[r], bg, x, kept)
				r++
			}
		}
		ml.PredictBatchParallel(k.Model, rows[:r], preds[:r], 0)
		r = 0
		for ci := lo; ci < hi; ci++ {
			var s float64
			for b := 0; b < nb; b++ {
				s += preds[r]
				r++
			}
			vals[ci] = s / float64(nb)
		}
	}
	return nil
}

// shapleyKernelWeight is the KernelSHAP weight for a coalition of size s
// out of d features: (d−1) / (C(d,s) · s · (d−s)).
func shapleyKernelWeight(d, s int) float64 {
	return float64(d-1) / (binom(d, s) * float64(s) * float64(d-s))
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// enumerateCoalitions returns every non-trivial mask with its Shapley
// kernel weight.
func enumerateCoalitions(d int) ([][]bool, []float64) {
	return enumerateCoalitionsBuf(d, nil)
}

// enumerateCoalitionsBuf is enumerateCoalitions carving masks and
// weights out of buf's pooled storage when buf is non-nil. The returned
// slices alias the buffer and are valid only until it is released.
func enumerateCoalitionsBuf(d int, buf *coalitionBuf) ([][]bool, []float64) {
	total := (1 << uint(d)) - 2
	var masks [][]bool
	var weights []float64
	var backing []bool
	if buf != nil {
		if cap(buf.backing) < total*d {
			buf.backing = make([]bool, total*d)
		}
		// The loop only SETS true bits; reused backing must come in clear.
		backing = buf.backing[:total*d]
		clear(backing)
		if cap(buf.masks) < total {
			buf.masks = make([][]bool, 0, total)
		}
		if cap(buf.weights) < total {
			buf.weights = make([]float64, 0, total)
		}
		masks, weights = buf.masks[:0], buf.weights[:0]
	} else {
		masks = make([][]bool, 0, total)
		//lint:allow poolalloc nil-buf fallback for one-shot callers; pooled callers hit the branch above
		weights = make([]float64, 0, total)
		backing = make([]bool, total*d)
	}
	for bits := 1; bits < (1<<uint(d))-1; bits++ {
		m := backing[:d:d]
		backing = backing[d:]
		s := 0
		for j := 0; j < d; j++ {
			if bits&(1<<uint(j)) != 0 {
				m[j] = true
				s++
			}
		}
		masks = append(masks, m)
		weights = append(weights, shapleyKernelWeight(d, s))
	}
	if buf != nil {
		buf.masks, buf.weights = masks, weights
	}
	return masks, weights
}

// sampleCoalitions draws masks from the size distribution induced by the
// Shapley kernel (paired with their complements for variance reduction);
// sampled masks carry uniform weight since the kernel is absorbed into the
// sampling distribution.
func sampleCoalitions(d, budget int, seed int64) ([][]bool, []float64) {
	return sampleCoalitionsFrom(rand.New(rand.NewSource(seed+0x9E3779B9)), d, budget)
}

// sampleCoalitionsFrom is sampleCoalitions drawing from a caller-owned
// rng, so the progressive estimator's blocks continue one deterministic
// stream: block b's masks depend only on the seed and how many draws
// preceded them, which is what makes partial results reproducible for a
// fixed seed and block count.
func sampleCoalitionsFrom(rng *rand.Rand, d, budget int) ([][]bool, []float64) {
	return sampleCoalitionsBuf(rng, d, budget, nil)
}

// sampleCoalitionsBuf is sampleCoalitionsFrom drawing into buf's pooled
// storage when buf is non-nil (fresh allocations otherwise). The
// returned masks alias buf.backing and are valid only until the buffer
// is released. The draw itself is identical either way: storage reuse
// never changes which coalitions a given rng stream produces.
func sampleCoalitionsBuf(rng *rand.Rand, d, budget int, buf *coalitionBuf) ([][]bool, []float64) {
	// Size distribution p(s) ∝ (d−1)/(s(d−s)) for s in 1..d−1; the
	// scratch (and the permutation below) comes from the buffer when one
	// is supplied. sizeW[0] is never written by the fill loop, so a
	// reused slice is cleared first.
	var sizeW []float64
	if buf != nil {
		if cap(buf.sizeW) < d {
			buf.sizeW = make([]float64, d)
		}
		sizeW = buf.sizeW[:d]
		clear(sizeW)
	} else {
		//lint:allow poolalloc nil-buf fallback for one-shot callers; pooled callers hit the branch above
		sizeW = make([]float64, d)
	}
	for s := 1; s < d; s++ {
		sizeW[s] = float64(d-1) / (float64(s) * float64(d-s))
	}
	sizeWSum := sum(sizeW) // invariant across draws; hoisted out of the loop
	var masks [][]bool
	var weights []float64
	var backing []bool
	if buf != nil {
		if cap(buf.backing) < budget*d {
			buf.backing = make([]bool, budget*d)
		}
		// The loop below only SETS bits on primary masks, so a reused
		// backing must come in all-false.
		backing = buf.backing[:budget*d]
		clear(backing)
		if cap(buf.masks) < budget {
			buf.masks = make([][]bool, 0, budget)
		}
		if cap(buf.weights) < budget {
			buf.weights = make([]float64, 0, budget)
		}
		masks, weights = buf.masks[:0], buf.weights[:0]
	} else {
		masks = make([][]bool, 0, budget)
		//lint:allow poolalloc nil-buf fallback for one-shot callers; pooled callers hit the branch above
		weights = make([]float64, 0, budget)
		// One backing array carved into per-mask slices: a single allocation
		// for the whole draw instead of one (or two) per iteration.
		backing = make([]bool, budget*d)
	}
	nextMask := func() []bool {
		m := backing[:d:d]
		backing = backing[d:]
		return m
	}
	var perm []int
	if buf != nil {
		if cap(buf.perm) < d {
			buf.perm = make([]int, d)
		}
		perm = buf.perm[:d]
	} else {
		perm = make([]int, d)
	}
	for i := range perm {
		perm[i] = i
	}
	for len(masks) < budget {
		// Draw a size.
		u := rng.Float64() * sizeWSum
		s := 1
		for ; s < d-1; s++ {
			u -= sizeW[s]
			if u < 0 {
				break
			}
		}
		rng.Shuffle(d, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		m := nextMask()
		for _, j := range perm[:s] {
			m[j] = true
		}
		masks = append(masks, m)
		weights = append(weights, 1)
		if len(masks) < budget {
			// Paired (antithetic) complement.
			c := nextMask()
			for j := range c {
				c[j] = !m[j]
			}
			masks = append(masks, c)
			weights = append(weights, 1)
		}
	}
	if buf != nil {
		// Keep the (possibly regrown) headers so the next draw from this
		// buffer reuses their capacity.
		buf.masks, buf.weights = masks, weights
	}
	return masks, weights
}

func sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Exact computes Shapley values by full subset enumeration (O(2^d) value
// evaluations, each averaging over the background). It is the correctness
// oracle for the estimators; keep d small (≤ 12).
func Exact(ctx context.Context, model ml.Predictor, background [][]float64, x []float64) (xai.Attribution, error) {
	d := len(x)
	if d == 0 || d > 20 {
		return xai.Attribution{}, fmt.Errorf("shap: Exact supports 1..20 features, got %d", d)
	}
	if len(background) == 0 {
		return xai.Attribution{}, errors.New("shap: empty background")
	}
	k := &Kernel{Model: model, Background: background}
	// Precompute v(S) for all subsets, batched through the model's fast path.
	n := 1 << uint(d)
	//lint:allow poolalloc Exact is the one-shot reference API, not a serving path
	vals := make([]float64, n)
	masks := make([][]bool, n)
	backing := make([]bool, n*d)
	for bits := 0; bits < n; bits++ {
		m := backing[bits*d : (bits+1)*d]
		for j := 0; j < d; j++ {
			m[j] = bits&(1<<uint(j)) != 0
		}
		masks[bits] = m
	}
	if err := k.evalCoalitions(ctx, x, masks, vals); err != nil {
		return xai.Attribution{}, err
	}
	//lint:allow poolalloc Exact is the one-shot reference API, not a serving path
	phi := make([]float64, d)
	for j := 0; j < d; j++ {
		bit := 1 << uint(j)
		for bits := 0; bits < n; bits++ {
			if bits&bit != 0 {
				continue
			}
			s := popcount(bits)
			w := fact(s) * fact(d-s-1) / fact(d)
			phi[j] += w * (vals[bits|bit] - vals[bits])
		}
	}
	return xai.Attribution{Phi: phi, Base: vals[0], Value: vals[n-1]}, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func fact(n int) float64 {
	r := 1.0
	for i := 2; i <= n; i++ {
		r *= float64(i)
	}
	return r
}

// SampleBackground draws up to n rows from X to serve as a background set.
func SampleBackground(rng *rand.Rand, X [][]float64, n int) [][]float64 {
	if n >= len(X) {
		out := make([][]float64, len(X))
		copy(out, X)
		return out
	}
	idx := rng.Perm(len(X))[:n]
	out := make([][]float64, n)
	for i, j := range idx {
		out[i] = X[j]
	}
	return out
}

// meanPrediction is exposed for tests that need the background mean.
func meanPrediction(model ml.Predictor, X [][]float64) float64 {
	var s float64
	for _, x := range X {
		s += model.Predict(x)
	}
	return s / math.Max(1, float64(len(X)))
}
