package shap

import (
	"context"
	"errors"
	"math"
	"time"

	"nfvxai/internal/xai"
)

// The progressive (anytime) KernelSHAP estimator: coalitions are drawn in
// blocks from one continuing seeded stream, each block gets its own
// constrained WLS solve, and the running attribution is the mean of the
// per-block solutions. Because every block solution satisfies the
// efficiency constraint Σ phi = f(x) − base exactly, so does the mean —
// a deadline-truncated partial result is still a valid (just noisier)
// additive attribution. The spread of the per-block solutions yields a
// per-feature 95% confidence half-width, which drives early convergence
// and is reported to callers through xai.Diag.

const (
	// defaultBlockSamples balances deadline reactivity (smaller blocks stop
	// closer to the deadline) against per-block WLS overhead.
	defaultBlockSamples = 128
	// defaultConvergeTol stops sampling once every CI half-width is below
	// 2% of the attribution scale — visually indistinguishable rankings.
	defaultConvergeTol = 0.02
	// minConvergeBlocks is the fewest blocks a CI may be trusted from.
	minConvergeBlocks = 3
)

// explainProgressive samples coalitions in blocks until the per-feature
// confidence intervals converge, the sample budget is spent, or the
// context deadline approaches — whichever comes first. A deadline that
// expires after at least one completed block yields the partial estimate
// (tagged via Diag) instead of an error; with zero completed blocks the
// deadline error is returned so callers can answer with a typed timeout
// rather than an empty success.
func (k *Kernel) explainProgressive(ctx context.Context, x []float64, base, fx float64, budget int) (xai.Attribution, error) {
	d := len(x)

	// Small feature counts enumerate exactly in one pass: no sampling
	// noise, converged by construction.
	if total := (1 << uint(d)) - 2; d <= 20 && total <= budget {
		masks, weights := enumerateCoalitions(d)
		//lint:allow poolalloc one-shot enumeration path; the sampling loop below is the pooled steady state
		vals := make([]float64, len(masks))
		if err := k.evalCoalitions(ctx, x, masks, vals); err != nil {
			return xai.Attribution{}, err
		}
		phi, err := solvePhi(masks, weights, vals, base, fx, k.ridge())
		if err != nil {
			return xai.Attribution{}, err
		}
		return xai.Attribution{Names: k.Names, Phi: phi, Base: base, Value: fx,
			Diag: &xai.Diag{Converged: true, SamplesUsed: total, Blocks: 1}}, nil
	}

	block := k.BlockSamples
	if block <= 0 {
		block = defaultBlockSamples
	}
	if block > budget {
		block = budget
	}
	tol := k.ConvergeTol
	if tol == 0 {
		tol = defaultConvergeTol
	}
	deadline, _ := ctx.Deadline()

	// Pooled rng (identical stream to a fresh source at this seed) and
	// one pooled draw buffer serving every block: each sampleCoalitionsBuf
	// call clears and re-carves it, and no block reads a predecessor's
	// masks or vals.
	srng := getRNG(k.Seed + 0x9E3779B9)
	defer putRNG(srng)
	rng := srng.Rand
	buf := getCoalitionBuf()
	defer buf.release()
	//lint:allow poolalloc mean escapes as Attribution.Phi
	mean := make([]float64, d)
	//lint:allow poolalloc per-call Welford state, same shape as the escaping mean
	m2 := make([]float64, d)
	blocks, used := 0, 0
	converged := false
	var avgBlock time.Duration
	for used < budget {
		// Stop before a block that cannot finish: once the remaining wall
		// time is under ~1.25× the running per-block cost, the estimate in
		// hand is the best answer the deadline allows.
		if blocks > 0 && avgBlock > 0 && time.Until(deadline) < avgBlock+avgBlock/4 {
			break
		}
		if err := xai.Canceled(ctx, "shap"); err != nil {
			if blocks > 0 && errors.Is(err, context.DeadlineExceeded) {
				break
			}
			return xai.Attribution{}, err
		}
		n := block
		if rem := budget - used; n > rem {
			n = rem
		}
		start := time.Now()
		masks, weights := sampleCoalitionsBuf(rng, d, n, buf)
		vals := buf.valsFor(len(masks))
		if err := k.evalCoalitions(ctx, x, masks, vals); err != nil {
			if blocks > 0 && errors.Is(err, context.DeadlineExceeded) {
				break
			}
			return xai.Attribution{}, err
		}
		phiB, err := solvePhi(masks, weights, vals, base, fx, k.ridge())
		if err != nil {
			return xai.Attribution{}, err
		}
		blocks++
		used += len(masks)
		// Welford update of the per-feature mean and spread across blocks.
		for j, v := range phiB {
			delta := v - mean[j]
			mean[j] += delta / float64(blocks)
			m2[j] += delta * (v - mean[j])
		}
		elapsed := time.Since(start)
		if avgBlock == 0 {
			avgBlock = elapsed
		} else {
			avgBlock = (avgBlock + elapsed) / 2
		}
		if tol > 0 && blocks >= minConvergeBlocks &&
			maxCIHalf(m2, blocks) <= tol*attrScale(mean, fx-base) {
			converged = true
			break
		}
	}
	diag := &xai.Diag{Converged: converged, SamplesUsed: used, Blocks: blocks}
	if blocks >= 2 {
		diag.CIHalf = ciHalfWidths(m2, blocks)
	}
	return xai.Attribution{Names: k.Names, Phi: mean, Base: base, Value: fx, Diag: diag}, nil
}

// ciHalfWidths converts Welford m2 accumulators over n block estimates
// into 95% confidence half-widths of the mean.
func ciHalfWidths(m2 []float64, n int) []float64 {
	//lint:allow poolalloc CI half-widths escape into Diag.CIHalf
	out := make([]float64, len(m2))
	denom := float64(n) * float64(n-1)
	for j, v := range m2 {
		out[j] = 1.96 * math.Sqrt(v/denom)
	}
	return out
}

func maxCIHalf(m2 []float64, n int) float64 {
	var worst float64
	denom := float64(n) * float64(n-1)
	for _, v := range m2 {
		if half := 1.96 * math.Sqrt(v/denom); half > worst {
			worst = half
		}
	}
	return worst
}

// attrScale is the magnitude the convergence tolerance is relative to:
// the explained gap or the largest single contribution, whichever is
// larger, floored so a zero-gap prediction cannot demand infinite
// precision.
func attrScale(phi []float64, gap float64) float64 {
	scale := math.Abs(gap)
	for _, p := range phi {
		if a := math.Abs(p); a > scale {
			scale = a
		}
	}
	return math.Max(scale, 1e-9)
}
