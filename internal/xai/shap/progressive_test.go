package shap

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"nfvxai/internal/ml"
)

// slowModel adds a fixed per-prediction delay to a linear model, so
// tests can force the progressive estimator against its deadline.
type slowModel struct {
	linearModel
	delay time.Duration
}

func (m slowModel) Predict(x []float64) float64 {
	time.Sleep(m.delay)
	return m.linearModel.Predict(x)
}

// progressiveKernel builds a kernel on a d > 20 feature space (so exact
// enumeration cannot shortcut the block loop) with a known closed form.
func progressiveKernel(model ml.Predictor, bg [][]float64) *Kernel {
	return &Kernel{Model: model, Background: bg, NumSamples: 2048}
}

func TestProgressiveMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 24
	w := make([]float64, d)
	x := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.NormFloat64()
	}
	m := linearModel{w: w, c: 1}
	bg := randomBackground(rng, 30, d)
	k := progressiveKernel(m, bg)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	attr, err := k.Explain(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Diag == nil {
		t.Fatal("deadline-bearing context must route through the progressive estimator (no Diag)")
	}
	if attr.Diag.SamplesUsed == 0 || attr.Diag.Blocks == 0 {
		t.Fatalf("diag = %+v; want samples and blocks accounted", attr.Diag)
	}
	for j := 0; j < d; j++ {
		var mean float64
		for _, b := range bg {
			mean += b[j]
		}
		mean /= float64(len(bg))
		want := w[j] * (x[j] - mean)
		if math.Abs(attr.Phi[j]-want) > 0.05 {
			t.Fatalf("phi[%d] = %v want %v (±0.05)", j, attr.Phi[j], want)
		}
	}
	// Efficiency must hold exactly even for a blockwise mean.
	if ae := attr.AdditivityError(); ae > 1e-9 {
		t.Fatalf("additivity error = %g; progressive mean must stay efficient", ae)
	}
}

func TestProgressiveDeterministicPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 24
	w := make([]float64, d)
	x := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.NormFloat64()
	}
	bg := randomBackground(rng, 20, d)
	run := func() ([]float64, *int) {
		k := progressiveKernel(linearModel{w: w, c: 1}, bg)
		k.Seed = 99
		k.ConvergeTol = -1 // disable early convergence: fixed block count
		k.NumSamples = 512 // exactly 4 blocks of 128
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		attr, err := k.Explain(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if attr.Diag == nil {
			t.Fatal("no diag")
		}
		return attr.Phi, &attr.Diag.Blocks
	}
	phi1, b1 := run()
	phi2, b2 := run()
	if *b1 != *b2 {
		t.Fatalf("block counts diverged: %d vs %d", *b1, *b2)
	}
	for j := range phi1 {
		if phi1[j] != phi2[j] {
			t.Fatalf("phi[%d] diverged across identical runs: %v vs %v", j, phi1[j], phi2[j])
		}
	}
}

func TestProgressiveConvergesEarly(t *testing.T) {
	// A linear model has zero interaction noise: blocks agree quickly, so
	// convergence must fire long before the full sample budget.
	rng := rand.New(rand.NewSource(5))
	d := 24
	w := make([]float64, d)
	x := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.NormFloat64()
	}
	bg := randomBackground(rng, 20, d)
	k := progressiveKernel(linearModel{w: w, c: 1}, bg)
	k.NumSamples = 1 << 20
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	attr, err := k.Explain(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !attr.Diag.Converged {
		t.Fatalf("diag = %+v; want converged", attr.Diag)
	}
	if attr.Diag.SamplesUsed >= 1<<20 {
		t.Fatal("converged run must not spend the whole budget")
	}
	if len(attr.Diag.CIHalf) != d {
		t.Fatalf("CIHalf has %d entries, want %d", len(attr.Diag.CIHalf), d)
	}
}

func TestProgressivePartialOnDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := 24
	w := make([]float64, d)
	x := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.NormFloat64()
	}
	bg := randomBackground(rng, 8, d)
	// ~6 µs per prediction × 8 background rows × 32-coalition blocks ≈
	// 1.5 ms per block: a 30 ms deadline admits a handful of blocks but
	// nowhere near the 1<<20 budget.
	k := progressiveKernel(slowModel{linearModel{w: w, c: 1}, 6 * time.Microsecond}, bg)
	k.NumSamples = 1 << 20
	k.BlockSamples = 32
	k.ConvergeTol = -1
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	attr, err := k.Explain(ctx, x)
	if err != nil {
		t.Fatalf("deadline must yield a partial result, not an error: %v", err)
	}
	if attr.Diag == nil || attr.Diag.Converged {
		t.Fatalf("diag = %+v; want unconverged partial", attr.Diag)
	}
	if attr.Diag.SamplesUsed >= 1<<20 {
		t.Fatal("partial result must not have spent the full budget")
	}
	if len(attr.Phi) != d {
		t.Fatalf("partial phi has %d features, want %d", len(attr.Phi), d)
	}
	if ae := attr.AdditivityError(); ae > 1e-9 {
		t.Fatalf("partial result additivity error = %g; must stay efficient", ae)
	}
}

func TestProgressiveExpiredContextErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 24
	x := make([]float64, d)
	w := make([]float64, d)
	for j := range x {
		x[j] = rng.NormFloat64()
		w[j] = 1
	}
	bg := randomBackground(rng, 8, d)
	k := progressiveKernel(linearModel{w: w}, bg)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // already expired: zero blocks complete
	if _, err := k.Explain(ctx, x); err == nil {
		t.Fatal("expired context with no completed block must error, not fabricate an attribution")
	}
}
