// Pooled scratch buffers for the KernelSHAP hot path. One Explain call
// allocates three large transient regions — the coalition-mask backing
// (budget × d bools), the coalition values, and either the perturbed-row
// block (generic evaluator) or the per-background accumulator (masked
// tree evaluator). Under a serving workload those are re-allocated for
// every request; sync.Pool recycles them across calls and across the
// progressive estimator's blocks.
//
// Zeroing discipline: the mask backing MUST be cleared before a draw —
// sampleCoalitionsBuf only sets true bits (complement masks overwrite
// fully, primary masks do not), so stale bits from a previous draw would
// corrupt the coalition distribution. The treefast accumulator MUST be
// cleared because it is written with +=. The generic evaluator's row and
// prediction buffers, and the coalition values, are fully overwritten on
// every use and are handed out dirty.
package shap

import "sync"

// coalitionBuf holds one sampling draw's storage: the flat bool backing
// the masks are carved from, the mask and weight headers, and the
// coalition-value vector sized to the draw.
type coalitionBuf struct {
	backing []bool
	masks   [][]bool
	weights []float64
	vals    []float64
}

var coalitionPool = sync.Pool{New: func() any { return new(coalitionBuf) }}

func getCoalitionBuf() *coalitionBuf { return coalitionPool.Get().(*coalitionBuf) }

// release returns the buffer to the pool. The caller must be done with
// every mask, weight and value slice handed out from it: they alias the
// pooled storage and will be scribbled over by the next draw.
func (b *coalitionBuf) release() { coalitionPool.Put(b) }

// valsFor returns a coalition-value slice of length n. Contents are
// undefined; every evaluator writes all n entries before reading any.
func (b *coalitionBuf) valsFor(n int) []float64 {
	if cap(b.vals) < n {
		b.vals = make([]float64, n)
	}
	return b.vals[:n]
}

// evalBuf is the generic batched evaluator's block scratch: the flat
// row backing, the row headers re-carved per call (d varies between
// models sharing the pool), and the prediction vector.
type evalBuf struct {
	backing []float64
	rows    [][]float64
	preds   []float64
}

var evalPool = sync.Pool{New: func() any { return new(evalBuf) }}

// accPool recycles the masked tree evaluator's (background × coalition)
// accumulator — the single largest allocation of a forest Explain.
var accPool = sync.Pool{New: func() any { return new([]float64) }}

// getAcc returns a zeroed accumulator of length n (it is accumulated
// into with +=, so stale sums must be cleared).
func getAcc(n int) *[]float64 {
	p := accPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	} else {
		*p = (*p)[:n]
		clear(*p)
	}
	return p
}

func putAcc(p *[]float64) { accPool.Put(p) }
