// Pooled scratch buffers for the KernelSHAP hot path. One Explain call
// allocates three large transient regions — the coalition-mask backing
// (budget × d bools), the coalition values, and either the perturbed-row
// block (generic evaluator) or the per-background accumulator (masked
// tree evaluator). Under a serving workload those are re-allocated for
// every request; sync.Pool recycles them across calls and across the
// progressive estimator's blocks.
//
// Zeroing discipline: the mask backing MUST be cleared before a draw —
// sampleCoalitionsBuf only sets true bits (complement masks overwrite
// fully, primary masks do not), so stale bits from a previous draw would
// corrupt the coalition distribution. The treefast accumulator MUST be
// cleared because it is written with +=. The generic evaluator's row and
// prediction buffers, and the coalition values, are fully overwritten on
// every use and are handed out dirty.
package shap

import (
	"math/rand"
	"sync"

	"nfvxai/internal/mat"
)

// coalitionBuf holds one sampling draw's storage: the flat bool backing
// the masks are carved from, the mask and weight headers, the
// coalition-value vector sized to the draw, and the draw's small
// per-call scratch (size distribution and permutation).
type coalitionBuf struct {
	backing []bool
	masks   [][]bool
	weights []float64
	vals    []float64
	sizeW   []float64
	perm    []int
}

var coalitionPool = sync.Pool{New: func() any { return new(coalitionBuf) }}

func getCoalitionBuf() *coalitionBuf { return coalitionPool.Get().(*coalitionBuf) }

// release returns the buffer to the pool. The caller must be done with
// every mask, weight and value slice handed out from it: they alias the
// pooled storage and will be scribbled over by the next draw.
func (b *coalitionBuf) release() { coalitionPool.Put(b) }

// valsFor returns a coalition-value slice of length n. Contents are
// undefined; every evaluator writes all n entries before reading any.
func (b *coalitionBuf) valsFor(n int) []float64 {
	if cap(b.vals) < n {
		b.vals = make([]float64, n)
	}
	return b.vals[:n]
}

// evalBuf is the generic batched evaluator's block scratch: the flat
// row backing, the row headers re-carved per call (d varies between
// models sharing the pool), the prediction vector, and the kept-feature
// index list rebuilt per coalition.
type evalBuf struct {
	backing []float64
	rows    [][]float64
	preds   []float64
	kept    []int
}

var evalPool = sync.Pool{New: func() any { return new(evalBuf) }}

// accPool recycles the masked tree evaluator's (background × coalition)
// accumulator — the single largest allocation of a forest Explain.
var accPool = sync.Pool{New: func() any { return new([]float64) }}

// getAcc returns a zeroed accumulator of length n (it is accumulated
// into with +=, so stale sums must be cleared).
func getAcc(n int) *[]float64 {
	p := accPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	} else {
		*p = (*p)[:n]
		clear(*p)
	}
	return p
}

func putAcc(p *[]float64) { accPool.Put(p) }

// reducedPool recycles the masked tree evaluator's divergence-tree
// storage: the four parallel arrays grow by append to the largest
// (tree, background) reduction seen, then serve every later Explain
// without touching the heap.
var reducedPool = sync.Pool{New: func() any { return new(reduced) }}

// seededRand is a pooled deterministic rng: the source is re-seeded on
// checkout through the rand.Source interface, which resets its state
// exactly as rand.NewSource(seed) would, so the value stream for a given
// seed is identical to a freshly built rand.New(rand.NewSource(seed)) —
// pooling never changes which coalitions a seed draws.
type seededRand struct {
	src rand.Source
	*rand.Rand
}

var rngPool = sync.Pool{New: func() any {
	src := rand.NewSource(0)
	return &seededRand{src: src, Rand: rand.New(src)}
}}

func getRNG(seed int64) *seededRand {
	r := rngPool.Get().(*seededRand)
	r.src.Seed(seed)
	return r
}

func putRNG(r *seededRand) { rngPool.Put(r) }

// solveBuf holds the WLS design matrix, target and solution scratch for
// solvePhi. The attribution vector itself is excluded: it escapes to the
// caller and must be a fresh allocation.
type solveBuf struct {
	a   *mat.Dense
	b   []float64
	sol []float64
}

var solvePool = sync.Pool{New: func() any { return &solveBuf{a: mat.NewDense(1, 1)} }}
