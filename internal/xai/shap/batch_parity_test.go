package shap

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/xai"
)

// fitForest trains a small random forest and returns it with a background
// sample and a probe instance.
func fitForest(t *testing.T, seed int64) (*forest.RandomForest, [][]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(dataset.Regression, "a", "b", "c", "d", "e", "f", "g", "h")
	for i := 0; i < 300; i++ {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.Add(x, math.Sin(x[0])*4+x[1]*x[2]-x[3]+0.05*rng.NormFloat64())
	}
	rf := &forest.RandomForest{NumTrees: 12, MaxDepth: 6, Task: dataset.Regression, Seed: seed}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	return rf, d.X[:40], d.X[50]
}

// TestBatchedExplainMatchesRowAtATime is the rewrite's core parity claim:
// the matrix-assembled, batch-evaluated estimator returns the same
// attributions as the seed's one-Predict-per-perturbation loop.
func TestBatchedExplainMatchesRowAtATime(t *testing.T) {
	rf, bg, x := fitForest(t, 3)
	batched := &Kernel{Model: rf, Background: bg, NumSamples: 512, Seed: 5}
	rowwise := &Kernel{Model: rf, Background: bg, NumSamples: 512, Seed: 5, RowAtATime: true}
	a, err := batched.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rowwise.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base != b.Base || a.Value != b.Value {
		t.Fatalf("base/value drift: (%v,%v) vs (%v,%v)", a.Base, a.Value, b.Base, b.Value)
	}
	for j := range a.Phi {
		if diff := math.Abs(a.Phi[j] - b.Phi[j]); diff > 1e-9 {
			t.Fatalf("phi[%d]: batched %v vs row-at-a-time %v (diff %g)", j, a.Phi[j], b.Phi[j], diff)
		}
	}
}

// TestBatchedExplainGBTClassificationParity covers the sigmoid-link
// branch of the masked tree-ensemble evaluator: a classification GBT's
// Predict is sigmoid(raw margin), which the fast path must reproduce.
func TestBatchedExplainGBTClassificationParity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := dataset.New(dataset.Classification, "a", "b", "c", "d", "e", "f")
	for i := 0; i < 300; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 0.0
		if x[0]+x[1]*x[2] > 0 {
			y = 1
		}
		d.Add(x, y)
	}
	gbt := &forest.GradientBoosting{NumRounds: 40, MaxDepth: 3, Task: dataset.Classification, Seed: 2}
	if err := gbt.Fit(d); err != nil {
		t.Fatal(err)
	}
	bg := d.X[:40]
	x := d.X[60]
	batched := &Kernel{Model: gbt, Background: bg, NumSamples: 512, Seed: 3}
	rowwise := &Kernel{Model: gbt, Background: bg, NumSamples: 512, Seed: 3, RowAtATime: true}
	a, err := batched.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rowwise.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Phi {
		if diff := math.Abs(a.Phi[j] - b.Phi[j]); diff > 1e-9 {
			t.Fatalf("phi[%d]: batched %v vs row-at-a-time %v (diff %g)", j, a.Phi[j], b.Phi[j], diff)
		}
	}
}

// TestBatchedExplainGenericModelParity checks the fallback: a model hidden
// behind a plain Predictor must yield the same attributions as the same
// model's native batch path.
func TestBatchedExplainGenericModelParity(t *testing.T) {
	rf, bg, x := fitForest(t, 7)
	native := &Kernel{Model: rf, Background: bg, NumSamples: 512, Seed: 9}
	generic := &Kernel{Model: ml.PredictorFunc(rf.Predict), Background: bg, NumSamples: 512, Seed: 9}
	a, err := native.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generic.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Phi {
		if diff := math.Abs(a.Phi[j] - b.Phi[j]); diff > 1e-9 {
			t.Fatalf("phi[%d]: native %v vs generic %v (diff %g)", j, a.Phi[j], b.Phi[j], diff)
		}
	}
}

// TestBaseValueCached checks the sync.Once base-value cache: a model
// wrapper counts background predictions across two Explains.
func TestBaseValueCached(t *testing.T) {
	rf, bg, x := fitForest(t, 11)
	var mu sync.Mutex
	calls := 0
	counted := ml.PredictorFunc(func(v []float64) float64 {
		mu.Lock()
		calls++
		mu.Unlock()
		return rf.Predict(v)
	})
	k := &Kernel{Model: counted, Background: bg, NumSamples: 64, Seed: 1}
	if _, err := k.Explain(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	afterFirst := calls
	mu.Unlock()
	if _, err := k.Explain(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	afterSecond := calls
	mu.Unlock()
	// The second Explain must not re-predict the background: its call count
	// is the first's minus the len(bg) base-value predictions.
	if got, want := afterSecond-afterFirst, afterFirst-len(bg); got != want {
		t.Fatalf("second Explain made %d model calls, want %d (base value not cached?)", got, want)
	}
}

// TestConcurrentExplainAndPredictBatch exercises the sync.Once base cache,
// the lazily built flat tree layout, and ensemble sharding all at once;
// meaningful under -race.
func TestConcurrentExplainAndPredictBatch(t *testing.T) {
	rf, bg, _ := fitForest(t, 13)
	for _, tr := range rf.Trees {
		tr.InvalidateFlat() // force concurrent lazy rebuilds
	}
	k := &Kernel{Model: rf, Background: bg, NumSamples: 128, Seed: 3}
	xs := bg[:8]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]float64, len(bg))
		for i := 0; i < 20; i++ {
			rf.PredictBatch(bg, out)
		}
	}()
	attrs, err := xai.ExplainBatch(context.Background(), k, xs, 4)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range attrs {
		if a.AdditivityError() > 1e-6 {
			t.Fatalf("instance %d: additivity error %g", i, a.AdditivityError())
		}
	}
}
