package shap

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nfvxai/internal/ml"
)

// linearModel is a deterministic test model with known exact Shapley
// values: for f(x) = Σ w_j x_j + c with an interventional background B,
// phi_j = w_j (x_j − mean_B(x_j)).
type linearModel struct {
	w []float64
	c float64
}

func (m linearModel) Predict(x []float64) float64 {
	s := m.c
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

func randomBackground(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func TestKernelMatchesLinearClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 5
	m := linearModel{w: []float64{2, -1, 0.5, 3, 0}, c: 4}
	bg := randomBackground(rng, 50, d)
	x := []float64{1, 2, -1, 0.5, 3}
	k := &Kernel{Model: m, Background: bg, NumSamples: 4096}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form.
	for j := 0; j < d; j++ {
		var mean float64
		for _, b := range bg {
			mean += b[j]
		}
		mean /= float64(len(bg))
		want := m.w[j] * (x[j] - mean)
		if math.Abs(attr.Phi[j]-want) > 1e-6 {
			t.Fatalf("phi[%d] = %v want %v", j, attr.Phi[j], want)
		}
	}
}

func TestKernelMatchesExactOnNonlinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 6
	model := ml.PredictorFunc(func(x []float64) float64 {
		return x[0]*x[1] + math.Sin(x[2]) + 2*x[3] - x[4]*x[4] + 0.3*x[5]*x[0]
	})
	bg := randomBackground(rng, 20, d)
	x := []float64{1, -0.5, 0.7, 2, -1, 0.3}
	exact, err := Exact(context.Background(), model, bg, x)
	if err != nil {
		t.Fatal(err)
	}
	// Full enumeration (2^6−2 = 62 coalitions < budget): estimator is the
	// exact WLS solution, which equals Shapley values.
	k := &Kernel{Model: model, Background: bg, NumSamples: 4096}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(attr.Phi[j]-exact.Phi[j]) > 1e-6 {
			t.Fatalf("phi[%d] = %v exact %v", j, attr.Phi[j], exact.Phi[j])
		}
	}
}

func TestKernelAdditivity(t *testing.T) {
	// Efficiency axiom: base + Σ phi == f(x), enforced by construction,
	// must hold even in the sampled regime.
	rng := rand.New(rand.NewSource(3))
	d := 14 // forces sampling at small budgets
	model := ml.PredictorFunc(func(x []float64) float64 {
		var s float64
		for j, v := range x {
			s += v * float64(j%3)
			if j > 0 {
				s += 0.1 * v * x[j-1]
			}
		}
		return s
	})
	bg := randomBackground(rng, 10, d)
	x := make([]float64, d)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	k := &Kernel{Model: model, Background: bg, NumSamples: 300, Seed: 4}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if e := attr.AdditivityError(); e > 1e-9 {
		t.Fatalf("additivity error %v", e)
	}
}

func TestKernelSymmetryAxiom(t *testing.T) {
	// Two features that enter the model identically and have identical
	// values and background distribution must get equal attributions.
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0] + x[1] + 5*x[2] })
	bg := [][]float64{{0, 0, 0}, {1, 1, 1}, {0.5, 0.5, 0.2}} // cols 0,1 identical
	x := []float64{2, 2, 1}
	k := &Kernel{Model: model, Background: bg, NumSamples: 4096}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(attr.Phi[0]-attr.Phi[1]) > 1e-8 {
		t.Fatalf("symmetric features differ: %v vs %v", attr.Phi[0], attr.Phi[1])
	}
}

func TestKernelDummyAxiom(t *testing.T) {
	// A feature the model ignores must get zero attribution.
	model := ml.PredictorFunc(func(x []float64) float64 { return 3*x[0] - x[2] })
	rng := rand.New(rand.NewSource(5))
	bg := randomBackground(rng, 30, 3)
	x := []float64{1, 99, 2}
	k := &Kernel{Model: model, Background: bg, NumSamples: 4096}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(attr.Phi[1]) > 1e-8 {
		t.Fatalf("dummy feature attribution %v", attr.Phi[1])
	}
}

func TestKernelSingleFeature(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 2 * x[0] })
	bg := [][]float64{{1}, {3}}
	k := &Kernel{Model: model, Background: bg}
	attr, err := k.Explain(context.Background(), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	// base = mean(2, 6) = 4; phi = 10 − 4 = 6.
	if attr.Base != 4 || attr.Phi[0] != 6 {
		t.Fatalf("single feature: %+v", attr)
	}
}

func TestKernelSampledApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := 11
	model := ml.PredictorFunc(func(x []float64) float64 {
		var s float64
		for j := 0; j < d-1; j++ {
			s += x[j] * x[j+1]
		}
		return s
	})
	bg := randomBackground(rng, 8, d)
	x := make([]float64, d)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	exact, err := Exact(context.Background(), model, bg, x)
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{Model: model, Background: bg, NumSamples: 1200, Seed: 7}
	attr, err := k.Explain(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled estimator should be close; tolerance reflects Monte Carlo.
	for j := 0; j < d; j++ {
		if math.Abs(attr.Phi[j]-exact.Phi[j]) > 0.15 {
			t.Fatalf("phi[%d] = %v exact %v", j, attr.Phi[j], exact.Phi[j])
		}
	}
}

func TestKernelErrors(t *testing.T) {
	model := ml.PredictorFunc(func(x []float64) float64 { return 0 })
	if _, err := (&Kernel{Model: model}).Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected empty-background error")
	}
	if _, err := (&Kernel{Model: model, Background: [][]float64{{1, 2}}}).Explain(context.Background(), []float64{1}); err == nil {
		t.Fatal("expected width-mismatch error")
	}
	if _, err := (&Kernel{Model: model, Background: [][]float64{{1}}}).Explain(context.Background(), nil); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := Exact(context.Background(), model, nil, []float64{1}); err == nil {
		t.Fatal("expected Exact empty-background error")
	}
	if _, err := Exact(context.Background(), model, [][]float64{{1}}, make([]float64, 25)); err == nil {
		t.Fatal("expected Exact dimension error")
	}
}

func TestShapleyKernelWeightSymmetry(t *testing.T) {
	// w(s) == w(d−s) and weights are positive.
	d := 9
	for s := 1; s < d; s++ {
		w1 := shapleyKernelWeight(d, s)
		w2 := shapleyKernelWeight(d, d-s)
		if w1 <= 0 || math.Abs(w1-w2) > 1e-15 {
			t.Fatalf("kernel weight asymmetry at s=%d: %v vs %v", s, w1, w2)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {5, 7, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Fatalf("binom(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestSampleBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X := [][]float64{{1}, {2}, {3}, {4}, {5}}
	small := SampleBackground(rng, X, 3)
	if len(small) != 3 {
		t.Fatalf("len = %d", len(small))
	}
	all := SampleBackground(rng, X, 99)
	if len(all) != 5 {
		t.Fatalf("len = %d", len(all))
	}
	seen := map[float64]bool{}
	for _, r := range small {
		if seen[r[0]] {
			t.Fatal("duplicate row in sample without replacement")
		}
		seen[r[0]] = true
	}
}

func TestExactEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := ml.PredictorFunc(func(x []float64) float64 { return x[0]*x[1] - x[2] })
	bg := randomBackground(rng, 15, 3)
	x := []float64{1, 2, 3}
	attr, err := Exact(context.Background(), model, bg, x)
	if err != nil {
		t.Fatal(err)
	}
	if e := attr.AdditivityError(); e > 1e-10 {
		t.Fatalf("exact efficiency violated: %v", e)
	}
	if math.Abs(attr.Base-meanPrediction(model, bg)) > 1e-12 {
		t.Fatalf("base %v != mean prediction", attr.Base)
	}
}
