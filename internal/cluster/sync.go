package cluster

import (
	"sync"
	"time"

	"nfvxai/internal/registry"
)

// ManifestSyncer is the slice of *registry.Registry the sync loop needs:
// one call that reconciles local state against the shared store's
// manifest.
type ManifestSyncer interface {
	SyncManifest(now time.Time) (registry.SyncReport, error)
}

// SyncStatus is the sync loop's health view, reported by /healthz so
// operators can see replication lag per node.
type SyncStatus struct {
	Interval time.Duration `json:"interval_ns"`
	LastSync time.Time     `json:"last_sync,omitempty"`
	// LagSeconds is time since the last successful sync; a node whose lag
	// grows past a few intervals is not converging.
	LagSeconds float64 `json:"lag_seconds"`
	Rounds     int64   `json:"rounds"`
	Adopted    int64   `json:"adopted"`
	Swapped    int64   `json:"swapped"`
	Errors     int64   `json:"errors"`
	LastError  string  `json:"last_error,omitempty"`
}

// Syncer polls the shared store's manifest and adopts models trained,
// imported, or hot-swapped on other nodes. One poll interval bounds how
// stale any node's registry can be relative to the fleet.
type Syncer struct {
	Reg      ManifestSyncer
	Interval time.Duration    // poll period (default 2s)
	OnError  func(error)      // optional hook for sync failures
	Now      func() time.Time // test override; time.Now when nil

	mu       sync.Mutex
	lastSync time.Time
	rounds   int64
	adopted  int64
	swapped  int64
	errors   int64
	lastErr  string

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// Start launches the poll loop.
func (s *Syncer) Start() {
	if s.Interval <= 0 {
		s.Interval = 2 * time.Second
	}
	s.mu.Lock()
	if s.done == nil {
		s.done = make(chan struct{})
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				s.SyncOnce()
			}
		}
	}()
}

// Stop terminates the poll loop and waits for it.
func (s *Syncer) Stop() {
	s.mu.Lock()
	if s.done == nil {
		s.done = make(chan struct{})
	}
	s.mu.Unlock()
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// SyncOnce runs a single reconcile round and records its outcome. Safe
// to call directly (tests, manual kick) alongside the loop.
func (s *Syncer) SyncOnce() (registry.SyncReport, error) {
	now := time.Now()
	if s.Now != nil {
		now = s.Now()
	}
	rep, err := s.Reg.SyncManifest(now)
	s.mu.Lock()
	s.rounds++
	if err != nil {
		s.errors++
		s.lastErr = err.Error()
	} else {
		s.lastSync = now
		s.lastErr = ""
		s.adopted += int64(len(rep.Adopted))
		s.swapped += int64(len(rep.Swapped))
	}
	s.mu.Unlock()
	if err != nil && s.OnError != nil {
		s.OnError(err)
	}
	return rep, err
}

// Status reports the loop's counters and lag.
func (s *Syncer) Status() SyncStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SyncStatus{
		Interval:  s.Interval,
		LastSync:  s.lastSync,
		Rounds:    s.rounds,
		Adopted:   s.adopted,
		Swapped:   s.swapped,
		Errors:    s.errors,
		LastError: s.lastErr,
	}
	if !s.lastSync.IsZero() {
		st.LagSeconds = time.Since(s.lastSync).Seconds()
	}
	return st
}
