// Package cluster turns a set of explaind processes into one sharded,
// replicated serving fleet. Three cooperating pieces, all deterministic
// and stdlib-only:
//
//   - a seeded consistent-hash ring (ring.go) maps model names to owner
//     nodes: every node computes the identical placement from the same
//     membership view, so any frontend can route any request without
//     coordination;
//   - a membership view (cluster.go) — a static -peers list or a watched
//     members file — with per-node liveness derived from peer /readyz
//     probes, so routing prefers owners that are actually up;
//   - a manifest-watch sync loop (sync.go) over the shared artifact
//     store, so a model trained, imported or drift-hot-swapped on any
//     node is adopted by every other node within one poll interval.
//
// The serving layer (internal/serve) consumes the ring and liveness view
// to reverse-proxy /v1/models/{name}/* to the owner, with an
// X-Forwarded-By loop guard and a local fallback when every owner is
// down. Nothing in this package holds a lock across network I/O — the
// lockedcall analyzer enforces it.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring placement defaults.
const (
	// DefaultVNodes is how many virtual points each node contributes to
	// the ring. More vnodes smooth the key distribution at the cost of a
	// larger (still tiny) sorted array.
	DefaultVNodes = 64
	// DefaultReplication is the default owner count per model (primary +
	// one replica).
	DefaultReplication = 2
)

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a seeded consistent-hash ring over node ids. Placement is a
// pure function of (seed, vnodes, member ids): every node that shares a
// membership view computes byte-identical ownership, which is what lets
// a stateless frontend fleet route without a coordinator. A Ring is
// immutable after construction; membership changes build a new one.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint
	ids    []string // distinct member ids, sorted
}

// NewRing builds a ring from distinct node ids. Duplicate or empty ids
// are an error: placement must be unambiguous.
func NewRing(seed uint64, vnodes int, ids []string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(ids))
	sorted := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = true
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	r := &Ring{seed: seed, vnodes: vnodes, ids: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, id := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: r.hash(fmt.Sprintf("%s#%d", id, v)), node: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit points) break on the
		// node id so placement stays deterministic across nodes.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash mixes the ring seed into an FNV-1a digest and finalizes it with a
// 64-bit avalanche mix. The finalizer matters: raw FNV-1a of near-equal
// strings ("a#0", "a#1", …) clusters badly in the high bits, which
// skewed a 3-node ring as far as 10%/30%/60%; the mix restores uniform
// point spread. The seed lets operators re-shuffle placement without
// renaming nodes.
func (r *Ring) hash(s string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(r.seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: full avalanche, so one
// input bit flips ~half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the ring's node ids, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Owners returns the n distinct nodes owning key, primary first: the
// first n distinct node ids walking clockwise from the key's hash. n is
// clamped to the member count.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := r.hash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Owner returns the primary owner of key.
func (r *Ring) Owner(key string) string { return r.Owners(key, 1)[0] }
