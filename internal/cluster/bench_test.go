package cluster_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"nfvxai/internal/serve"
)

// BenchmarkClusterPredict prices the routing plane: the same predict
// against the node that owns the model (served in-process) vs a
// non-owner (one reverse-proxy hop to the owner). The delta is the
// whole cost of sharding — request-id middleware, ring lookup, body
// buffering, and one localhost HTTP round trip.
func BenchmarkClusterPredict(b *testing.B) {
	nodes := newFleet(b, 3)
	frontend := nodes[1]
	name := modelNotOwnedBy(b, frontend.cl, frontend.id)
	if _, err := nodes[0].reg.AddReady(e2eSpec(name), trainPipeline(b, 1), time.Now()); err != nil {
		b.Fatal(err)
	}
	for _, nd := range nodes {
		nd := nd
		waitUntil(b, 5*time.Second, nd.id+" adopting "+name, func() bool {
			_, err := nd.reg.Lookup(name)
			return err == nil
		})
	}
	var owner *e2eNode
	for _, nd := range nodes {
		for _, o := range frontend.cl.Owners(name) {
			if nd.id == o.ID {
				owner = nd
			}
		}
	}
	body := []byte(`{"features":[0.5,-0.2,1.0]}`)

	run := func(b *testing.B, url string, wantServedBy string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/v1/models/"+name+"/predict", "application/json",
				bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			if got := resp.Header.Get(serve.HeaderServedBy); got != wantServedBy {
				b.Fatalf("served by %q, want %q", got, wantServedBy)
			}
		}
	}
	b.Run("local", func(b *testing.B) { run(b, owner.hs.URL, owner.id) })
	b.Run("proxied", func(b *testing.B) { run(b, frontend.hs.URL, owner.id) })
}
