package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func threeNodes() []Node {
	return []Node{
		{ID: "a", URL: "http://a.invalid"},
		{ID: "b", URL: "http://b.invalid"},
		{ID: "c", URL: "http://c.invalid"},
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	want := []Node{{ID: "a", URL: "http://h1:8080"}, {ID: "b", URL: "http://h2:8080"}}
	if len(nodes) != 2 || nodes[0] != want[0] || nodes[1] != want[1] {
		t.Fatalf("nodes = %+v", nodes)
	}
	for _, bad := range []string{"", "a", "=url", "a=", "a=u,b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) must error", bad)
		}
	}
}

func TestNewRejectsUnknownSelf(t *testing.T) {
	_, err := New(Config{Self: "zz", Nodes: threeNodes(), Probe: func(string) (int, error) { return 0, nil }})
	if err == nil {
		t.Fatal("self outside membership must error")
	}
}

// TestRouteDecisions drives the three routing outcomes: local when self
// owns, proxy to a live remote owner, fallback when every owner is down.
func TestRouteDecisions(t *testing.T) {
	c, err := New(Config{
		Self: "a", Nodes: threeNodes(), Replication: 2,
		Probe: func(string) (int, error) { return 0, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a model self owns and one it does not (ring placement is
	// deterministic, so scan until both are found).
	var selfOwned, remoteOwned string
	for i := 0; i < 1000 && (selfOwned == "" || remoteOwned == ""); i++ {
		m := fmt.Sprintf("web/rf/m%d", i)
		owned := false
		for _, n := range c.Owners(m) {
			if n.ID == "a" {
				owned = true
			}
		}
		if owned && selfOwned == "" {
			selfOwned = m
		}
		if !owned && remoteOwned == "" {
			remoteOwned = m
		}
	}
	if selfOwned == "" || remoteOwned == "" {
		t.Fatal("could not find both self-owned and remote-owned models")
	}

	if n, d := c.Route(selfOwned); d != RouteLocal || n.ID != "a" {
		t.Fatalf("self-owned: %v via %v", n, d)
	}
	n, d := c.Route(remoteOwned)
	if d != RouteProxy || n.ID == "a" {
		t.Fatalf("remote-owned: %v via %v", n, d)
	}
	// Kill the chosen owner: routing moves to the replica.
	c.ReportFailure(n.ID, errors.New("connection refused"))
	n2, d2 := c.Route(remoteOwned)
	if d2 != RouteProxy || n2.ID == n.ID || n2.ID == "a" {
		t.Fatalf("after owner down: %v via %v", n2, d2)
	}
	// Kill the replica too: every owner down ⇒ local fallback.
	c.ReportFailure(n2.ID, errors.New("connection refused"))
	if n3, d3 := c.Route(remoteOwned); d3 != RouteFallback || n3.ID != "a" {
		t.Fatalf("all owners down: %v via %v", n3, d3)
	}
}

// TestProbeLoopMarksDownAndRecovers: a peer failing DownAfter
// consecutive probes goes down; one success brings it back.
func TestProbeLoopMarksDownAndRecovers(t *testing.T) {
	failing := make(map[string]bool)
	var mu sync.Mutex
	c, err := New(Config{
		Self:          "a",
		Nodes:         threeNodes(),
		ProbeInterval: 10 * time.Millisecond,
		DownAfter:     2,
		Probe: func(url string) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			if failing[url] {
				return 0, errors.New("dial refused")
			}
			return 0, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	mu.Lock()
	failing["http://b.invalid"] = true
	mu.Unlock()

	if !waitFor(t, time.Second, func() bool { return peerAlive(c, "b") == false }) {
		t.Fatalf("peer b never went down: %+v", c.Peers())
	}
	if peerAlive(c, "c") != true {
		t.Fatalf("peer c must stay alive: %+v", c.Peers())
	}

	mu.Lock()
	failing["http://b.invalid"] = false
	mu.Unlock()
	if !waitFor(t, time.Second, func() bool { return peerAlive(c, "b") == true }) {
		t.Fatalf("peer b never recovered: %+v", c.Peers())
	}
}

func peerAlive(c *Cluster, id string) bool {
	for _, p := range c.Peers() {
		if p.ID == id {
			return p.Alive
		}
	}
	return false
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestMembersFileReload: membership grows when the watched file gains a
// node, and liveness history survives the reload.
func TestMembersFileReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "members.json")
	writeMembers(t, path, threeNodes())

	c, err := New(Config{
		Self:          "a",
		MembersFile:   path,
		ProbeInterval: 10 * time.Millisecond,
		Probe:         func(string) (int, error) { return 0, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if got := len(c.Peers()); got != 3 {
		t.Fatalf("initial members = %d", got)
	}

	// Grow the fleet. Rewriting with a distinct mtime/size is what the
	// watcher keys on.
	writeMembers(t, path, append(threeNodes(), Node{ID: "d", URL: "http://d.invalid"}))
	if !waitFor(t, 2*time.Second, func() bool { return len(c.Peers()) == 4 }) {
		t.Fatalf("members never grew: %+v", c.Peers())
	}
	if c.FileError() != "" {
		t.Fatalf("file error: %s", c.FileError())
	}

	// A file that drops self must be rejected, keeping the old view.
	writeMembers(t, path, []Node{{ID: "b", URL: "http://b.invalid"}})
	if !waitFor(t, 2*time.Second, func() bool { return c.FileError() != "" }) {
		t.Fatal("dropping self from the members file must surface an error")
	}
	if got := len(c.Peers()); got != 4 {
		t.Fatalf("membership must hold the last good view, got %d", got)
	}
}

func writeMembers(t *testing.T, path string, nodes []Node) {
	t.Helper()
	data, err := json.Marshal(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRouteLeastLoaded: with both remote owners alive, Route proxies to
// the one reporting the lighter /readyz load, follows load shifts on
// subsequent probe rounds, and breaks ties in ring order (the old
// first-alive behavior).
func TestRouteLeastLoaded(t *testing.T) {
	loads := map[string]int{}
	var mu sync.Mutex
	c, err := New(Config{
		Self: "a", Nodes: threeNodes(), Replication: 2,
		Probe: func(url string) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return loads[url], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a model both of whose owners are remote (ring placement is
	// deterministic, so scan until one turns up).
	var model string
	var owners []Node
	for i := 0; i < 1000 && model == ""; i++ {
		m := fmt.Sprintf("web/rf/m%d", i)
		own := c.Owners(m)
		remote := len(own) == 2
		for _, n := range own {
			if n.ID == "a" {
				remote = false
			}
		}
		if remote {
			model, owners = m, own
		}
	}
	if model == "" {
		t.Fatal("no fully remote model found")
	}
	primary, replica := owners[0], owners[1]

	// Equal (zero) load: ring order wins, matching first-alive routing.
	if n, d := c.Route(model); d != RouteProxy || n.ID != primary.ID {
		t.Fatalf("equal load: %v via %v, want primary %s", n, d, primary.ID)
	}
	// Load up the primary; the next probe round shifts routing away.
	mu.Lock()
	loads[primary.URL] = 7
	mu.Unlock()
	c.tick()
	if n, d := c.Route(model); d != RouteProxy || n.ID != replica.ID {
		t.Fatalf("loaded primary: %v via %v, want replica %s", n, d, replica.ID)
	}
	// Load moves to the replica: routing follows back.
	mu.Lock()
	loads[primary.URL], loads[replica.URL] = 1, 9
	mu.Unlock()
	c.tick()
	if n, d := c.Route(model); d != RouteProxy || n.ID != primary.ID {
		t.Fatalf("loaded replica: %v via %v, want primary %s", n, d, primary.ID)
	}
	// A loaded owner still beats a dead light one.
	c.ReportFailure(primary.ID, errors.New("connection refused"))
	if n, d := c.Route(model); d != RouteProxy || n.ID != replica.ID {
		t.Fatalf("dead primary: %v via %v, want replica %s", n, d, replica.ID)
	}
	// Peers surfaces the probed loads.
	for _, p := range c.Peers() {
		if p.ID == replica.ID && p.Load != 9 {
			t.Fatalf("replica load = %d, want 9", p.Load)
		}
	}
}
