package cluster

import (
	"errors"
	"testing"
	"time"

	"nfvxai/internal/registry"
)

// fakeSyncer scripts SyncManifest outcomes.
type fakeSyncer struct {
	reports []registry.SyncReport
	errs    []error
	calls   int
}

func (f *fakeSyncer) SyncManifest(time.Time) (registry.SyncReport, error) {
	i := f.calls
	f.calls++
	var rep registry.SyncReport
	if i < len(f.reports) {
		rep = f.reports[i]
	}
	var err error
	if i < len(f.errs) {
		err = f.errs[i]
	}
	return rep, err
}

func TestSyncerCounters(t *testing.T) {
	f := &fakeSyncer{
		reports: []registry.SyncReport{
			{Adopted: []string{"m1", "m2"}},
			{},
			{Swapped: []string{"m1"}},
		},
		errs: []error{nil, errors.New("store offline"), nil},
	}
	var hookErrs int
	s := &Syncer{Reg: f, Interval: time.Hour, OnError: func(error) { hookErrs++ }}

	if _, err := s.SyncOnce(); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if _, err := s.SyncOnce(); err == nil {
		t.Fatal("round 2 must surface the store error")
	}
	if _, err := s.SyncOnce(); err != nil {
		t.Fatalf("round 3: %v", err)
	}

	st := s.Status()
	if st.Rounds != 3 || st.Adopted != 2 || st.Swapped != 1 || st.Errors != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastError != "" {
		t.Fatalf("a later success must clear last_error, got %q", st.LastError)
	}
	if st.LastSync.IsZero() || st.LagSeconds < 0 {
		t.Fatalf("lag bookkeeping: %+v", st)
	}
	if hookErrs != 1 {
		t.Fatalf("OnError fired %d times", hookErrs)
	}
}

func TestSyncerStartStop(t *testing.T) {
	f := &fakeSyncer{}
	s := &Syncer{Reg: f, Interval: 5 * time.Millisecond}
	s.Start()
	if !waitFor(t, time.Second, func() bool { return s.Status().Rounds >= 2 }) {
		t.Fatalf("loop never ran: %+v", s.Status())
	}
	s.Stop()
	rounds := s.Status().Rounds
	time.Sleep(30 * time.Millisecond)
	if got := s.Status().Rounds; got != rounds {
		t.Fatalf("loop still running after Stop: %d -> %d", rounds, got)
	}
}
