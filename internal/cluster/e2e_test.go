// The 3-node in-process cluster e2e: three full serve.Server stacks over
// one shared in-memory bucket, real HTTP between them, real probe and
// sync loops. This is the acceptance test of the cluster plane: a model
// trained on node A serves from node B within one sync interval; killing
// a model's owner re-routes to a replica with nothing worse than the
// typed shed/unavailable responses; /healthz reports the fleet view.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/registry"
	"nfvxai/internal/serve"
)

// e2eNode is one in-process cluster member: its own registry and serving
// stack over the shared bucket, listening on a real socket.
type e2eNode struct {
	id  string
	reg *registry.Registry
	srv *serve.Server
	hs  *httptest.Server
	cl  *cluster.Cluster
	syn *cluster.Syncer
}

// newFleet boots n nodes over one shared blob bucket. Servers come up
// first (so peer URLs exist), then each node's cluster view and sync
// loop start. Cleanup tears everything down in reverse.
func newFleet(t testing.TB, n int) []*e2eNode {
	t.Helper()
	blob := registry.NewMemBlob()
	nodes := make([]*e2eNode, n)
	for i := range nodes {
		id := fmt.Sprintf("node-%c", 'a'+i)
		reg := registry.New()
		reg.OnStoreError = func(err error) { t.Errorf("%s store error: %v", id, err) }
		reg.UseStore(registry.NewBlobStore(blob))
		srv := serve.NewServer(reg)
		srv.NodeID = id
		srv.Logf = t.Logf
		nodes[i] = &e2eNode{id: id, reg: reg, srv: srv, hs: httptest.NewServer(srv)}
	}
	members := make([]cluster.Node, n)
	for i, nd := range nodes {
		members[i] = cluster.Node{ID: nd.id, URL: nd.hs.URL}
	}
	for _, nd := range nodes {
		c, err := cluster.New(cluster.Config{
			Self:          nd.id,
			Nodes:         members,
			Replication:   2,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			DownAfter:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		syn := &cluster.Syncer{Reg: nd.reg, Interval: 100 * time.Millisecond}
		nd.cl, nd.syn = c, syn
		nd.srv.Cluster = c
		nd.srv.Syncer = syn
		c.Start()
		syn.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.syn.Stop()
			nd.cl.Stop()
			nd.hs.Close()
			nd.srv.Close()
		}
	})
	return nodes
}

// trainPipeline trains a small real pipeline without the simulator.
func trainPipeline(t testing.TB, seed int64) *core.Pipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(dataset.Regression, "a", "b", "c")
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		ds.Add(x, 3*x[0]-x[1]+0.2*rng.NormFloat64())
	}
	p, err := core.NewPipeline(core.ModelTree, ds, seed)
	if err != nil {
		t.Fatal(err)
	}
	p.ShapSamples = 64
	return p
}

func e2eSpec(name string) registry.Spec {
	return registry.Spec{Name: name, Scenario: "web", Model: "cart", Target: "util", Hours: 1, Seed: 1}
}

// modelNotOwnedBy scans deterministic ring placement for a model name
// whose owner set excludes the given node.
func modelNotOwnedBy(t testing.TB, c *cluster.Cluster, id string) string {
	t.Helper()
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("web/cart/m%d", i)
		owned := false
		for _, o := range c.Owners(name) {
			if o.ID == id {
				owned = true
				break
			}
		}
		if !owned {
			return name
		}
	}
	t.Fatal("no model found outside the node's ownership")
	return ""
}

func waitUntil(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func doReq(t testing.TB, method, url string, body string, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterTrainOnASyncServeEverywhere: the headline replication
// property — a model trained (AddReady) on one node is served by every
// other node within one sync interval, with proxied requests carrying
// the routing headers.
func TestClusterTrainOnASyncServeEverywhere(t *testing.T) {
	nodes := newFleet(t, 3)
	a, b := nodes[0], nodes[1]

	// Pick a name node B does NOT own, so a request to B must proxy.
	name := modelNotOwnedBy(t, b.cl, b.id)
	if _, err := a.reg.AddReady(e2eSpec(name), trainPipeline(t, 1), time.Now()); err != nil {
		t.Fatal(err)
	}

	// Every node adopts within a few sync intervals.
	for _, nd := range nodes {
		nd := nd
		waitUntil(t, 5*time.Second, nd.id+" adopting "+name, func() bool {
			_, err := nd.reg.Lookup(name)
			return err == nil
		})
	}

	// Serve through node B: the request proxies to an owner (one hop),
	// reusing the caller's request id end to end.
	resp := doReq(t, http.MethodPost, b.hs.URL+"/v1/models/"+name+"/predict",
		`{"features":[0.5,-0.2,1.0]}`, map[string]string{"X-Request-Id": "e2e-trace-1"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict via B: %d (%s)", resp.StatusCode, body)
	}
	if rid := resp.Header.Get(serve.HeaderRequestID); rid != "e2e-trace-1" {
		t.Fatalf("request id not propagated: %q", rid)
	}
	servedBy := resp.Header.Get(serve.HeaderServedBy)
	if servedBy == b.id || servedBy == "" {
		t.Fatalf("X-Served-By = %q; B does not own %s, an owner must have served it", servedBy, name)
	}
	var out struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	// GETs proxy the same way.
	resp2 := doReq(t, http.MethodGet, b.hs.URL+"/v1/models/"+name+"/schema", "", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("schema via B: %d", resp2.StatusCode)
	}
	resp2.Body.Close()

	// The fleet health view: every peer alive, ownership reported, sync
	// loop converged.
	hresp := doReq(t, http.MethodGet, a.hs.URL+"/healthz", "", nil)
	var hr serve.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hr.NodeID != a.id || hr.Cluster == nil {
		t.Fatalf("health = %+v", hr)
	}
	if hr.Cluster.Replication != 2 || len(hr.Cluster.Peers) != 3 {
		t.Fatalf("cluster block = %+v", hr.Cluster)
	}
	for _, p := range hr.Cluster.Peers {
		if !p.Alive {
			t.Fatalf("peer %s reported down: %+v", p.ID, hr.Cluster.Peers)
		}
	}
	if owners := hr.Cluster.Owners[name]; len(owners) != 2 {
		t.Fatalf("owners of %s = %v", name, owners)
	}
	if hr.Cluster.Sync == nil || hr.Cluster.Sync.Rounds == 0 {
		t.Fatalf("sync status = %+v", hr.Cluster.Sync)
	}
}

// TestClusterOwnerDownReroutes: killing the owner a request would proxy
// to re-routes traffic to a replica (or local fallback) with no
// responses outside {200, typed 503/504} and eventual steady 200s.
func TestClusterOwnerDownReroutes(t *testing.T) {
	nodes := newFleet(t, 3)
	b := nodes[1]

	name := modelNotOwnedBy(t, b.cl, b.id)
	if _, err := nodes[0].reg.AddReady(e2eSpec(name), trainPipeline(t, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		nd := nd
		waitUntil(t, 5*time.Second, nd.id+" adopting "+name, func() bool {
			_, err := nd.reg.Lookup(name)
			return err == nil
		})
	}

	// The node a request from B routes to right now is the live primary.
	target, decision := b.cl.Route(name)
	if decision != cluster.RouteProxy {
		t.Fatalf("route = %v via %v; B must not own %s", target, decision, name)
	}
	var owner *e2eNode
	for _, nd := range nodes {
		if nd.id == target.ID {
			owner = nd
		}
	}

	// Kill the owner's listener (process death, not graceful exit).
	owner.hs.CloseClientConnections()
	owner.hs.Close()

	// Hammer B. Transport failures fall back to B's local synced copy,
	// the probe loop marks the owner down, and routing settles on the
	// replica — all without a single untyped 5xx.
	okFrom := map[string]int{}
	for i := 0; i < 40; i++ {
		resp := doReq(t, http.MethodPost, b.hs.URL+"/v1/models/"+name+"/predict",
			`{"features":[0.1,0.2,0.3]}`, nil)
		switch resp.StatusCode {
		case http.StatusOK:
			okFrom[resp.Header.Get(serve.HeaderServedBy)]++
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// typed shed/unavailable: allowed during re-route
		default:
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if len(okFrom) == 0 {
		t.Fatal("no successful responses after owner death")
	}
	if n := okFrom[owner.id]; n > 0 {
		t.Fatalf("dead owner %s answered %d requests", owner.id, n)
	}

	// Routing has settled: the owner is marked down and requests succeed.
	waitUntil(t, 2*time.Second, "owner marked down", func() bool {
		n, d := b.cl.Route(name)
		return (d == cluster.RouteProxy && n.ID != owner.id) || d == cluster.RouteFallback
	})
	resp := doReq(t, http.MethodPost, b.hs.URL+"/v1/models/"+name+"/predict",
		`{"features":[0.1,0.2,0.3]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steady state after re-route: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestClusterLoopGuard: a request that already hopped once is never
// proxied again, even when the receiving node's ring view says another
// node owns the model — stale views degrade to local serving, not to
// proxy cycles.
func TestClusterLoopGuard(t *testing.T) {
	nodes := newFleet(t, 3)
	b := nodes[1]
	name := modelNotOwnedBy(t, b.cl, b.id)
	if _, err := nodes[0].reg.AddReady(e2eSpec(name), trainPipeline(t, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "B adopting "+name, func() bool {
		_, err := b.reg.Lookup(name)
		return err == nil
	})

	// Forge a forwarded request at B for a model B does not own: B must
	// serve it locally (one hop max), not proxy onward.
	resp := doReq(t, http.MethodPost, b.hs.URL+"/v1/models/"+name+"/predict",
		`{"features":[0.5,-0.2,1.0]}`, map[string]string{serve.HeaderForwardedBy: "node-x"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.HeaderServedBy); got != b.id {
		t.Fatalf("X-Served-By = %q; the loop guard must pin serving to B", got)
	}
}
