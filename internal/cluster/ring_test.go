package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func mustRing(t *testing.T, seed uint64, vnodes int, ids ...string) *Ring {
	t.Helper()
	r, err := NewRing(seed, vnodes, ids)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

// TestRingDeterministic: two nodes that share (seed, vnodes, members)
// must compute byte-identical placement — the property that lets a
// stateless fleet route without a coordinator.
func TestRingDeterministic(t *testing.T) {
	a := mustRing(t, 7, 64, "n1", "n2", "n3")
	b := mustRing(t, 7, 64, "n3", "n1", "n2") // member order must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("scenario/model-%d/target", i)
		if got, want := a.Owners(key, 2), b.Owners(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: owners diverge: %v vs %v", key, got, want)
		}
	}
}

// TestRingOwnersDistinct: R owners are distinct nodes, primary first,
// clamped to the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := mustRing(t, 1, 64, "a", "b", "c")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("m-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %q: owners %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: primary %q != Owner %q", key, owners[0], r.Owner(key))
		}
	}
	if got := r.Owners("x", 10); len(got) != 3 {
		t.Fatalf("over-replication must clamp to member count, got %v", got)
	}
	if got := r.Owners("x", 0); len(got) != 1 {
		t.Fatalf("n=0 must yield the primary, got %v", got)
	}
}

// TestRingBalance: with virtual nodes, no member of a 3-node ring is
// starved across a spread of keys.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, 1, 64, "a", "b", "c")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("web/rf/target-%d", i))]++
	}
	for _, id := range r.Members() {
		if frac := float64(counts[id]) / keys; frac < 0.15 {
			t.Fatalf("node %s owns %.1f%% of keys (counts %v); vnodes should balance better", id, 100*frac, counts)
		}
	}
}

// TestRingStability: adding a fourth node must not reshuffle the world —
// consistent hashing moves roughly 1/N of the keys, so well under half.
func TestRingStability(t *testing.T) {
	before := mustRing(t, 1, 64, "a", "b", "c")
	after := mustRing(t, 1, 64, "a", "b", "c", "d")
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("m-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("%.1f%% of keys moved on member add; consistent hashing should move ~25%%", 100*frac)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node; it would be idle")
	}
}

// TestRingSeed: a different seed produces a different placement (the
// rebalance knob actually does something).
func TestRingSeed(t *testing.T) {
	a := mustRing(t, 1, 64, "a", "b", "c")
	b := mustRing(t, 2, 64, "a", "b", "c")
	diff := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("m-%d", i)
		if a.Owner(key) != b.Owner(key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not move any key")
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(1, 64, nil); err == nil {
		t.Fatal("empty membership must error")
	}
	if _, err := NewRing(1, 64, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate id must error")
	}
	if _, err := NewRing(1, 64, []string{"a", ""}); err == nil {
		t.Fatal("empty id must error")
	}
}
