package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Node is one member of the fleet: a stable id plus the base URL its
// explaind listens on (e.g. "http://10.0.0.7:8080").
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// RouteDecision says how a request for a model should be handled by this
// node.
type RouteDecision int

const (
	// RouteLocal: this node is an owner (or the cluster is degenerate);
	// serve from the local registry.
	RouteLocal RouteDecision = iota
	// RouteProxy: another node owns the model and looks alive; forward.
	RouteProxy
	// RouteFallback: every remote owner is down; serve locally from the
	// synced registry rather than failing the request.
	RouteFallback
)

func (d RouteDecision) String() string {
	switch d {
	case RouteLocal:
		return "local"
	case RouteProxy:
		return "proxy"
	case RouteFallback:
		return "fallback"
	default:
		return fmt.Sprintf("RouteDecision(%d)", int(d))
	}
}

// Config assembles a Cluster. Self must be one of Nodes.
type Config struct {
	Self  string // this node's id
	Nodes []Node // full membership, including self

	VNodes      int    // virtual nodes per member; DefaultVNodes when 0
	Replication int    // owners per model; DefaultReplication when 0, clamped to [1, len(Nodes)]
	Seed        uint64 // ring placement seed; must match across the fleet

	ProbeInterval time.Duration // liveness probe period (default 2s)
	ProbeTimeout  time.Duration // per-probe HTTP timeout (default 1s)
	DownAfter     int           // consecutive probe failures before a peer is down (default 2)

	// MembersFile, when set, is a JSON array of Node re-read every probe
	// tick; membership changes (mtime or size) rebuild the ring. Self
	// must stay in the file.
	MembersFile string

	// Probe overrides the liveness check (tests). It returns the peer's
	// observed load — total in-flight plus queued explain work, as
	// summed from /readyz admission counters — which Route uses to pick
	// the least-loaded alive owner. Default probes GET <url>/readyz; any
	// HTTP response counts as alive — a node shedding or degraded still
	// owns its shard, only transport-level failure marks it down — and a
	// response whose body does not parse simply reports load 0.
	Probe func(url string) (load int, err error)
}

// peerState tracks liveness and load for one remote node.
type peerState struct {
	node     Node
	alive    bool
	failures int       // consecutive probe failures
	lastSeen time.Time // last successful probe (or zero)
	lastErr  string
	load     int // in-flight + queued work reported by the last good probe
}

// PeerStatus is the exported liveness view of one member, as reported by
// /healthz.
type PeerStatus struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Self     bool      `json:"self,omitempty"`
	Alive    bool      `json:"alive"`
	Failures int       `json:"failures,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
	LastErr  string    `json:"last_error,omitempty"`
	// Load is the in-flight + queued explain work the peer reported on
	// its last successful probe; Route prefers the least-loaded owner.
	Load int `json:"load,omitempty"`
}

// Cluster is the membership + liveness + placement view for one node.
// All methods are safe for concurrent use. The probe loop never holds
// the cluster lock across network I/O: it snapshots peers, probes, then
// applies results.
type Cluster struct {
	cfg    Config
	client *http.Client

	mu      sync.RWMutex
	ring    *Ring
	self    Node
	peers   map[string]*peerState // remote members only
	fileErr string                // last members-file reload error, if any

	fileMod  time.Time
	fileSize int64

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New validates cfg and builds the cluster view. It does not start the
// probe loop; call Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self node id required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	c := &Cluster{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.ProbeTimeout},
		done:   make(chan struct{}),
	}
	if cfg.Probe == nil {
		c.cfg.Probe = c.httpProbe
	}
	if cfg.MembersFile != "" {
		nodes, mod, size, err := readMembersFile(cfg.MembersFile)
		if err != nil {
			return nil, err
		}
		cfg.Nodes, c.fileMod, c.fileSize = nodes, mod, size
	}
	if err := c.install(cfg.Nodes); err != nil {
		return nil, err
	}
	return c, nil
}

// install replaces the membership view. Caller must not hold c.mu.
func (c *Cluster) install(nodes []Node) error {
	ids := make([]string, 0, len(nodes))
	var self Node
	found := false
	for _, n := range nodes {
		ids = append(ids, n.ID)
		if n.ID == c.cfg.Self {
			self, found = n, true
		}
	}
	if !found {
		return fmt.Errorf("cluster: self %q not in membership %v", c.cfg.Self, ids)
	}
	ring, err := NewRing(c.cfg.Seed, c.cfg.VNodes, ids)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.peers
	c.ring = ring
	c.self = self
	c.peers = make(map[string]*peerState, len(nodes)-1)
	for _, n := range nodes {
		if n.ID == c.cfg.Self {
			continue
		}
		if prev, ok := old[n.ID]; ok && prev.node.URL == n.URL {
			c.peers[n.ID] = prev // keep liveness history across reloads
			continue
		}
		// New peers start alive: optimism avoids a routing blackout
		// until the first probe round lands.
		c.peers[n.ID] = &peerState{node: n, alive: true}
	}
	return nil
}

func readMembersFile(path string) ([]Node, time.Time, int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, time.Time{}, 0, fmt.Errorf("cluster: members file: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, time.Time{}, 0, fmt.Errorf("cluster: members file: %w", err)
	}
	var nodes []Node
	if err := json.Unmarshal(data, &nodes); err != nil {
		return nil, time.Time{}, 0, fmt.Errorf("cluster: members file %s: %w", path, err)
	}
	return nodes, fi.ModTime(), fi.Size(), nil
}

// ParsePeers parses the -peers flag form "id=url,id=url".
func ParsePeers(s string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		nodes = append(nodes, Node{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no peers parsed")
	}
	return nodes, nil
}

// Start launches the probe loop.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.tick()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it.
func (c *Cluster) Stop() {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
}

// tick runs one maintenance round: reload membership if the members file
// changed, then probe every remote peer in parallel.
func (c *Cluster) tick() {
	c.maybeReload()
	type probeResult struct {
		id   string
		load int
		err  error
	}
	c.mu.RLock()
	targets := make([]Node, 0, len(c.peers))
	for _, p := range c.peers {
		targets = append(targets, p.node)
	}
	probe := c.cfg.Probe
	c.mu.RUnlock()

	results := make(chan probeResult, len(targets))
	for _, n := range targets {
		go func(n Node) {
			load, err := probe(n.URL)
			results <- probeResult{id: n.ID, load: load, err: err}
		}(n)
	}
	now := time.Now()
	for range targets {
		r := <-results
		c.mu.Lock()
		if p, ok := c.peers[r.id]; ok {
			if r.err == nil {
				p.alive, p.failures, p.lastSeen, p.lastErr = true, 0, now, ""
				p.load = r.load
			} else {
				p.failures++
				p.lastErr = r.err.Error()
				if p.failures >= c.cfg.DownAfter {
					p.alive = false
				}
			}
		}
		c.mu.Unlock()
	}
}

func (c *Cluster) maybeReload() {
	if c.cfg.MembersFile == "" {
		return
	}
	fi, err := os.Stat(c.cfg.MembersFile)
	if err != nil {
		c.mu.Lock()
		c.fileErr = err.Error()
		c.mu.Unlock()
		return
	}
	c.mu.RLock()
	unchanged := fi.ModTime().Equal(c.fileMod) && fi.Size() == c.fileSize
	c.mu.RUnlock()
	if unchanged {
		return
	}
	nodes, mod, size, err := readMembersFile(c.cfg.MembersFile)
	if err == nil {
		err = c.install(nodes)
	}
	c.mu.Lock()
	if err != nil {
		c.fileErr = err.Error()
	} else {
		c.fileErr = ""
		c.fileMod, c.fileSize = mod, size
	}
	c.mu.Unlock()
}

// readyzLoad is the minimal slice of serve's /readyz reply the default
// probe decodes (this package cannot import serve — serve imports
// cluster): the per-model admission counters whose sum is the node's
// current explain load.
type readyzLoad struct {
	Models []struct {
		Inflight int `json:"inflight"`
		Waiting  int `json:"waiting"`
	} `json:"models"`
}

// httpProbe is the default liveness + load check: any HTTP response
// from <url>/readyz counts as alive (a shedding node still owns its
// shard), and the body's admission counters — in-flight plus queued
// across all models — become the peer's load. A body that fails to
// parse (older node, proxy error page) degrades gracefully to load 0
// rather than marking the peer down.
func (c *Cluster) httpProbe(url string) (int, error) {
	resp, err := c.client.Get(url + "/readyz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var rz readyzLoad
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rz); err != nil {
		return 0, nil
	}
	load := 0
	for _, m := range rz.Models {
		load += m.Inflight + m.Waiting
	}
	return load, nil
}

// Self returns this node's membership record.
func (c *Cluster) Self() Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.self
}

// Replication returns the effective owner count per model.
func (c *Cluster) Replication() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicationLocked()
}

func (c *Cluster) replicationLocked() int {
	r := c.cfg.Replication
	if n := len(c.ring.ids); r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Owners returns the nodes owning model, primary first, replication-many.
func (c *Cluster) Owners(model string) []Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ownersLocked(model)
}

func (c *Cluster) ownersLocked(model string) []Node {
	ids := c.ring.Owners(model, c.replicationLocked())
	out := make([]Node, 0, len(ids))
	for _, id := range ids {
		if id == c.self.ID {
			out = append(out, c.self)
		} else if p, ok := c.peers[id]; ok {
			out = append(out, p.node)
		}
	}
	return out
}

// Route decides how this node should handle a request for model: serve
// locally when self is an owner, proxy to the least-loaded alive owner
// otherwise (load is the in-flight + queued work each owner reported on
// its last probe; ties break in ring order, so equal-load routing
// matches the old first-alive behavior exactly), and fall back to local
// serving when every owner is down.
func (c *Cluster) Route(model string) (Node, RouteDecision) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := c.ring.Owners(model, c.replicationLocked())
	for _, id := range ids {
		if id == c.self.ID {
			return c.self, RouteLocal
		}
	}
	var best *peerState
	for _, id := range ids {
		if p, ok := c.peers[id]; ok && p.alive {
			if best == nil || p.load < best.load {
				best = p
			}
		}
	}
	if best != nil {
		return best.node, RouteProxy
	}
	return c.self, RouteFallback
}

// ReportFailure immediately marks a peer down after a proxy transport
// error, without waiting for the probe loop to notice.
func (c *Cluster) ReportFailure(id string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.peers[id]; ok {
		p.alive = false
		p.failures++
		if err != nil {
			p.lastErr = err.Error()
		}
	}
}

// Peers returns the liveness view of every member (self included,
// always alive), sorted by id.
func (c *Cluster) Peers() []PeerStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PeerStatus, 0, len(c.peers)+1)
	out = append(out, PeerStatus{ID: c.self.ID, URL: c.self.URL, Self: true, Alive: true})
	for _, p := range c.peers {
		out = append(out, PeerStatus{
			ID: p.node.ID, URL: p.node.URL,
			Alive: p.alive, Failures: p.failures,
			LastSeen: p.lastSeen, LastErr: p.lastErr,
			Load: p.load,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnersFor maps each of the given model names to its owner node ids,
// primary first — the ring-ownership view /healthz reports.
func (c *Cluster) OwnersFor(models []string) map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string, len(models))
	for _, m := range models {
		ids := c.ring.Owners(m, c.replicationLocked())
		out[m] = append([]string(nil), ids...)
	}
	return out
}

// FileError reports the last members-file reload error ("" when healthy).
func (c *Cluster) FileError() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.fileErr
}
