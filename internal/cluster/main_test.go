package cluster

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// Probe loops, sync loops and the e2e fleet's servers must all wind down
// when their tests finish — a leaked probe goroutine is a node that
// never stops dialing dead peers.
func TestMain(m *testing.M) { leakcheck.Main(m) }
