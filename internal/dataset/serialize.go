package dataset

import (
	"fmt"

	"nfvxai/internal/wire"
)

// datasetCodecVersion is bumped whenever the encoded layout changes.
const datasetCodecVersion = 1

// AppendWire encodes the dataset onto w (task, names, rows, targets) with
// floats bit-exact. Pipeline artifacts embed their frozen train/test
// splits this way so explanations after a reload are identical.
func (d *Dataset) AppendWire(w *wire.Writer) {
	w.U16(datasetCodecVersion)
	w.U8(uint8(d.Task))
	w.Strings(d.Names)
	w.F64Mat(d.X)
	w.F64s(d.Y)
}

// ReadWire decodes a dataset written by AppendWire. Row widths and the
// X/Y length pairing are validated so a corrupted artifact fails here
// rather than panicking inside training or explanation code.
func ReadWire(r *wire.Reader) (*Dataset, error) {
	if v := r.U16(); r.Err() == nil && v != datasetCodecVersion {
		return nil, fmt.Errorf("dataset: codec version %d, want %d", v, datasetCodecVersion)
	}
	d := &Dataset{
		Task:  Task(r.U8()),
		Names: r.Strings(),
		X:     r.F64Mat(),
		Y:     r.F64s(),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("dataset: decode: %d rows but %d targets: %w", len(d.X), len(d.Y), wire.ErrTruncated)
	}
	for i, row := range d.X {
		if len(row) != len(d.Names) {
			return nil, fmt.Errorf("dataset: decode: row %d width %d != %d features: %w",
				i, len(row), len(d.Names), wire.ErrTruncated)
		}
	}
	return d, nil
}
