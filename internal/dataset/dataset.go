// Package dataset implements the tabular data layer shared by the ML and
// XAI packages: named feature matrices with a target column, deterministic
// splits, feature scaling, CSV encode/decode, and the controlled synthetic
// injectors (spurious "Clever Hans" features, noise features) used by the
// model-auditing experiments.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Task discriminates the prediction target semantics.
type Task int

const (
	// Regression targets are real-valued.
	Regression Task = iota
	// Classification targets are binary labels in {0, 1}.
	Classification
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case Regression:
		return "regression"
	case Classification:
		return "classification"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Dataset is a feature matrix with named columns and a target vector.
// Rows of X and entries of Y correspond 1:1.
type Dataset struct {
	Names []string
	X     [][]float64
	Y     []float64
	Task  Task
}

// New returns an empty dataset with the given feature names.
func New(task Task, names ...string) *Dataset {
	return &Dataset{Names: append([]string(nil), names...), Task: task}
}

// Add appends one example. It panics if the row width does not match.
func (d *Dataset) Add(x []float64, y float64) {
	if len(x) != len(d.Names) {
		panic(fmt.Sprintf("dataset: row width %d != %d features", len(x), len(d.Names)))
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds deep copies of every example in other. The schemas must
// match exactly (same task, same feature names in the same order): a
// silent column mismatch would scramble features across sources, so it is
// an error, not a best-effort merge.
func (d *Dataset) Append(other *Dataset) error {
	if other == nil {
		return nil
	}
	if d.Task != other.Task {
		return fmt.Errorf("dataset: append task %v to %v", other.Task, d.Task)
	}
	if len(d.Names) != len(other.Names) {
		return fmt.Errorf("dataset: append %d features to %d", len(other.Names), len(d.Names))
	}
	for i, n := range other.Names {
		if d.Names[i] != n {
			return fmt.Errorf("dataset: append feature %d is %q, want %q", i, n, d.Names[i])
		}
	}
	for i, row := range other.X {
		d.X = append(d.X, append([]float64(nil), row...))
		d.Y = append(d.Y, other.Y[i])
	}
	return nil
}

// DropFront removes the oldest n examples in place (all of them when
// n >= Len). The backing arrays are compacted so long-running streaming
// accumulators do not pin evicted rows.
func (d *Dataset) DropFront(n int) {
	if n <= 0 {
		return
	}
	if n >= len(d.X) {
		d.X, d.Y = d.X[:0], d.Y[:0]
		return
	}
	k := copy(d.X, d.X[n:])
	for i := k; i < len(d.X); i++ {
		d.X[i] = nil
	}
	d.X = d.X[:k]
	copy(d.Y, d.Y[n:])
	d.Y = d.Y[:k]
}

// Tail returns a deep copy of the newest n examples (the whole dataset
// when n <= 0 or n >= Len) — the snapshot a streaming retrain job trains
// from while the accumulator keeps appending.
func (d *Dataset) Tail(n int) *Dataset {
	if n <= 0 || n > len(d.X) {
		n = len(d.X)
	}
	out := &Dataset{
		Names: append([]string(nil), d.Names...),
		Task:  d.Task,
		X:     make([][]float64, n),
		Y:     append([]float64(nil), d.Y[len(d.Y)-n:]...),
	}
	for i, row := range d.X[len(d.X)-n:] {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// NumFeatures returns the number of feature columns.
func (d *Dataset) NumFeatures() int { return len(d.Names) }

// FeatureIndex returns the column index of the named feature, or -1.
func (d *Dataset) FeatureIndex(name string) int {
	for i, n := range d.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Names: append([]string(nil), d.Names...),
		X:     make([][]float64, len(d.X)),
		Y:     append([]float64(nil), d.Y...),
		Task:  d.Task,
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// Column returns a copy of feature column j.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, len(d.X))
	for i, row := range d.X {
		out[i] = row[j]
	}
	return out
}

// Shuffle permutes examples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into train and test sets with the given
// train fraction, shuffling with rng first. The returned datasets share no
// storage with d.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("dataset: trainFrac must be in (0, 1)")
	}
	c := d.Clone()
	c.Shuffle(rng)
	cut := int(float64(c.Len()) * trainFrac)
	if cut == 0 {
		cut = 1
	}
	if cut == c.Len() {
		cut = c.Len() - 1
	}
	train = &Dataset{Names: append([]string(nil), c.Names...), Task: c.Task, X: c.X[:cut], Y: c.Y[:cut]}
	test = &Dataset{Names: append([]string(nil), c.Names...), Task: c.Task, X: c.X[cut:], Y: c.Y[cut:]}
	return train, test
}

// KFold returns k (train, test) pairs covering the dataset. The dataset is
// shuffled with rng before partitioning.
func (d *Dataset) KFold(rng *rand.Rand, k int) []struct{ Train, Test *Dataset } {
	if k < 2 || k > d.Len() {
		panic("dataset: invalid fold count")
	}
	c := d.Clone()
	c.Shuffle(rng)
	folds := make([]struct{ Train, Test *Dataset }, k)
	n := c.Len()
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := &Dataset{Names: c.Names, Task: c.Task}
		train := &Dataset{Names: c.Names, Task: c.Task}
		for i := 0; i < n; i++ {
			if i >= lo && i < hi {
				test.X = append(test.X, c.X[i])
				test.Y = append(test.Y, c.Y[i])
			} else {
				train.X = append(train.X, c.X[i])
				train.Y = append(train.Y, c.Y[i])
			}
		}
		folds[f] = struct{ Train, Test *Dataset }{train, test}
	}
	return folds
}

// SelectFeatures returns a new dataset restricted to the named features,
// in the given order. Unknown names panic.
func (d *Dataset) SelectFeatures(names ...string) *Dataset {
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.FeatureIndex(n)
		if j < 0 {
			panic("dataset: unknown feature " + n)
		}
		idx[i] = j
	}
	out := &Dataset{Names: append([]string(nil), names...), Task: d.Task, Y: append([]float64(nil), d.Y...)}
	out.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		nr := make([]float64, len(idx))
		for k, j := range idx {
			nr[k] = row[j]
		}
		out.X[i] = nr
	}
	return out
}

// DropFeatures returns a new dataset without the named features.
func (d *Dataset) DropFeatures(names ...string) *Dataset {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	var keep []string
	for _, n := range d.Names {
		if !drop[n] {
			keep = append(keep, n)
		}
	}
	return d.SelectFeatures(keep...)
}

// ClassBalance returns the fraction of positive labels for classification
// datasets.
func (d *Dataset) ClassBalance() float64 {
	if d.Len() == 0 {
		return 0
	}
	pos := 0
	for _, y := range d.Y {
		if y >= 0.5 {
			pos++
		}
	}
	return float64(pos) / float64(d.Len())
}

// InjectSpuriousFeature appends a feature column that leaks the target with
// the given strength on this dataset: value = strength*target' + (1-strength)*noise,
// where target' is the standardized target. Used to create "Clever Hans"
// conditions: inject into train only, so test accuracy collapses while the
// artifact dominates attributions. Returns the new feature's name.
func (d *Dataset) InjectSpuriousFeature(rng *rand.Rand, name string, strength float64) string {
	// Standardize the target so the leak has unit scale.
	var mean, sd float64
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(len(d.Y))
	for _, y := range d.Y {
		sd += (y - mean) * (y - mean)
	}
	sd /= float64(len(d.Y))
	if sd == 0 {
		sd = 1
	}
	sd = math.Sqrt(sd)
	d.Names = append(d.Names, name)
	for i := range d.X {
		z := (d.Y[i] - mean) / sd
		v := strength*z + (1-strength)*rng.NormFloat64()
		d.X[i] = append(d.X[i], v)
	}
	return name
}

// InjectNoiseFeature appends a pure-noise feature column; a sound
// attribution method must rank it near the bottom.
func (d *Dataset) InjectNoiseFeature(rng *rand.Rand, name string) string {
	d.Names = append(d.Names, name)
	for i := range d.X {
		d.X[i] = append(d.X[i], rng.NormFloat64())
	}
	return name
}
