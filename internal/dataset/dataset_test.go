package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample(task Task, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := New(task, "a", "b", "c")
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64() * 10, float64(rng.Intn(5))}
		y := x[0] + 0.5*x[1]
		if task == Classification {
			if y > 2.5 {
				y = 1
			} else {
				y = 0
			}
		}
		d.Add(x, y)
	}
	return d
}

func TestAddAndAccessors(t *testing.T) {
	d := New(Regression, "f1", "f2")
	d.Add([]float64{1, 2}, 3)
	if d.Len() != 1 || d.NumFeatures() != 2 {
		t.Fatalf("Len/NumFeatures wrong")
	}
	if d.FeatureIndex("f2") != 1 || d.FeatureIndex("nope") != -1 {
		t.Fatal("FeatureIndex wrong")
	}
	if got := d.Column(1); got[0] != 2 {
		t.Fatalf("Column = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on bad width")
			}
		}()
		d.Add([]float64{1}, 0)
	}()
}

func TestTaskString(t *testing.T) {
	if Regression.String() != "regression" || Classification.String() != "classification" {
		t.Fatal("Task.String")
	}
	if !strings.Contains(Task(9).String(), "9") {
		t.Fatal("unknown task string")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sample(Regression, 10, 1)
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[0] = 999
	if d.X[0][0] == 999 || d.Y[0] == 999 {
		t.Fatal("Clone shares storage")
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	d := sample(Regression, 100, 2)
	train, test := d.Split(rand.New(rand.NewSource(3)), 0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Mutating the split must not affect the original.
	train.X[0][0] = 12345
	found := false
	for _, row := range d.X {
		if row[0] == 12345 {
			found = true
		}
	}
	if found {
		t.Fatal("Split shares storage with original")
	}
}

func TestSplitPanics(t *testing.T) {
	d := sample(Regression, 10, 4)
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for frac %v", frac)
				}
			}()
			d.Split(rand.New(rand.NewSource(1)), frac)
		}()
	}
}

func TestKFoldPartition(t *testing.T) {
	d := sample(Regression, 53, 5)
	folds := d.KFold(rand.New(rand.NewSource(6)), 5)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != d.Len() {
			t.Fatalf("fold does not partition: %d + %d != %d", f.Train.Len(), f.Test.Len(), d.Len())
		}
	}
	if total != d.Len() {
		t.Fatalf("test folds cover %d of %d", total, d.Len())
	}
}

func TestSelectAndDropFeatures(t *testing.T) {
	d := sample(Regression, 5, 7)
	s := d.SelectFeatures("c", "a")
	if s.NumFeatures() != 2 || s.Names[0] != "c" || s.Names[1] != "a" {
		t.Fatalf("SelectFeatures names = %v", s.Names)
	}
	if s.X[2][1] != d.X[2][0] {
		t.Fatal("SelectFeatures reordering wrong")
	}
	dr := d.DropFeatures("b")
	if dr.NumFeatures() != 2 || dr.FeatureIndex("b") != -1 {
		t.Fatalf("DropFeatures = %v", dr.Names)
	}
}

func TestClassBalance(t *testing.T) {
	d := New(Classification, "x")
	d.Add([]float64{0}, 1)
	d.Add([]float64{0}, 0)
	d.Add([]float64{0}, 1)
	d.Add([]float64{0}, 0)
	if got := d.ClassBalance(); got != 0.5 {
		t.Fatalf("ClassBalance = %v", got)
	}
	if (New(Classification, "x")).ClassBalance() != 0 {
		t.Fatal("empty ClassBalance")
	}
}

func TestInjectSpuriousFeatureCorrelation(t *testing.T) {
	d := sample(Regression, 2000, 8)
	rng := rand.New(rand.NewSource(9))
	d.InjectSpuriousFeature(rng, "leak", 0.95)
	j := d.FeatureIndex("leak")
	if j != 3 {
		t.Fatalf("leak index = %d", j)
	}
	// Pearson between the leak column and Y must be very high.
	col := d.Column(j)
	r := pearson(col, d.Y)
	if r < 0.9 {
		t.Fatalf("leak correlation = %v want > 0.9", r)
	}
	// Strength 0 must be uncorrelated noise.
	d2 := sample(Regression, 2000, 8)
	d2.InjectSpuriousFeature(rng, "null", 0)
	if r := pearson(d2.Column(3), d2.Y); math.Abs(r) > 0.1 {
		t.Fatalf("null leak correlation = %v", r)
	}
}

func TestInjectNoiseFeature(t *testing.T) {
	d := sample(Regression, 500, 10)
	d.InjectNoiseFeature(rand.New(rand.NewSource(11)), "noise")
	if d.NumFeatures() != 4 || len(d.X[0]) != 4 {
		t.Fatal("noise column missing")
	}
	if r := pearson(d.Column(3), d.Y); math.Abs(r) > 0.15 {
		t.Fatalf("noise correlates with target: %v", r)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma, mb = ma/n, mb/n
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

func TestStandardScaler(t *testing.T) {
	d := sample(Regression, 300, 12)
	s := FitStandard(d)
	scaled := Apply(d, s)
	for j := 0; j < scaled.NumFeatures(); j++ {
		col := scaled.Column(j)
		var mean float64
		for _, v := range col {
			mean += v
		}
		mean /= float64(len(col))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean %v after standardize", j, mean)
		}
	}
	// Round trip.
	x := d.X[5]
	back := s.Inverse(s.Transform(x))
	for j := range x {
		if math.Abs(back[j]-x[j]) > 1e-9 {
			t.Fatalf("inverse transform mismatch at %d", j)
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	d := New(Regression, "const")
	for i := 0; i < 5; i++ {
		d.Add([]float64{7}, float64(i))
	}
	s := FitStandard(d)
	got := s.Transform([]float64{7})
	if got[0] != 0 {
		t.Fatalf("constant column transform = %v", got)
	}
}

func TestMinMaxScaler(t *testing.T) {
	d := sample(Regression, 300, 13)
	s := FitMinMax(d)
	scaled := Apply(d, s)
	for j := 0; j < scaled.NumFeatures(); j++ {
		for _, v := range scaled.Column(j) {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("minmax out of range: %v", v)
			}
		}
	}
	x := d.X[0]
	back := s.Inverse(s.Transform(x))
	for j := range x {
		if math.Abs(back[j]-x[j]) > 1e-9 {
			t.Fatalf("minmax inverse mismatch at %d", j)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(Classification, 50, 14)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, Classification)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("round trip sizes %d/%d", got.Len(), got.NumFeatures())
	}
	for i := range d.X {
		if got.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] mismatch", i)
		}
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] mismatch: %v vs %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"a,b\n1,2\n",         // last column not "target"
		"target\n1\n",        // no features
		"a,target\nx,2\n",    // bad float
		"a,target\n1\n",      // short row — csv reader catches this
		"a,target\n1,nope\n", // bad target
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), Regression); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		d := New(Regression, "x1", "x2")
		for i := 0; i < n; i++ {
			d.Add([]float64{rng.NormFloat64(), rng.NormFloat64() * 1e6}, rng.NormFloat64())
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, Regression)
		if err != nil || got.Len() != n {
			return false
		}
		for i := range d.X {
			if got.X[i][0] != d.X[i][0] || got.X[i][1] != d.X[i][1] || got.Y[i] != d.Y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySplitPreservesRows(t *testing.T) {
	// Every (x, y) pair in the original appears in train ∪ test.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		d := New(Regression, "v")
		for i := 0; i < n; i++ {
			d.Add([]float64{float64(i)}, float64(i)*2)
		}
		train, test := d.Split(rng, 0.7)
		seen := map[float64]bool{}
		for _, row := range train.X {
			seen[row[0]] = true
		}
		for _, row := range test.X {
			seen[row[0]] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSchemaCheck(t *testing.T) {
	d := sample(Regression, 5, 1)
	other := sample(Regression, 3, 2)
	if err := d.Append(other); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 {
		t.Fatalf("len %d after append", d.Len())
	}
	// Deep copy: mutating the source must not reach the destination.
	other.X[0][0] = 999
	if d.X[5][0] == 999 {
		t.Fatal("append aliased source rows")
	}
	if err := d.Append(nil); err != nil || d.Len() != 8 {
		t.Fatal("nil append should be a no-op")
	}
	// Task mismatch.
	if err := d.Append(sample(Classification, 2, 3)); err == nil {
		t.Fatal("task mismatch accepted")
	}
	// Width mismatch.
	if err := d.Append(New(Regression, "a", "b")); err == nil {
		t.Fatal("width mismatch accepted")
	}
	// Name mismatch.
	renamed := sample(Regression, 2, 4)
	renamed.Names[2] = "zzz"
	if err := d.Append(renamed); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestDropFrontAndTail(t *testing.T) {
	d := New(Regression, "x")
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	d.DropFront(3)
	if d.Len() != 7 || d.X[0][0] != 3 || d.Y[0] != 3 {
		t.Fatalf("after DropFront(3): len=%d first=%v", d.Len(), d.X[0])
	}
	d.DropFront(0)
	if d.Len() != 7 {
		t.Fatal("DropFront(0) changed the dataset")
	}
	tail := d.Tail(2)
	if tail.Len() != 2 || tail.X[0][0] != 8 || tail.Y[1] != 9 {
		t.Fatalf("tail %v %v", tail.X, tail.Y)
	}
	// Tail is a deep copy.
	tail.X[0][0] = -1
	if d.X[5][0] == -1 {
		t.Fatal("Tail aliased rows")
	}
	if all := d.Tail(0); all.Len() != 7 {
		t.Fatalf("Tail(0) len %d", all.Len())
	}
	d.DropFront(100)
	if d.Len() != 0 {
		t.Fatal("DropFront past end should empty the dataset")
	}
}

// TestCSVRoundTripQuotedNames locks in proper CSV quoting: feature names
// containing commas, quotes and newlines survive WriteCSV → ReadCSV.
func TestCSVRoundTripQuotedNames(t *testing.T) {
	d := New(Regression, `rate,per_sec`, `q"uoted`, "multi\nline", " leading_space")
	d.Add([]float64{1, 2, 3, 4}, 5)
	d.Add([]float64{-1.5, 0, 2.25e-3, 1e9}, -0.5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, Regression)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFeatures() != 4 || got.Len() != 2 {
		t.Fatalf("shape (%d,%d)", got.Len(), got.NumFeatures())
	}
	for j, n := range d.Names {
		if got.Names[j] != n {
			t.Fatalf("name %d: %q != %q", j, got.Names[j], n)
		}
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("cell (%d,%d): %v != %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] {
			t.Fatalf("target %d: %v != %v", i, got.Y[i], d.Y[i])
		}
	}
	// A non-final feature literally named "target" must also survive —
	// only the final column is the target.
	d2 := New(Regression, "target", "other")
	d2.Add([]float64{1, 2}, 3)
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, d2); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadCSV(&buf2, Regression)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Names[0] != "target" || got2.Y[0] != 3 {
		t.Fatalf("round trip %v %v", got2.Names, got2.Y)
	}
}
