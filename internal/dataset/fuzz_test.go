package dataset

import (
	"testing"

	"nfvxai/internal/wire"
)

// FuzzReadWire feeds hostile bytes to the dataset wire decoder. Contract:
// arbitrary input is either a typed error or a structurally consistent
// dataset (rows match targets, every row matches the schema width) —
// never a panic, never an unbounded allocation. Seeded with real encoded
// datasets so mutations explore counts and row widths, not just the
// version check.
func FuzzReadWire(f *testing.F) {
	for _, seed := range []int64{1, 2} {
		for _, task := range []Task{Regression, Classification} {
			d := sample(task, 12, seed)
			var w wire.Writer
			d.AppendWire(&w)
			f.Add(w.Bytes())
			f.Add(w.Bytes()[:len(w.Bytes())/2])
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		d, err := ReadWire(r)
		if err != nil {
			return
		}
		if len(d.X) != len(d.Y) {
			t.Fatalf("decode accepted %d rows with %d targets", len(d.X), len(d.Y))
		}
		for i, row := range d.X {
			if len(row) != len(d.Names) {
				t.Fatalf("decode accepted row %d width %d against %d features", i, len(row), len(d.Names))
			}
		}
		// An accepted dataset must round-trip.
		var w wire.Writer
		d.AppendWire(&w)
		if _, err := ReadWire(wire.NewReader(w.Bytes())); err != nil {
			t.Fatalf("accepted dataset does not re-encode: %v", err)
		}
	})
}
