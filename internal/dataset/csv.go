package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the dataset with a header row; the target is written as
// the final column named "target".
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), d.Names...), "target")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a dataset written by WriteCSV. The final column must be
// named "target".
func ReadCSV(r io.Reader, task Task) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: need at least one feature and a target, got %d columns", len(header))
	}
	if header[len(header)-1] != "target" {
		return nil, fmt.Errorf("dataset: final column is %q, want \"target\"", header[len(header)-1])
	}
	d := New(task, header[:len(header)-1]...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(rec)-1)
		for j := range row {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, j, err)
			}
			row[j] = v
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d, nil
}
