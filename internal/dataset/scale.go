package dataset

import "math"

// Scaler transforms feature vectors; fitted on training data and applied to
// train and test alike so no test statistics leak into training.
type Scaler interface {
	// Transform maps a raw feature vector to scaled space (new slice).
	Transform(x []float64) []float64
	// Inverse maps a scaled vector back to raw space (new slice).
	Inverse(x []float64) []float64
}

// StandardScaler centers each feature to zero mean and unit variance.
type StandardScaler struct {
	Mean, Std []float64
}

// FitStandard fits a StandardScaler on d. Zero-variance columns get Std 1
// so they map to a constant rather than NaN.
func FitStandard(d *Dataset) *StandardScaler {
	p := d.NumFeatures()
	s := &StandardScaler{Mean: make([]float64, p), Std: make([]float64, p)}
	n := float64(d.Len())
	if n == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform implements Scaler.
func (s *StandardScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Inverse implements Scaler.
func (s *StandardScaler) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = v*s.Std[j] + s.Mean[j]
	}
	return out
}

// MinMaxScaler maps each feature to [0, 1] based on the fitted range.
type MinMaxScaler struct {
	Min, Max []float64
}

// FitMinMax fits a MinMaxScaler on d. Constant columns map to 0.
func FitMinMax(d *Dataset) *MinMaxScaler {
	p := d.NumFeatures()
	s := &MinMaxScaler{Min: make([]float64, p), Max: make([]float64, p)}
	for j := 0; j < p; j++ {
		s.Min[j] = math.Inf(1)
		s.Max[j] = math.Inf(-1)
	}
	for _, row := range d.X {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	if d.Len() == 0 {
		for j := 0; j < p; j++ {
			s.Min[j], s.Max[j] = 0, 1
		}
	}
	return s
}

// Transform implements Scaler.
func (s *MinMaxScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		span := s.Max[j] - s.Min[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - s.Min[j]) / span
	}
	return out
}

// Inverse implements Scaler.
func (s *MinMaxScaler) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = v*(s.Max[j]-s.Min[j]) + s.Min[j]
	}
	return out
}

// Apply returns a copy of d with every row passed through the scaler.
func Apply(d *Dataset, s Scaler) *Dataset {
	out := d.Clone()
	for i, row := range out.X {
		out.X[i] = s.Transform(row)
	}
	return out
}
