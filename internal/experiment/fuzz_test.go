package experiment

import (
	"encoding/json"
	"testing"

	"nfvxai/internal/core"
)

// FuzzParseSpec hardens every spec-decoding surface an operator (or the
// HTTP API) can feed: experiment sweep specs and scenario specs, both
// JSON. Contract: arbitrary bytes either fail Validate with a typed
// error or produce a spec whose Validate/Compile path cannot panic —
// the experiment runner trusts validated specs completely (bounded cell
// counts, registered names), so Validate is where hostility must stop.
// Seeded with real marshaled specs so mutations explore field values,
// not JSON syntax.
func FuzzParseSpec(f *testing.F) {
	sweep := Spec{
		Name:      "fuzz-seed",
		Scenarios: []string{"web"},
		Models:    []string{"linear", "cart"},
		Methods:   []string{"perm"},
		Targets:   []string{"util"},
		Hours:     0.5,
		Seed:      7,
	}
	if b, err := json.Marshal(sweep); err == nil {
		f.Add(b)
	}
	for _, sc := range core.NewScenarioRegistry().List() {
		if b, err := json.Marshal(sc); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"scenarios":["web"],"models":["rf"],"methods":["kernelshap"],"workers":-1}`))
	f.Add([]byte(`{"name":"x","groups":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		catalog := core.NewScenarioRegistry()

		var sp Spec
		if err := json.Unmarshal(data, &sp); err == nil {
			sp = sp.WithDefaults()
			_ = sp.Cells()
			if err := sp.Validate(catalog); err == nil {
				// A validated sweep must compile into a bounded plan.
				plan, err := Compile(sp, catalog)
				if err != nil {
					t.Fatalf("validated spec failed to compile: %v", err)
				}
				if len(plan.Cells) > MaxCells {
					t.Fatalf("validated spec compiled to %d cells (max %d)", len(plan.Cells), MaxCells)
				}
			}
		}

		var sc core.ScenarioSpec
		if err := json.Unmarshal(data, &sc); err == nil {
			if err := sc.Validate(); err == nil {
				if _, err := sc.Compile(); err != nil {
					t.Fatalf("validated scenario spec failed to compile: %v", err)
				}
			}
		}
	})
}
