package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/xai"
)

// sweepSpec is the acceptance-criteria sweep: 2 scenarios × 3 model
// kinds × 2 methods = 12 cells on a short simulation.
func sweepSpec() Spec {
	return Spec{
		Name:           "paper-sweep",
		Scenarios:      []string{"web", "nat"},
		Models:         []string{"linear", "cart", "rf"},
		Methods:        []string{"kernelshap", "treeshap"},
		Targets:        []string{"util"},
		Hours:          0.25,
		Seed:           7,
		Samples:        3,
		ShapSamples:    64,
		DeletionTrials: 3,
	}
}

func TestCompile(t *testing.T) {
	plan, err := Compile(sweepSpec(), core.NewScenarioRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Datasets) != 2 || len(plan.Pipelines) != 6 || len(plan.Cells) != 12 {
		t.Fatalf("plan = %d datasets, %d pipelines, %d cells", len(plan.Datasets), len(plan.Pipelines), len(plan.Cells))
	}
	// Dependency indices are in range and shared: 3 pipelines per dataset,
	// 2 cells per pipeline.
	perDS := map[int]int{}
	for _, pu := range plan.Pipelines {
		if pu.Dataset < 0 || pu.Dataset >= len(plan.Datasets) {
			t.Fatalf("pipeline dataset index %d", pu.Dataset)
		}
		perDS[pu.Dataset]++
	}
	for _, n := range perDS {
		if n != 3 {
			t.Fatalf("pipelines per dataset = %d", n)
		}
	}
	perPL := map[int]int{}
	for _, cu := range plan.Cells {
		perPL[cu.Pipeline]++
	}
	for _, n := range perPL {
		if n != 2 {
			t.Fatalf("cells per pipeline = %d", n)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	reg := core.NewScenarioRegistry()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown scenario", func(s *Spec) { s.Scenarios = []string{"mars"} }, "scenario"},
		{"unknown model", func(s *Spec) { s.Models = []string{"transformer"} }, "unknown model"},
		{"unknown method", func(s *Spec) { s.Methods = []string{"ouija"} }, "unknown explanation method"},
		{"global method", func(s *Spec) { s.Methods = []string{"pdp"} }, "global"},
		{"unknown target", func(s *Spec) { s.Targets = []string{"happiness"} }, "unknown target"},
		{"empty", func(s *Spec) { s.Models = nil }, "at least one"},
		{"duplicate", func(s *Spec) { s.Models = []string{"cart", "cart"} }, "duplicate"},
		{"too many samples", func(s *Spec) { s.Samples = MaxSamples + 1 }, "samples"},
		{"hours", func(s *Spec) { s.Hours = 1e9 }, "hours"},
	}
	for _, tc := range cases {
		sp := sweepSpec()
		tc.mutate(&sp)
		err := sp.Validate(reg)
		//lint:allow errcmp asserting the message NAMES the bad field; no per-field sentinel exists
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := sweepSpec().Validate(reg); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestRunTwelveCellSweepReproducible is the acceptance sweep: every cell
// completes (treeshap×linear is a legitimate capability skip), metrics
// are populated, and a second run under the same seed reproduces every
// metric exactly.
func TestRunTwelveCellSweepReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	run := func() *Matrix {
		var r Runner
		var progress []float64
		var mu sync.Mutex
		m, err := r.Run(context.Background(), sweepSpec(), func(f float64) {
			mu.Lock()
			progress = append(progress, f)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(progress) != 2+6+12 {
			t.Fatalf("progress ticks = %d, want 20", len(progress))
		}
		if last := progress[len(progress)-1]; math.Abs(last-1) > 1e-9 {
			t.Fatalf("final progress = %v", last)
		}
		return m
	}
	m1 := run()
	if len(m1.Cells) != 12 {
		t.Fatalf("cells = %d", len(m1.Cells))
	}
	evaluated, skipped := 0, 0
	for _, c := range m1.Cells {
		if c.Error != "" {
			t.Errorf("cell %s/%s/%s/%s failed: %s", c.Scenario, c.Target, c.Model, c.Method, c.Error)
			continue
		}
		if c.Skipped {
			// treeshap only supports additive tree ensembles; linear cells
			// skip.
			if c.Method != "treeshap" || c.Model != "linear" {
				t.Errorf("unexpected skip: %+v", c)
			}
			skipped++
			continue
		}
		evaluated++
		if c.N != 3 || c.MeanDeletionAUC == nil || c.MeanDeletionGap == nil {
			t.Errorf("cell %+v missing metrics", c)
		}
		if c.MeanAdditivityErr == nil {
			t.Errorf("additive method %s missing additivity", c.Method)
		} else if c.Method == "treeshap" && *c.MeanAdditivityErr > 1e-9 {
			t.Errorf("treeshap additivity %v", *c.MeanAdditivityErr)
		}
		if c.MeanLatencyMs <= 0 {
			t.Errorf("cell %s/%s latency = %v", c.Model, c.Method, c.MeanLatencyMs)
		}
	}
	if skipped != 2 || evaluated != 10 {
		t.Fatalf("evaluated %d, skipped %d (want 10/2)", evaluated, skipped)
	}
	for _, mr := range m1.Models {
		if mr.Error != "" {
			t.Errorf("model %s/%s failed: %s", mr.Scenario, mr.Model, mr.Error)
		}
		if mr.R2 == nil {
			t.Errorf("model %s/%s missing score", mr.Scenario, mr.Model)
		}
	}

	// Reproducibility: identical spec + seed → identical metric values
	// (latency and elapsed excluded — they are wall-clock).
	m2 := run()
	for i := range m1.Cells {
		a, b := m1.Cells[i], m2.Cells[i]
		if a.Skipped != b.Skipped || a.Error != b.Error {
			t.Fatalf("cell %d lifecycle differs", i)
		}
		if !eqMetric(a.MeanAdditivityErr, b.MeanAdditivityErr) ||
			!eqMetric(a.MeanDeletionAUC, b.MeanDeletionAUC) ||
			!eqMetric(a.MeanDeletionGap, b.MeanDeletionGap) {
			t.Fatalf("cell %d (%s/%s/%s) metrics not reproducible:\n%+v\n%+v",
				i, a.Scenario, a.Model, a.Method, a, b)
		}
	}

	// The matrix renders and serializes.
	table := m1.Table()
	if !strings.Contains(table, "web/util") || !strings.Contains(table, "treeshap") {
		t.Errorf("table missing content:\n%s", table)
	}
	if _, err := json.Marshal(m1); err != nil {
		t.Fatal(err)
	}
}

func eqMetric(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || math.Float64bits(*a) == math.Float64bits(*b)
}

// TestRunTwoCellSpec is the small race-friendly smoke CI runs under
// -race: 1 scenario × 2 models × 1 method with a single worker vs many.
func TestRunTwoCellSpec(t *testing.T) {
	sp := Spec{
		Scenarios:      []string{"web"},
		Models:         []string{"linear", "cart"},
		Methods:        []string{"kernelshap"},
		Hours:          0.2,
		Seed:           3,
		Samples:        2,
		ShapSamples:    32,
		DeletionTrials: 2,
	}
	one := Runner{Workers: 1}
	m1, err := one.Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	many := Runner{Workers: 8}
	m2, err := many.Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Cells) != 2 || len(m2.Cells) != 2 {
		t.Fatalf("cells = %d/%d", len(m1.Cells), len(m2.Cells))
	}
	// Worker count must not change the numbers.
	for i := range m1.Cells {
		if !eqMetric(m1.Cells[i].MeanDeletionAUC, m2.Cells[i].MeanDeletionAUC) {
			t.Fatalf("cell %d differs across worker counts", i)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var r Runner
	if _, err := r.Run(ctx, sweepSpec(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestUnsupportedCombinationsAreSkipsNotErrors pins the capability
// semantics the sweep relies on: intgrad×cart is a skip.
func TestUnsupportedCombinationsAreSkipsNotErrors(t *testing.T) {
	sp := Spec{
		Scenarios:      []string{"web"},
		Models:         []string{"cart"},
		Methods:        []string{"intgrad"},
		Hours:          0.2,
		Seed:           1,
		Samples:        1,
		ShapSamples:    16,
		DeletionTrials: 2,
	}
	var r Runner
	m, err := r.Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cells[0]
	if !c.Skipped || c.Error != "" {
		t.Fatalf("cell = %+v, want skipped", c)
	}
	//lint:allow errcmp Cell.Reason is a rendered string field, not an error value
	if !strings.Contains(c.Reason, xai.ErrUnsupportedModel.Error()) {
		t.Errorf("reason = %q", c.Reason)
	}
}
