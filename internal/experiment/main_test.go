package experiment

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// TestMain fails the package when sweep worker goroutines outlive the
// tests — Runner.Run must join its pool even on cancellation.
func TestMain(m *testing.M) { leakcheck.Main(m) }
