// The plan executor: a bounded worker pool walks the dependency graph —
// datasets first, then the pipelines that train on them, then the
// method-evaluation cells — with no stage barriers: a cell runs as soon
// as its own pipeline is trained, even while other scenarios are still
// simulating. Failures are recorded per unit (and inherited by dependent
// units) so one bad cell never aborts the sweep.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/registry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/evalx"
)

// ModelResult is one trained pipeline of the sweep with its test-set
// accuracy — the paper's Tables 1/2 axis of the matrix.
type ModelResult struct {
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Model    string `json:"model"`
	Error    string `json:"error,omitempty"`

	Rows     int `json:"rows,omitempty"`
	Features int `json:"features,omitempty"`
	// TrainSeconds is wall time for the model fit (excluded from
	// reproducibility guarantees, like every latency in the matrix).
	TrainSeconds float64 `json:"train_seconds,omitempty"`
	// Regression scores (nil for classification targets).
	MAE *float64 `json:"mae,omitempty"`
	R2  *float64 `json:"r2,omitempty"`
	// Classification scores (nil for regression targets).
	Accuracy *float64 `json:"accuracy,omitempty"`
	F1       *float64 `json:"f1,omitempty"`
	AUC      *float64 `json:"auc,omitempty"`
}

// CellResult is one scenario×target×model×method cell of the result
// matrix — the paper's method-comparison axis.
type CellResult struct {
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Model    string `json:"model"`
	Method   string `json:"method"`

	// Skipped marks method×model capability mismatches (with Reason);
	// Error records evaluation failures. Both leave the metrics nil.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Error   string `json:"error,omitempty"`

	// N is how many test instances were explained.
	N int `json:"n,omitempty"`
	// MeanAdditivityErr is mean |base + Σφ − f(x)| (additive methods
	// only — for rule/delta methods the quantity is meaningless).
	MeanAdditivityErr *float64 `json:"mean_additivity_err,omitempty"`
	// MeanDeletionAUC is the mean attribution-guided deletion AUC; lower
	// is a more faithful ranking.
	MeanDeletionAUC *float64 `json:"mean_deletion_auc,omitempty"`
	// MeanDeletionGap is the faithfulness gap: random-order deletion AUC
	// minus guided AUC, averaged over instances — positive means the
	// method beats chance.
	MeanDeletionGap *float64 `json:"mean_deletion_gap,omitempty"`
	// MeanLatencyMs is the mean wall time per explanation.
	MeanLatencyMs float64 `json:"mean_latency_ms,omitempty"`
}

// Matrix is the persisted result of one experiment run.
type Matrix struct {
	Spec   Spec          `json:"spec"`
	Models []ModelResult `json:"models"`
	Cells  []CellResult  `json:"cells"`
	// ElapsedSec is the whole sweep's wall time.
	ElapsedSec float64 `json:"elapsed_sec"`
}

// Runner executes compiled plans.
type Runner struct {
	// Scenarios resolves scenario names; nil uses a fresh builtin catalog.
	Scenarios *core.ScenarioRegistry
	// Workers overrides the spec's worker bound when > 0.
	Workers int
}

// Run compiles and executes the spec, reporting progress in [0, 1] as
// units complete (progress may be nil). Per-unit failures are recorded
// in the matrix; the returned error is non-nil only for an invalid spec
// or a cancelled context.
func (r *Runner) Run(ctx context.Context, sp Spec, progress func(float64)) (*Matrix, error) {
	scenarios := r.Scenarios
	if scenarios == nil {
		scenarios = core.NewScenarioRegistry()
	}
	plan, err := Compile(sp, scenarios)
	if err != nil {
		return nil, err
	}
	sp = plan.Spec
	workers := sp.Workers
	if r.Workers > 0 {
		workers = r.Workers
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	m := &Matrix{Spec: sp, Models: make([]ModelResult, len(plan.Pipelines)), Cells: make([]CellResult, len(plan.Cells))}
	datasets := make([]*dataset.Dataset, len(plan.Datasets))
	dsErrs := make([]error, len(plan.Datasets))
	pipelines := make([]*core.Pipeline, len(plan.Pipelines))

	// cellsOf[i] lists the cell indices depending on pipeline i;
	// pipesOf[i] the pipeline indices depending on dataset i.
	pipesOf := make([][]int, len(plan.Datasets))
	for i, pu := range plan.Pipelines {
		pipesOf[pu.Dataset] = append(pipesOf[pu.Dataset], i)
	}
	cellsOf := make([][]int, len(plan.Pipelines))
	for i, cu := range plan.Cells {
		cellsOf[cu.Pipeline] = append(cellsOf[cu.Pipeline], i)
		pu := plan.Pipelines[cu.Pipeline]
		du := plan.Datasets[pu.Dataset]
		m.Cells[i] = CellResult{Scenario: du.Scenario, Target: du.Target, Model: pu.Model, Method: cu.Method}
	}
	for i, pu := range plan.Pipelines {
		du := plan.Datasets[pu.Dataset]
		m.Models[i] = ModelResult{Scenario: du.Scenario, Target: du.Target, Model: pu.Model}
	}

	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, workers)
		done atomic.Int64
	)
	total := float64(plan.Units())
	tick := func() {
		if progress != nil {
			progress(float64(done.Add(1)) / total)
		}
	}
	// schedule runs f on the bounded pool unless the context is already
	// cancelled (cancelled units still tick so progress stays monotone
	// and meaningful).
	var schedule func(f func())
	schedule = func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				tick()
				return
			}
			defer func() { <-sem }()
			f()
		}()
	}

	runCells := func(pi int) {
		for _, ci := range cellsOf[pi] {
			ci := ci
			schedule(func() {
				defer tick()
				r.runCell(ctx, sp, pipelines[pi], &m.Cells[ci])
			})
		}
	}
	runPipelines := func(di int) {
		for _, pi := range pipesOf[di] {
			pi := pi
			schedule(func() {
				res := &m.Models[pi]
				if dsErrs[di] != nil {
					res.Error = fmt.Sprintf("dataset: %v", dsErrs[di])
					for _, ci := range cellsOf[pi] {
						m.Cells[ci].Error = res.Error
						tick()
					}
					tick()
					return
				}
				kind, _ := registry.ModelKindFor(plan.Pipelines[pi].Model)
				t0 := time.Now()
				p, err := core.NewPipeline(kind, datasets[di], sp.Seed)
				res.TrainSeconds = time.Since(t0).Seconds()
				if err != nil {
					res.Error = err.Error()
					for _, ci := range cellsOf[pi] {
						m.Cells[ci].Error = fmt.Sprintf("pipeline: %v", err)
						tick()
					}
					tick()
					return
				}
				p.ShapSamples = sp.ShapSamples
				scoreModel(p, res)
				pipelines[pi] = p
				tick()
				runCells(pi)
			})
		}
	}
	for di := range plan.Datasets {
		di := di
		schedule(func() {
			du := plan.Datasets[di]
			sc, err := scenarios.Scenario(du.Scenario)
			if err == nil {
				target, terr := registry.TargetFor(du.Target)
				if terr != nil {
					err = terr
				} else {
					datasets[di], err = sc.GenerateDataset(sp.Seed, sp.Hours, target)
				}
			}
			dsErrs[di] = err
			tick()
			runPipelines(di)
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.ElapsedSec = time.Since(start).Seconds()
	return m, nil
}

// scoreModel fills the test-set accuracy fields.
func scoreModel(p *core.Pipeline, res *ModelResult) {
	res.Rows = p.Train.Len() + p.Test.Len()
	res.Features = p.Train.NumFeatures()
	if p.Train.Task == dataset.Classification {
		rep := p.EvaluateClassification()
		res.Accuracy, res.F1, res.AUC = &rep.Accuracy, &rep.F1, &rep.AUC
	} else {
		rep := p.EvaluateRegression()
		res.MAE, res.R2 = &rep.MAE, &rep.R2
	}
}

// runCell evaluates one method against one trained pipeline: explain the
// first N test instances and aggregate additivity, deletion and latency
// metrics. Capability mismatches are recorded as skips.
func (r *Runner) runCell(ctx context.Context, sp Spec, p *core.Pipeline, res *CellResult) {
	if p == nil {
		if res.Error == "" {
			res.Error = "pipeline unavailable"
		}
		return
	}
	opts := xai.Options{Samples: sp.ShapSamples, Seed: sp.Seed}
	e, method, err := p.ExplainerFor(res.Method, opts)
	if err != nil {
		if errors.Is(err, xai.ErrUnsupportedModel) {
			res.Skipped, res.Reason = true, err.Error()
		} else {
			res.Error = err.Error()
		}
		return
	}
	n := sp.Samples
	if n > p.Test.Len() {
		n = p.Test.Len()
	}
	caps, _ := xai.LookupMethod(method)
	var (
		addSum, aucSum, gapSum float64
		latSum                 time.Duration
	)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			res.Error = err.Error()
			return
		}
		x := p.Test.X[i]
		t0 := time.Now()
		attr, err := e.Explain(ctx, x)
		latSum += time.Since(t0)
		if err != nil {
			res.Error = fmt.Sprintf("instance %d: %v", i, err)
			return
		}
		if caps.Caps.Additive {
			addSum += attr.AdditivityError()
		}
		curve, err := evalx.Deletion(p.Model, x, attr.Ranking(), p.Background)
		if err != nil {
			res.Error = fmt.Sprintf("deletion %d: %v", i, err)
			return
		}
		aucSum += curve.AUC()
		gap, err := evalx.DeletionGap(p.Model, x, attr, p.Background, sp.DeletionTrials, sp.Seed+int64(i))
		if err != nil {
			res.Error = fmt.Sprintf("deletion gap %d: %v", i, err)
			return
		}
		gapSum += gap
	}
	if n == 0 {
		res.Error = "no test instances"
		return
	}
	res.N = n
	fn := float64(n)
	if caps.Caps.Additive {
		v := addSum / fn
		res.MeanAdditivityErr = &v
	}
	auc := aucSum / fn
	gap := gapSum / fn
	res.MeanDeletionAUC = &auc
	res.MeanDeletionGap = &gap
	res.MeanLatencyMs = latSum.Seconds() * 1000 / fn
}

// Table renders the matrix as the paper-style method-comparison table,
// one block per scenario×target: model accuracy rows, then per-method
// explanation metrics.
func (m *Matrix) Table() string {
	var sb sortedBlocks
	for i := range m.Cells {
		c := &m.Cells[i]
		sb.add(c.Scenario + "/" + c.Target)
	}
	var out []string
	for _, block := range sb.keys {
		out = append(out, fmt.Sprintf("=== %s (%gh, seed %d) ===", block, m.Spec.Hours, m.Spec.Seed))
		out = append(out, fmt.Sprintf("%-8s %-14s %10s %12s %12s %12s %10s",
			"model", "method", "score", "additivity", "del-AUC", "del-gap", "ms/expl"))
		for i := range m.Cells {
			c := &m.Cells[i]
			if c.Scenario+"/"+c.Target != block {
				continue
			}
			score := m.scoreFor(c.Scenario, c.Target, c.Model)
			switch {
			case c.Skipped:
				out = append(out, fmt.Sprintf("%-8s %-14s %10s %12s", c.Model, c.Method, score, "(skipped)"))
			case c.Error != "":
				out = append(out, fmt.Sprintf("%-8s %-14s %10s %12s", c.Model, c.Method, score, "(error)"))
			default:
				out = append(out, fmt.Sprintf("%-8s %-14s %10s %12s %12s %12s %10.2f",
					c.Model, c.Method, score, fmtMetric(c.MeanAdditivityErr, "%.2e"),
					fmtMetric(c.MeanDeletionAUC, "%.4f"), fmtMetric(c.MeanDeletionGap, "%.4f"),
					c.MeanLatencyMs))
			}
		}
	}
	return joinLines(out)
}

// scoreFor renders the model's headline accuracy for table rows.
func (m *Matrix) scoreFor(scenario, target, model string) string {
	for i := range m.Models {
		r := &m.Models[i]
		if r.Scenario == scenario && r.Target == target && r.Model == model {
			switch {
			case r.R2 != nil:
				return fmt.Sprintf("R2=%.3f", *r.R2)
			case r.AUC != nil:
				return fmt.Sprintf("AUC=%.3f", *r.AUC)
			case r.Error != "":
				return "(failed)"
			}
		}
	}
	return "-"
}

func fmtMetric(v *float64, format string) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf(format, *v)
}

// sortedBlocks is an insertion-ordered string set.
type sortedBlocks struct{ keys []string }

func (s *sortedBlocks) add(k string) {
	i := sort.SearchStrings(s.keys, k)
	if i < len(s.keys) && s.keys[i] == k {
		return
	}
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = k
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
