// Package experiment implements the declarative experiment runner: a
// JSON ExperimentSpec sweeping scenarios × model kinds × explainer
// methods (× prediction targets) compiles into a dependency-aware plan —
// one dataset per scenario×target, one trained pipeline per
// scenario×target×model, one evaluation cell per pipeline×method — that
// executes with bounded parallelism and emits a result matrix of
// explanation-quality metrics (additivity error, deletion AUC,
// deletion gap vs random, latency) per cell. This reproduces the source
// paper's core contribution — the systematic comparison of explanation
// methods across NFV workloads — as a single reproducible artifact.
package experiment

import (
	"fmt"
	"runtime"
	"strings"

	"nfvxai/internal/core"
	"nfvxai/internal/registry"
	"nfvxai/internal/xai"
)

// Bounds on the work one spec may request; a sweep is submitted over
// HTTP, so a single request must not be able to enqueue unbounded
// training.
const (
	// MaxCells caps the scenario×target×model×method cross product.
	MaxCells = 512
	// MaxSamples caps the instances explained per cell.
	MaxSamples = 256
	// MaxDeletionTrials caps the random-order baselines per instance.
	MaxDeletionTrials = 50
)

// Spec is the declarative experiment: the cross product of scenarios,
// model kinds, explanation methods and prediction targets, with shared
// seeds and sample budgets. Zero-valued fields take defaults
// (WithDefaults documents them).
type Spec struct {
	// Name labels the experiment in reports and persisted results.
	Name string `json:"name,omitempty"`
	// Scenarios are registered scenario names or aliases ("web", "nat",
	// or anything registered at runtime).
	Scenarios []string `json:"scenarios"`
	// Models are zoo kinds: linear|cart|rf|gbt|mlp.
	Models []string `json:"models"`
	// Methods are registered *local* explanation methods ("treeshap",
	// "kernelshap", "lime", ...). Method×model capability mismatches
	// (e.g. treeshap×mlp) become skipped cells, not errors — a sweep
	// over heterogeneous models is the point.
	Methods []string `json:"methods"`
	// Targets are prediction targets: util|latency|violation (default
	// ["util"]).
	Targets []string `json:"targets,omitempty"`
	// Hours is virtual telemetry hours per dataset (default 2).
	Hours float64 `json:"hours,omitempty"`
	// Seed drives simulation, training, explainer sampling and the
	// random deletion baselines; equal (Spec, Seed) reproduce equal
	// metric values.
	Seed int64 `json:"seed,omitempty"`
	// Samples is how many test instances each cell explains (default 8).
	Samples int `json:"samples,omitempty"`
	// ShapSamples bounds stochastic explainer budgets (KernelSHAP
	// coalitions, LIME neighborhoods; default 256 — sweeps trade a
	// little variance for a lot of throughput).
	ShapSamples int `json:"shap_samples,omitempty"`
	// DeletionTrials is the random-order deletion baselines averaged per
	// instance for the deletion-gap (faithfulness) metric (default 5).
	DeletionTrials int `json:"deletion_trials,omitempty"`
	// Workers bounds parallel plan execution (default NumCPU).
	Workers int `json:"workers,omitempty"`
}

// WithDefaults returns the spec with zero-valued fields defaulted.
func (sp Spec) WithDefaults() Spec {
	if sp.Name == "" {
		sp.Name = "experiment"
	}
	if len(sp.Targets) == 0 {
		sp.Targets = []string{"util"}
	}
	if sp.Hours == 0 {
		sp.Hours = 2
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Samples == 0 {
		sp.Samples = 8
	}
	if sp.ShapSamples == 0 {
		sp.ShapSamples = 256
	}
	if sp.DeletionTrials == 0 {
		sp.DeletionTrials = 5
	}
	if sp.Workers <= 0 {
		sp.Workers = runtime.NumCPU()
	}
	return sp
}

// Cells returns the size of the cross product.
func (sp Spec) Cells() int {
	sp = sp.WithDefaults()
	return len(sp.Scenarios) * len(sp.Targets) * len(sp.Models) * len(sp.Methods)
}

// Validate checks the (defaulted) spec against the scenario catalog, the
// model zoo, the method registry and the work bounds.
func (sp Spec) Validate(scenarios *core.ScenarioRegistry) error {
	sp = sp.WithDefaults()
	if len(sp.Scenarios) == 0 || len(sp.Models) == 0 || len(sp.Methods) == 0 {
		return fmt.Errorf("experiment: spec needs at least one scenario, model and method")
	}
	if n := sp.Cells(); n > MaxCells {
		return fmt.Errorf("experiment: %d cells exceeds limit %d", n, MaxCells)
	}
	if sp.Hours < 0 || sp.Hours > registry.MaxHours {
		return fmt.Errorf("experiment: hours %g out of range (0, %g]", sp.Hours, registry.MaxHours)
	}
	if sp.Samples < 0 || sp.Samples > MaxSamples {
		return fmt.Errorf("experiment: samples %d out of range [1, %d]", sp.Samples, MaxSamples)
	}
	if sp.ShapSamples < 0 || sp.ShapSamples > registry.MaxShapSamples {
		return fmt.Errorf("experiment: shap_samples %d out of range [1, %d]", sp.ShapSamples, registry.MaxShapSamples)
	}
	if sp.DeletionTrials < 0 || sp.DeletionTrials > MaxDeletionTrials {
		return fmt.Errorf("experiment: deletion_trials %d out of range [1, %d]", sp.DeletionTrials, MaxDeletionTrials)
	}
	if err := noDuplicates("scenario", sp.Scenarios); err != nil {
		return err
	}
	if err := noDuplicates("model", sp.Models); err != nil {
		return err
	}
	if err := noDuplicates("method", sp.Methods); err != nil {
		return err
	}
	if err := noDuplicates("target", sp.Targets); err != nil {
		return err
	}
	for _, s := range sp.Scenarios {
		if _, err := scenarios.Lookup(s); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	for _, m := range sp.Models {
		if _, err := registry.ModelKindFor(m); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	for _, tg := range sp.Targets {
		if _, err := registry.TargetFor(tg); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	for _, name := range sp.Methods {
		m, ok := xai.LookupMethod(name)
		if !ok {
			return fmt.Errorf("experiment: %w: %q (registered: %s)",
				xai.ErrUnknownMethod, name, strings.Join(xai.MethodNames(), ", "))
		}
		if m.Kind != xai.KindLocal {
			return fmt.Errorf("experiment: method %q is global; sweeps compare per-instance methods", name)
		}
	}
	return nil
}

func noDuplicates(what string, names []string) error {
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("experiment: duplicate %s %q", what, n)
		}
		seen[n] = true
	}
	return nil
}

// Plan is the compiled dependency graph of a spec: datasets are the
// roots, each pipeline training depends on exactly one dataset, and each
// evaluation cell depends on exactly one pipeline. Shared work is shared
// — one dataset serves every model trained on it, one trained pipeline
// serves every method evaluated against it.
type Plan struct {
	Spec Spec
	// Datasets: one per scenario×target.
	Datasets []DatasetUnit
	// Pipelines: one per scenario×target×model; Dataset indexes Datasets.
	Pipelines []PipelineUnit
	// Cells: one per pipeline×method; Pipeline indexes Pipelines.
	Cells []CellUnit
}

// DatasetUnit is one telemetry-generation unit of a plan.
type DatasetUnit struct {
	Scenario string
	Target   string
}

// PipelineUnit is one model-training unit of a plan.
type PipelineUnit struct {
	Dataset int
	Model   string
}

// CellUnit is one method-evaluation unit of a plan.
type CellUnit struct {
	Pipeline int
	Method   string
}

// Compile validates the spec and expands it into a plan.
func Compile(sp Spec, scenarios *core.ScenarioRegistry) (Plan, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(scenarios); err != nil {
		return Plan{}, err
	}
	p := Plan{Spec: sp}
	for _, sc := range sp.Scenarios {
		for _, tg := range sp.Targets {
			dsIdx := len(p.Datasets)
			p.Datasets = append(p.Datasets, DatasetUnit{Scenario: sc, Target: tg})
			for _, mk := range sp.Models {
				plIdx := len(p.Pipelines)
				p.Pipelines = append(p.Pipelines, PipelineUnit{Dataset: dsIdx, Model: mk})
				for _, me := range sp.Methods {
					p.Cells = append(p.Cells, CellUnit{Pipeline: plIdx, Method: me})
				}
			}
		}
	}
	return p, nil
}

// Units returns the total number of schedulable units in the plan (the
// denominator of progress reporting).
func (p Plan) Units() int {
	return len(p.Datasets) + len(p.Pipelines) + len(p.Cells)
}
