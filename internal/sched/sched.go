// Package sched is the shared compute pool behind every data-parallel
// hot loop: generic batch prediction, forest/GBT ensemble sharding, and
// the xai batch plane all fan out through one set of persistent workers
// instead of each spawning its own GOMAXPROCS goroutines. That solves
// the composition problem the ad-hoc fan-outs had — a KernelSHAP explain
// inside a batch explain inside a serving goroutine no longer multiplies
// goroutine counts — and gives every worker a reusable arena so
// per-chunk scratch stops hitting the heap.
//
// Deadlock-freedom: chunks go onto one shared queue, and ParallelFor's
// caller *participates* — it executes chunks (its own or other calls')
// while waiting for its call to drain. A worker that re-enters
// ParallelFor from inside a chunk therefore makes progress even when
// every pool worker is busy: the nested call's chunks run inline on the
// spot when the queue is full, and the waiting parent keeps stealing
// work instead of blocking. No goroutine ever parks while holding work.
//
// Determinism: chunks are contiguous index ranges and each chunk writes
// only its own range, so execution order never affects results — the
// bit-identical PredictBatch↔Predict contract survives the pool.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker is the per-goroutine execution context handed to every chunk:
// a stable ID and a small arena of reusable scratch slices keyed by
// slot, so kernels can carve per-chunk buffers without allocating in
// steady state.
type Worker struct {
	// ID is the worker's index (pool workers count up from 0; helper
	// contexts minted for participating callers use fresh IDs above the
	// pool size). Chunks must not use ID to partition shared state —
	// two chunks of one call can run on the same worker.
	ID int

	f64 [][]float64
	f32 [][]float32
}

// Floats returns a float64 scratch slice of length n for the given
// slot, reusing the worker's arena. Contents are undefined; callers
// must fully overwrite (or clear) before reading. Distinct slots never
// alias.
func (w *Worker) Floats(slot, n int) []float64 {
	for len(w.f64) <= slot {
		w.f64 = append(w.f64, nil)
	}
	if cap(w.f64[slot]) < n {
		w.f64[slot] = make([]float64, n)
	}
	w.f64[slot] = w.f64[slot][:n]
	return w.f64[slot]
}

// Floats32 is Floats for float32 scratch (the quantized tree kernels'
// row blocks).
func (w *Worker) Floats32(slot, n int) []float32 {
	for len(w.f32) <= slot {
		w.f32 = append(w.f32, nil)
	}
	if cap(w.f32[slot]) < n {
		w.f32[slot] = make([]float32, n)
	}
	w.f32[slot] = w.f32[slot][:n]
	return w.f32[slot]
}

// chunk is one unit of queued work: fn over [lo, hi) on behalf of call c.
type chunk struct {
	fn     func(w *Worker, lo, hi int)
	lo, hi int
	c      *call
}

// call tracks one ParallelFor invocation across its chunks.
type call struct {
	pending atomic.Int64
	done    chan struct{}
}

func (c *call) finish(n int64) {
	if c.pending.Add(-n) == 0 {
		close(c.done)
	}
}

// Pool is a fixed set of persistent workers draining one chunk queue.
type Pool struct {
	workers int
	pin     bool
	queue   chan chunk
	start   sync.Once
	helper  sync.Pool // *Worker contexts for participating callers
	nextID  atomic.Int64
}

// New builds a pool of n workers (n <= 0 selects GOMAXPROCS). pin locks
// each worker goroutine to an OS thread, which steadies tail latency on
// dedicated cores at the cost of scheduler flexibility; serving setups
// enable it explicitly (explaind -sched-pin). Workers start lazily on
// first use.
func New(n int, pin bool) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		pin:     pin,
		// 4 chunks of headroom per worker: deep enough to keep workers
		// fed, shallow enough that nested calls overflow to inline
		// execution instead of queuing behind their parents.
		queue: make(chan chunk, 4*n),
	}
	p.helper.New = func() any {
		return &Worker{ID: int(p.nextID.Add(1)) + p.workers - 1}
	}
	return p
}

var (
	defaultPool atomic.Pointer[Pool]
	configureMu sync.Mutex
)

// Default returns the process-wide pool, creating an unpinned
// GOMAXPROCS-sized one on first use.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	configureMu.Lock()
	defer configureMu.Unlock()
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := New(0, false)
	defaultPool.Store(p)
	return p
}

// Configure replaces the default pool (size and pinning) before or
// after first use; in-flight calls on the old pool complete normally.
// explaind calls this at startup when -sched-pin is set.
func Configure(workers int, pin bool) {
	configureMu.Lock()
	defer configureMu.Unlock()
	defaultPool.Store(New(workers, pin))
}

func (p *Pool) startWorkers() {
	p.start.Do(func() {
		for i := 0; i < p.workers; i++ {
			go p.worker(i)
		}
	})
}

func (p *Pool) worker(id int) {
	if p.pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	w := &Worker{ID: id}
	for ch := range p.queue {
		ch.fn(w, ch.lo, ch.hi)
		ch.c.finish(1)
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Pinned reports whether workers are locked to OS threads.
func (p *Pool) Pinned() bool { return p.pin }

// ParallelFor runs fn over contiguous chunks covering [0, n). minChunk
// bounds the smallest chunk worth dispatching (<= 0 selects 1): work
// below 2×minChunk runs inline on the caller. fn must treat [lo, hi) as
// its exclusive write range. The caller's goroutine participates in
// execution, so ParallelFor may be called from inside a chunk (nested
// parallel layers compose instead of deadlocking); fn must therefore
// not hold locks that another chunk of the same call might take.
func (p *Pool) ParallelFor(n, minChunk int, fn func(w *Worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk <= 0 {
		minChunk = 1
	}
	if n < 2*minChunk || p.workers <= 1 {
		w := p.helper.Get().(*Worker)
		fn(w, 0, n)
		p.helper.Put(w)
		return
	}
	p.startWorkers()
	// Chunk size: enough chunks for the pool plus the caller, floored at
	// minChunk so tiny tails don't become dispatch overhead.
	size := (n + p.workers) / (p.workers + 1)
	if size < minChunk {
		size = minChunk
	}
	nChunks := int64((n + size - 1) / size)
	c := &call{done: make(chan struct{})}
	c.pending.Store(nChunks)

	w := p.helper.Get().(*Worker)
	defer p.helper.Put(w)

	// Enqueue every chunk past the first; a full queue means the pool is
	// saturated (e.g. a nested call), so the overflow chunk runs inline
	// on the caller instead of queuing behind its own parent.
	var executed int64
	for lo := size; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		select {
		case p.queue <- chunk{fn: fn, lo: lo, hi: hi, c: c}:
		default:
			fn(w, lo, hi)
			executed++
		}
	}
	// The caller always takes the head chunk itself.
	fn(w, 0, size)
	executed++
	c.finish(executed)

	// Help until this call drains: execute whatever chunk is next in the
	// queue (ours or another call's) rather than parking.
	for {
		select {
		case <-c.done:
			return
		case ch := <-p.queue:
			ch.fn(w, ch.lo, ch.hi)
			ch.c.finish(1)
		}
	}
}

// ParallelFor runs fn over the default pool; see Pool.ParallelFor.
func ParallelFor(n, minChunk int, fn func(w *Worker, lo, hi int)) {
	Default().ParallelFor(n, minChunk, fn)
}
