package sched

import (
	"sync/atomic"
	"testing"
)

// TestParallelForCoversRange checks every index is visited exactly once
// across chunk boundaries, pool sizes and input sizes.
func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers, false)
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			hits := make([]int32, n)
			p.ParallelFor(n, 8, func(w *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestParallelForNested drives the deadlock scenario the shared pool
// exists to survive: every chunk of an outer call starts an inner
// ParallelFor on the same saturated pool. Caller participation must keep
// everything progressing.
func TestParallelForNested(t *testing.T) {
	p := New(2, false)
	var total atomic.Int64
	outer := 64
	inner := 256
	p.ParallelFor(outer, 1, func(w *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(inner, 16, func(w *Worker, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}
	})
	if got := total.Load(); got != int64(outer*inner) {
		t.Fatalf("nested total = %d, want %d", got, outer*inner)
	}
}

// TestParallelForDeterministic pins that chunked execution produces the
// same output slice as a sequential loop (each chunk owns its range).
func TestParallelForDeterministic(t *testing.T) {
	p := New(4, false)
	n := 10000
	out := make([]float64, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) * 1.5
	}
	for rep := 0; rep < 10; rep++ {
		clear(out)
		p.ParallelFor(n, 64, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("rep %d: out[%d] = %g, want %g", rep, i, out[i], want[i])
			}
		}
	}
}

// TestWorkerArena checks slot isolation and reuse of per-worker scratch.
func TestWorkerArena(t *testing.T) {
	w := &Worker{}
	a := w.Floats(0, 16)
	b := w.Floats(1, 16)
	a[0], b[0] = 1, 2
	if a[0] != 1 || b[0] != 2 {
		t.Fatal("slots alias")
	}
	a2 := w.Floats(0, 8)
	if &a2[0] != &a[0] {
		t.Fatal("slot 0 not reused at smaller size")
	}
	f := w.Floats32(0, 4)
	f[0] = 3
	if w.Floats32(0, 4)[0] != 3 {
		t.Fatal("float32 slot not reused")
	}
}

// TestWorkerArenaNoSteadyStateAllocs: reusing a warmed arena slot must
// not allocate.
func TestWorkerArenaNoSteadyStateAllocs(t *testing.T) {
	w := &Worker{}
	w.Floats(0, 1024)
	w.Floats32(1, 1024)
	avg := testing.AllocsPerRun(100, func() {
		_ = w.Floats(0, 1024)
		_ = w.Floats32(1, 1024)
	})
	if avg != 0 {
		t.Fatalf("warmed arena allocates %.1f objects/op, want 0", avg)
	}
}

func TestConfigure(t *testing.T) {
	old := Default()
	defer defaultPool.Store(old)
	Configure(3, true)
	p := Default()
	if p.Workers() != 3 || !p.Pinned() {
		t.Fatalf("Configure(3, true) -> workers=%d pinned=%v", p.Workers(), p.Pinned())
	}
	var count atomic.Int64
	p.ParallelFor(100, 1, func(w *Worker, lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 100 {
		t.Fatalf("pinned pool covered %d of 100", count.Load())
	}
}
