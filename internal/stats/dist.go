package stats

import (
	"math"
	"math/rand"
)

// Sampler draws random variates. All distribution types in this package
// implement it against an explicit PRNG for reproducibility.
type Sampler interface {
	Sample(rng *rand.Rand) float64
}

// Exponential is an exponential distribution with the given rate (λ > 0).
type Exponential struct {
	Rate float64
}

// Sample draws a variate.
func (d Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / d.Rate
}

// Mean returns the distribution mean 1/λ.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// Pareto is a Pareto (Type I) distribution with scale Xm > 0 and shape
// Alpha > 0. Heavy-tailed flow sizes use Alpha in (1, 2).
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a variate via inverse transform.
func (d Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean returns the distribution mean (Inf when Alpha <= 1).
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// LogNormal is a log-normal distribution parameterized by the mean Mu and
// standard deviation Sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws a variate.
func (d LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// Mean returns the distribution mean exp(mu + sigma²/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Normal is a normal distribution.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws a variate.
func (d Normal) Sample(rng *rand.Rand) float64 {
	return d.Mu + d.Sigma*rng.NormFloat64()
}

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a variate.
func (d Uniform) Sample(rng *rand.Rand) float64 {
	return d.Lo + (d.Hi-d.Lo)*rng.Float64()
}

// Deterministic always returns Value; useful to disable randomness in tests.
type Deterministic struct {
	Value float64
}

// Sample returns the fixed value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Poisson draws a Poisson-distributed count with the given mean. It uses
// Knuth's product method for small means and a normal approximation above
// 30 (adequate for workload synthesis).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. It panics if all weights are zero or any is negative.
func Categorical(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		if v < 0 {
			panic("stats: Categorical negative weight")
		}
		total += v
	}
	if total == 0 {
		panic("stats: Categorical zero total weight")
	}
	u := rng.Float64() * total
	for i, v := range w {
		u -= v
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}

// MMPP2 is a two-state Markov-modulated Poisson process: a bursty arrival
// process that alternates between a low-rate and a high-rate state. It is
// the standard parsimonious model for bursty packet/flow arrivals.
type MMPP2 struct {
	RateLow, RateHigh float64 // arrival rates in each state (events/sec)
	ToHigh, ToLow     float64 // state transition rates (1/sec)

	state   int     // 0 = low, 1 = high
	residue float64 // time left in the current state
}

// NewMMPP2 returns an MMPP starting in the low state.
func NewMMPP2(rateLow, rateHigh, toHigh, toLow float64) *MMPP2 {
	return &MMPP2{RateLow: rateLow, RateHigh: rateHigh, ToHigh: toHigh, ToLow: toLow}
}

// Rate returns the arrival rate of the current state.
func (m *MMPP2) Rate() float64 {
	if m.state == 1 {
		return m.RateHigh
	}
	return m.RateLow
}

// Arrivals returns the number of arrivals during the next dt seconds,
// advancing the modulating chain. The interval is split at state changes so
// bursts shorter than dt are still represented.
func (m *MMPP2) Arrivals(rng *rand.Rand, dt float64) int {
	total := 0
	remaining := dt
	for remaining > 0 {
		if m.residue <= 0 {
			// Draw the sojourn time of the current state.
			rate := m.ToHigh
			if m.state == 1 {
				rate = m.ToLow
			}
			if rate <= 0 {
				m.residue = math.Inf(1)
			} else {
				m.residue = rng.ExpFloat64() / rate
			}
		}
		step := remaining
		if m.residue < step {
			step = m.residue
		}
		total += Poisson(rng, m.Rate()*step)
		m.residue -= step
		remaining -= step
		if m.residue <= 0 {
			m.state = 1 - m.state
		}
	}
	return total
}

// State reports the current modulating state (0 low, 1 high).
func (m *MMPP2) State() int { return m.state }
