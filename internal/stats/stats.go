// Package stats provides the statistical primitives shared across the
// repository: summary statistics, quantiles, rank transforms, correlation
// coefficients, and the random-variate generators used by the traffic and
// workload synthesizers. All generators take an explicit *rand.Rand so
// every experiment in the repository is reproducible from a seed.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns multiple quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, as used by Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of xs and ys.
// It returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of xs and ys.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// KendallTau returns the Kendall tau-b rank correlation of xs and ys.
// O(n²); fine for the explanation-agreement sizes used here.
func KendallTau(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: KendallTau length mismatch")
	}
	n := len(xs)
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// tie in both: ignored by tau-b numerator and both denominators
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if den == 0 {
		return 0
	}
	return (concordant - discordant) / den
}

// Summary bundles the descriptive statistics reported by telemetry windows.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P95 float64
	P99           float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	qs := Quantiles(xs, 0.50, 0.90, 0.95, 0.99)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P50:  qs[0],
		P90:  qs[1],
		P95:  qs[2],
		P99:  qs[3],
	}
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	Alpha float64 // smoothing factor in (0, 1]
	value float64
	init  bool
}

// Update folds x into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before the first Update).
func (e *EWMA) Value() float64 { return e.value }

// Welford maintains running mean/variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }
