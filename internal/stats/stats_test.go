package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	shuffled := []float64{5, 1, 4, 2, 3}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0.1, 0.5, 0.9}
	multi := Quantiles(xs, qs...)
	for i, q := range qs {
		if single := Quantile(xs, q); single != multi[i] {
			t.Fatalf("Quantiles[%d]=%v, Quantile=%v", i, multi[i], single)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v want %v", got, want)
		}
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(xs, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Fatalf("zero-variance correlation = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, v := range xs {
		ys[i] = math.Exp(v)
	}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v want 1", got)
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := KendallTau(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tau identity = %v", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(xs, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("tau reversed = %v", got)
	}
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("tau degenerate = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("Summary basics wrong: %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-12 {
		t.Fatalf("Summary mean = %v", s.Mean)
	}
	if s.P50 < 49 || s.P50 > 52 || s.P99 < 98 {
		t.Fatalf("Summary quantiles wrong: %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty Summarize")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second update = %v", got)
	}
	if e.Value() != 15 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-10 {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Fatalf("Welford var %v vs %v", w.Variance(), Variance(xs))
	}
	if w.N() != 500 {
		t.Fatalf("Welford N = %d", w.N())
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Exponential{Rate: 4}
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(d.Sample(rng))
	}
	if math.Abs(w.Mean()-d.Mean()) > 0.01 {
		t.Fatalf("exp mean %v want %v", w.Mean(), d.Mean())
	}
}

func TestParetoTailAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Pareto{Xm: 1, Alpha: 2.5}
	var w Welford
	minSeen := math.Inf(1)
	for i := 0; i < 50000; i++ {
		v := d.Sample(rng)
		if v < d.Xm {
			t.Fatalf("Pareto sample %v below scale", v)
		}
		if v < minSeen {
			minSeen = v
		}
		w.Add(v)
	}
	if math.Abs(w.Mean()-d.Mean()) > 0.05 {
		t.Fatalf("pareto mean %v want %v", w.Mean(), d.Mean())
	}
	if (Pareto{Xm: 1, Alpha: 0.9}).Mean() != math.Inf(1) {
		t.Fatal("infinite-mean Pareto should report Inf")
	}
}

func TestLogNormalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := LogNormal{Mu: 0, Sigma: 0.5}
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(d.Sample(rng))
	}
	if math.Abs(w.Mean()-d.Mean()) > 0.02 {
		t.Fatalf("lognormal mean %v want %v", w.Mean(), d.Mean())
	}
}

func TestUniformNormalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := Uniform{Lo: 2, Hi: 4}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 2 || v >= 4 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	n := Normal{Mu: 10, Sigma: 2}
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(n.Sample(rng))
	}
	if math.Abs(w.Mean()-10) > 0.1 {
		t.Fatalf("normal mean %v", w.Mean())
	}
	if (Deterministic{Value: 3.5}).Sample(rng) != 3.5 {
		t.Fatal("Deterministic")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var w Welford
		for i := 0; i < 30000; i++ {
			w.Add(float64(Poisson(rng, mean)))
		}
		if math.Abs(w.Mean()-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, w.Mean())
		}
		if math.Abs(w.Variance()-mean) > mean*0.1+0.1 {
			t.Fatalf("poisson(%v) var %v", mean, w.Variance())
		}
	}
	if Poisson(rand.New(rand.NewSource(1)), 0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if hits < 2800 || hits > 3200 {
		t.Fatalf("Bernoulli(0.3) hit rate %d/10000", hits)
	}
}

func TestCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 20000; i++ {
		counts[Categorical(rng, w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("Categorical ratio = %v want ~3", ratio)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on zero weights")
			}
		}()
		Categorical(rng, []float64{0, 0})
	}()
}

func TestMMPP2BurstsIncreaseVariance(t *testing.T) {
	// An MMPP with distinct rates must be burstier than a Poisson process
	// of the same average rate: index of dispersion > 1.
	rng := rand.New(rand.NewSource(10))
	m := NewMMPP2(10, 200, 0.5, 0.5) // avg ~105/sec
	var w Welford
	for i := 0; i < 4000; i++ {
		w.Add(float64(m.Arrivals(rng, 0.1)))
	}
	mean := w.Mean()
	if mean < 5 || mean > 16 {
		t.Fatalf("MMPP mean per 100ms = %v", mean)
	}
	dispersion := w.Variance() / mean
	if dispersion < 2 {
		t.Fatalf("MMPP index of dispersion %v, want >> 1", dispersion)
	}
	// Degenerate MMPP (equal rates) is just Poisson: dispersion ~ 1.
	p := NewMMPP2(100, 100, 1, 1)
	var wp Welford
	for i := 0; i < 4000; i++ {
		wp.Add(float64(p.Arrivals(rng, 0.1)))
	}
	if d := wp.Variance() / wp.Mean(); d > 1.3 {
		t.Fatalf("degenerate MMPP dispersion %v, want ~1", d)
	}
}

func TestMMPP2StateAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMMPP2(1, 100, 5, 5)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		m.Arrivals(rng, 0.1)
		seen[m.State()] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("MMPP never alternated states: %v", seen)
	}
}

func TestPropertyQuantileWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		q := rng.Float64()
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-12 && v <= Max(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRanksArePermutationSum(t *testing.T) {
	// Sum of fractional ranks must equal n(n+1)/2 regardless of ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(5)) // force ties
		}
		want := float64(n*(n+1)) / 2
		return math.Abs(Sum(Ranks(xs))-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySortInvariantQuantile(t *testing.T) {
	// Quantile must be order-invariant.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		shuffled := make([]float64, n)
		copy(shuffled, xs)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		sort.Float64s(xs)
		return Quantile(xs, 0.37) == Quantile(shuffled, 0.37)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
