// Package sla defines service level objectives for chains and the
// violation accounting the paper's classifiers predict: a chain epoch
// violates its SLO when end-to-end latency exceeds the bound or loss
// exceeds the budget.
package sla

import (
	"fmt"

	"nfvxai/internal/nfv/chain"
)

// SLO is a per-chain objective.
type SLO struct {
	// MaxLatencyMs bounds the epoch mean end-to-end latency.
	MaxLatencyMs float64
	// MaxLossRate bounds the epoch loss fraction.
	MaxLossRate float64
}

// Violated reports whether the chain epoch result breaks the SLO.
func (s SLO) Violated(r chain.Result) bool {
	if s.MaxLatencyMs > 0 && r.LatencyMs > s.MaxLatencyMs {
		return true
	}
	if r.LossRate > s.MaxLossRate {
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (s SLO) String() string {
	return fmt.Sprintf("SLO{latency<=%.1fms, loss<=%.3f}", s.MaxLatencyMs, s.MaxLossRate)
}

// Tracker accumulates violation statistics over a run.
type Tracker struct {
	SLO SLO

	epochs     int
	violations int
	// CoreSeconds accumulates allocated cores × epoch duration, the
	// resource-cost denominator in the autoscaling comparison.
	coreSeconds float64
}

// Observe folds one epoch: the chain result, its core allocation, and the
// epoch length.
func (t *Tracker) Observe(r chain.Result, cores int, dtSec float64) {
	t.epochs++
	if t.SLO.Violated(r) {
		t.violations++
	}
	t.coreSeconds += float64(cores) * dtSec
}

// Epochs returns the number of observed epochs.
func (t *Tracker) Epochs() int { return t.epochs }

// Violations returns the violating epoch count.
func (t *Tracker) Violations() int { return t.violations }

// ViolationRate returns violations/epochs (0 when empty).
func (t *Tracker) ViolationRate() float64 {
	if t.epochs == 0 {
		return 0
	}
	return float64(t.violations) / float64(t.epochs)
}

// MeanCores returns the time-averaged core allocation.
func (t *Tracker) MeanCores() float64 {
	if t.epochs == 0 {
		return 0
	}
	return t.coreSeconds / float64(t.epochs) // per unit epoch (dt folded in)
}

// CoreSeconds returns the raw accumulated core-seconds.
func (t *Tracker) CoreSeconds() float64 { return t.coreSeconds }
