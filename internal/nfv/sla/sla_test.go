package sla

import (
	"math"
	"strings"
	"testing"

	"nfvxai/internal/nfv/chain"
)

func TestViolated(t *testing.T) {
	s := SLO{MaxLatencyMs: 10, MaxLossRate: 0.01}
	if s.Violated(chain.Result{LatencyMs: 5, LossRate: 0}) {
		t.Fatal("healthy epoch flagged")
	}
	if !s.Violated(chain.Result{LatencyMs: 15, LossRate: 0}) {
		t.Fatal("latency violation missed")
	}
	if !s.Violated(chain.Result{LatencyMs: 5, LossRate: 0.05}) {
		t.Fatal("loss violation missed")
	}
	// Zero latency bound disables the latency check.
	open := SLO{MaxLossRate: 0.5}
	if open.Violated(chain.Result{LatencyMs: 1e9, LossRate: 0}) {
		t.Fatal("disabled latency bound applied")
	}
	if !strings.Contains(s.String(), "10.0ms") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestTrackerAccounting(t *testing.T) {
	tr := Tracker{SLO: SLO{MaxLatencyMs: 10, MaxLossRate: 0.01}}
	tr.Observe(chain.Result{LatencyMs: 5}, 8, 5)
	tr.Observe(chain.Result{LatencyMs: 20}, 10, 5)
	tr.Observe(chain.Result{LatencyMs: 5}, 12, 5)
	if tr.Epochs() != 3 || tr.Violations() != 1 {
		t.Fatalf("epochs %d violations %d", tr.Epochs(), tr.Violations())
	}
	if math.Abs(tr.ViolationRate()-1.0/3) > 1e-12 {
		t.Fatalf("rate %v", tr.ViolationRate())
	}
	if tr.CoreSeconds() != (8+10+12)*5 {
		t.Fatalf("core-seconds %v", tr.CoreSeconds())
	}
	if math.Abs(tr.MeanCores()-50) > 1e-12 {
		t.Fatalf("mean cores %v", tr.MeanCores())
	}
}

func TestTrackerEmpty(t *testing.T) {
	var tr Tracker
	if tr.ViolationRate() != 0 || tr.MeanCores() != 0 {
		t.Fatal("empty tracker stats")
	}
}
