// Package flowtable implements the per-VNF connection-state table: a
// bounded LRU map keyed by the canonical five-tuple, with hit/miss/
// eviction accounting and optional idle expiry. Table pressure is what
// the analytic VNF cost models (internal/nfv/vnf) charge for; this is the
// concrete data structure a byte-level datapath uses.
package flowtable

import (
	"container/list"

	"nfvxai/internal/nfv/packet"
)

// Stats counts table activity.
type Stats struct {
	Hits, Misses, Evictions, Expiries uint64
}

// Table is a bounded LRU flow table. Zero value is not usable; call New.
// Not safe for concurrent use (datapaths shard by flow hash instead).
type Table[V any] struct {
	capacity int
	// Symmetric folds a flow and its reverse onto one entry (stateful
	// firewalls do; NATs keyed per direction do not).
	symmetric bool

	lru     *list.List // front = most recent; holds *entry[V]
	entries map[packet.FiveTuple]*list.Element
	stats   Stats
}

type entry[V any] struct {
	key      packet.FiveTuple
	value    V
	lastSeen float64
}

// New builds a table with the given capacity (minimum 1).
func New[V any](capacity int, symmetric bool) *Table[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Table[V]{
		capacity:  capacity,
		symmetric: symmetric,
		lru:       list.New(),
		entries:   make(map[packet.FiveTuple]*list.Element, capacity),
	}
}

func (t *Table[V]) canonical(key packet.FiveTuple) packet.FiveTuple {
	if !t.symmetric {
		return key
	}
	rev := key.Reverse()
	// Deterministic direction normalization: pick the lexicographically
	// smaller representation.
	if less(rev, key) {
		return rev
	}
	return key
}

func less(a, b packet.FiveTuple) bool {
	for i := 0; i < 4; i++ {
		if a.Src[i] != b.Src[i] {
			return a.Src[i] < b.Src[i]
		}
	}
	return a.SrcPort < b.SrcPort
}

// Len returns the resident entry count.
func (t *Table[V]) Len() int { return t.lru.Len() }

// Stats returns the activity counters.
func (t *Table[V]) Stats() Stats { return t.stats }

// Lookup returns the value for the flow and refreshes its recency.
func (t *Table[V]) Lookup(key packet.FiveTuple, now float64) (V, bool) {
	k := t.canonical(key)
	el, ok := t.entries[k]
	if !ok {
		t.stats.Misses++
		var zero V
		return zero, false
	}
	t.stats.Hits++
	e := el.Value.(*entry[V])
	e.lastSeen = now
	t.lru.MoveToFront(el)
	return e.value, true
}

// Insert adds or replaces the flow's state, evicting the least recently
// used entry when full. It reports whether an eviction happened.
func (t *Table[V]) Insert(key packet.FiveTuple, value V, now float64) (evicted bool) {
	k := t.canonical(key)
	if el, ok := t.entries[k]; ok {
		e := el.Value.(*entry[V])
		e.value = value
		e.lastSeen = now
		t.lru.MoveToFront(el)
		return false
	}
	if t.lru.Len() >= t.capacity {
		oldest := t.lru.Back()
		if oldest != nil {
			e := oldest.Value.(*entry[V])
			delete(t.entries, e.key)
			t.lru.Remove(oldest)
			t.stats.Evictions++
			evicted = true
		}
	}
	el := t.lru.PushFront(&entry[V]{key: k, value: value, lastSeen: now})
	t.entries[k] = el
	return evicted
}

// Delete removes the flow's entry if present.
func (t *Table[V]) Delete(key packet.FiveTuple) bool {
	k := t.canonical(key)
	el, ok := t.entries[k]
	if !ok {
		return false
	}
	delete(t.entries, k)
	t.lru.Remove(el)
	return true
}

// ExpireIdle removes entries idle longer than maxIdle seconds at time now
// and returns the number removed.
func (t *Table[V]) ExpireIdle(now, maxIdle float64) int {
	removed := 0
	for {
		oldest := t.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry[V])
		if now-e.lastSeen <= maxIdle {
			break
		}
		delete(t.entries, e.key)
		t.lru.Remove(oldest)
		t.stats.Expiries++
		removed++
	}
	return removed
}

// Utilization returns Len()/capacity.
func (t *Table[V]) Utilization() float64 {
	return float64(t.lru.Len()) / float64(t.capacity)
}
