package flowtable

import (
	"testing"

	"nfvxai/internal/nfv/packet"
)

func tuple(lastOctet byte, srcPort uint16) packet.FiveTuple {
	return packet.FiveTuple{
		Src:     [4]byte{10, 0, 0, lastOctet},
		Dst:     [4]byte{192, 168, 0, 1},
		Proto:   packet.IPProtoTCP,
		SrcPort: srcPort,
		DstPort: 443,
	}
}

func TestInsertLookup(t *testing.T) {
	tb := New[string](4, false)
	tb.Insert(tuple(1, 1000), "a", 0)
	v, ok := tb.Lookup(tuple(1, 1000), 1)
	if !ok || v != "a" {
		t.Fatalf("lookup = %q, %v", v, ok)
	}
	if _, ok := tb.Lookup(tuple(2, 1000), 1); ok {
		t.Fatal("phantom entry")
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New[int](2, false)
	tb.Insert(tuple(1, 1), 1, 0)
	tb.Insert(tuple(2, 2), 2, 1)
	// Touch entry 1 so entry 2 becomes LRU.
	tb.Lookup(tuple(1, 1), 2)
	if ev := tb.Insert(tuple(3, 3), 3, 3); !ev {
		t.Fatal("expected eviction")
	}
	if _, ok := tb.Lookup(tuple(2, 2), 4); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := tb.Lookup(tuple(1, 1), 4); !ok {
		t.Fatal("recently used entry evicted")
	}
	if tb.Stats().Evictions != 1 {
		t.Fatalf("evictions %d", tb.Stats().Evictions)
	}
	if tb.Len() != 2 {
		t.Fatalf("len %d", tb.Len())
	}
}

func TestInsertReplaceDoesNotEvict(t *testing.T) {
	tb := New[int](1, false)
	tb.Insert(tuple(1, 1), 1, 0)
	if ev := tb.Insert(tuple(1, 1), 2, 1); ev {
		t.Fatal("replacement should not evict")
	}
	v, _ := tb.Lookup(tuple(1, 1), 2)
	if v != 2 {
		t.Fatalf("replace failed: %d", v)
	}
}

func TestSymmetricTableFoldsDirections(t *testing.T) {
	tb := New[string](4, true)
	ft := tuple(1, 1000)
	tb.Insert(ft, "state", 0)
	v, ok := tb.Lookup(ft.Reverse(), 1)
	if !ok || v != "state" {
		t.Fatal("reverse direction not folded")
	}
	if tb.Len() != 1 {
		t.Fatalf("symmetric table has %d entries", tb.Len())
	}
	// Asymmetric table keeps directions separate.
	ta := New[string](4, false)
	ta.Insert(ft, "fwd", 0)
	if _, ok := ta.Lookup(ft.Reverse(), 1); ok {
		t.Fatal("asymmetric table folded directions")
	}
}

func TestDelete(t *testing.T) {
	tb := New[int](4, false)
	tb.Insert(tuple(1, 1), 1, 0)
	if !tb.Delete(tuple(1, 1)) {
		t.Fatal("delete failed")
	}
	if tb.Delete(tuple(1, 1)) {
		t.Fatal("double delete succeeded")
	}
	if tb.Len() != 0 {
		t.Fatal("len after delete")
	}
}

func TestExpireIdle(t *testing.T) {
	tb := New[int](8, false)
	tb.Insert(tuple(1, 1), 1, 0)
	tb.Insert(tuple(2, 2), 2, 5)
	tb.Insert(tuple(3, 3), 3, 9)
	// At t=10 with maxIdle 4: entries last seen before t=6 expire.
	if n := tb.ExpireIdle(10, 4); n != 2 {
		t.Fatalf("expired %d want 2", n)
	}
	if _, ok := tb.Lookup(tuple(3, 3), 10); !ok {
		t.Fatal("fresh entry expired")
	}
	if tb.Stats().Expiries != 2 {
		t.Fatalf("expiry stat %d", tb.Stats().Expiries)
	}
}

func TestExpireRefreshedByLookup(t *testing.T) {
	tb := New[int](4, false)
	tb.Insert(tuple(1, 1), 1, 0)
	tb.Lookup(tuple(1, 1), 8) // refresh
	if n := tb.ExpireIdle(10, 4); n != 0 {
		t.Fatalf("refreshed entry expired (%d)", n)
	}
}

func TestUtilizationAndCapacityFloor(t *testing.T) {
	tb := New[int](0, false) // floors to 1
	tb.Insert(tuple(1, 1), 1, 0)
	if u := tb.Utilization(); u != 1 {
		t.Fatalf("utilization %v", u)
	}
	tb.Insert(tuple(2, 2), 2, 1)
	if tb.Len() != 1 {
		t.Fatal("capacity floor violated")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tb := New[int](1024, true)
	for i := 0; i < 1024; i++ {
		tb.Insert(tuple(byte(i), uint16(i)), i, 0)
	}
	key := tuple(7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(key, float64(i))
	}
}
