package sim

import (
	"fmt"

	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/infra"
	"nfvxai/internal/nfv/orch"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// ChainSpec declares one tenant chain: its composition, workload, and SLO.
type ChainSpec struct {
	Chain   *chain.Chain
	Traffic traffic.Profile
	SLO     sla.SLO
	// Scaler is optional (nil = static allocation).
	Scaler orch.Scaler
}

// ChainHandle exposes a running chain's observability surfaces.
type ChainHandle struct {
	Spec    ChainSpec
	Window  *telemetry.Window
	Tracker *sla.Tracker

	gen        *traffic.Generator
	extractors []*telemetry.Extractor
	onEpoch    []func(telemetry.Record)
	decisions  []orch.Decision
}

// AttachExtractor registers a feature extractor fed every epoch.
func (h *ChainHandle) AttachExtractor(e *telemetry.Extractor) { h.extractors = append(h.extractors, e) }

// OnEpoch registers a callback invoked with every epoch record.
func (h *ChainHandle) OnEpoch(fn func(telemetry.Record)) { h.onEpoch = append(h.onEpoch, fn) }

// Decisions returns all scaling decisions taken so far.
func (h *ChainHandle) Decisions() []orch.Decision { return h.decisions }

// World wires the full substrate together and advances it in epochs.
type World struct {
	Engine *Engine
	// Cluster is optional; when set, instances are placed on nodes and
	// host contention applies.
	Cluster *infra.Cluster
	// EpochSec is the telemetry/scaling period (default 5 s).
	EpochSec float64

	chains  []*ChainHandle
	started bool
}

// NewWorld builds a world with the given epoch length.
func NewWorld(epochSec float64) *World {
	if epochSec <= 0 {
		epochSec = 5
	}
	return &World{Engine: NewEngine(), EpochSec: epochSec}
}

// AddChain registers a chain; with a cluster present all its instances are
// placed immediately.
func (w *World) AddChain(spec ChainSpec) (*ChainHandle, error) {
	if spec.Chain == nil {
		return nil, fmt.Errorf("sim: nil chain")
	}
	if w.Cluster != nil {
		for _, g := range spec.Chain.Groups {
			for _, in := range g.Instances() {
				if _, err := w.Cluster.Place(in); err != nil {
					return nil, fmt.Errorf("sim: placing %s: %w", g.Name, err)
				}
			}
		}
	}
	h := &ChainHandle{
		Spec:    spec,
		Window:  telemetry.NewWindow(16),
		Tracker: &sla.Tracker{SLO: spec.SLO},
		gen:     traffic.NewGenerator(spec.Traffic),
	}
	w.chains = append(w.chains, h)
	return h, nil
}

// Run advances the world for durationSec of virtual time.
func (w *World) Run(durationSec float64) {
	if !w.started {
		w.started = true
		w.Engine.After(w.EpochSec, w.epoch)
	}
	w.Engine.Run(w.Engine.Now() + durationSec)
}

// epoch advances every chain by one epoch and reschedules itself. Demand
// is generated for all chains first so host contention couples co-located
// tenants within the same epoch.
func (w *World) epoch() {
	demands := make([]traffic.Demand, len(w.chains))
	for i, h := range w.chains {
		demands[i] = h.gen.Next(w.EpochSec)
	}
	// Host contention: aggregate every instance's unthrottled demand
	// across all chains, then scale capacities on oversubscribed nodes.
	if w.Cluster != nil {
		perInstance := map[*vnf.Instance]float64{}
		for i, h := range w.chains {
			d := demands[i]
			active := float64(d.ActiveFlows)
			for _, g := range h.Spec.Chain.Groups {
				n := float64(g.Replicas())
				share := d
				share.PPS /= n
				share.BPS /= n
				share.NewFlows = int(float64(d.NewFlows) / n)
				for _, in := range g.Instances() {
					perInstance[in] = in.DemandCycles(share, active/n)
				}
			}
		}
		w.Cluster.ApplyContention(func(in *vnf.Instance) float64 { return perInstance[in] })
	}
	for i, h := range w.chains {
		w.stepChain(h, demands[i])
	}
	w.Engine.After(w.EpochSec, w.epoch)
}

func (w *World) stepChain(h *ChainHandle, d traffic.Demand) {
	active := float64(d.ActiveFlows)
	res := h.Spec.Chain.Process(d, active)
	rec := telemetry.Record{
		TimeSec:    w.Engine.Now(),
		HourOfDay:  d.HourOfDay,
		Demand:     d,
		Chain:      res,
		TotalCores: h.Spec.Chain.TotalCores(),
	}
	h.Window.Push(rec)
	h.Tracker.Observe(res, rec.TotalCores, w.EpochSec)
	for _, e := range h.extractors {
		e.Push(rec)
	}
	for _, fn := range h.onEpoch {
		fn(rec)
	}
	if h.Spec.Scaler != nil {
		for _, dec := range h.Spec.Scaler.Decide(h.Window, h.Spec.Chain) {
			if w.applyDecision(h.Spec.Chain, dec) {
				h.decisions = append(h.decisions, dec)
			}
		}
	}
}

// applyDecision scales a group, keeping cluster placement consistent.
// It reports whether any change was applied.
func (w *World) applyDecision(c *chain.Chain, dec orch.Decision) bool {
	g, err := c.Group(dec.Group)
	if err != nil {
		return false
	}
	if w.Cluster == nil {
		return g.Scale(dec.Delta) != 0
	}
	if dec.Delta >= 0 {
		before := g.Replicas()
		applied := g.Scale(dec.Delta)
		placed := 0
		for _, in := range g.Instances()[before:] {
			if _, err := w.Cluster.Place(in); err != nil {
				break
			}
			placed++
		}
		if placed < applied {
			// Roll back replicas that could not be placed.
			g.Scale(placed - applied)
		}
		return placed > 0
	}
	// Scale down: unplace the removed tail.
	before := append([]*vnf.Instance(nil), g.Instances()...)
	applied := g.Scale(dec.Delta)
	for _, in := range before[len(before)+applied:] {
		w.Cluster.Unplace(in)
	}
	return applied != 0
}

// Chains returns the registered chain handles.
func (w *World) Chains() []*ChainHandle { return w.chains }
