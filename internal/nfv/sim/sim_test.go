package sim

import (
	"testing"

	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/infra"
	"nfvxai/internal/nfv/orch"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5, func() { fired = true })
	e.Run(4)
	if fired {
		t.Fatal("event beyond boundary fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run(6)
	if !fired {
		t.Fatal("event not fired after extending run")
	}
}

func TestEngineSelfRescheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(1, tick)
	}
	e.After(1, tick)
	e.Run(10.5)
	if count != 10 {
		t.Fatalf("ticks %d want 10", count)
	}
}

func TestEnginePanicsOnPast(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	e.At(1, func() {})
}

func webChain() *chain.Chain {
	return chain.New("web", 0.05,
		chain.NewGroup("fw", vnf.Firewall, 2, 2),
		chain.NewGroup("ids", vnf.IDS, 2, 2),
		chain.NewGroup("lb", vnf.LoadBalancer, 1, 2),
	)
}

func TestWorldProducesTelemetry(t *testing.T) {
	w := NewWorld(5)
	h, err := w.AddChain(ChainSpec{
		Chain:   webChain(),
		Traffic: traffic.Profile{BaseFPS: 300, DiurnalAmplitude: 0.5, PeakHour: 12, Seed: 1},
		SLO:     sla.SLO{MaxLatencyMs: 10, MaxLossRate: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := telemetry.NewExtractor(telemetry.TargetBottleneckUtil, 0, []string{"fw", "ids", "lb"})
	h.AttachExtractor(ext)
	epochs := 0
	h.OnEpoch(func(telemetry.Record) { epochs++ })

	w.Run(600) // 2 minutes of epochs at 5 s → 120 epochs
	if epochs != 120 {
		t.Fatalf("epochs %d want 120", epochs)
	}
	if h.Tracker.Epochs() != 120 {
		t.Fatalf("tracker epochs %d", h.Tracker.Epochs())
	}
	// Extractor has one fewer row than epochs (needs next-epoch target).
	if got := ext.Dataset().Len(); got != 119 {
		t.Fatalf("dataset rows %d want 119", got)
	}
	if h.Window.Len() == 0 {
		t.Fatal("empty telemetry window")
	}
}

func TestWorldDeterministic(t *testing.T) {
	run := func() []float64 {
		w := NewWorld(5)
		h, err := w.AddChain(ChainSpec{
			Chain:   webChain(),
			Traffic: traffic.Profile{BaseFPS: 200, BurstRatio: 4, Seed: 42},
		})
		if err != nil {
			t.Fatal(err)
		}
		var utils []float64
		h.OnEpoch(func(r telemetry.Record) {
			utils = append(utils, r.Chain.PerGroup[0].Utilization)
		})
		w.Run(300)
		return utils
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at epoch %d", i)
		}
	}
}

func TestWorldThresholdScalerReactsToOverload(t *testing.T) {
	w := NewWorld(5)
	c := chain.New("hot", 0.05, chain.NewGroup("ids", vnf.IDS, 1, 1))
	h, err := w.AddChain(ChainSpec{
		Chain:   c,
		Traffic: traffic.Profile{BaseFPS: 40000, Seed: 7}, // heavy load for 1 small IDS
		SLO:     sla.SLO{MaxLatencyMs: 5, MaxLossRate: 0.01},
		Scaler:  &orch.Threshold{UpUtil: 0.8, DownUtil: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(900)
	if len(h.Decisions()) == 0 {
		t.Fatal("scaler never acted under overload")
	}
	g, _ := c.Group("ids")
	if g.Replicas() <= 1 {
		t.Fatalf("replicas did not grow: %d", g.Replicas())
	}
}

func TestWorldClusterPlacementLimitsScaling(t *testing.T) {
	w := NewWorld(5)
	w.Cluster = infra.NewCluster(1, 4) // tiny cluster: 4 cores total
	c := chain.New("limited", 0, chain.NewGroup("ids", vnf.IDS, 1, 2))
	_, err := w.AddChain(ChainSpec{
		Chain:   c,
		Traffic: traffic.Profile{BaseFPS: 60000, Seed: 8},
		Scaler:  &orch.Threshold{UpUtil: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(600)
	g, _ := c.Group("ids")
	// 4-core node can hold at most 2 instances of 2 cores.
	if g.Replicas() > 2 {
		t.Fatalf("scaled beyond cluster capacity: %d replicas", g.Replicas())
	}
	if w.Cluster.Utilization() > 1 {
		t.Fatalf("cluster oversubscribed: %v", w.Cluster.Utilization())
	}
}

func TestWorldAddChainErrors(t *testing.T) {
	w := NewWorld(5)
	if _, err := w.AddChain(ChainSpec{}); err == nil {
		t.Fatal("expected nil-chain error")
	}
	w.Cluster = infra.NewCluster(1, 1)
	big := chain.New("big", 0, chain.NewGroup("ids", vnf.IDS, 1, 8))
	if _, err := w.AddChain(ChainSpec{Chain: big, Traffic: traffic.Profile{BaseFPS: 1}}); err == nil {
		t.Fatal("expected placement error")
	}
}

func TestWorldDiurnalLoadVariesUtilization(t *testing.T) {
	w := NewWorld(30)
	h, err := w.AddChain(ChainSpec{
		Chain:   webChain(),
		Traffic: traffic.Profile{BaseFPS: 400, DiurnalAmplitude: 0.9, PeakHour: 12, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var peakU, troughU []float64
	h.OnEpoch(func(r telemetry.Record) {
		u := r.Chain.PerGroup[r.Chain.Bottleneck].Utilization
		switch {
		case r.HourOfDay >= 11 && r.HourOfDay < 13:
			peakU = append(peakU, u)
		case r.HourOfDay >= 23 || r.HourOfDay < 1:
			troughU = append(troughU, u)
		}
	})
	w.Run(24 * 3600)
	if len(peakU) == 0 || len(troughU) == 0 {
		t.Fatal("no samples in peak/trough windows")
	}
	if mean(peakU) < 2*mean(troughU) {
		t.Fatalf("diurnal effect missing: peak %v trough %v", mean(peakU), mean(troughU))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
