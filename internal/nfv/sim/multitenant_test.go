package sim

import (
	"testing"

	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/infra"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// TestMultiTenantContention verifies the cross-chain coupling that makes
// shared NFV infrastructure interesting: a noisy tenant saturating its
// host slows a co-located quiet tenant, versus the same quiet tenant on a
// dedicated cluster.
func TestMultiTenantContention(t *testing.T) {
	quietChain := func() *chain.Chain {
		return chain.New("quiet", 0.05, chain.NewGroup("fw", vnf.Firewall, 1, 2))
	}
	noisyChain := func() *chain.Chain {
		return chain.New("noisy", 0.05, chain.NewGroup("dpi", vnf.DPI, 1, 2))
	}
	quietProfile := traffic.Profile{BaseFPS: 5000, Seed: 1}
	noisyProfile := traffic.Profile{BaseFPS: 80000, Seed: 2} // saturates a DPI

	run := func(shared bool) (quietLatency float64) {
		w := NewWorld(5)
		if shared {
			w.Cluster = infra.NewCluster(1, 4) // both instances on one node
		} else {
			w.Cluster = infra.NewCluster(2, 2) // one node each
		}
		hq, err := w.AddChain(ChainSpec{Chain: quietChain(), Traffic: quietProfile, SLO: sla.SLO{MaxLatencyMs: 5}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddChain(ChainSpec{Chain: noisyChain(), Traffic: noisyProfile, SLO: sla.SLO{MaxLatencyMs: 5}}); err != nil {
			t.Fatal(err)
		}
		var total float64
		n := 0
		hq.OnEpoch(func(r telemetry.Record) {
			total += r.Chain.LatencyMs
			n++
		})
		w.Run(600)
		return total / float64(n)
	}

	dedicated := run(false)
	shared := run(true)
	if shared <= dedicated {
		t.Fatalf("no noisy-neighbor effect: shared %v ms vs dedicated %v ms", shared, dedicated)
	}
}

// TestMultiTenantIndependentTelemetry verifies that per-chain telemetry
// stays separated: two chains with very different loads must report very
// different utilizations.
func TestMultiTenantIndependentTelemetry(t *testing.T) {
	w := NewWorld(5)
	light, err := w.AddChain(ChainSpec{
		Chain:   chain.New("light", 0, chain.NewGroup("fw", vnf.Firewall, 2, 2)),
		Traffic: traffic.Profile{BaseFPS: 1000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := w.AddChain(ChainSpec{
		Chain:   chain.New("heavy", 0, chain.NewGroup("ids", vnf.IDS, 1, 1)),
		Traffic: traffic.Profile{BaseFPS: 50000, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(600)
	lightU := light.Window.Last().Chain.PerGroup[0].Utilization
	heavyU := heavy.Window.Last().Chain.PerGroup[0].Utilization
	if heavyU < 5*lightU {
		t.Fatalf("telemetry not separated: light %v heavy %v", lightU, heavyU)
	}
	if len(w.Chains()) != 2 {
		t.Fatalf("chains %d", len(w.Chains()))
	}
}
