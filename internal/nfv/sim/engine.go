// Package sim provides the discrete-event simulation engine and the World
// assembly that drives the full NFV substrate: traffic generators feed
// service chains placed on a cluster, telemetry is collected every epoch,
// SLOs are tracked, and an optional autoscaler reacts — all in virtual
// time, reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal discrete-event scheduler.
type Engine struct {
	now float64
	seq uint64
	pq  eventHeap
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (>= now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// Step runs the next event; it returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// until; the clock ends at min(until, last event time).
func (e *Engine) Run(until float64) {
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }
