package infra

import (
	"math"
	"testing"

	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

func TestPlacementSpreadsLoad(t *testing.T) {
	c := NewCluster(3, 8)
	for i := 0; i < 6; i++ {
		if _, err := c.Place(vnf.New(vnf.Firewall, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes {
		if n.PlacedCores() != 4 {
			t.Fatalf("node %d has %d cores placed, want balanced 4", n.ID, n.PlacedCores())
		}
	}
	if got := c.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("cluster utilization %v", got)
	}
}

func TestPlacementRejectsOversize(t *testing.T) {
	c := NewCluster(2, 4)
	if _, err := c.Place(vnf.New(vnf.Firewall, 8)); err == nil {
		t.Fatal("expected placement failure")
	}
	if _, err := (&Cluster{}).Place(vnf.New(vnf.Firewall, 1)); err == nil {
		t.Fatal("expected empty-cluster error")
	}
}

func TestPlacementFillsUp(t *testing.T) {
	c := NewCluster(2, 4)
	placed := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Place(vnf.New(vnf.NAT, 2)); err == nil {
			placed++
		}
	}
	if placed != 4 {
		t.Fatalf("placed %d instances, want 4 (2 nodes × 4 cores / 2)", placed)
	}
}

func TestUnplace(t *testing.T) {
	c := NewCluster(1, 8)
	in := vnf.New(vnf.Firewall, 2)
	if _, err := c.Place(in); err != nil {
		t.Fatal(err)
	}
	c.Unplace(in)
	if c.Nodes[0].PlacedCores() != 0 {
		t.Fatal("unplace failed")
	}
	c.Unplace(in) // double-unplace is a no-op
}

func TestContentionSlowsOversubscribedNode(t *testing.T) {
	c := NewCluster(1, 4)
	a := vnf.New(vnf.DPI, 2)
	b := vnf.New(vnf.DPI, 2)
	if _, err := c.Place(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(b); err != nil {
		t.Fatal(err)
	}
	// Demand exceeding the node: each instance wants 3 cores' worth.
	heavy := func(*vnf.Instance) float64 { return 3 * 2.4e9 }
	c.ApplyContention(heavy)
	if a.CapScale >= 1 || b.CapScale >= 1 {
		t.Fatalf("contention not applied: %v %v", a.CapScale, b.CapScale)
	}
	want := c.Nodes[0].CapacityCycles() / (6 * 2.4e9)
	if math.Abs(a.CapScale-want) > 1e-9 {
		t.Fatalf("cap scale %v want %v", a.CapScale, want)
	}
	// Light demand resets to 1.
	light := func(*vnf.Instance) float64 { return 1e6 }
	c.ApplyContention(light)
	if a.CapScale != 1 || b.CapScale != 1 {
		t.Fatal("contention not cleared")
	}
}

func TestDemandFn(t *testing.T) {
	in := vnf.New(vnf.Firewall, 2)
	d := traffic.Demand{PPS: 1e4, BPS: 4e6, NewFlows: 100}
	fn := DemandFn(d, 1000)
	if got, want := fn(in), in.DemandCycles(d, 1000); got != want {
		t.Fatalf("DemandFn %v want %v", got, want)
	}
}

func TestContentionRaisesVNFUtilization(t *testing.T) {
	// End-to-end: a contended instance reports higher utilization for the
	// same offered load.
	in := vnf.New(vnf.Firewall, 2)
	d := traffic.Demand{PPS: 5e4, BPS: 2e7, AvgPktBytes: 400, NewFlows: 100}
	free := in.Process(d, 1000).Utilization
	in.CapScale = 0.5
	contended := in.Process(d, 1000).Utilization
	if math.Abs(contended-2*free) > 1e-9 {
		t.Fatalf("contended util %v want %v", contended, 2*free)
	}
}
