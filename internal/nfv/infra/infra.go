// Package infra models the NFV infrastructure (NFVI): a cluster of
// homogeneous compute nodes onto which VNF instances are placed. When the
// instances packed on a node demand more cycles than it has, every
// instance on that node is slowed proportionally — the noisy-neighbor
// contention that makes co-located VNF performance coupled.
package infra

import (
	"errors"
	"fmt"

	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// Node is one compute host.
type Node struct {
	ID    int
	Cores int
	// Hz is the per-core clock (default 2.4 GHz).
	Hz float64

	placed []*vnf.Instance
}

func (n *Node) hz() float64 {
	if n.Hz <= 0 {
		return 2.4e9
	}
	return n.Hz
}

// CapacityCycles returns the node's usable cycles/sec.
func (n *Node) CapacityCycles() float64 { return float64(n.Cores) * n.hz() }

// Placed returns the instances on this node.
func (n *Node) Placed() []*vnf.Instance { return n.placed }

// Cluster is a set of nodes with instance placement.
type Cluster struct {
	Nodes []*Node

	next int // round-robin cursor
}

// NewCluster builds n homogeneous nodes of the given core count.
func NewCluster(n, coresPerNode int) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &Node{ID: i, Cores: coresPerNode})
	}
	return c
}

// Place assigns an instance to the least-loaded node (by placed cores),
// falling back to round-robin among ties. It returns the node or an error
// if no node can fit the instance's cores.
func (c *Cluster) Place(in *vnf.Instance) (*Node, error) {
	if len(c.Nodes) == 0 {
		return nil, errors.New("infra: empty cluster")
	}
	var best *Node
	bestFree := -1 << 30
	for i := range c.Nodes {
		n := c.Nodes[(c.next+i)%len(c.Nodes)]
		free := n.Cores - placedCores(n)
		if free >= in.Cores && free > bestFree {
			best = n
			bestFree = free
		}
	}
	if best == nil {
		return nil, fmt.Errorf("infra: no node fits %d cores", in.Cores)
	}
	c.next = (best.ID + 1) % len(c.Nodes)
	best.placed = append(best.placed, in)
	return best, nil
}

// Unplace removes an instance from whichever node holds it.
func (c *Cluster) Unplace(in *vnf.Instance) {
	for _, n := range c.Nodes {
		for i, p := range n.placed {
			if p == in {
				n.placed = append(n.placed[:i], n.placed[i+1:]...)
				return
			}
		}
	}
}

func placedCores(n *Node) int {
	total := 0
	for _, in := range n.placed {
		total += in.Cores
	}
	return total
}

// PlacedCores returns the cores currently committed on the node.
func (n *Node) PlacedCores() int { return placedCores(n) }

// ApplyContention inspects each node's aggregate demand for the epoch and
// sets every placed instance's CapScale: 1.0 when the node keeps up,
// capacity/demand when oversubscribed. demandOf must return the cycles/sec
// the instance would consume unthrottled.
func (c *Cluster) ApplyContention(demandOf func(*vnf.Instance) float64) {
	for _, n := range c.Nodes {
		var total float64
		for _, in := range n.placed {
			in.CapScale = 1
			total += demandOf(in)
		}
		capacity := n.CapacityCycles()
		if total > capacity && total > 0 {
			scale := capacity / total
			for _, in := range n.placed {
				in.CapScale = scale
			}
		}
	}
}

// DemandFn builds a demandOf callback for ApplyContention given the
// per-instance demand share for this epoch.
func DemandFn(share traffic.Demand, activeFlowsPerInstance float64) func(*vnf.Instance) float64 {
	return func(in *vnf.Instance) float64 {
		return in.DemandCycles(share, activeFlowsPerInstance)
	}
}

// Utilization returns the cluster-wide placed-core fraction.
func (c *Cluster) Utilization() float64 {
	var used, total int
	for _, n := range c.Nodes {
		used += placedCores(n)
		total += n.Cores
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}
