// Package packet implements byte-level packet encoding and decoding for
// the NFV substrate, following the gopacket idioms: packets decompose into
// Layers, known layers are reachable through NetworkLayer/TransportLayer
// accessors, and protocol-independent Flow/Endpoint values (comparable,
// usable as map keys, with a symmetric FastHash for load balancing) carry
// the "from A to B" relation. Supported layers: Ethernet, IPv4, TCP, UDP,
// and opaque payload.
package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// LayerType identifies a protocol layer.
type LayerType int

// Known layer types.
const (
	LayerTypeEthernet LayerType = iota
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one decoded protocol layer.
type Layer interface {
	LayerType() LayerType
	// LayerContents returns the header bytes of this layer.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries.
	LayerPayload() []byte
}

// EtherType values understood by the decoder.
const EtherTypeIPv4 = 0x0800

// IP protocol numbers understood by the decoder.
const (
	IPProtoTCP = 6
	IPProtoUDP = 17
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	SrcMAC, DstMAC [6]byte
	EtherType      uint16

	contents, payload []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents implements Layer.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// IPv4 is a decoded IPv4 header (options unsupported, IHL must be 5).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcIP    [4]byte
	DstIP    [4]byte

	contents, payload []byte
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NetworkFlow returns the IPv4 endpoint pair.
func (ip *IPv4) NetworkFlow() Flow {
	return Flow{src: IPEndpoint(ip.SrcIP), dst: IPEndpoint(ip.DstIP)}
}

// TCP is a decoded TCP header (options retained opaquely in contents).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	SYN, ACK, FIN    bool
	RST, PSH, URG    bool
	Window           uint16

	contents, payload []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// TransportFlow returns the TCP port endpoint pair.
func (t *TCP) TransportFlow() Flow {
	return Flow{src: PortEndpoint(EndpointTCPPort, t.SrcPort), dst: PortEndpoint(EndpointTCPPort, t.DstPort)}
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16

	contents, payload []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerContents implements Layer.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// TransportFlow returns the UDP port endpoint pair.
func (u *UDP) TransportFlow() Flow {
	return Flow{src: PortEndpoint(EndpointUDPPort, u.SrcPort), dst: PortEndpoint(EndpointUDPPort, u.DstPort)}
}

// Payload is an opaque application layer.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents implements Layer.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload implements Layer.
func (p Payload) LayerPayload() []byte { return nil }

// Packet is a fully decoded packet. Decoding is eager, so a Packet is safe
// for concurrent reads (unlike lazy decoders).
type Packet struct {
	data   []byte
	layers []Layer
	err    error
}

// Decode parses data starting at the Ethernet layer. Decoding stops at the
// first malformed layer; already-decoded layers remain available and Err
// reports the failure.
func Decode(data []byte) *Packet {
	p := &Packet{data: data}
	p.decodeEthernet(data)
	return p
}

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers in order.
func (p *Packet) Layers() []Layer { return p.layers }

// Err returns the first decoding error, if any.
func (p *Packet) Err() error { return p.err }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// NetworkLayer returns the IPv4 layer, or nil.
func (p *Packet) NetworkLayer() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// TransportLayer returns the TCP or UDP layer, or nil.
func (p *Packet) TransportLayer() Layer {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l
	}
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l
	}
	return nil
}

// ApplicationPayload returns the innermost payload bytes (nil if none).
func (p *Packet) ApplicationPayload() []byte {
	if l := p.Layer(LayerTypePayload); l != nil {
		return l.LayerContents()
	}
	return nil
}

// FiveTuple returns the canonical (src ip, dst ip, proto, src port, dst
// port) flow key, and false when the packet has no IPv4+TCP/UDP layers.
func (p *Packet) FiveTuple() (FiveTuple, bool) {
	ip := p.NetworkLayer()
	if ip == nil {
		return FiveTuple{}, false
	}
	switch tl := p.TransportLayer().(type) {
	case *TCP:
		return FiveTuple{Src: ip.SrcIP, Dst: ip.DstIP, Proto: IPProtoTCP, SrcPort: tl.SrcPort, DstPort: tl.DstPort}, true
	case *UDP:
		return FiveTuple{Src: ip.SrcIP, Dst: ip.DstIP, Proto: IPProtoUDP, SrcPort: tl.SrcPort, DstPort: tl.DstPort}, true
	default:
		return FiveTuple{}, false
	}
}

func (p *Packet) decodeEthernet(data []byte) {
	if len(data) < 14 {
		p.err = fmt.Errorf("packet: ethernet header truncated (%d bytes)", len(data))
		return
	}
	eth := &Ethernet{
		EtherType: binary.BigEndian.Uint16(data[12:14]),
		contents:  data[:14],
		payload:   data[14:],
	}
	copy(eth.DstMAC[:], data[0:6])
	copy(eth.SrcMAC[:], data[6:12])
	p.layers = append(p.layers, eth)
	if eth.EtherType == EtherTypeIPv4 {
		p.decodeIPv4(eth.payload)
	} else if len(eth.payload) > 0 {
		p.layers = append(p.layers, Payload(eth.payload))
	}
}

func (p *Packet) decodeIPv4(data []byte) {
	if len(data) < 20 {
		p.err = fmt.Errorf("packet: ipv4 header truncated (%d bytes)", len(data))
		return
	}
	if v := data[0] >> 4; v != 4 {
		p.err = fmt.Errorf("packet: ipv4 version %d", v)
		return
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl != 20 {
		p.err = fmt.Errorf("packet: ipv4 options unsupported (ihl %d)", ihl)
		return
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		p.err = fmt.Errorf("packet: ipv4 total length %d out of range", total)
		return
	}
	ip := &IPv4{
		TOS:      data[1],
		Length:   uint16(total),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		TTL:      data[8],
		Protocol: data[9],
		Checksum: binary.BigEndian.Uint16(data[10:12]),
		contents: data[:ihl],
		payload:  data[ihl:total],
	}
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	if got := headerChecksum(data[:ihl]); got != 0 {
		p.layers = append(p.layers, ip)
		p.err = fmt.Errorf("packet: ipv4 checksum mismatch")
		return
	}
	p.layers = append(p.layers, ip)
	switch ip.Protocol {
	case IPProtoTCP:
		p.decodeTCP(ip.payload)
	case IPProtoUDP:
		p.decodeUDP(ip.payload)
	default:
		if len(ip.payload) > 0 {
			p.layers = append(p.layers, Payload(ip.payload))
		}
	}
}

func (p *Packet) decodeTCP(data []byte) {
	if len(data) < 20 {
		p.err = fmt.Errorf("packet: tcp header truncated (%d bytes)", len(data))
		return
	}
	off := int(data[12]>>4) * 4
	if off < 20 || off > len(data) {
		p.err = fmt.Errorf("packet: tcp data offset %d out of range", off)
		return
	}
	flags := data[13]
	t := &TCP{
		SrcPort:    binary.BigEndian.Uint16(data[0:2]),
		DstPort:    binary.BigEndian.Uint16(data[2:4]),
		Seq:        binary.BigEndian.Uint32(data[4:8]),
		Ack:        binary.BigEndian.Uint32(data[8:12]),
		DataOffset: data[12] >> 4,
		FIN:        flags&0x01 != 0,
		SYN:        flags&0x02 != 0,
		RST:        flags&0x04 != 0,
		PSH:        flags&0x08 != 0,
		ACK:        flags&0x10 != 0,
		URG:        flags&0x20 != 0,
		Window:     binary.BigEndian.Uint16(data[14:16]),
		contents:   data[:off],
		payload:    data[off:],
	}
	p.layers = append(p.layers, t)
	if len(t.payload) > 0 {
		p.layers = append(p.layers, Payload(t.payload))
	}
}

func (p *Packet) decodeUDP(data []byte) {
	if len(data) < 8 {
		p.err = fmt.Errorf("packet: udp header truncated (%d bytes)", len(data))
		return
	}
	length := binary.BigEndian.Uint16(data[4:6])
	if int(length) < 8 || int(length) > len(data) {
		p.err = fmt.Errorf("packet: udp length %d out of range", length)
		return
	}
	u := &UDP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Length:   length,
		contents: data[:8],
		payload:  data[8:length],
	}
	p.layers = append(p.layers, u)
	if len(u.payload) > 0 {
		p.layers = append(p.layers, Payload(u.payload))
	}
}

// headerChecksum computes the RFC 791 ones-complement header checksum;
// over a header with a correct checksum field it returns 0.
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// FiveTuple is the canonical connection key.
type FiveTuple struct {
	Src, Dst         [4]byte
	Proto            uint8
	SrcPort, DstPort uint16
}

// Reverse returns the tuple with direction swapped.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, Proto: f.Proto, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// String implements fmt.Stringer.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d",
		net.IP(f.Src[:]).String(), f.SrcPort, net.IP(f.Dst[:]).String(), f.DstPort, f.Proto)
}

// Hash returns a direction-symmetric FNV-style hash: a flow and its
// reverse hash identically, so bidirectional traffic shards to the same
// worker (the gopacket FastHash property).
func (f FiveTuple) Hash() uint64 {
	a := endpointKey(f.Src, f.SrcPort)
	b := endpointKey(f.Dst, f.DstPort)
	// Combine symmetrically, then mix in the protocol.
	h := mix(a^b) ^ mix(a+b)
	return mix(h ^ uint64(f.Proto))
}

func endpointKey(ip [4]byte, port uint16) uint64 {
	return uint64(binary.BigEndian.Uint32(ip[:]))<<16 | uint64(port)
}

func mix(x uint64) uint64 {
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
