package packet

import (
	"encoding/binary"
	"fmt"
)

// Builder assembles valid packet bytes layer by layer; it is the inverse
// of Decode and is used by the traffic synthesizer and tests.
type Builder struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   [4]byte
	TTL            uint8
	TOS            uint8
	ID             uint16
}

// TCPOpts carries the TCP header fields for BuildTCP.
type TCPOpts struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	SYN, ACK, FIN    bool
	RST, PSH, URG    bool
	Window           uint16
}

// BuildTCP returns Ethernet+IPv4+TCP+payload bytes.
func (b *Builder) BuildTCP(o TCPOpts, payload []byte) []byte {
	tcp := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(tcp[0:2], o.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], o.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], o.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], o.Ack)
	tcp[12] = 5 << 4 // data offset: 5 words
	var flags byte
	if o.FIN {
		flags |= 0x01
	}
	if o.SYN {
		flags |= 0x02
	}
	if o.RST {
		flags |= 0x04
	}
	if o.PSH {
		flags |= 0x08
	}
	if o.ACK {
		flags |= 0x10
	}
	if o.URG {
		flags |= 0x20
	}
	tcp[13] = flags
	win := o.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(tcp[14:16], win)
	copy(tcp[20:], payload)
	return b.wrapIP(IPProtoTCP, tcp)
}

// BuildUDP returns Ethernet+IPv4+UDP+payload bytes.
func (b *Builder) BuildUDP(srcPort, dstPort uint16, payload []byte) []byte {
	udp := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(udp[0:2], srcPort)
	binary.BigEndian.PutUint16(udp[2:4], dstPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(8+len(payload)))
	copy(udp[8:], payload)
	return b.wrapIP(IPProtoUDP, udp)
}

// wrapIP prepends IPv4 and Ethernet headers around an L4 segment.
func (b *Builder) wrapIP(proto uint8, l4 []byte) []byte {
	total := 20 + len(l4)
	if total > 0xFFFF {
		panic(fmt.Sprintf("packet: payload too large (%d bytes)", total))
	}
	buf := make([]byte, 14+total)
	// Ethernet.
	copy(buf[0:6], b.DstMAC[:])
	copy(buf[6:12], b.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)
	// IPv4.
	ip := buf[14:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = b.TOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(total))
	binary.BigEndian.PutUint16(ip[4:6], b.ID)
	ttl := b.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = proto
	copy(ip[12:16], b.SrcIP[:])
	copy(ip[16:20], b.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], headerChecksum(ip[:20]))
	copy(ip[20:], l4)
	return buf
}
