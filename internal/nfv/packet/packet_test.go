package packet

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testBuilder() *Builder {
	return &Builder{
		SrcMAC: [6]byte{0x02, 0, 0, 0, 0, 1},
		DstMAC: [6]byte{0x02, 0, 0, 0, 0, 2},
		SrcIP:  [4]byte{10, 0, 0, 1},
		DstIP:  [4]byte{10, 0, 0, 2},
	}
}

func TestTCPRoundTrip(t *testing.T) {
	b := testBuilder()
	data := b.BuildTCP(TCPOpts{SrcPort: 443, DstPort: 51000, Seq: 7, Ack: 9, SYN: true, ACK: true}, []byte("hello"))
	p := Decode(data)
	if p.Err() != nil {
		t.Fatalf("decode error: %v", p.Err())
	}
	eth := p.Layer(LayerTypeEthernet).(*Ethernet)
	if eth.SrcMAC != b.SrcMAC || eth.DstMAC != b.DstMAC || eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet fields wrong: %+v", eth)
	}
	ip := p.NetworkLayer()
	if ip == nil || ip.SrcIP != b.SrcIP || ip.DstIP != b.DstIP || ip.Protocol != IPProtoTCP {
		t.Fatalf("ip fields wrong: %+v", ip)
	}
	tcp, ok := p.TransportLayer().(*TCP)
	if !ok {
		t.Fatal("no TCP layer")
	}
	if tcp.SrcPort != 443 || tcp.DstPort != 51000 || tcp.Seq != 7 || tcp.Ack != 9 {
		t.Fatalf("tcp fields wrong: %+v", tcp)
	}
	if !tcp.SYN || !tcp.ACK || tcp.FIN || tcp.RST {
		t.Fatalf("tcp flags wrong: %+v", tcp)
	}
	if string(p.ApplicationPayload()) != "hello" {
		t.Fatalf("payload = %q", p.ApplicationPayload())
	}
}

func TestUDPRoundTrip(t *testing.T) {
	b := testBuilder()
	data := b.BuildUDP(53, 33000, []byte("dns?"))
	p := Decode(data)
	if p.Err() != nil {
		t.Fatalf("decode error: %v", p.Err())
	}
	udp, ok := p.TransportLayer().(*UDP)
	if !ok {
		t.Fatal("no UDP layer")
	}
	if udp.SrcPort != 53 || udp.DstPort != 33000 || udp.Length != 12 {
		t.Fatalf("udp fields wrong: %+v", udp)
	}
	if string(p.ApplicationPayload()) != "dns?" {
		t.Fatalf("payload = %q", p.ApplicationPayload())
	}
}

func TestFiveTuple(t *testing.T) {
	b := testBuilder()
	p := Decode(b.BuildTCP(TCPOpts{SrcPort: 80, DstPort: 1234}, nil))
	ft, ok := p.FiveTuple()
	if !ok {
		t.Fatal("no five-tuple")
	}
	if ft.SrcPort != 80 || ft.DstPort != 1234 || ft.Proto != IPProtoTCP {
		t.Fatalf("five-tuple wrong: %+v", ft)
	}
	rev := ft.Reverse()
	if rev.SrcPort != 1234 || rev.Src != ft.Dst {
		t.Fatalf("reverse wrong: %+v", rev)
	}
	if !strings.Contains(ft.String(), "10.0.0.1:80") {
		t.Fatalf("String = %q", ft.String())
	}
}

func TestFiveTupleHashSymmetric(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16, proto uint8) bool {
		var src, dst [4]byte
		src[0], src[1], src[2], src[3] = byte(a>>24), byte(a>>16), byte(a>>8), byte(a)
		dst[0], dst[1], dst[2], dst[3] = byte(b>>24), byte(b>>16), byte(b>>8), byte(b)
		ft := FiveTuple{Src: src, Dst: dst, Proto: proto, SrcPort: sp, DstPort: dp}
		return ft.Hash() == ft.Reverse().Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleHashSpreads(t *testing.T) {
	// Hash must spread distinct flows across shards reasonably evenly.
	rng := rand.New(rand.NewSource(1))
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 8000; i++ {
		ft := FiveTuple{
			Src:     [4]byte{10, 0, byte(rng.Intn(256)), byte(rng.Intn(256))},
			Dst:     [4]byte{10, 1, byte(rng.Intn(256)), byte(rng.Intn(256))},
			Proto:   IPProtoTCP,
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: 443,
		}
		counts[ft.Hash()%shards]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("shard %d has %d of 8000 flows", s, c)
		}
	}
}

func TestTruncatedPackets(t *testing.T) {
	b := testBuilder()
	full := b.BuildTCP(TCPOpts{SrcPort: 1, DstPort: 2}, []byte("xyz"))
	for _, n := range []int{0, 5, 13, 20, 33, 40, 53} {
		if n >= len(full) {
			continue
		}
		p := Decode(full[:n])
		if p.Err() == nil {
			t.Fatalf("truncation at %d bytes not detected", n)
		}
	}
}

func TestChecksumValidation(t *testing.T) {
	b := testBuilder()
	data := b.BuildTCP(TCPOpts{SrcPort: 1, DstPort: 2}, nil)
	// Corrupt one IP header byte (TTL) without fixing the checksum.
	data[14+8] ^= 0xFF
	p := Decode(data)
	if p.Err() == nil || !strings.Contains(p.Err().Error(), "checksum") {
		t.Fatalf("checksum corruption not detected: %v", p.Err())
	}
	// The IPv4 layer is still surfaced for inspection.
	if p.NetworkLayer() == nil {
		t.Fatal("corrupted IPv4 layer not retained")
	}
}

func TestNonIPv4EtherType(t *testing.T) {
	b := testBuilder()
	data := b.BuildUDP(1, 2, nil)
	data[12], data[13] = 0x86, 0xDD // pretend IPv6
	p := Decode(data)
	if p.Err() != nil {
		t.Fatalf("unknown ethertype should not error: %v", p.Err())
	}
	if p.NetworkLayer() != nil {
		t.Fatal("no IPv4 layer expected")
	}
	if p.Layer(LayerTypePayload) == nil {
		t.Fatal("payload layer expected for unknown ethertype")
	}
}

func TestLayersOrder(t *testing.T) {
	b := testBuilder()
	p := Decode(b.BuildTCP(TCPOpts{SrcPort: 9, DstPort: 10}, []byte("z")))
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP, LayerTypePayload}
	layers := p.Layers()
	if len(layers) != len(want) {
		t.Fatalf("layer count %d want %d", len(layers), len(want))
	}
	for i, l := range layers {
		if l.LayerType() != want[i] {
			t.Fatalf("layer %d = %v want %v", i, l.LayerType(), want[i])
		}
	}
}

func TestLayerContentsAndPayloadPartition(t *testing.T) {
	// Each layer's contents+payload must tile the enclosing layer payload.
	b := testBuilder()
	p := Decode(b.BuildUDP(5, 6, []byte("abcdef")))
	ip := p.NetworkLayer()
	udp := p.TransportLayer().(*UDP)
	if len(ip.LayerContents())+len(ip.LayerPayload()) != int(ip.Length) {
		t.Fatal("ipv4 contents+payload != total length")
	}
	if len(udp.LayerContents())+len(udp.LayerPayload()) != int(udp.Length) {
		t.Fatal("udp contents+payload != length")
	}
}

func TestEndpointsAndFlows(t *testing.T) {
	ip1 := IPEndpoint([4]byte{192, 168, 0, 1})
	ip2 := IPEndpoint([4]byte{192, 168, 0, 2})
	f := NewFlow(ip1, ip2)
	src, dst := f.Endpoints()
	if src != ip1 || dst != ip2 {
		t.Fatal("Endpoints mismatch")
	}
	if f.Reverse().Src() != ip2 {
		t.Fatal("Reverse mismatch")
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Fatal("flow FastHash not symmetric")
	}
	if f.String() != "192.168.0.1->192.168.0.2" {
		t.Fatalf("String = %q", f.String())
	}
	// Endpoints must be valid map keys.
	m := map[Endpoint]int{ip1: 1, ip2: 2}
	if m[IPEndpoint([4]byte{192, 168, 0, 1})] != 1 {
		t.Fatal("endpoint map lookup failed")
	}
	mf := map[Flow]string{f: "x"}
	if mf[NewFlow(ip1, ip2)] != "x" {
		t.Fatal("flow map lookup failed")
	}
}

func TestEndpointStrings(t *testing.T) {
	if got := IPEndpoint([4]byte{1, 2, 3, 4}).String(); got != "1.2.3.4" {
		t.Fatalf("ip endpoint = %q", got)
	}
	if got := PortEndpoint(EndpointTCPPort, 8080).String(); got != "8080" {
		t.Fatalf("port endpoint = %q", got)
	}
	mac := MACEndpoint([6]byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF})
	if got := mac.String(); got != "aa:bb:cc:dd:ee:ff" {
		t.Fatalf("mac endpoint = %q", got)
	}
	if mac.Type() != EndpointMAC || len(mac.Raw()) != 6 {
		t.Fatal("mac endpoint metadata")
	}
}

func TestTransportFlows(t *testing.T) {
	b := testBuilder()
	p := Decode(b.BuildTCP(TCPOpts{SrcPort: 80, DstPort: 443}, nil))
	tf := p.TransportLayer().(*TCP).TransportFlow()
	if tf.Src().String() != "80" || tf.Dst().String() != "443" {
		t.Fatalf("transport flow = %v", tf)
	}
	nf := p.NetworkLayer().NetworkFlow()
	if nf.Src().String() != "10.0.0.1" {
		t.Fatalf("network flow = %v", nf)
	}
	u := Decode(b.BuildUDP(1000, 500, nil))
	uf := u.TransportLayer().(*UDP).TransportFlow()
	if uf.Src().Type() != EndpointUDPPort {
		t.Fatal("udp endpoint type")
	}
}

func TestPropertyTCPRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &Builder{
			SrcIP: [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			DstIP: [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
		}
		payload := make([]byte, rng.Intn(1200))
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		sp, dp := uint16(rng.Intn(65536)), uint16(rng.Intn(65536))
		p := Decode(b.BuildTCP(TCPOpts{SrcPort: sp, DstPort: dp}, payload))
		if p.Err() != nil {
			return false
		}
		ft, ok := p.FiveTuple()
		if !ok || ft.SrcPort != sp || ft.DstPort != dp {
			return false
		}
		got := p.ApplicationPayload()
		if len(got) != len(payload) {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeEthernet: "Ethernet", LayerTypeIPv4: "IPv4",
		LayerTypeTCP: "TCP", LayerTypeUDP: "UDP", LayerTypePayload: "Payload",
	} {
		if lt.String() != want {
			t.Fatalf("String(%d) = %q", lt, lt.String())
		}
	}
	if !strings.Contains(LayerType(99).String(), "99") {
		t.Fatal("unknown layer type string")
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	data := testBuilder().BuildTCP(TCPOpts{SrcPort: 443, DstPort: 51000}, make([]byte, 512))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Decode(data)
		if p.Err() != nil {
			b.Fatal(p.Err())
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}, Proto: 6, SrcPort: 443, DstPort: 51000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ft.Hash()
	}
}
