package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// EndpointType discriminates endpoint address families.
type EndpointType uint8

// Endpoint kinds.
const (
	EndpointIPv4 EndpointType = iota
	EndpointTCPPort
	EndpointUDPPort
	EndpointMAC
)

// Endpoint is a hashable, comparable representation of one side of a flow.
// It can be used directly as a map key.
type Endpoint struct {
	typ EndpointType
	raw [8]byte
	n   uint8
}

// IPEndpoint builds an IPv4 endpoint.
func IPEndpoint(ip [4]byte) Endpoint {
	var e Endpoint
	e.typ = EndpointIPv4
	copy(e.raw[:], ip[:])
	e.n = 4
	return e
}

// PortEndpoint builds a TCP or UDP port endpoint.
func PortEndpoint(t EndpointType, port uint16) Endpoint {
	var e Endpoint
	e.typ = t
	binary.BigEndian.PutUint16(e.raw[:2], port)
	e.n = 2
	return e
}

// MACEndpoint builds a link-layer endpoint.
func MACEndpoint(mac [6]byte) Endpoint {
	var e Endpoint
	e.typ = EndpointMAC
	copy(e.raw[:], mac[:])
	e.n = 6
	return e
}

// Type returns the endpoint's address family.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns the raw address bytes.
func (e Endpoint) Raw() []byte { return e.raw[:e.n] }

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	switch e.typ {
	case EndpointIPv4:
		return net.IP(e.raw[:4]).String()
	case EndpointTCPPort, EndpointUDPPort:
		return fmt.Sprintf("%d", binary.BigEndian.Uint16(e.raw[:2]))
	case EndpointMAC:
		return net.HardwareAddr(e.raw[:6]).String()
	default:
		return fmt.Sprintf("endpoint(%d)", e.typ)
	}
}

// FastHash returns a non-cryptographic hash of the endpoint.
func (e Endpoint) FastHash() uint64 {
	return mix(uint64(e.typ)<<56 ^ binary.BigEndian.Uint64(e.raw[:]))
}

// Flow is a (src, dst) endpoint pair; comparable and map-key usable.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow from two endpoints of the same type.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the (src, dst) pair.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// String implements fmt.Stringer.
func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }

// FastHash returns a symmetric hash: f.FastHash() == f.Reverse().FastHash(),
// so both directions of a conversation shard identically.
func (f Flow) FastHash() uint64 {
	a, b := f.src.FastHash(), f.dst.FastHash()
	return mix(a^b) ^ mix(a+b)
}
