package telemetry

import (
	"math"
	"sync"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d want 8000", c.Value())
	}
}

func TestGaugeSetValue(t *testing.T) {
	var g Gauge
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("rx_packets").Add(5)
	r.Gauge("cpu_util").Set(0.7)
	// Same name returns the same metric.
	r.Counter("rx_packets").Add(3)
	snap := r.Snapshot()
	if snap["rx_packets"] != 8 || snap["cpu_util"] != 0.7 {
		t.Fatalf("snapshot %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "cpu_util" || names[1] != "rx_packets" {
		t.Fatalf("names %v", names)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Push(Record{TimeSec: float64(i)})
	}
	if w.Len() != 3 {
		t.Fatalf("window len %d", w.Len())
	}
	if w.At(0).TimeSec != 2 || w.Last().TimeSec != 4 {
		t.Fatalf("window contents wrong: %v..%v", w.At(0).TimeSec, w.Last().TimeSec)
	}
	if NewWindow(0).Cap() != 1 {
		t.Fatal("window floor")
	}
}

func record(tsec, pps float64, hour float64, groups ...chain.GroupResult) Record {
	return Record{
		TimeSec:    tsec,
		HourOfDay:  hour,
		Demand:     traffic.Demand{PPS: pps, BPS: pps * 500, AvgPktBytes: 500, NewFlows: int(pps / 100), ActiveFlows: int(pps / 10)},
		Chain:      chain.Result{PerGroup: groups, LatencyMs: 2, LossRate: 0.001},
		TotalCores: 8,
	}
}

func TestFeatureSchemaMatchesValues(t *testing.T) {
	names := FeatureNames([]string{"fw", "nat"})
	w := NewWindow(8)
	gr := []chain.GroupResult{
		{Name: "fw", Kind: vnf.Firewall, Replicas: 2, Utilization: 0.5, LatencyMs: 1, StateFactor: 1},
		{Name: "nat", Kind: vnf.NAT, Replicas: 1, Utilization: 0.3, LatencyMs: 0.5, StateFactor: 1.2},
	}
	w.Push(record(0, 1000, 6, gr...))
	w.Push(record(5, 2000, 6.1, gr...))
	feats := Features(w)
	if len(feats) != len(names) {
		t.Fatalf("features %d != names %d", len(feats), len(names))
	}
	get := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return feats[i]
			}
		}
		t.Fatalf("no feature %q", name)
		return 0
	}
	if get("pps") != 2000 {
		t.Fatalf("pps = %v", get("pps"))
	}
	if get("pps_lag1") != 1000 {
		t.Fatalf("pps_lag1 = %v", get("pps_lag1"))
	}
	if get("pps_delta") != 1000 {
		t.Fatalf("pps_delta = %v", get("pps_delta"))
	}
	if get("util_fw") != 0.5 || get("util_nat") != 0.3 {
		t.Fatal("per-group utils wrong")
	}
	if get("replicas_nat") != 1 {
		t.Fatal("replicas wrong")
	}
	if get("total_cores") != 8 {
		t.Fatal("total_cores wrong")
	}
	// hour encoding is on the unit circle.
	hs, hc := get("hour_sin"), get("hour_cos")
	if math.Abs(hs*hs+hc*hc-1) > 1e-9 {
		t.Fatal("hour encoding not on unit circle")
	}
}

func TestFeaturesSingleRecordLagFallback(t *testing.T) {
	w := NewWindow(4)
	w.Push(record(0, 1500, 12))
	feats := Features(w)
	names := FeatureNames(nil)
	for i, n := range names {
		if n == "pps_lag1" && feats[i] != 1500 {
			t.Fatalf("lag fallback = %v", feats[i])
		}
		if n == "pps_delta" && feats[i] != 0 {
			t.Fatalf("delta fallback = %v", feats[i])
		}
	}
}

func TestExtractorPairsFeaturesWithNextEpochTarget(t *testing.T) {
	e := NewExtractor(TargetBottleneckUtil, 0, []string{"fw"})
	mk := func(util float64) Record {
		return record(0, 1000, 0, chain.GroupResult{Name: "fw", Replicas: 1, Utilization: util})
	}
	e.Push(mk(0.2))
	if e.Dataset().Len() != 0 {
		t.Fatal("first push should produce no row")
	}
	e.Push(mk(0.9))
	if e.Dataset().Len() != 1 {
		t.Fatalf("rows = %d", e.Dataset().Len())
	}
	// The target of the first row is the *second* epoch's util.
	if e.Dataset().Y[0] != 0.9 {
		t.Fatalf("target = %v want 0.9 (next epoch)", e.Dataset().Y[0])
	}
	e.Push(mk(0.1))
	if e.Dataset().Y[1] != 0.1 {
		t.Fatalf("second target = %v", e.Dataset().Y[1])
	}
}

func TestExtractorViolationTarget(t *testing.T) {
	e := NewExtractor(TargetViolation, 5, []string{"fw"})
	if e.Dataset().Task != dataset.Classification {
		t.Fatal("violation extractor should be classification")
	}
	ok := record(0, 100, 0, chain.GroupResult{Name: "fw"})
	bad := ok
	bad.Chain.LatencyMs = 10 // above SLO 5ms
	e.Push(ok)
	e.Push(bad)
	e.Push(ok)
	y := e.Dataset().Y
	if y[0] != 1 {
		t.Fatalf("violation not labeled: %v", y)
	}
	if y[1] != 0 {
		t.Fatalf("non-violation mislabeled: %v", y)
	}
}

func TestExtractorLatencyTarget(t *testing.T) {
	e := NewExtractor(TargetChainLatency, 0, nil)
	r1 := record(0, 100, 0)
	r2 := record(5, 100, 0)
	r2.Chain.LatencyMs = 42
	e.Push(r1)
	e.Push(r2)
	if e.Dataset().Y[0] != 42 {
		t.Fatalf("latency target = %v", e.Dataset().Y[0])
	}
	if e.String() == "" {
		t.Fatal("String empty")
	}
}

// TestWindowRingEdgeCases exercises the ring buffer at and past capacity:
// ordering across many wraparounds, Last on a partially filled window,
// and the panics on empty/out-of-range access.
func TestWindowRingEdgeCases(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Cap() != 4 {
		t.Fatalf("fresh window len=%d cap=%d", w.Len(), w.Cap())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Last on empty window did not panic")
			}
		}()
		w.Last()
	}()
	// Partially filled: Last tracks the newest record, At the oldest.
	w.Push(Record{TimeSec: 0})
	w.Push(Record{TimeSec: 1})
	if w.Len() != 2 || w.Last().TimeSec != 1 || w.At(0).TimeSec != 0 {
		t.Fatalf("partial window: len=%d last=%v at0=%v", w.Len(), w.Last().TimeSec, w.At(0).TimeSec)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At past Len did not panic")
			}
		}()
		w.At(2)
	}()
	// Push far past capacity: the window must always hold the newest Cap
	// records in order, across many head wraparounds.
	for i := 2; i < 103; i++ {
		w.Push(Record{TimeSec: float64(i)})
		if w.Len() != minInt(i+1, 4) {
			t.Fatalf("len %d after %d pushes", w.Len(), i+1)
		}
		for j := 0; j < w.Len(); j++ {
			want := float64(i - w.Len() + 1 + j)
			if w.At(j).TimeSec != want {
				t.Fatalf("after push %d: At(%d)=%v want %v", i, j, w.At(j).TimeSec, want)
			}
		}
		if w.Last().TimeSec != float64(i) {
			t.Fatalf("last %v after push %d", w.Last().TimeSec, i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At(-1) did not panic")
			}
		}()
		w.At(-1)
	}()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestExtractorMaxRowsBounds checks the streaming accumulation: with
// MaxRows set, the dataset keeps only the newest rows (within the trim
// slack) and the kept rows are the most recent examples.
func TestExtractorMaxRowsBounds(t *testing.T) {
	e := NewExtractor(TargetChainLatency, 0, nil)
	e.MaxRows = 20
	for i := 0; i < 200; i++ {
		r := record(float64(i*5), 100, 0)
		r.Chain.LatencyMs = float64(i)
		added := e.Push(r)
		if (i == 0) == added {
			t.Fatalf("push %d reported added=%v", i, added)
		}
	}
	ds := e.Dataset()
	if ds.Len() < 20 || ds.Len() > 25 {
		t.Fatalf("bounded dataset has %d rows, want [20, 25]", ds.Len())
	}
	// Targets are the most recent latencies, contiguous and in order.
	last := ds.Y[len(ds.Y)-1]
	if last != 199 {
		t.Fatalf("newest target %v, want 199", last)
	}
	for i, y := range ds.Y {
		if want := last - float64(len(ds.Y)-1-i); y != want {
			t.Fatalf("row %d target %v, want %v", i, y, want)
		}
	}
	// Unbounded extractor keeps everything.
	e2 := NewExtractor(TargetChainLatency, 0, nil)
	for i := 0; i < 50; i++ {
		e2.Push(record(float64(i*5), 100, 0))
	}
	if e2.Dataset().Len() != 49 {
		t.Fatalf("unbounded rows %d, want 49", e2.Dataset().Len())
	}
}
