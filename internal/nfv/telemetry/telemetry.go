// Package telemetry implements the monitoring plane of the NFV substrate:
// atomic counters and gauges that data-plane components bump and a
// collector polls periodically (the XDP/eBPF counter-map pattern), plus
// the per-epoch Record structure and the feature extraction that turns a
// telemetry window into the tabular rows consumed by the ML models.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/traffic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry names counters and gauges. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all metric values by name (counters as float64).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Names returns all metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Record is the telemetry of one chain over one epoch — the raw material
// for both dashboards and training data.
type Record struct {
	TimeSec   float64
	HourOfDay float64

	Demand traffic.Demand
	Chain  chain.Result

	// TotalCores is the chain's allocation during the epoch.
	TotalCores int
}

// Window is a bounded sliding window of records.
type Window struct {
	cap  int
	recs []Record
}

// NewWindow returns a window holding up to n records.
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{cap: n}
}

// Push appends a record, evicting the oldest beyond capacity.
func (w *Window) Push(r Record) {
	w.recs = append(w.recs, r)
	if len(w.recs) > w.cap {
		w.recs = w.recs[1:]
	}
}

// Len returns the number of buffered records.
func (w *Window) Len() int { return len(w.recs) }

// At returns the i-th oldest record.
func (w *Window) At(i int) Record { return w.recs[i] }

// Last returns the most recent record; it panics on an empty window.
func (w *Window) Last() Record { return w.recs[len(w.recs)-1] }

// FeatureNames returns the feature schema produced by Features for a
// chain with the given group names, in order.
func FeatureNames(groupNames []string) []string {
	names := []string{
		"pps", "bps_mbit", "fps", "active_flows_k", "avg_pkt_bytes", "burst",
		"hour_sin", "hour_cos",
		"pps_lag1", "pps_delta", "pps_ewma",
		"loss_rate", "chain_latency_ms", "total_cores",
	}
	for _, g := range groupNames {
		names = append(names,
			"util_"+g,
			"lat_ms_"+g,
			"replicas_"+g,
			"state_factor_"+g,
		)
	}
	return names
}

// Features extracts the feature vector for the most recent record in the
// window (using earlier records for lags). The window must be non-empty;
// missing lags fall back to the current value.
func Features(w *Window) []float64 {
	last := w.Last()
	d := last.Demand
	ppsLag1 := d.PPS
	if w.Len() >= 2 {
		ppsLag1 = w.At(w.Len() - 2).Demand.PPS
	}
	// Short EWMA over the window.
	alpha := 0.4
	ewma := 0.0
	for i := 0; i < w.Len(); i++ {
		v := w.At(i).Demand.PPS
		if i == 0 {
			ewma = v
			continue
		}
		ewma = alpha*v + (1-alpha)*ewma
	}
	out := []float64{
		d.PPS,
		d.BPS * 8 / 1e6,
		float64(d.NewFlows),
		float64(d.ActiveFlows) / 1000,
		d.AvgPktBytes,
		d.Burst,
		math.Sin(2 * math.Pi * last.HourOfDay / 24),
		math.Cos(2 * math.Pi * last.HourOfDay / 24),
		ppsLag1,
		d.PPS - ppsLag1,
		ewma,
		last.Chain.LossRate,
		last.Chain.LatencyMs,
		float64(last.TotalCores),
	}
	for _, gr := range last.Chain.PerGroup {
		out = append(out, gr.Utilization, gr.LatencyMs, float64(gr.Replicas), gr.StateFactor)
	}
	return out
}

// TargetKind selects what the extracted dataset predicts.
type TargetKind int

// Supported prediction targets.
const (
	// TargetBottleneckUtil is the next epoch's highest group utilization.
	TargetBottleneckUtil TargetKind = iota
	// TargetChainLatency is the next epoch's end-to-end latency (ms).
	TargetChainLatency
	// TargetViolation is 1 when the next epoch violates the given SLO
	// latency bound.
	TargetViolation
)

// Extractor accumulates (features, next-epoch target) pairs as records
// stream in.
type Extractor struct {
	Target TargetKind
	// SLOLatencyMs is the violation threshold for TargetViolation.
	SLOLatencyMs float64
	// WindowLen is the feature lag window (default 8).
	WindowLen int

	win     *Window
	pending []float64 // features awaiting next-epoch target
	ds      *dataset.Dataset
	groups  []string
}

// NewExtractor builds an extractor for a chain with the given group names.
func NewExtractor(target TargetKind, sloMs float64, groupNames []string) *Extractor {
	task := dataset.Regression
	if target == TargetViolation {
		task = dataset.Classification
	}
	e := &Extractor{
		Target:       target,
		SLOLatencyMs: sloMs,
		WindowLen:    8,
		groups:       append([]string(nil), groupNames...),
	}
	e.win = NewWindow(e.WindowLen)
	e.ds = dataset.New(task, FeatureNames(groupNames)...)
	return e
}

// Push feeds one epoch record. When a previous epoch's features are
// pending, the new record supplies their target and the pair is added to
// the dataset.
func (e *Extractor) Push(r Record) {
	if e.pending != nil {
		e.ds.Add(e.pending, e.targetOf(r))
	}
	e.win.Push(r)
	e.pending = Features(e.win)
}

func (e *Extractor) targetOf(r Record) float64 {
	switch e.Target {
	case TargetChainLatency:
		return r.Chain.LatencyMs
	case TargetViolation:
		if r.Chain.LatencyMs > e.SLOLatencyMs || r.Chain.LossRate > 0.01 {
			return 1
		}
		return 0
	default: // TargetBottleneckUtil
		maxU := 0.0
		for _, g := range r.Chain.PerGroup {
			if g.Utilization > maxU {
				maxU = g.Utilization
			}
		}
		return maxU
	}
}

// Dataset returns the accumulated dataset.
func (e *Extractor) Dataset() *dataset.Dataset { return e.ds }

// String summarizes the extractor state.
func (e *Extractor) String() string {
	return fmt.Sprintf("extractor(target=%d rows=%d)", int(e.Target), e.ds.Len())
}
