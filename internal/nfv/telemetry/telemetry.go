// Package telemetry implements the monitoring plane of the NFV substrate:
// atomic counters and gauges that data-plane components bump and a
// collector polls periodically (the XDP/eBPF counter-map pattern), plus
// the per-epoch Record structure and the feature extraction that turns a
// telemetry window into the tabular rows consumed by the ML models.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/traffic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry names counters and gauges. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all metric values by name (counters as float64).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Names returns all metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Record is the telemetry of one chain over one epoch — the raw material
// for both dashboards and training data. The JSON tags define the wire
// schema shared by the simulator and the HTTP ingest endpoint
// (POST /v1/feeds/{name}/records), so real telemetry can replace the
// simulated feed without a schema change.
type Record struct {
	TimeSec   float64 `json:"time_sec"`
	HourOfDay float64 `json:"hour_of_day"`

	Demand traffic.Demand `json:"demand"`
	Chain  chain.Result   `json:"chain"`

	// TotalCores is the chain's allocation during the epoch.
	TotalCores int `json:"total_cores"`
}

// Window is a bounded sliding window of records backed by a fixed ring
// buffer: Push is O(1) with no per-record allocation, so long-running
// streaming feeds pay nothing for windowed feature extraction.
type Window struct {
	buf  []Record
	head int // index of the oldest record
	n    int // records currently buffered
}

// NewWindow returns a window holding up to n records.
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{buf: make([]Record, n)}
}

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Push appends a record, evicting the oldest beyond capacity.
func (w *Window) Push(r Record) {
	if w.n < len(w.buf) {
		w.buf[(w.head+w.n)%len(w.buf)] = r
		w.n++
		return
	}
	w.buf[w.head] = r
	w.head = (w.head + 1) % len(w.buf)
}

// Len returns the number of buffered records.
func (w *Window) Len() int { return w.n }

// At returns the i-th oldest record.
func (w *Window) At(i int) Record {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("telemetry: window index %d out of range [0, %d)", i, w.n))
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// Last returns the most recent record; it panics on an empty window.
func (w *Window) Last() Record {
	if w.n == 0 {
		panic("telemetry: Last on empty window")
	}
	return w.At(w.n - 1)
}

// FeatureNames returns the feature schema produced by Features for a
// chain with the given group names, in order.
func FeatureNames(groupNames []string) []string {
	names := []string{
		"pps", "bps_mbit", "fps", "active_flows_k", "avg_pkt_bytes", "burst",
		"hour_sin", "hour_cos",
		"pps_lag1", "pps_delta", "pps_ewma",
		"loss_rate", "chain_latency_ms", "total_cores",
	}
	for _, g := range groupNames {
		names = append(names,
			"util_"+g,
			"lat_ms_"+g,
			"replicas_"+g,
			"state_factor_"+g,
		)
	}
	return names
}

// Features extracts the feature vector for the most recent record in the
// window (using earlier records for lags). The window must be non-empty;
// missing lags fall back to the current value.
func Features(w *Window) []float64 {
	last := w.Last()
	d := last.Demand
	ppsLag1 := d.PPS
	if w.Len() >= 2 {
		ppsLag1 = w.At(w.Len() - 2).Demand.PPS
	}
	// Short EWMA over the window.
	alpha := 0.4
	ewma := 0.0
	for i := 0; i < w.Len(); i++ {
		v := w.At(i).Demand.PPS
		if i == 0 {
			ewma = v
			continue
		}
		ewma = alpha*v + (1-alpha)*ewma
	}
	out := []float64{
		d.PPS,
		d.BPS * 8 / 1e6,
		float64(d.NewFlows),
		float64(d.ActiveFlows) / 1000,
		d.AvgPktBytes,
		d.Burst,
		math.Sin(2 * math.Pi * last.HourOfDay / 24),
		math.Cos(2 * math.Pi * last.HourOfDay / 24),
		ppsLag1,
		d.PPS - ppsLag1,
		ewma,
		last.Chain.LossRate,
		last.Chain.LatencyMs,
		float64(last.TotalCores),
	}
	for _, gr := range last.Chain.PerGroup {
		out = append(out, gr.Utilization, gr.LatencyMs, float64(gr.Replicas), gr.StateFactor)
	}
	return out
}

// TargetKind selects what the extracted dataset predicts.
type TargetKind int

// Supported prediction targets.
const (
	// TargetBottleneckUtil is the next epoch's highest group utilization.
	TargetBottleneckUtil TargetKind = iota
	// TargetChainLatency is the next epoch's end-to-end latency (ms).
	TargetChainLatency
	// TargetViolation is 1 when the next epoch violates the given SLO
	// latency bound.
	TargetViolation
)

// Extractor accumulates (features, next-epoch target) pairs as records
// stream in. With MaxRows set it becomes a streaming accumulator: the
// dataset is ring-bounded to the newest MaxRows examples, so a feed that
// runs for weeks holds a sliding training window instead of growing
// without bound.
type Extractor struct {
	Target TargetKind
	// SLOLatencyMs is the violation threshold for TargetViolation.
	SLOLatencyMs float64
	// WindowLen is the feature lag window (default 8).
	WindowLen int
	// MaxRows, when > 0, bounds the accumulated dataset to the newest
	// MaxRows examples (amortized O(1) per push).
	MaxRows int

	win     *Window
	pending []float64 // features awaiting next-epoch target
	ds      *dataset.Dataset
	groups  []string
}

// NewExtractor builds an extractor for a chain with the given group names.
func NewExtractor(target TargetKind, sloMs float64, groupNames []string) *Extractor {
	task := dataset.Regression
	if target == TargetViolation {
		task = dataset.Classification
	}
	e := &Extractor{
		Target:       target,
		SLOLatencyMs: sloMs,
		WindowLen:    8,
		groups:       append([]string(nil), groupNames...),
	}
	e.win = NewWindow(e.WindowLen)
	e.ds = dataset.New(task, FeatureNames(groupNames)...)
	return e
}

// Push feeds one epoch record. When a previous epoch's features are
// pending, the new record supplies their target and the pair is added to
// the dataset (evicting the oldest rows beyond MaxRows). It reports
// whether a completed (features, target) example was added.
func (e *Extractor) Push(r Record) bool {
	added := false
	if e.pending != nil {
		e.ds.Add(e.pending, e.TargetOf(r))
		added = true
		if e.MaxRows > 0 && e.ds.Len() > e.MaxRows+e.MaxRows/4 {
			// Trim lazily with 25% slack so the copy amortizes to O(1).
			e.ds.DropFront(e.ds.Len() - e.MaxRows)
		}
	}
	e.win.Push(r)
	e.pending = Features(e.win)
	return added
}

// TargetOf computes the extractor's prediction target from one record —
// the label a model's previous-epoch features are paired with. Exported so
// streaming monitors can score live predictions against the same label the
// training pipeline uses.
func (e *Extractor) TargetOf(r Record) float64 {
	switch e.Target {
	case TargetChainLatency:
		return r.Chain.LatencyMs
	case TargetViolation:
		if r.Chain.LatencyMs > e.SLOLatencyMs || r.Chain.LossRate > 0.01 {
			return 1
		}
		return 0
	default: // TargetBottleneckUtil
		maxU := 0.0
		for _, g := range r.Chain.PerGroup {
			if g.Utilization > maxU {
				maxU = g.Utilization
			}
		}
		return maxU
	}
}

// Dataset returns the accumulated dataset.
func (e *Extractor) Dataset() *dataset.Dataset { return e.ds }

// String summarizes the extractor state.
func (e *Extractor) String() string {
	return fmt.Sprintf("extractor(target=%d rows=%d)", int(e.Target), e.ds.Len())
}
