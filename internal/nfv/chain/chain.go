// Package chain composes VNFs into service function chains (SFCs): an
// ordered sequence of horizontally scalable VNF groups that traffic
// traverses hop by hop. Per-hop drops thin the load seen downstream;
// chain latency is the sum of per-hop sojourn times plus propagation.
package chain

import (
	"fmt"

	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// Group is one chain position: a horizontally scaled set of identical VNF
// instances behind an (assumed flow-hash, uniform) load balancer.
type Group struct {
	Name string
	Kind vnf.Kind
	// CoresPerInstance is the size of each replica.
	CoresPerInstance int

	instances []*vnf.Instance
}

// NewGroup builds a group with the given initial replica count.
func NewGroup(name string, kind vnf.Kind, replicas, coresPer int) *Group {
	if replicas < 1 {
		replicas = 1
	}
	if coresPer < 1 {
		coresPer = 1
	}
	g := &Group{Name: name, Kind: kind, CoresPerInstance: coresPer}
	for i := 0; i < replicas; i++ {
		g.instances = append(g.instances, vnf.New(kind, coresPer))
	}
	return g
}

// Replicas returns the current instance count.
func (g *Group) Replicas() int { return len(g.instances) }

// Instances exposes the replicas (for placement by the infrastructure).
func (g *Group) Instances() []*vnf.Instance { return g.instances }

// TotalCores returns the aggregate core allocation.
func (g *Group) TotalCores() int { return len(g.instances) * g.CoresPerInstance }

// Scale adds (delta > 0) or removes (delta < 0) replicas, never dropping
// below one. It returns the actual change applied.
func (g *Group) Scale(delta int) int {
	before := len(g.instances)
	target := before + delta
	if target < 1 {
		target = 1
	}
	for len(g.instances) < target {
		g.instances = append(g.instances, vnf.New(g.Kind, g.CoresPerInstance))
	}
	if len(g.instances) > target {
		g.instances = g.instances[:target]
	}
	return len(g.instances) - before
}

// GroupResult is one epoch of processing at a group. The JSON tags define
// the wire schema used when telemetry records cross the HTTP ingest
// boundary (POST /v1/feeds/{name}/records); Kind serializes as the
// vnf.Kind integer.
type GroupResult struct {
	Name        string   `json:"name"`
	Kind        vnf.Kind `json:"kind"`
	Replicas    int      `json:"replicas"`
	Utilization float64  `json:"utilization"` // mean across replicas
	LatencyMs   float64  `json:"latency_ms"`  // mean across replicas
	ServedPPS   float64  `json:"served_pps"`
	LossRate    float64  `json:"loss_rate"`
	StateFactor float64  `json:"state_factor"`
}

// Process serves demand for one epoch: the offered load and active flows
// split uniformly across replicas.
func (g *Group) Process(d traffic.Demand, activeFlows float64) GroupResult {
	n := float64(len(g.instances))
	share := d
	share.PPS /= n
	share.BPS /= n
	share.NewFlows = int(float64(d.NewFlows) / n)
	perFlow := activeFlows / n

	res := GroupResult{Name: g.Name, Kind: g.Kind, Replicas: len(g.instances)}
	for _, in := range g.instances {
		r := in.Process(share, perFlow)
		res.Utilization += r.Utilization
		res.LatencyMs += r.LatencyMs
		res.ServedPPS += r.ServedPPS
		res.LossRate += r.LossRate
		res.StateFactor += r.StateFactor
	}
	res.Utilization /= n
	res.LatencyMs /= n
	res.LossRate /= n
	res.StateFactor /= n
	return res
}

// Chain is an ordered SFC.
type Chain struct {
	Name string
	// PropagationMs is the per-hop link latency.
	PropagationMs float64

	Groups []*Group
}

// New builds a chain from groups.
func New(name string, propagationMs float64, groups ...*Group) *Chain {
	return &Chain{Name: name, PropagationMs: propagationMs, Groups: groups}
}

// Result is one epoch of chain processing. JSON tags define the telemetry
// ingest wire schema.
type Result struct {
	PerGroup []GroupResult `json:"per_group"`
	// LatencyMs is the end-to-end mean latency (hops + propagation).
	LatencyMs float64 `json:"latency_ms"`
	// LossRate is 1 − (egress PPS / ingress PPS).
	LossRate float64 `json:"loss_rate"`
	// Bottleneck is the index of the highest-utilization group.
	Bottleneck int `json:"bottleneck"`
}

// Process pushes one epoch of demand through the chain. Load that a hop
// drops is not offered to later hops.
func (c *Chain) Process(d traffic.Demand, activeFlows float64) Result {
	if len(c.Groups) == 0 {
		return Result{}
	}
	res := Result{PerGroup: make([]GroupResult, 0, len(c.Groups))}
	ingress := d.PPS
	cur := d
	maxUtil := -1.0
	for i, g := range c.Groups {
		gr := g.Process(cur, activeFlows)
		res.PerGroup = append(res.PerGroup, gr)
		res.LatencyMs += gr.LatencyMs + c.PropagationMs
		if gr.Utilization > maxUtil {
			maxUtil = gr.Utilization
			res.Bottleneck = i
		}
		// Thin the demand for the next hop: keep packet mix and flow
		// profile, reduce rates by the served fraction.
		if cur.PPS > 0 {
			frac := gr.ServedPPS / cur.PPS
			cur.PPS = gr.ServedPPS
			cur.BPS *= frac
		}
	}
	if ingress > 0 {
		res.LossRate = 1 - cur.PPS/ingress
		if res.LossRate < 0 {
			res.LossRate = 0
		}
	}
	return res
}

// TotalCores returns the chain's aggregate core allocation.
func (c *Chain) TotalCores() int {
	total := 0
	for _, g := range c.Groups {
		total += g.TotalCores()
	}
	return total
}

// Group returns the group with the given name, or an error.
func (c *Chain) Group(name string) (*Group, error) {
	for _, g := range c.Groups {
		if g.Name == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("chain %s: no group %q", c.Name, name)
}
