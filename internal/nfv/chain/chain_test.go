package chain

import (
	"math"
	"testing"

	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

func demand(pps float64, avgPkt float64, flows int) traffic.Demand {
	return traffic.Demand{PPS: pps, BPS: pps * avgPkt, AvgPktBytes: avgPkt, NewFlows: flows}
}

func TestGroupScaleBounds(t *testing.T) {
	g := NewGroup("fw", vnf.Firewall, 2, 2)
	if g.Replicas() != 2 || g.TotalCores() != 4 {
		t.Fatalf("initial %d replicas %d cores", g.Replicas(), g.TotalCores())
	}
	if got := g.Scale(3); got != 3 || g.Replicas() != 5 {
		t.Fatalf("scale up: %d, replicas %d", got, g.Replicas())
	}
	if got := g.Scale(-10); got != -4 || g.Replicas() != 1 {
		t.Fatalf("scale down floor: %d, replicas %d", got, g.Replicas())
	}
	// Constructor floors.
	if NewGroup("x", vnf.NAT, 0, 0).Replicas() != 1 {
		t.Fatal("constructor floor")
	}
}

func TestGroupScalingReducesUtilization(t *testing.T) {
	d := demand(2e5, 400, 500)
	small := NewGroup("ids", vnf.IDS, 1, 2)
	big := NewGroup("ids", vnf.IDS, 4, 2)
	ru := small.Process(d, 1e4).Utilization
	rb := big.Process(d, 1e4).Utilization
	if rb >= ru/2 {
		t.Fatalf("4x replicas should quarter utilization: %v vs %v", ru, rb)
	}
}

func TestChainLatencyAccumulates(t *testing.T) {
	c := New("web", 0.1,
		NewGroup("fw", vnf.Firewall, 2, 2),
		NewGroup("nat", vnf.NAT, 2, 2),
		NewGroup("lb", vnf.LoadBalancer, 2, 2),
	)
	res := c.Process(demand(5e4, 400, 100), 5000)
	if len(res.PerGroup) != 3 {
		t.Fatalf("groups processed %d", len(res.PerGroup))
	}
	var sum float64
	for _, gr := range res.PerGroup {
		sum += gr.LatencyMs
	}
	want := sum + 3*0.1
	if math.Abs(res.LatencyMs-want) > 1e-9 {
		t.Fatalf("latency %v want %v", res.LatencyMs, want)
	}
}

func TestChainDropThinning(t *testing.T) {
	// First hop deliberately overloaded: downstream hops see less load.
	c := New("thin", 0,
		NewGroup("dpi", vnf.DPI, 1, 1), // expensive, will saturate
		NewGroup("fw", vnf.Firewall, 4, 2),
	)
	res := c.Process(demand(2e6, 1000, 1000), 1e4)
	if res.PerGroup[0].LossRate <= 0 {
		t.Fatal("first hop should drop under this load")
	}
	if res.LossRate <= 0 {
		t.Fatal("chain loss rate should be positive")
	}
	// Second hop offered only what the first served.
	if res.PerGroup[1].ServedPPS > res.PerGroup[0].ServedPPS+1 {
		t.Fatal("downstream hop served more than upstream egress")
	}
	if res.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d want 0", res.Bottleneck)
	}
}

func TestChainNoLossWhenProvisioned(t *testing.T) {
	c := New("ok", 0.05,
		NewGroup("fw", vnf.Firewall, 4, 2),
		NewGroup("mon", vnf.Monitor, 2, 2),
	)
	res := c.Process(demand(5e4, 400, 100), 2000)
	if res.LossRate != 0 {
		t.Fatalf("loss %v on provisioned chain", res.LossRate)
	}
}

func TestChainTotalCoresAndGroupLookup(t *testing.T) {
	c := New("x", 0,
		NewGroup("fw", vnf.Firewall, 2, 3),
		NewGroup("nat", vnf.NAT, 1, 2),
	)
	if c.TotalCores() != 8 {
		t.Fatalf("total cores %d", c.TotalCores())
	}
	g, err := c.Group("nat")
	if err != nil || g.Kind != vnf.NAT {
		t.Fatalf("Group lookup: %v", err)
	}
	if _, err := c.Group("missing"); err == nil {
		t.Fatal("expected lookup error")
	}
}

func TestEmptyChain(t *testing.T) {
	c := New("empty", 0)
	res := c.Process(demand(1e4, 400, 10), 100)
	if res.LossRate != 0 || res.LatencyMs != 0 {
		t.Fatalf("empty chain result %+v", res)
	}
}
