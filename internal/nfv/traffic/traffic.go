// Package traffic synthesizes the offered load driving the NFV simulator:
// flow arrivals from a Markov-modulated Poisson process overlaid with a
// diurnal curve and optional flash crowds, heavy-tailed (Pareto) flow
// sizes, lognormal flow durations, and a bimodal packet-size mix. The
// generator reproduces the properties of real carrier traces that stress
// resource predictors — burstiness, nonstationarity, and heavy tails —
// while staying seeded and fully reproducible.
package traffic

import (
	"math"
	"math/rand"

	"nfvxai/internal/nfv/packet"
	"nfvxai/internal/stats"
)

// FlashCrowd is a transient load surge (e.g. a viral event).
type FlashCrowd struct {
	StartSec    float64
	DurationSec float64
	Multiplier  float64 // ≥ 1
}

// Profile declares the statistical shape of one chain's workload.
type Profile struct {
	// BaseFPS is the mean new-flow arrival rate (flows/sec) before
	// modulation.
	BaseFPS float64
	// DiurnalAmplitude in [0, 1) scales the day/night swing; 0 disables.
	DiurnalAmplitude float64
	// PeakHour is the hour-of-day (0–24) of the diurnal maximum.
	PeakHour float64
	// BurstRatio ≥ 1 is the high/low rate ratio of the MMPP burst overlay
	// (1 disables bursting); BurstRate is the state-flip rate (1/sec).
	BurstRatio float64
	BurstRate  float64
	// FlashCrowds lists transient surges.
	FlashCrowds []FlashCrowd
	// FlowPackets is the packets-per-flow distribution (default Pareto
	// xm=4, alpha=1.5: heavy tailed, mean 12).
	FlowPackets stats.Sampler
	// FlowDurationSec is the flow lifetime distribution (default
	// lognormal mean ≈ 5 s).
	FlowDurationSec stats.Sampler
	// SmallPktFrac is the fraction of 64-byte packets; the rest are 1500
	// bytes (default 0.5).
	SmallPktFrac float64
	// Seed drives all randomness of this generator.
	Seed int64
}

func (p Profile) withDefaults() Profile {
	if p.FlowPackets == nil {
		p.FlowPackets = stats.Pareto{Xm: 4, Alpha: 1.5}
	}
	if p.FlowDurationSec == nil {
		p.FlowDurationSec = stats.LogNormal{Mu: 1.2, Sigma: 0.6} // mean ≈ 4 s
	}
	if p.SmallPktFrac <= 0 || p.SmallPktFrac >= 1 {
		p.SmallPktFrac = 0.5
	}
	if p.BurstRatio < 1 {
		p.BurstRatio = 1
	}
	if p.BurstRate <= 0 {
		p.BurstRate = 0.05
	}
	return p
}

// Demand is the aggregate offered load of one epoch.
type Demand struct {
	// TimeSec is the epoch start; HourOfDay derives from it.
	TimeSec   float64 `json:"time_sec"`
	HourOfDay float64 `json:"hour_of_day"`
	// NewFlows is the number of flow arrivals this epoch.
	NewFlows int `json:"new_flows"`
	// ActiveFlows is the number of concurrently active flows.
	ActiveFlows int `json:"active_flows"`
	// PPS and BPS are offered packets/sec and bytes/sec.
	PPS float64 `json:"pps"`
	BPS float64 `json:"bps"`
	// AvgPktBytes is the mean packet size.
	AvgPktBytes float64 `json:"avg_pkt_bytes"`
	// Burst in [0, 1] is the fraction of the epoch spent in the MMPP high
	// state — the instantaneous burstiness indicator.
	Burst float64 `json:"burst"`
}

// cohort aggregates the flows admitted in one epoch.
type cohort struct {
	pps, bps     float64
	flows        float64
	remainingSec float64
}

// Generator produces per-epoch Demand values.
type Generator struct {
	profile Profile
	rng     *rand.Rand
	mmpp    *stats.MMPP2
	cohorts []cohort
	nowSec  float64
}

// NewGenerator builds a generator for the profile.
func NewGenerator(p Profile) *Generator {
	p = p.withDefaults()
	g := &Generator{
		profile: p,
		rng:     rand.New(rand.NewSource(p.Seed + 0x7AFF1C)),
	}
	g.mmpp = stats.NewMMPP2(1, p.BurstRatio, p.BurstRate, p.BurstRate)
	return g
}

// diurnal returns the load multiplier at time t.
func (g *Generator) diurnal(tSec float64) float64 {
	if g.profile.DiurnalAmplitude <= 0 {
		return 1
	}
	hour := math.Mod(tSec/3600, 24)
	phase := 2 * math.Pi * (hour - g.profile.PeakHour) / 24
	return 1 + g.profile.DiurnalAmplitude*math.Cos(phase)
}

// flash returns the flash-crowd multiplier at time t.
func (g *Generator) flash(tSec float64) float64 {
	m := 1.0
	for _, fc := range g.profile.FlashCrowds {
		if tSec >= fc.StartSec && tSec < fc.StartSec+fc.DurationSec && fc.Multiplier > m {
			m = fc.Multiplier
		}
	}
	return m
}

// Next advances the generator by dtSec and returns the epoch's demand.
func (g *Generator) Next(dtSec float64) Demand {
	t := g.nowSec
	g.nowSec += dtSec

	// Modulated flow arrival rate: the MMPP chain acts as a burst
	// modulator (low state ×1, high state ×BurstRatio, normalized so the
	// long-run mean stays BaseFPS), scaled by the diurnal curve and any
	// flash crowd.
	g.mmpp.Arrivals(g.rng, dtSec) // advance the modulating chain
	burstState := float64(g.mmpp.State())
	burstMult := 1.0
	if g.mmpp.State() == 1 {
		burstMult = g.profile.BurstRatio
	}
	meanMult := (1 + g.profile.BurstRatio) / 2
	rate := g.profile.BaseFPS * g.diurnal(t) * g.flash(t) * burstMult / meanMult
	newFlows := stats.Poisson(g.rng, rate*dtSec)

	// Build the new cohort: aggregate rate contributed by this epoch's
	// flows. Sample up to 256 individual flows, then scale (keeps cost
	// bounded at carrier-grade arrival rates without losing tail shape).
	var c cohort
	if newFlows > 0 {
		sampleN := newFlows
		if sampleN > 256 {
			sampleN = 256
		}
		var pktSum, durSum, byteSum float64
		for i := 0; i < sampleN; i++ {
			pkts := g.profile.FlowPackets.Sample(g.rng)
			dur := math.Max(0.5, g.profile.FlowDurationSec.Sample(g.rng))
			avgPkt := g.samplePktSize()
			pktSum += pkts / dur
			byteSum += pkts / dur * avgPkt
			durSum += dur
		}
		scale := float64(newFlows) / float64(sampleN)
		c = cohort{
			pps:          pktSum * scale,
			bps:          byteSum * scale,
			flows:        float64(newFlows),
			remainingSec: durSum / float64(sampleN),
		}
		g.cohorts = append(g.cohorts, c)
	}

	// Sum active cohorts and age them.
	var pps, bps, active float64
	alive := g.cohorts[:0]
	for _, co := range g.cohorts {
		pps += co.pps
		bps += co.bps
		active += co.flows
		co.remainingSec -= dtSec
		if co.remainingSec > 0 {
			alive = append(alive, co)
		}
	}
	g.cohorts = alive

	avgPkt := 0.0
	if pps > 0 {
		avgPkt = bps / pps
	}
	return Demand{
		TimeSec:     t,
		HourOfDay:   math.Mod(t/3600, 24),
		NewFlows:    newFlows,
		ActiveFlows: int(active),
		PPS:         pps,
		BPS:         bps,
		AvgPktBytes: avgPkt,
		Burst:       burstState,
	}
}

func (g *Generator) samplePktSize() float64 {
	if g.rng.Float64() < g.profile.SmallPktFrac {
		return 64
	}
	return 1500
}

// SamplePacket synthesizes one representative packet's bytes for the
// current traffic mix (used by DPI-style VNFs and tests).
func (g *Generator) SamplePacket() []byte {
	b := packet.Builder{
		SrcIP: [4]byte{10, 0, byte(g.rng.Intn(256)), byte(g.rng.Intn(256))},
		DstIP: [4]byte{192, 168, byte(g.rng.Intn(256)), byte(g.rng.Intn(256))},
		ID:    uint16(g.rng.Intn(65536)),
	}
	size := int(g.samplePktSize())
	payloadLen := size - 14 - 20 - 20
	if payloadLen < 0 {
		payloadLen = 10
	}
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(g.rng.Intn(256))
	}
	if g.rng.Float64() < 0.8 {
		return b.BuildTCP(packet.TCPOpts{
			SrcPort: uint16(1024 + g.rng.Intn(64000)),
			DstPort: []uint16{80, 443, 8080, 53}[g.rng.Intn(4)],
			ACK:     true,
		}, payload)
	}
	return b.BuildUDP(uint16(1024+g.rng.Intn(64000)), 53, payload)
}
