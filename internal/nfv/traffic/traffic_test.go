package traffic

import (
	"math"
	"testing"

	"nfvxai/internal/nfv/packet"
	"nfvxai/internal/stats"
)

func TestDiurnalPeakVsTrough(t *testing.T) {
	p := Profile{BaseFPS: 100, DiurnalAmplitude: 0.8, PeakHour: 12, Seed: 1}
	g := NewGenerator(p)
	if peak := g.diurnal(12 * 3600); math.Abs(peak-1.8) > 1e-9 {
		t.Fatalf("peak multiplier %v want 1.8", peak)
	}
	if trough := g.diurnal(0); math.Abs(trough-0.2) > 1e-9 {
		t.Fatalf("trough multiplier %v want 0.2", trough)
	}
	// No amplitude: flat.
	flat := NewGenerator(Profile{BaseFPS: 10, Seed: 1})
	if flat.diurnal(6*3600) != 1 {
		t.Fatal("flat profile should have unit multiplier")
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	p := Profile{
		BaseFPS:     10,
		FlashCrowds: []FlashCrowd{{StartSec: 100, DurationSec: 50, Multiplier: 5}},
		Seed:        2,
	}
	g := NewGenerator(p)
	if g.flash(99) != 1 || g.flash(150) != 1 {
		t.Fatal("flash active outside window")
	}
	if g.flash(100) != 5 || g.flash(149) != 5 {
		t.Fatal("flash inactive inside window")
	}
}

func TestMeanFlowRatePreserved(t *testing.T) {
	// Long-run average of new flows/sec should be ≈ BaseFPS regardless of
	// the burst overlay (the normalization property).
	for _, ratio := range []float64{1, 4} {
		g := NewGenerator(Profile{BaseFPS: 50, BurstRatio: ratio, BurstRate: 0.5, Seed: 3})
		var total float64
		const epochs = 4000
		for i := 0; i < epochs; i++ {
			total += float64(g.Next(1).NewFlows)
		}
		mean := total / epochs
		if math.Abs(mean-50) > 5 {
			t.Fatalf("ratio %v: mean fps %v want ≈ 50", ratio, mean)
		}
	}
}

func TestBurstinessRaisesVariance(t *testing.T) {
	quiet := NewGenerator(Profile{BaseFPS: 50, BurstRatio: 1, Seed: 4})
	bursty := NewGenerator(Profile{BaseFPS: 50, BurstRatio: 8, BurstRate: 0.5, Seed: 4})
	var wq, wb stats.Welford
	for i := 0; i < 3000; i++ {
		wq.Add(float64(quiet.Next(1).NewFlows))
		wb.Add(float64(bursty.Next(1).NewFlows))
	}
	if wb.Variance() < 2*wq.Variance() {
		t.Fatalf("bursty variance %v not above quiet %v", wb.Variance(), wq.Variance())
	}
}

func TestDemandInternalConsistency(t *testing.T) {
	g := NewGenerator(Profile{BaseFPS: 200, DiurnalAmplitude: 0.5, PeakHour: 14, Seed: 5})
	var sawFlows bool
	for i := 0; i < 500; i++ {
		d := g.Next(1)
		if d.PPS < 0 || d.BPS < 0 || d.ActiveFlows < 0 {
			t.Fatalf("negative demand: %+v", d)
		}
		if d.PPS > 0 {
			if d.AvgPktBytes < 64 || d.AvgPktBytes > 1500 {
				t.Fatalf("avg packet %v outside [64, 1500]", d.AvgPktBytes)
			}
			if math.Abs(d.BPS-d.PPS*d.AvgPktBytes) > 1e-6*d.BPS {
				t.Fatalf("BPS %v != PPS*AvgPkt %v", d.BPS, d.PPS*d.AvgPktBytes)
			}
		}
		if d.NewFlows > 0 {
			sawFlows = true
		}
		if d.HourOfDay < 0 || d.HourOfDay >= 24 {
			t.Fatalf("hour %v", d.HourOfDay)
		}
	}
	if !sawFlows {
		t.Fatal("no flows generated in 500 epochs")
	}
}

func TestActiveFlowsTrackLoad(t *testing.T) {
	// With diurnal modulation, active flows at peak must exceed trough.
	g := NewGenerator(Profile{BaseFPS: 100, DiurnalAmplitude: 0.9, PeakHour: 12, Seed: 6})
	var troughActive, peakActive float64
	for i := 0; i < 24*360; i++ { // 24 h at 10 s epochs
		d := g.Next(10)
		switch {
		case d.HourOfDay >= 11 && d.HourOfDay < 13:
			peakActive += float64(d.ActiveFlows)
		case d.HourOfDay >= 23 || d.HourOfDay < 1:
			troughActive += float64(d.ActiveFlows)
		}
	}
	if peakActive < 3*troughActive {
		t.Fatalf("peak active %v not well above trough %v", peakActive, troughActive)
	}
}

func TestDeterministicSeed(t *testing.T) {
	a := NewGenerator(Profile{BaseFPS: 80, DiurnalAmplitude: 0.3, BurstRatio: 3, Seed: 7})
	b := NewGenerator(Profile{BaseFPS: 80, DiurnalAmplitude: 0.3, BurstRatio: 3, Seed: 7})
	for i := 0; i < 200; i++ {
		da, db := a.Next(1), b.Next(1)
		if da != db {
			t.Fatalf("same seed diverged at epoch %d: %+v vs %+v", i, da, db)
		}
	}
}

func TestSamplePacketDecodes(t *testing.T) {
	g := NewGenerator(Profile{BaseFPS: 10, Seed: 8})
	tcp, udp := 0, 0
	for i := 0; i < 300; i++ {
		raw := g.SamplePacket()
		p := packet.Decode(raw)
		if p.Err() != nil {
			t.Fatalf("sample packet invalid: %v", p.Err())
		}
		if _, ok := p.FiveTuple(); !ok {
			t.Fatal("sample packet has no five-tuple")
		}
		switch p.TransportLayer().(type) {
		case *packet.TCP:
			tcp++
		case *packet.UDP:
			udp++
		}
	}
	if tcp == 0 || udp == 0 {
		t.Fatalf("protocol mix degenerate: tcp=%d udp=%d", tcp, udp)
	}
	if tcp < udp {
		t.Fatalf("expected TCP-dominant mix: tcp=%d udp=%d", tcp, udp)
	}
}

func TestHeavyTailFlowSizes(t *testing.T) {
	// Default Pareto flow sizes: max/mean ratio must be large over many
	// samples (heavy tail), unlike an exponential.
	p := Profile{BaseFPS: 1, Seed: 9}.withDefaults()
	rng := NewGenerator(p).rng
	var w stats.Welford
	maxV := 0.0
	for i := 0; i < 20000; i++ {
		v := p.FlowPackets.Sample(rng)
		w.Add(v)
		if v > maxV {
			maxV = v
		}
	}
	if maxV/w.Mean() < 20 {
		t.Fatalf("tail too light: max/mean = %v", maxV/w.Mean())
	}
}
