package datapath

import (
	"strings"
	"testing"

	"nfvxai/internal/nfv/packet"
)

func builder(srcLast, dstLast byte) *packet.Builder {
	return &packet.Builder{
		SrcIP: [4]byte{10, 0, 0, srcLast},
		DstIP: [4]byte{203, 0, 113, dstLast},
	}
}

func TestVerdictStrings(t *testing.T) {
	if Accept.String() != "accept" || Drop.String() != "drop" || Malformed.String() != "malformed" {
		t.Fatal("verdict strings")
	}
	if !strings.Contains(Verdict(9).String(), "9") {
		t.Fatal("unknown verdict")
	}
}

func TestRuleMatching(t *testing.T) {
	r := Rule{
		SrcPrefix:    [4]byte{10, 0, 0, 0},
		SrcPrefixLen: 8,
		Proto:        packet.IPProtoTCP,
		DstPort:      443,
		Allow:        true,
	}
	ft := packet.FiveTuple{
		Src: [4]byte{10, 9, 9, 9}, Dst: [4]byte{1, 2, 3, 4},
		Proto: packet.IPProtoTCP, SrcPort: 5555, DstPort: 443,
	}
	if !r.Matches(ft) {
		t.Fatal("should match")
	}
	other := ft
	other.Src = [4]byte{11, 0, 0, 1}
	if r.Matches(other) {
		t.Fatal("prefix mismatch should not match")
	}
	udp := ft
	udp.Proto = packet.IPProtoUDP
	if r.Matches(udp) {
		t.Fatal("proto mismatch should not match")
	}
	port := ft
	port.DstPort = 80
	if r.Matches(port) {
		t.Fatal("port mismatch should not match")
	}
	// Wildcard rule matches anything.
	if !(Rule{Allow: true}).Matches(ft) {
		t.Fatal("wildcard rule")
	}
}

func TestPrefixMatchEdges(t *testing.T) {
	p := [4]byte{192, 168, 1, 0}
	if !prefixMatch(p, 24, [4]byte{192, 168, 1, 200}) {
		t.Fatal("/24 match")
	}
	if prefixMatch(p, 24, [4]byte{192, 168, 2, 1}) {
		t.Fatal("/24 non-match")
	}
	if !prefixMatch(p, 0, [4]byte{1, 1, 1, 1}) {
		t.Fatal("/0 matches all")
	}
	if !prefixMatch([4]byte{192, 168, 1, 7}, 40, [4]byte{192, 168, 1, 7}) {
		t.Fatal("overlong prefix clamps to /32")
	}
}

func TestFirewallFirstMatchWinsDefaultDeny(t *testing.T) {
	fw := NewFirewall([]Rule{
		{DstPort: 22, Allow: false},                           // block ssh
		{Proto: packet.IPProtoTCP, DstPort: 443, Allow: true}, // allow https
	}, 128)
	b := builder(1, 1)
	https := b.BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443, SYN: true}, nil)
	ssh := b.BuildTCP(packet.TCPOpts{SrcPort: 40001, DstPort: 22, SYN: true}, nil)
	dns := b.BuildUDP(40002, 53, nil)
	if v := fw.Process(https, 0); v != Accept {
		t.Fatalf("https %v", v)
	}
	if v := fw.Process(ssh, 1); v != Drop {
		t.Fatalf("ssh %v", v)
	}
	if v := fw.Process(dns, 2); v != Drop {
		t.Fatalf("default deny: %v", v)
	}
	if fw.Accepted != 1 || fw.Dropped != 2 {
		t.Fatalf("counters %d/%d", fw.Accepted, fw.Dropped)
	}
}

func TestFirewallStatefulReplyPath(t *testing.T) {
	// Reply traffic (reversed tuple) must be accepted from the flow table
	// even though no rule matches it.
	fw := NewFirewall([]Rule{
		{SrcPrefix: [4]byte{10, 0, 0, 0}, SrcPrefixLen: 8, Allow: true},
	}, 128)
	out := builder(1, 1).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443, SYN: true}, nil)
	if v := fw.Process(out, 0); v != Accept {
		t.Fatalf("outbound %v", v)
	}
	// Build the reply: swap addresses and ports.
	reply := (&packet.Builder{
		SrcIP: [4]byte{203, 0, 113, 1},
		DstIP: [4]byte{10, 0, 0, 1},
	}).BuildTCP(packet.TCPOpts{SrcPort: 443, DstPort: 40000, ACK: true}, nil)
	if v := fw.Process(reply, 1); v != Accept {
		t.Fatalf("reply dropped: %v", v)
	}
	st := fw.TableStats()
	if st.Hits != 1 {
		t.Fatalf("reply should hit the flow table: %+v", st)
	}
}

func TestFirewallMalformed(t *testing.T) {
	fw := NewFirewall(nil, 16)
	if v := fw.Process([]byte{1, 2, 3}, 0); v != Malformed {
		t.Fatalf("truncated packet verdict %v", v)
	}
	if fw.Bad != 1 {
		t.Fatal("malformed counter")
	}
}

func TestFirewallCachedVerdictSkipsRules(t *testing.T) {
	fw := NewFirewall([]Rule{{Allow: true}}, 16)
	pkt := builder(2, 2).BuildTCP(packet.TCPOpts{SrcPort: 1, DstPort: 2}, nil)
	fw.Process(pkt, 0)
	missesAfterFirst := fw.TableStats().Misses
	fw.Process(pkt, 1)
	if fw.TableStats().Misses != missesAfterFirst {
		t.Fatal("second packet of flow should not miss")
	}
}

func TestNATOutboundRewritesAndStaysValid(t *testing.T) {
	public := [4]byte{198, 51, 100, 1}
	nat := NewNAT(public, 128)
	data := builder(5, 9).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, []byte("x"))
	if v := nat.ProcessOutbound(data, 0); v != Accept {
		t.Fatalf("outbound %v", v)
	}
	// The rewritten packet must decode cleanly (checksum fixed) with the
	// public source.
	p := packet.Decode(data)
	if p.Err() != nil {
		t.Fatalf("rewritten packet invalid: %v", p.Err())
	}
	ft, _ := p.FiveTuple()
	if ft.Src != public {
		t.Fatalf("source not translated: %v", ft.Src)
	}
	if ft.SrcPort == 40000 {
		t.Fatal("source port not translated")
	}
	if ft.DstPort != 443 {
		t.Fatal("destination port must be untouched")
	}
	if nat.Translated != 1 {
		t.Fatal("translation counter")
	}
}

func TestNATRoundTrip(t *testing.T) {
	public := [4]byte{198, 51, 100, 1}
	nat := NewNAT(public, 128)
	orig := builder(5, 9).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, nil)
	out := append([]byte(nil), orig...)
	if v := nat.ProcessOutbound(out, 0); v != Accept {
		t.Fatal("outbound")
	}
	oft, _ := packet.Decode(out).FiveTuple()

	// Synthesize the reply to the public endpoint.
	reply := (&packet.Builder{SrcIP: oft.Dst, DstIP: oft.Src}).BuildTCP(
		packet.TCPOpts{SrcPort: oft.DstPort, DstPort: oft.SrcPort, ACK: true}, nil)
	if v := nat.ProcessInbound(reply, 1); v != Accept {
		t.Fatalf("inbound %v", v)
	}
	rft, _ := packet.Decode(reply).FiveTuple()
	// The restored destination must equal the original private endpoint.
	if rft.Dst != [4]byte{10, 0, 0, 5} || rft.DstPort != 40000 {
		t.Fatalf("restore failed: %+v", rft)
	}
	if nat.Restored != 1 {
		t.Fatal("restore counter")
	}
}

func TestNATSameFlowReusesMapping(t *testing.T) {
	nat := NewNAT([4]byte{198, 51, 100, 1}, 128)
	p1 := builder(5, 9).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, nil)
	p2 := builder(5, 9).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, nil)
	nat.ProcessOutbound(p1, 0)
	nat.ProcessOutbound(p2, 1)
	f1, _ := packet.Decode(p1).FiveTuple()
	f2, _ := packet.Decode(p2).FiveTuple()
	if f1.SrcPort != f2.SrcPort {
		t.Fatalf("same flow mapped to different ports: %d vs %d", f1.SrcPort, f2.SrcPort)
	}
	// Distinct flows get distinct ports.
	p3 := builder(6, 9).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, nil)
	nat.ProcessOutbound(p3, 2)
	f3, _ := packet.Decode(p3).FiveTuple()
	if f3.SrcPort == f1.SrcPort {
		t.Fatal("distinct flows share a mapping")
	}
}

func TestNATInboundUnknownDropped(t *testing.T) {
	nat := NewNAT([4]byte{198, 51, 100, 1}, 16)
	stray := (&packet.Builder{
		SrcIP: [4]byte{8, 8, 8, 8},
		DstIP: [4]byte{198, 51, 100, 1},
	}).BuildTCP(packet.TCPOpts{SrcPort: 443, DstPort: 55555}, nil)
	if v := nat.ProcessInbound(stray, 0); v != Drop {
		t.Fatalf("stray inbound %v", v)
	}
	if nat.Missed != 1 {
		t.Fatal("missed counter")
	}
	if v := nat.ProcessInbound([]byte{0}, 0); v != Malformed {
		t.Fatal("malformed inbound")
	}
}

func BenchmarkFirewallProcess(b *testing.B) {
	fw := NewFirewall([]Rule{
		{DstPort: 22},
		{Proto: packet.IPProtoTCP, DstPort: 443, Allow: true},
	}, 4096)
	pkt := builder(1, 1).BuildTCP(packet.TCPOpts{SrcPort: 40000, DstPort: 443}, make([]byte, 256))
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Process(pkt, float64(i))
	}
}
