// Package datapath implements byte-level reference datapaths for two
// VNFs — a stateful firewall and a source NAT — operating on real packet
// bytes via the packet and flowtable substrates. The analytic models in
// internal/nfv/vnf abstract these paths for simulation scale; the
// datapaths here pin down the concrete per-packet semantics (and their
// tests double as executable specifications).
package datapath

import (
	"encoding/binary"
	"fmt"

	"nfvxai/internal/nfv/flowtable"
	"nfvxai/internal/nfv/packet"
)

// Verdict is the outcome of processing one packet.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
	Malformed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	case Malformed:
		return "malformed"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Rule is a firewall match rule over the five-tuple. Zero fields match
// everything (a wildcard).
type Rule struct {
	// SrcPrefix/DstPrefix match the leading PrefixLen bits of the IPv4
	// address (PrefixLen 0 = any).
	SrcPrefix, DstPrefix       [4]byte
	SrcPrefixLen, DstPrefixLen int
	// Proto 0 matches any protocol.
	Proto uint8
	// DstPort 0 matches any port.
	DstPort uint16
	// Allow decides the verdict when the rule matches.
	Allow bool
}

// Matches reports whether the rule matches the tuple.
func (r Rule) Matches(ft packet.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != ft.Proto {
		return false
	}
	if r.DstPort != 0 && r.DstPort != ft.DstPort {
		return false
	}
	if !prefixMatch(r.SrcPrefix, r.SrcPrefixLen, ft.Src) {
		return false
	}
	if !prefixMatch(r.DstPrefix, r.DstPrefixLen, ft.Dst) {
		return false
	}
	return true
}

func prefixMatch(prefix [4]byte, bits int, addr [4]byte) bool {
	if bits <= 0 {
		return true
	}
	if bits > 32 {
		bits = 32
	}
	p := binary.BigEndian.Uint32(prefix[:])
	a := binary.BigEndian.Uint32(addr[:])
	shift := uint(32 - bits)
	return p>>shift == a>>shift
}

// Firewall is a stateful L3/L4 firewall: the first packet of a flow is
// checked against the rule chain (first match wins; default deny), and
// the decision is cached in a symmetric flow table so reply traffic is
// accepted without re-evaluating rules.
type Firewall struct {
	Rules []Rule

	table *flowtable.Table[bool]
	// Counters.
	Accepted, Dropped, Bad uint64
}

// NewFirewall builds a firewall with the given flow-table capacity.
func NewFirewall(rules []Rule, tableCap int) *Firewall {
	return &Firewall{Rules: rules, table: flowtable.New[bool](tableCap, true)}
}

// Process decides one packet given the current virtual time.
func (f *Firewall) Process(data []byte, now float64) Verdict {
	p := packet.Decode(data)
	ft, ok := p.FiveTuple()
	if p.Err() != nil || !ok {
		f.Bad++
		return Malformed
	}
	if allow, ok := f.table.Lookup(ft, now); ok {
		return f.count(verdictOf(allow))
	}
	allow := false
	for _, r := range f.Rules {
		if r.Matches(ft) {
			allow = r.Allow
			break
		}
	}
	f.table.Insert(ft, allow, now)
	return f.count(verdictOf(allow))
}

func verdictOf(allow bool) Verdict {
	if allow {
		return Accept
	}
	return Drop
}

func (f *Firewall) count(v Verdict) Verdict {
	if v == Accept {
		f.Accepted++
	} else {
		f.Dropped++
	}
	return v
}

// TableStats exposes the flow-table counters.
func (f *Firewall) TableStats() flowtable.Stats { return f.table.Stats() }

// NAT is a source NAT: outbound packets have their source rewritten to
// the public address and an allocated port; the reverse mapping restores
// inbound replies. Mappings live in an asymmetric flow table.
type NAT struct {
	// Public is the external address.
	Public [4]byte

	nextPort uint16
	outbound *flowtable.Table[uint16]    // original tuple -> public port
	inbound  map[uint16]packet.FiveTuple // public port -> original tuple
	// Counters.
	Translated, Restored, Missed uint64
}

// NewNAT builds a NAT with the given mapping capacity.
func NewNAT(public [4]byte, tableCap int) *NAT {
	return &NAT{
		Public:   public,
		nextPort: 20000,
		outbound: flowtable.New[uint16](tableCap, false),
		inbound:  make(map[uint16]packet.FiveTuple, tableCap),
	}
}

// ProcessOutbound rewrites the packet in place (source address and port)
// and returns the verdict. The IPv4 header checksum is recomputed so the
// result remains a valid packet.
func (n *NAT) ProcessOutbound(data []byte, now float64) Verdict {
	p := packet.Decode(data)
	ft, ok := p.FiveTuple()
	if p.Err() != nil || !ok {
		return Malformed
	}
	port, ok := n.outbound.Lookup(ft, now)
	if !ok {
		port = n.allocPort()
		if evicted := n.outbound.Insert(ft, port, now); evicted {
			// The evicted reverse mapping is now stale; drop it lazily on
			// the inbound path (it will miss).
		}
		n.inbound[port] = ft
	}
	rewriteSrc(data, n.Public, port)
	n.Translated++
	return Accept
}

// ProcessInbound restores the original destination for a reply to the
// public address; packets without a mapping are dropped.
func (n *NAT) ProcessInbound(data []byte, now float64) Verdict {
	p := packet.Decode(data)
	ft, ok := p.FiveTuple()
	if p.Err() != nil || !ok {
		return Malformed
	}
	orig, ok := n.inbound[ft.DstPort]
	if !ok || ft.Dst != n.Public {
		n.Missed++
		return Drop
	}
	// Verify the mapping is still resident (not evicted).
	if _, live := n.outbound.Lookup(orig, now); !live {
		delete(n.inbound, ft.DstPort)
		n.Missed++
		return Drop
	}
	rewriteDst(data, orig.Src, orig.SrcPort)
	n.Restored++
	return Accept
}

func (n *NAT) allocPort() uint16 {
	for {
		n.nextPort++
		if n.nextPort < 20000 {
			n.nextPort = 20000
		}
		if _, taken := n.inbound[n.nextPort]; !taken {
			return n.nextPort
		}
	}
}

// rewriteSrc replaces the source IP and L4 source port in place and fixes
// the IPv4 header checksum.
func rewriteSrc(data []byte, ip [4]byte, port uint16) {
	ihl := int(data[14]&0x0F) * 4
	copy(data[14+12:14+16], ip[:])
	l4 := 14 + ihl
	binary.BigEndian.PutUint16(data[l4:l4+2], port)
	fixIPChecksum(data)
}

// rewriteDst replaces the destination IP and L4 destination port.
func rewriteDst(data []byte, ip [4]byte, port uint16) {
	ihl := int(data[14]&0x0F) * 4
	copy(data[14+16:14+20], ip[:])
	l4 := 14 + ihl
	binary.BigEndian.PutUint16(data[l4+2:l4+4], port)
	fixIPChecksum(data)
}

func fixIPChecksum(data []byte) {
	ihl := int(data[14]&0x0F) * 4
	hdr := data[14 : 14+ihl]
	hdr[10], hdr[11] = 0, 0
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ^uint16(sum))
}
