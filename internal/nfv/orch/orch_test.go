package orch

import (
	"testing"

	"nfvxai/internal/ml"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

func winWithUtil(util float64, replicas int) (*telemetry.Window, *chain.Chain) {
	c := chain.New("c", 0, chain.NewGroup("fw", vnf.Firewall, replicas, 1))
	w := telemetry.NewWindow(8)
	w.Push(telemetry.Record{
		Demand: traffic.Demand{PPS: 1000, BPS: 5e5, AvgPktBytes: 500},
		Chain: chain.Result{
			PerGroup: []chain.GroupResult{{Name: "fw", Replicas: replicas, Utilization: util}},
		},
		TotalCores: replicas,
	})
	return w, c
}

func TestStaticNeverScales(t *testing.T) {
	w, c := winWithUtil(0.99, 1)
	if got := (Static{}).Decide(w, c); got != nil {
		t.Fatalf("static scaled: %v", got)
	}
}

func TestThresholdScalesUp(t *testing.T) {
	s := &Threshold{UpUtil: 0.8, DownUtil: 0.3}
	w, c := winWithUtil(0.95, 1)
	dec := s.Decide(w, c)
	if len(dec) != 1 || dec[0].Delta != 1 || dec[0].Group != "fw" {
		t.Fatalf("decisions %v", dec)
	}
	if dec[0].Reason == "" {
		t.Fatal("empty reason")
	}
}

func TestThresholdScalesDownButNotBelowOne(t *testing.T) {
	s := &Threshold{UpUtil: 0.8, DownUtil: 0.3}
	w, c := winWithUtil(0.1, 3)
	dec := s.Decide(w, c)
	if len(dec) != 1 || dec[0].Delta != -1 {
		t.Fatalf("decisions %v", dec)
	}
	// Single replica: no scale-down offered.
	w1, c1 := winWithUtil(0.1, 1)
	if got := (&Threshold{}).Decide(w1, c1); got != nil {
		t.Fatalf("scale-down below 1 offered: %v", got)
	}
}

func TestThresholdCooldown(t *testing.T) {
	s := &Threshold{UpUtil: 0.8, CooldownEpochs: 2}
	w, c := winWithUtil(0.95, 1)
	if len(s.Decide(w, c)) != 1 {
		t.Fatal("first decision missing")
	}
	if len(s.Decide(w, c)) != 0 || len(s.Decide(w, c)) != 0 {
		t.Fatal("cooldown not applied")
	}
	if len(s.Decide(w, c)) != 1 {
		t.Fatal("cooldown did not expire")
	}
}

func TestThresholdEmptyWindow(t *testing.T) {
	c := chain.New("c", 0, chain.NewGroup("fw", vnf.Firewall, 1, 1))
	if got := (&Threshold{}).Decide(telemetry.NewWindow(4), c); got != nil {
		t.Fatalf("decisions on empty window: %v", got)
	}
}

func TestPredictiveScalesOnForecast(t *testing.T) {
	// Model always forecasts 1.2 bottleneck util → scale up toward 0.6.
	s := &Predictive{
		Model:      ml.PredictorFunc(func([]float64) float64 { return 1.2 }),
		TargetUtil: 0.6,
	}
	w, c := winWithUtil(0.7, 2)
	dec := s.Decide(w, c)
	if len(dec) != 1 || dec[0].Delta < 1 {
		t.Fatalf("decisions %v", dec)
	}
	// ceil(2 * 1.2/0.6) − 2 = 2.
	if dec[0].Delta != 2 {
		t.Fatalf("delta %d want 2", dec[0].Delta)
	}
	if s.LastForecast != 1.2 || len(s.LastFeatures) == 0 {
		t.Fatal("forecast not recorded")
	}
}

func TestPredictiveScaleDown(t *testing.T) {
	s := &Predictive{
		Model: ml.PredictorFunc(func([]float64) float64 { return 0.1 }),
	}
	w, c := winWithUtil(0.2, 3)
	dec := s.Decide(w, c)
	if len(dec) != 1 || dec[0].Delta != -1 {
		t.Fatalf("decisions %v", dec)
	}
	// At one replica, no scale-down.
	w1, c1 := winWithUtil(0.2, 1)
	s2 := &Predictive{Model: ml.PredictorFunc(func([]float64) float64 { return 0.1 })}
	if got := s2.Decide(w1, c1); got != nil {
		t.Fatalf("scale below 1: %v", got)
	}
}

func TestPredictiveMaxStep(t *testing.T) {
	s := &Predictive{
		Model:   ml.PredictorFunc(func([]float64) float64 { return 10 }),
		MaxStep: 2,
	}
	w, c := winWithUtil(0.9, 1)
	dec := s.Decide(w, c)
	if len(dec) != 1 || dec[0].Delta != 2 {
		t.Fatalf("max step not applied: %v", dec)
	}
}

func TestPredictiveCooldownAndNilModel(t *testing.T) {
	s := &Predictive{
		Model:          ml.PredictorFunc(func([]float64) float64 { return 2 }),
		CooldownEpochs: 2,
	}
	w, c := winWithUtil(0.9, 1)
	if len(s.Decide(w, c)) != 1 {
		t.Fatal("first decision missing")
	}
	if len(s.Decide(w, c)) != 0 {
		t.Fatal("cooldown not applied")
	}
	if got := (&Predictive{}).Decide(w, c); got != nil {
		t.Fatalf("nil model decisions: %v", got)
	}
}

func TestPredictiveMidbandHolds(t *testing.T) {
	s := &Predictive{Model: ml.PredictorFunc(func([]float64) float64 { return 0.6 })}
	w, c := winWithUtil(0.6, 2)
	if got := s.Decide(w, c); got != nil {
		t.Fatalf("mid-band forecast should hold: %v", got)
	}
}
