// Package orch implements the management-plane scalers the paper
// compares: a reactive threshold autoscaler (scale when observed CPU
// crosses a bound) and a predictive autoscaler driven by an ML forecast
// of next-epoch bottleneck utilization — the model whose decisions the
// XAI layer explains to operators.
package orch

import (
	"fmt"
	"math"

	"nfvxai/internal/ml"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/telemetry"
)

// Decision is one scaling action.
type Decision struct {
	Group  string
	Delta  int
	Reason string
}

// Scaler decides replica changes from the telemetry window.
type Scaler interface {
	Decide(win *telemetry.Window, c *chain.Chain) []Decision
}

// Static never scales; it is the fixed-allocation baseline.
type Static struct{}

// Decide implements Scaler.
func (Static) Decide(*telemetry.Window, *chain.Chain) []Decision { return nil }

// Threshold is the classic reactive autoscaler: scale a group up when its
// observed utilization crosses UpUtil, down when below DownUtil, with a
// per-group cooldown.
type Threshold struct {
	// UpUtil/DownUtil default to 0.8 / 0.3.
	UpUtil, DownUtil float64
	// CooldownEpochs suppresses consecutive actions on a group (default 3).
	CooldownEpochs int

	cool map[string]int
}

// Decide implements Scaler.
func (t *Threshold) Decide(win *telemetry.Window, c *chain.Chain) []Decision {
	if win.Len() == 0 {
		return nil
	}
	up := t.UpUtil
	if up <= 0 {
		up = 0.8
	}
	down := t.DownUtil
	if down <= 0 {
		down = 0.3
	}
	cooldown := t.CooldownEpochs
	if cooldown <= 0 {
		cooldown = 3
	}
	if t.cool == nil {
		t.cool = map[string]int{}
	}
	last := win.Last()
	var out []Decision
	for _, gr := range last.Chain.PerGroup {
		if t.cool[gr.Name] > 0 {
			t.cool[gr.Name]--
			continue
		}
		switch {
		case gr.Utilization > up:
			out = append(out, Decision{
				Group:  gr.Name,
				Delta:  1,
				Reason: fmt.Sprintf("observed util %.2f > %.2f", gr.Utilization, up),
			})
			t.cool[gr.Name] = cooldown
		case gr.Utilization < down && gr.Replicas > 1:
			out = append(out, Decision{
				Group:  gr.Name,
				Delta:  -1,
				Reason: fmt.Sprintf("observed util %.2f < %.2f", gr.Utilization, down),
			})
			t.cool[gr.Name] = cooldown
		}
	}
	return out
}

// Predictive scales ahead of demand using an ML forecast of the next
// epoch's bottleneck utilization (at the current allocation).
type Predictive struct {
	// Model predicts next-epoch bottleneck utilization from the telemetry
	// feature vector (see telemetry.Features).
	Model ml.Predictor
	// TargetUtil is the post-scaling utilization goal (default 0.6).
	TargetUtil float64
	// UpUtil triggers scale-up when the forecast exceeds it (default 0.8);
	// DownUtil triggers scale-down (default 0.35).
	UpUtil, DownUtil float64
	// CooldownEpochs suppresses consecutive actions (default 2).
	CooldownEpochs int
	// MaxStep bounds replicas added per decision (default 3).
	MaxStep int
	// MaxReplicas caps any group's size (default 12): the forecast model
	// extrapolates outside its training distribution at large replica
	// counts, and the cap bounds the damage of a runaway forecast.
	MaxReplicas int

	cool int
	// LastForecast exposes the most recent prediction (for explanation).
	LastForecast float64
	// LastFeatures exposes the feature vector behind it.
	LastFeatures []float64
}

// Decide implements Scaler: it forecasts the bottleneck group's next-epoch
// utilization and resizes that group toward TargetUtil.
func (p *Predictive) Decide(win *telemetry.Window, c *chain.Chain) []Decision {
	if win.Len() == 0 || p.Model == nil {
		return nil
	}
	target := p.TargetUtil
	if target <= 0 {
		target = 0.6
	}
	up := p.UpUtil
	if up <= 0 {
		up = 0.8
	}
	down := p.DownUtil
	if down <= 0 {
		down = 0.35
	}
	maxStep := p.MaxStep
	if maxStep <= 0 {
		maxStep = 3
	}
	maxReplicas := p.MaxReplicas
	if maxReplicas <= 0 {
		maxReplicas = 12
	}
	cooldown := p.CooldownEpochs
	if cooldown <= 0 {
		cooldown = 2
	}
	feats := telemetry.Features(win)
	p.LastFeatures = feats
	forecast := p.Model.Predict(feats)
	p.LastForecast = forecast
	if p.cool > 0 {
		p.cool--
		return nil
	}
	last := win.Last()
	if len(last.Chain.PerGroup) == 0 {
		return nil
	}
	bn := last.Chain.PerGroup[last.Chain.Bottleneck]
	g, err := c.Group(bn.Name)
	if err != nil {
		return nil
	}
	// For downscaling decisions, trust whichever of forecast and observed
	// utilization is higher: when the allocation has drifted far from the
	// training distribution, the observed signal keeps an extrapolating
	// forecast from pinning the group at peak size forever.
	utilEst := math.Max(forecast, bn.Utilization)
	switch {
	case forecast > up && g.Replicas() < maxReplicas:
		// Replicas needed so forecast util falls to target.
		needed := int(math.Ceil(float64(g.Replicas()) * forecast / target))
		delta := needed - g.Replicas()
		if delta < 1 {
			delta = 1
		}
		if delta > maxStep {
			delta = maxStep
		}
		if g.Replicas()+delta > maxReplicas {
			delta = maxReplicas - g.Replicas()
		}
		p.cool = cooldown
		return []Decision{{
			Group:  bn.Name,
			Delta:  delta,
			Reason: fmt.Sprintf("forecast util %.2f > %.2f", forecast, up),
		}}
	case utilEst < down && g.Replicas() > 1:
		// Only release a replica if the post-scaling utilization estimate
		// still clears the target with headroom — prevents the thrash
		// where a night-time scale-down causes burst violations.
		r := float64(g.Replicas())
		if utilEst*r/(r-1) >= target {
			return nil
		}
		p.cool = cooldown
		return []Decision{{
			Group:  bn.Name,
			Delta:  -1,
			Reason: fmt.Sprintf("estimated util %.2f < %.2f", utilEst, down),
		}}
	}
	return nil
}
