// Package vnf models virtual network functions as queueing stations with
// cycle-accurate cost models: each packet costs CPU cycles (per packet,
// per byte, per new flow), flow-state tables overflow with a cache-miss
// penalty, and latency follows a Kingman-style G/G/1 approximation that
// grows nonlinearly with utilization and burstiness. These couplings are
// what make NFV resource prediction a genuine ML problem — and what the
// explanation layer must surface back to the operator.
package vnf

import (
	"fmt"
	"math"

	"nfvxai/internal/nfv/traffic"
)

// Kind enumerates the supported VNF types.
type Kind int

// VNF kinds.
const (
	Firewall Kind = iota
	NAT
	IDS
	LoadBalancer
	RateLimiter
	Monitor
	DPI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Firewall:
		return "firewall"
	case NAT:
		return "nat"
	case IDS:
		return "ids"
	case LoadBalancer:
		return "lb"
	case RateLimiter:
		return "ratelimiter"
	case Monitor:
		return "monitor"
	case DPI:
		return "dpi"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all supported VNF kinds.
func Kinds() []Kind {
	return []Kind{Firewall, NAT, IDS, LoadBalancer, RateLimiter, Monitor, DPI}
}

// KindFor resolves a kind by its String() name ("firewall", "nat", "ids",
// "lb", "ratelimiter", "monitor", "dpi"). Declarative scenario specs name
// kinds by string, so unknown names must be detectable, not a panic.
func KindFor(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// CostModel declares the CPU cost structure of a VNF implementation.
type CostModel struct {
	// CyclesPerPacket is the fixed header-processing cost.
	CyclesPerPacket float64
	// CyclesPerByte is the payload-touching cost (large for DPI/IDS).
	CyclesPerByte float64
	// CyclesPerNewFlow is the flow-setup cost (state insertion).
	CyclesPerNewFlow float64
	// StateEntries is the per-instance flow-table capacity; 0 = stateless.
	StateEntries int
	// OverflowPenalty multiplies the per-packet cost when active flows
	// exceed the table (evictions + lookups miss cache).
	OverflowPenalty float64
}

// DefaultCost returns a representative cost model per kind, loosely
// calibrated to published software-middlebox measurements (order of
// magnitude: simple L3/L4 functions cost hundreds of cycles per packet,
// payload-inspecting functions cost thousands plus per-byte work).
func DefaultCost(k Kind) CostModel {
	switch k {
	case Firewall:
		return CostModel{CyclesPerPacket: 800, CyclesPerByte: 0.5, CyclesPerNewFlow: 2000, StateEntries: 65536, OverflowPenalty: 1.8}
	case NAT:
		return CostModel{CyclesPerPacket: 600, CyclesPerByte: 0.2, CyclesPerNewFlow: 3000, StateEntries: 65536, OverflowPenalty: 2.0}
	case IDS:
		return CostModel{CyclesPerPacket: 2200, CyclesPerByte: 4.5, CyclesPerNewFlow: 4000, StateEntries: 32768, OverflowPenalty: 2.5}
	case LoadBalancer:
		return CostModel{CyclesPerPacket: 400, CyclesPerByte: 0.1, CyclesPerNewFlow: 1500, StateEntries: 131072, OverflowPenalty: 1.5}
	case RateLimiter:
		return CostModel{CyclesPerPacket: 300, CyclesPerByte: 0.05, CyclesPerNewFlow: 500, StateEntries: 262144, OverflowPenalty: 1.2}
	case Monitor:
		return CostModel{CyclesPerPacket: 250, CyclesPerByte: 0.1, CyclesPerNewFlow: 800, StateEntries: 131072, OverflowPenalty: 1.3}
	case DPI:
		return CostModel{CyclesPerPacket: 2800, CyclesPerByte: 6.0, CyclesPerNewFlow: 5000, StateEntries: 32768, OverflowPenalty: 2.5}
	default:
		return CostModel{CyclesPerPacket: 500, CyclesPerByte: 0.2, CyclesPerNewFlow: 1000}
	}
}

// Instance is one running replica of a VNF.
type Instance struct {
	Kind Kind
	Cost CostModel
	// Cores is the vCPU allocation; CoreHz the per-core clock (default
	// 2.4 GHz); Efficiency the fraction of cycles usable for packet work
	// after framework overhead (default 0.85).
	Cores      int
	CoreHz     float64
	Efficiency float64
	// CapScale is a transient capacity multiplier in (0, 1] set by the
	// infrastructure layer to model host contention (0 means 1).
	CapScale float64
}

// New returns an instance of kind k with the default cost model.
func New(k Kind, cores int) *Instance {
	return &Instance{Kind: k, Cost: DefaultCost(k), Cores: cores}
}

func (in *Instance) coreHz() float64 {
	if in.CoreHz <= 0 {
		return 2.4e9
	}
	return in.CoreHz
}

func (in *Instance) efficiency() float64 {
	if in.Efficiency <= 0 || in.Efficiency > 1 {
		return 0.85
	}
	return in.Efficiency
}

// CapacityCycles returns usable cycles/sec after any contention scaling.
func (in *Instance) CapacityCycles() float64 {
	scale := in.CapScale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return float64(in.Cores) * in.coreHz() * in.efficiency() * scale
}

// DemandCycles returns the cycles/sec needed to fully serve demand d with
// activeFlows flows resident (per instance, after load balancing).
func (in *Instance) DemandCycles(d traffic.Demand, activeFlows float64) float64 {
	perPkt := in.Cost.CyclesPerPacket * in.stateFactor(activeFlows)
	fps := float64(d.NewFlows) // new flows this epoch ≈ flows/sec at 1 s epochs
	return d.PPS*perPkt + d.BPS*in.Cost.CyclesPerByte + fps*in.Cost.CyclesPerNewFlow
}

// stateFactor returns the per-packet cost multiplier from flow-table
// pressure: 1 when the table fits, rising linearly to OverflowPenalty at
// 2× capacity and saturating there.
func (in *Instance) stateFactor(activeFlows float64) float64 {
	if in.Cost.StateEntries <= 0 || activeFlows <= float64(in.Cost.StateEntries) {
		return 1
	}
	over := activeFlows/float64(in.Cost.StateEntries) - 1
	if over > 1 {
		over = 1
	}
	return 1 + over*(in.Cost.OverflowPenalty-1)
}

// Result reports one epoch of processing at this instance.
type Result struct {
	// Utilization is offered cycles / capacity (can exceed 1).
	Utilization float64
	// ServedPPS and DroppedPPS partition the offered packet rate.
	ServedPPS, DroppedPPS float64
	// LossRate is DroppedPPS / offered PPS (0 when no load).
	LossRate float64
	// LatencyMs is the mean per-packet sojourn time (service + queueing).
	LatencyMs float64
	// StateFactor is the applied table-pressure multiplier.
	StateFactor float64
}

// Process serves demand d (the per-instance share) for one epoch and
// returns the station's performance. burst is the epoch's burstiness
// indicator in [0, 1]; it inflates queueing delay via the arrival-process
// variability term of Kingman's formula.
func (in *Instance) Process(d traffic.Demand, activeFlows float64) Result {
	capacity := in.CapacityCycles()
	demand := in.DemandCycles(d, activeFlows)
	util := 0.0
	if capacity > 0 {
		util = demand / capacity
	}
	res := Result{Utilization: util, StateFactor: in.stateFactor(activeFlows)}
	if d.PPS <= 0 {
		return res
	}
	served := d.PPS
	if util > 1 {
		served = d.PPS / util
		res.DroppedPPS = d.PPS - served
	}
	res.ServedPPS = served
	res.LossRate = res.DroppedPPS / d.PPS

	// Service time per packet (ms).
	svcMs := (demand / d.PPS) / in.coreHz() * 1000 / math.Max(1, float64(in.Cores))
	// Kingman G/G/1 waiting time: W ≈ ρ/(1−ρ) · (Ca²+Cs²)/2 · S, with
	// arrival variability rising with the burst indicator. Clamp ρ below 1
	// so overload yields a large-but-finite queueing estimate (drops are
	// accounted separately).
	rho := math.Min(util, 0.99)
	ca2 := 1 + 4*d.Burst // Poisson (1) to bursty (5)
	const cs2 = 1.0
	waitMs := rho / (1 - rho) * (ca2 + cs2) / 2 * svcMs
	res.LatencyMs = svcMs + waitMs
	return res
}
