package vnf

import (
	"math"
	"strings"
	"testing"

	"nfvxai/internal/nfv/traffic"
)

func demand(pps, avgPkt float64, newFlows int, burst float64) traffic.Demand {
	return traffic.Demand{
		PPS:         pps,
		BPS:         pps * avgPkt,
		AvgPktBytes: avgPkt,
		NewFlows:    newFlows,
		Burst:       burst,
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if strings.Contains(k.String(), "Kind(") {
			t.Fatalf("kind %d missing name", k)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestDefaultCostsOrdering(t *testing.T) {
	// Payload-inspecting functions must cost more than header-only ones.
	if DefaultCost(DPI).CyclesPerByte <= DefaultCost(Firewall).CyclesPerByte {
		t.Fatal("DPI should cost more per byte than firewall")
	}
	if DefaultCost(IDS).CyclesPerPacket <= DefaultCost(RateLimiter).CyclesPerPacket {
		t.Fatal("IDS should cost more per packet than rate limiter")
	}
	for _, k := range Kinds() {
		c := DefaultCost(k)
		if c.CyclesPerPacket <= 0 || c.CyclesPerNewFlow < 0 {
			t.Fatalf("%v: nonsensical cost %+v", k, c)
		}
	}
}

func TestCapacityScalesWithCores(t *testing.T) {
	a := New(Firewall, 1)
	b := New(Firewall, 4)
	if b.CapacityCycles() != 4*a.CapacityCycles() {
		t.Fatal("capacity not linear in cores")
	}
}

func TestUtilizationMonotoneInLoad(t *testing.T) {
	in := New(Firewall, 2)
	prev := -1.0
	for _, pps := range []float64{1e3, 1e4, 1e5, 1e6} {
		r := in.Process(demand(pps, 500, 100, 0), 1000)
		if r.Utilization <= prev {
			t.Fatalf("utilization not monotone at %v pps", pps)
		}
		prev = r.Utilization
	}
}

func TestNoDropsBelowCapacity(t *testing.T) {
	in := New(Firewall, 4)
	r := in.Process(demand(1e4, 500, 50, 0), 1000)
	if r.Utilization >= 1 {
		t.Fatalf("test demand unexpectedly saturates: util %v", r.Utilization)
	}
	if r.DroppedPPS != 0 || r.LossRate != 0 {
		t.Fatalf("drops below capacity: %+v", r)
	}
	if r.ServedPPS != 1e4 {
		t.Fatalf("served %v want all", r.ServedPPS)
	}
}

func TestOverloadDropsProportionally(t *testing.T) {
	in := New(DPI, 1)
	// Find a demand that overloads: DPI at 1500B packets is expensive.
	r := in.Process(demand(2e6, 1500, 1000, 0), 1000)
	if r.Utilization <= 1 {
		t.Fatalf("expected overload, util %v", r.Utilization)
	}
	if r.DroppedPPS <= 0 {
		t.Fatal("no drops under overload")
	}
	// served + dropped = offered, served ≈ offered/util.
	if math.Abs(r.ServedPPS+r.DroppedPPS-2e6) > 1 {
		t.Fatal("served+dropped != offered")
	}
	if math.Abs(r.ServedPPS-2e6/r.Utilization) > 1 {
		t.Fatal("served != offered/util")
	}
}

func TestLatencyKneeNearSaturation(t *testing.T) {
	in := New(Firewall, 1)
	low := in.Process(demand(1e4, 200, 10, 0), 100)
	// Pick a demand near (but below) capacity.
	capPPS := in.CapacityCycles() / (in.Cost.CyclesPerPacket + 200*in.Cost.CyclesPerByte)
	high := in.Process(demand(0.95*capPPS, 200, 10, 0), 100)
	if low.Utilization > 0.2 {
		t.Fatalf("low-load case not low: %v", low.Utilization)
	}
	if high.LatencyMs < 5*low.LatencyMs {
		t.Fatalf("no queueing knee: low %v ms, high %v ms", low.LatencyMs, high.LatencyMs)
	}
}

func TestBurstinessInflatesLatency(t *testing.T) {
	in := New(Firewall, 1)
	capPPS := in.CapacityCycles() / (in.Cost.CyclesPerPacket + 200*in.Cost.CyclesPerByte)
	smooth := in.Process(demand(0.8*capPPS, 200, 10, 0), 100)
	bursty := in.Process(demand(0.8*capPPS, 200, 10, 1), 100)
	if bursty.LatencyMs <= smooth.LatencyMs {
		t.Fatalf("burstiness did not inflate latency: %v vs %v", bursty.LatencyMs, smooth.LatencyMs)
	}
}

func TestStateTableOverflowPenalty(t *testing.T) {
	in := New(NAT, 2)
	fits := in.Process(demand(1e5, 300, 100, 0), float64(in.Cost.StateEntries)/2)
	over := in.Process(demand(1e5, 300, 100, 0), float64(in.Cost.StateEntries)*2)
	if fits.StateFactor != 1 {
		t.Fatalf("in-table state factor %v", fits.StateFactor)
	}
	if over.StateFactor != in.Cost.OverflowPenalty {
		t.Fatalf("overflow factor %v want %v", over.StateFactor, in.Cost.OverflowPenalty)
	}
	if over.Utilization <= fits.Utilization {
		t.Fatal("table overflow did not raise utilization")
	}
	// Stateless VNF: no penalty ever.
	stateless := &Instance{Kind: Monitor, Cost: CostModel{CyclesPerPacket: 100}, Cores: 1}
	if f := stateless.stateFactor(1e9); f != 1 {
		t.Fatalf("stateless factor %v", f)
	}
}

func TestZeroLoad(t *testing.T) {
	in := New(Firewall, 1)
	r := in.Process(demand(0, 0, 0, 0), 0)
	if r.Utilization != 0 || r.LatencyMs != 0 || r.LossRate != 0 {
		t.Fatalf("zero-load result %+v", r)
	}
}

func TestPerByteCostMatters(t *testing.T) {
	// Same PPS, bigger packets → higher utilization (per-byte work).
	in := New(IDS, 2)
	small := in.Process(demand(5e4, 64, 100, 0), 1000)
	big := in.Process(demand(5e4, 1500, 100, 0), 1000)
	if big.Utilization <= small.Utilization*1.5 {
		t.Fatalf("per-byte cost not visible: %v vs %v", big.Utilization, small.Utilization)
	}
}

func TestNewFlowCostMatters(t *testing.T) {
	in := New(NAT, 2)
	few := in.Process(demand(5e4, 300, 10, 0), 1000)
	many := in.Process(demand(5e4, 300, 100000, 0), 1000)
	if many.Utilization <= few.Utilization {
		t.Fatal("flow-setup cost not visible")
	}
}

func TestDefaultsApplied(t *testing.T) {
	in := &Instance{Kind: Firewall, Cost: DefaultCost(Firewall), Cores: 1}
	if in.coreHz() != 2.4e9 {
		t.Fatalf("default CoreHz %v", in.coreHz())
	}
	if in.efficiency() != 0.85 {
		t.Fatalf("default efficiency %v", in.efficiency())
	}
	in.CoreHz = 3e9
	in.Efficiency = 0.5
	if in.coreHz() != 3e9 || in.efficiency() != 0.5 {
		t.Fatal("explicit values ignored")
	}
}
