package core

import (
	"fmt"
	"math"
	"strings"

	"nfvxai/internal/xai"
	"nfvxai/internal/xai/counterfactual"
)

// OperatorReport renders an attribution as the operator-facing incident
// narrative the paper advocates: what the model predicted, which telemetry
// drove the prediction up or down, and in plain terms.
func OperatorReport(title string, attr xai.Attribution, method string, topK int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "prediction: %.4g (baseline %.4g, method %s)\n", attr.Value, attr.Base, method)
	delta := attr.Value - attr.Base
	dir := "above"
	if delta < 0 {
		dir = "below"
	}
	fmt.Fprintf(&sb, "the prediction is %.4g %s the fleet baseline; top drivers:\n", math.Abs(delta), dir)
	if topK <= 0 {
		topK = 5
	}
	for i, j := range attr.TopK(topK) {
		verb := "pushes the prediction up"
		if attr.Phi[j] < 0 {
			verb = "pulls the prediction down"
		}
		fmt.Fprintf(&sb, "  %d. %-24s %s by %.4g\n", i+1, attr.Name(j), verb, math.Abs(attr.Phi[j]))
	}
	return sb.String()
}

// WhatIfReport renders a counterfactual as a remediation suggestion.
func WhatIfReport(cf counterfactual.Counterfactual, names []string, original []float64, target counterfactual.Target) string {
	var sb strings.Builder
	if !cf.Valid {
		fmt.Fprintf(&sb, "no feasible change found to reach prediction %s %.4g\n", target.Op, target.Value)
		return sb.String()
	}
	if cf.Sparsity == 0 {
		sb.WriteString("prediction already satisfies the target; no change needed\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "to reach prediction %s %.4g (now %.4g), change %d feature(s):\n",
		target.Op, target.Value, cf.Prediction, cf.Sparsity)
	for _, j := range cf.Changed {
		name := fmt.Sprintf("f%d", j)
		if j < len(names) {
			name = names[j]
		}
		fmt.Fprintf(&sb, "  %-24s %.4g -> %.4g\n", name, original[j], cf.X[j])
	}
	fmt.Fprintf(&sb, "resulting prediction: %.4g (distance %.2f sd)\n", cf.Prediction, cf.Proximity)
	return sb.String()
}
