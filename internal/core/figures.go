package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"nfvxai/internal/ml"
	"nfvxai/internal/nfv/orch"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/evalx"
	"nfvxai/internal/xai/lime"
	"nfvxai/internal/xai/shap"
)

// Figure1Result is the global feature-importance profile (Figure 1).
type Figure1Result struct {
	Names     []string
	ShapImp   []float64
	PermImp   []float64
	Spearman  float64
	Top5Match float64
}

// String renders the figure data.
func (f Figure1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: global importance (|SHAP| vs permutation), Spearman %.3f, top5 overlap %.2f\n",
		f.Spearman, f.Top5Match)
	sb.WriteString("top features by mean |SHAP|:\n")
	sb.WriteString(ImportanceTable(f.Names, f.ShapImp, 10))
	sb.WriteString("top features by permutation importance:\n")
	sb.WriteString(ImportanceTable(f.Names, f.PermImp, 10))
	return sb.String()
}

// Figure1GlobalImportance regenerates Figure 1 on the CPU predictor.
func Figure1GlobalImportance(cfg ExpConfig) (Figure1Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure1Result{}, err
	}
	p, err := NewPipeline(ModelForest, ds, cfg.Seed)
	if err != nil {
		return Figure1Result{}, err
	}
	shapImp, permImp, err := p.GlobalImportance(context.Background(), cfg.Explained)
	if err != nil {
		return Figure1Result{}, err
	}
	return Figure1Result{
		Names:     ds.Names,
		ShapImp:   shapImp,
		PermImp:   permImp,
		Spearman:  evalx.RankAgreement(shapImp, permImp),
		Top5Match: evalx.TopKIntersection(shapImp, permImp, 5),
	}, nil
}

// LatencyRow is one point of Figure 2.
type LatencyRow struct {
	Method string
	Model  string
	Param  int // coalition samples / neighborhood size; 0 for treeshap
	MsPer  float64
}

// Figure2Result is the explanation-latency sweep (Figure 2).
type Figure2Result struct {
	Rows []LatencyRow
}

// String renders the figure data.
func (f Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: explanation latency (ms/instance)\n")
	fmt.Fprintf(&sb, "%-12s %-8s %8s %12s\n", "method", "model", "param", "ms")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-12s %-8s %8d %12.3f\n", r.Method, r.Model, r.Param, r.MsPer)
	}
	return sb.String()
}

// Figure2ExplanationLatency regenerates Figure 2: cost per explanation for
// TreeSHAP, KernelSHAP (sample sweep) and LIME, on the forest and MLP.
func Figure2ExplanationLatency(cfg ExpConfig) (Figure2Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure2Result{}, err
	}
	out := Figure2Result{}
	reps := 5
	for _, kind := range []ModelKind{ModelForest, ModelMLP} {
		p, err := NewPipeline(kind, ds, cfg.Seed)
		if err != nil {
			return Figure2Result{}, err
		}
		x := p.Test.X[0]
		if kind == ModelForest {
			e, _ := Explain(p.Model, p.Background, nil, 0, cfg.Seed)
			out.Rows = append(out.Rows, LatencyRow{
				Method: "treeshap", Model: kind.String(),
				MsPer: timeIt(reps*10, func() { mustExplain(e, x) }),
			})
		}
		for _, samples := range []int{128, 256, 512, 1024} {
			k := &shap.Kernel{Model: p.Model, Background: p.Background, NumSamples: samples, Seed: cfg.Seed}
			out.Rows = append(out.Rows, LatencyRow{
				Method: "kernelshap", Model: kind.String(), Param: samples,
				MsPer: timeIt(reps, func() { mustExplain(k, x) }),
			})
		}
		le := &lime.Explainer{Model: p.Model, Background: p.Background, NumSamples: 1000, Seed: cfg.Seed}
		out.Rows = append(out.Rows, LatencyRow{
			Method: "lime", Model: kind.String(), Param: 1000,
			MsPer: timeIt(reps, func() { mustExplain(le, x) }),
		})
	}
	return out, nil
}

func mustExplain(e xai.Explainer, x []float64) {
	if _, err := e.Explain(context.Background(), x); err != nil {
		panic(err)
	}
}

func timeIt(reps int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Milliseconds()) / float64(reps)
}

// Figure3Result is the deletion-curve comparison (Figure 3).
type Figure3Result struct {
	// GuidedDrop[k] / RandomDrop[k] is the mean |prediction − fully
	// deleted prediction| after removing k features (normalized to start
	// at 1).
	GuidedDrop, RandomDrop []float64
	MeanGap                float64
	Instances              int
}

// String renders the figure data.
func (f Figure3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: deletion curves over %d instances (mean gap %.4f)\n", f.Instances, f.MeanGap)
	fmt.Fprintf(&sb, "%4s %10s %10s\n", "k", "guided", "random")
	for k := range f.GuidedDrop {
		fmt.Fprintf(&sb, "%4d %10.4f %10.4f\n", k, f.GuidedDrop[k], f.RandomDrop[k])
	}
	return sb.String()
}

// Figure3DeletionCurve regenerates Figure 3: attribution-guided deletion
// collapses the CPU prediction toward baseline faster than random
// deletion.
func Figure3DeletionCurve(cfg ExpConfig) (Figure3Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure3Result{}, err
	}
	p, err := NewPipeline(ModelForest, ds, cfg.Seed)
	if err != nil {
		return Figure3Result{}, err
	}
	e, _ := p.Explainer()
	n := cfg.Explained
	if n > p.Test.Len() {
		n = p.Test.Len()
	}
	d := ds.NumFeatures()
	guided := make([]float64, d+1)
	random := make([]float64, d+1)
	var gapSum float64
	for i := 0; i < n; i++ {
		x := p.Test.X[i]
		attr, err := e.Explain(context.Background(), x)
		if err != nil {
			return Figure3Result{}, err
		}
		gc, err := evalx.Deletion(p.Model, x, attr.Ranking(), p.Background)
		if err != nil {
			return Figure3Result{}, err
		}
		gap, err := evalx.DeletionGap(p.Model, x, attr, p.Background, 8, cfg.Seed+int64(i))
		if err != nil {
			return Figure3Result{}, err
		}
		gapSum += gap
		// Random-order curve (single draw per instance, seeded).
		order := randomOrder(d, cfg.Seed+int64(i))
		rc, err := evalx.Deletion(p.Model, x, order, p.Background)
		if err != nil {
			return Figure3Result{}, err
		}
		final := gc.Pred[len(gc.Pred)-1]
		for k := 0; k <= d; k++ {
			guided[k] += abs(gc.Pred[k] - final)
			random[k] += abs(rc.Pred[k] - rc.Pred[len(rc.Pred)-1])
		}
	}
	// Normalize both curves to start at 1.
	if guided[0] > 0 {
		g0, r0 := guided[0], random[0]
		for k := range guided {
			guided[k] /= g0
			random[k] /= r0
		}
	}
	return Figure3Result{
		GuidedDrop: guided,
		RandomDrop: random,
		MeanGap:    gapSum / float64(n),
		Instances:  n,
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func randomOrder(d int, seed int64) []int {
	// Small deterministic permutation via splitmix-style stepping.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	s := uint64(seed)*0x9E3779B9 + 1
	for i := d - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Figure4Result is the Clever Hans sweep (Figure 4).
type Figure4Result struct {
	Rows []CleverHansResult
}

// String renders the figure data.
func (f Figure4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: Clever Hans audit (train-only telemetry artifact)\n")
	fmt.Fprintf(&sb, "%8s %6s %8s %8s %10s %9s\n", "leak", "rank", "trainR2", "testR2", "repairedR2", "detected")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%8.2f %6d %8.4f %8.4f %10.4f %9v\n",
			r.LeakStrength, r.ArtifactRank, r.TrainR2, r.TestR2, r.RepairedTestR2, r.Detected)
	}
	return sb.String()
}

// Figure4CleverHans regenerates Figure 4: the artifact's attribution rank
// and the accuracy collapse/recovery across leak strengths.
func Figure4CleverHans(cfg ExpConfig) (Figure4Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure4Result{}, err
	}
	out := Figure4Result{}
	for _, strength := range []float64{0, 0.5, 0.8, 0.95} {
		r, err := CleverHansAudit(context.Background(), ModelForest, ds, strength, cfg.Seed)
		if err != nil {
			return Figure4Result{}, err
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// Figure5Result is the stability comparison (Figure 5).
type Figure5Result struct {
	Sigmas []float64
	Shap   []float64
	Lime   []float64
}

// String renders the figure data.
func (f Figure5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: attribution stability under input noise (Spearman to clean)\n")
	fmt.Fprintf(&sb, "%8s %8s %8s\n", "sigma", "shap", "lime")
	for i := range f.Sigmas {
		fmt.Fprintf(&sb, "%8.2f %8.4f %8.4f\n", f.Sigmas[i], f.Shap[i], f.Lime[i])
	}
	return sb.String()
}

// Figure5Stability regenerates Figure 5: rank stability of SHAP vs LIME as
// input noise grows (noise scaled per-feature by training std).
func Figure5Stability(cfg ExpConfig) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure5Result{}, err
	}
	p, err := NewPipeline(ModelForest, ds, cfg.Seed)
	if err != nil {
		return Figure5Result{}, err
	}
	stds := featureStds(p.Train.X)
	se, _ := p.Explainer()
	le := &lime.Explainer{Model: p.Model, Background: p.Background, NumSamples: 600, Seed: cfg.Seed}
	out := Figure5Result{Sigmas: []float64{0.01, 0.05, 0.1, 0.25, 0.5}}
	nInst := 10
	if nInst > p.Test.Len() {
		nInst = p.Test.Len()
	}
	for _, sigma := range out.Sigmas {
		var sSum, lSum float64
		for i := 0; i < nInst; i++ {
			x := p.Test.X[i]
			sv, err := evalx.StabilityScaled(context.Background(), se, x, scaled(stds, sigma), 3, cfg.Seed+int64(i))
			if err != nil {
				return Figure5Result{}, err
			}
			lv, err := evalx.StabilityScaled(context.Background(), le, x, scaled(stds, sigma), 3, cfg.Seed+int64(i))
			if err != nil {
				return Figure5Result{}, err
			}
			sSum += sv
			lSum += lv
		}
		out.Shap = append(out.Shap, sSum/float64(nInst))
		out.Lime = append(out.Lime, lSum/float64(nInst))
	}
	return out, nil
}

func featureStds(X [][]float64) []float64 {
	d := len(X[0])
	mean := make([]float64, d)
	for _, r := range X {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	std := make([]float64, d)
	for _, r := range X {
		for j, v := range r {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(X)))
	}
	return std
}

func scaled(stds []float64, sigma float64) []float64 {
	out := make([]float64, len(stds))
	for j, s := range stds {
		out[j] = s * sigma
	}
	return out
}

// PolicyOutcome is one row of Figure 6.
type PolicyOutcome struct {
	Policy        string
	ViolationRate float64
	MeanCores     float64
	Decisions     int
}

// Figure6Result is the autoscaling comparison (Figure 6).
type Figure6Result struct {
	Rows []PolicyOutcome
	// PredictorR2 is the forecast model's held-out accuracy.
	PredictorR2 float64
}

// String renders the figure data.
func (f Figure6Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: autoscaling outcomes (forecast model R2 %.3f)\n", f.PredictorR2)
	fmt.Fprintf(&sb, "%-20s %12s %10s %10s\n", "policy", "violations", "cores", "decisions")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-20s %12.4f %10.2f %10d\n", r.Policy, r.ViolationRate, r.MeanCores, r.Decisions)
	}
	return sb.String()
}

// Figure6Autoscaling regenerates Figure 6: static vs reactive-threshold vs
// ML-predictive vs explanation-pruned predictive scaling on the web
// scenario (fresh traffic seed for the evaluation day).
func Figure6Autoscaling(cfg ExpConfig) (Figure6Result, error) {
	cfg = cfg.withDefaults()
	sc := WebScenario()

	// Train the forecast model on a historical day.
	ds, err := sc.GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Figure6Result{}, err
	}
	p, err := NewPipeline(ModelForest, ds, cfg.Seed)
	if err != nil {
		return Figure6Result{}, err
	}
	out := Figure6Result{PredictorR2: p.EvaluateRegression().R2}

	// Explanation-pruned forecast: keep only the top-8 features by |SHAP|.
	shapImp, _, err := p.GlobalImportance(context.Background(), 30)
	if err != nil {
		return Figure6Result{}, err
	}
	keepIdx := xai.Attribution{Phi: shapImp}.TopK(8)
	keepNames := make([]string, len(keepIdx))
	for i, j := range keepIdx {
		keepNames[i] = ds.Names[j]
	}
	prunedTrain := p.Train.SelectFeatures(keepNames...)
	prunedModel, err := TrainModel(ModelForest, prunedTrain, cfg.Seed)
	if err != nil {
		return Figure6Result{}, err
	}
	prunedPredictor := ml.PredictorFunc(func(x []float64) float64 {
		sub := make([]float64, len(keepIdx))
		for i, j := range keepIdx {
			sub[i] = x[j]
		}
		return prunedModel.Predict(sub)
	})

	evalSeed := cfg.Seed + 1000 // a different traffic day
	// The evaluation always covers one full diurnal day so every policy
	// faces the peak, regardless of how much history trained the model.
	const evalHours = 24.0
	policies := []struct {
		name   string
		scaler orch.Scaler
	}{
		{"static", orch.Static{}},
		{"threshold", &orch.Threshold{UpUtil: 0.8, DownUtil: 0.3}},
		{"predictive", &orch.Predictive{Model: p.Model}},
		{"predictive-pruned", &orch.Predictive{Model: prunedPredictor}},
	}
	for _, pol := range policies {
		w, h, err := sc.BuildWorld(evalSeed, pol.scaler)
		if err != nil {
			return Figure6Result{}, err
		}
		w.Run(evalHours * 3600)
		out.Rows = append(out.Rows, PolicyOutcome{
			Policy:        pol.name,
			ViolationRate: h.Tracker.ViolationRate(),
			MeanCores:     h.Tracker.CoreSeconds() / (evalHours * 3600),
			Decisions:     len(h.Decisions()),
		})
	}
	return out, nil
}
