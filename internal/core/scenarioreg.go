package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrScenarioExists reports a Register for a name or alias already taken.
var ErrScenarioExists = errors.New("scenario already exists")

// ErrScenarioNotFound reports a lookup of an unregistered scenario.
var ErrScenarioNotFound = errors.New("scenario not found")

// ScenarioRegistry is a concurrent-safe catalog of named scenario specs.
// It replaces the hard-coded web|nat switch: the two paper scenarios are
// pre-registered (under their canonical names plus the historical "web"
// and "nat" aliases), and new topologies are registered at runtime —
// POST /v1/scenarios — without recompiling.
type ScenarioRegistry struct {
	mu      sync.RWMutex
	specs   map[string]ScenarioSpec // canonical name → spec
	aliases map[string]string       // alias → canonical name
}

// NewScenarioRegistry returns a registry pre-seeded with the two paper
// scenarios: "web-sfc" (alias "web") and "nat-edge" (alias "nat").
func NewScenarioRegistry() *ScenarioRegistry {
	r := &ScenarioRegistry{specs: map[string]ScenarioSpec{}, aliases: map[string]string{}}
	if _, err := r.Register(WebScenarioSpec(), "web"); err != nil {
		panic(err) // builtin specs are known-good
	}
	if _, err := r.Register(NATScenarioSpec(), "nat"); err != nil {
		panic(err)
	}
	return r
}

// Register validates sp and adds it under its (defaulted) name plus the
// given aliases. Every name and alias must be unused. The normalized spec
// is returned.
func (r *ScenarioRegistry) Register(sp ScenarioSpec, aliases ...string) (ScenarioSpec, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	// Compile once up front so a registered spec can never fail later at
	// feed-start or training time for a reason Validate missed.
	if _, err := sp.Compile(); err != nil {
		return ScenarioSpec{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(sp.Name) {
		return ScenarioSpec{}, fmt.Errorf("core: scenario %q: %w", sp.Name, ErrScenarioExists)
	}
	for _, a := range aliases {
		if !validSegment(a) {
			return ScenarioSpec{}, fmt.Errorf("core: scenario alias %q: want one URL path segment of [A-Za-z0-9._-]", a)
		}
		if a != sp.Name && r.taken(a) {
			return ScenarioSpec{}, fmt.Errorf("core: scenario alias %q: %w", a, ErrScenarioExists)
		}
	}
	r.specs[sp.Name] = sp
	for _, a := range aliases {
		if a != sp.Name {
			r.aliases[a] = sp.Name
		}
	}
	return sp, nil
}

// taken reports whether name is already a canonical name or alias.
// Callers must hold the lock.
func (r *ScenarioRegistry) taken(name string) bool {
	if _, ok := r.specs[name]; ok {
		return true
	}
	_, ok := r.aliases[name]
	return ok
}

// Lookup resolves a canonical name or alias to its spec.
func (r *ScenarioRegistry) Lookup(name string) (ScenarioSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canon, ok := r.aliases[name]; ok {
		name = canon
	}
	sp, ok := r.specs[name]
	if !ok {
		return ScenarioSpec{}, fmt.Errorf("core: scenario %q: %w (registered: %s)",
			name, ErrScenarioNotFound, joinNames(r.namesLocked()))
	}
	return sp, nil
}

// Scenario resolves and compiles the named spec.
func (r *ScenarioRegistry) Scenario(name string) (Scenario, error) {
	sp, err := r.Lookup(name)
	if err != nil {
		return Scenario{}, err
	}
	return sp.Compile()
}

// List returns every registered spec, sorted by canonical name.
func (r *ScenarioRegistry) List() []ScenarioSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ScenarioSpec, 0, len(r.specs))
	for _, sp := range r.specs {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AliasesOf returns the aliases pointing at the named spec, sorted.
func (r *ScenarioRegistry) AliasesOf(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for a, canon := range r.aliases {
		if canon == name {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Names returns every resolvable name — canonical names and aliases —
// sorted.
func (r *ScenarioRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *ScenarioRegistry) namesLocked() []string {
	out := make([]string, 0, len(r.specs)+len(r.aliases))
	for n := range r.specs {
		out = append(out, n)
	}
	for a := range r.aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered specs (aliases excluded).
func (r *ScenarioRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.specs)
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
