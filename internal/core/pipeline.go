package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/anchors"
	"nfvxai/internal/xai/counterfactual"
	"nfvxai/internal/xai/perm"
	"nfvxai/internal/xai/shap"
	"nfvxai/internal/xai/xcache"
)

// Pipeline is the end-to-end explainable NFV analytics workflow: a trained
// predictor plus everything needed to explain it (background data, feature
// names, seeded explainers).
type Pipeline struct {
	Kind  ModelKind
	Model ml.Predictor
	Train *dataset.Dataset
	Test  *dataset.Dataset
	// Background is the reference sample for SHAP/LIME/counterfactuals.
	Background [][]float64
	// ShapSamples bounds KernelSHAP coalitions (default 1024). It is part
	// of the explainer-cache key, so changing it between calls takes
	// effect on the next Explainer/ExplainInstance call instead of being
	// silently ignored after the first build.
	ShapSamples int
	Seed        int64
	// DisableExplainerCache forces every explainer lookup to rebuild — the
	// pre-registry per-request behavior. Benchmarks use it to measure what
	// the cache saves; serving code must leave it false.
	DisableExplainerCache bool
	// PredCostNs overrides the measured per-prediction cost consulted by
	// PredictCostNs (nanoseconds per single-row prediction). Tests set it
	// to force deterministic budget-ladder decisions; 0 measures lazily.
	// Set before serving starts — it is read without synchronization.
	PredCostNs float64
	// ResultCache, when non-nil, memoizes attributions content-addressed
	// by (artifact digest, method, normalized options, instance) — see
	// explain_cache.go. Like the knobs above it is set before serving
	// (the registry attaches it under its own lock) and read without
	// synchronization afterwards.
	ResultCache *xcache.Cache

	// The measured prediction cost is a property of the frozen model, so
	// it is sampled once, on first demand.
	costOnce sync.Once
	costNs   float64

	// The content digest is a property of the frozen model too: sha256 of
	// the serialized artifact, computed once on first cache-aware explain.
	// digestDone is set (with release ordering) after digestOnce runs, so
	// DigestIfComputed can answer without forcing a serialization.
	digestOnce sync.Once
	digestDone atomic.Bool
	digest     string

	// Explainers are expensive to run but cheap to share: all the
	// repository's explainers are stateless across Explain calls, so one
	// instance per (method, params) serves concurrent requests. The cache
	// is a small LRU keyed by method name + canonical option fingerprint;
	// the default method's entry behaves exactly like the old single
	// cached explainer.
	explMu    sync.Mutex
	explCache map[string]*cachedExplainer
	explTick  int64

	// Global importance is a function of the frozen model and test set, so
	// it is computed once per (pipeline, n) and cached.
	impMu    sync.Mutex
	impN     int
	impShap  []float64
	impPerm  []float64
	impReady bool
}

// cachedExplainer is one LRU entry of the per-(method, params) cache.
type cachedExplainer struct {
	e      xai.Explainer
	method string
	tick   int64
}

// explainerCacheSize bounds how many built explainers a pipeline retains.
// Each entry is small (the heavy state — base-value caches — pays for
// itself only when reused), so a handful covers every method an operator
// flips between while comparing explanations.
const explainerCacheSize = 8

// ErrUnknownFeature reports a feature name that is not in the pipeline's
// schema (wrapped with the offending name).
var ErrUnknownFeature = errors.New("unknown feature")

// NewPipeline trains the model kind on ds (seeded 80/20 split) and
// prepares a background sample.
func NewPipeline(kind ModelKind, ds *dataset.Dataset, seed int64) (*Pipeline, error) {
	train, test := SplitDataset(ds, seed)
	model, err := TrainModel(kind, train, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	return &Pipeline{
		Kind:        kind,
		Model:       model,
		Train:       train,
		Test:        test,
		Background:  shap.SampleBackground(rng, train.X, 60),
		ShapSamples: 1024,
		Seed:        seed,
	}, nil
}

// EvaluateRegression reports test-set regression metrics.
func (p *Pipeline) EvaluateRegression() metrics.RegressionReport {
	pred := ml.PredictBatch(p.Model, p.Test.X)
	return metrics.EvalRegression(p.Kind.String(), pred, p.Test.Y)
}

// EvaluateClassification reports test-set classification metrics.
func (p *Pipeline) EvaluateClassification() metrics.ClassificationReport {
	prob := ml.PredictBatch(p.Model, p.Test.X)
	return metrics.EvalClassification(p.Kind.String(), prob, p.Test.Y)
}

// Explainer returns the default explainer for the pipeline's model and
// the method name chosen (DefaultMethod). The explainer is built lazily
// and cached, so serving paths do not pay setup per request.
func (p *Pipeline) Explainer() (xai.Explainer, string) {
	e, method, err := p.ExplainerFor("", xai.Options{})
	if err != nil {
		// The default method always builds for a registry-trained pipeline
		// (the background is non-empty and DefaultMethod only names
		// methods compatible with the zoo). A hand-assembled Pipeline with
		// no background can still get here; defer the failure to Explain
		// time — one erroring request — exactly like the pre-registry
		// constructors did, instead of crashing the process.
		return errExplainer{err: fmt.Errorf("core: default explainer for %v: %w", p.Kind, err)}, DefaultMethod(p.Model)
	}
	return e, method
}

// ExplainerFor returns a cached (or freshly built) explainer for the
// named registry method with the given options. An empty method selects
// the model's default (DefaultMethod). Options are normalized against
// the pipeline before keying the cache: a zero seed inherits p.Seed, and
// a zero sample budget inherits ShapSamples for the KernelSHAP path, so
// late ShapSamples changes produce a new cache entry rather than being
// dropped. Unknown methods and capability mismatches surface as
// xai.ErrUnknownMethod / xai.ErrUnsupportedModel.
func (p *Pipeline) ExplainerFor(method string, opts xai.Options) (xai.Explainer, string, error) {
	method, opts = p.NormalizeOptions(method, opts)
	// A capability mismatch is a verdict on the frozen (artifact, method)
	// pair; answer repeat offenders from the negative cache instead of
	// re-running the registry build on every 409.
	if err := p.cachedUnsupported(method); err != nil {
		return nil, "", err
	}
	if p.DisableExplainerCache {
		e, m, err := p.buildExplainer(method, opts)
		if err != nil {
			p.recordUnsupported(method, err)
			return nil, "", err
		}
		return e, m.Name, nil
	}
	key := method + "|" + opts.Key()
	p.explMu.Lock()
	defer p.explMu.Unlock()
	p.explTick++
	if p.explCache == nil {
		p.explCache = make(map[string]*cachedExplainer, explainerCacheSize)
	}
	if c, ok := p.explCache[key]; ok {
		c.tick = p.explTick
		return c.e, c.method, nil
	}
	e, m, err := p.buildExplainer(method, opts)
	if err != nil {
		p.recordUnsupported(method, err)
		return nil, "", err
	}
	if len(p.explCache) >= explainerCacheSize {
		// Evict the least recently used entry.
		var oldest string
		var oldestTick int64 = 1<<63 - 1
		for k, c := range p.explCache {
			if c.tick < oldestTick {
				oldest, oldestTick = k, c.tick
			}
		}
		delete(p.explCache, oldest)
	}
	p.explCache[key] = &cachedExplainer{e: e, method: m.Name, tick: p.explTick}
	return e, m.Name, nil
}

// NormalizeOptions resolves an explain request to its canonical
// (method, options) identity: an empty method selects the model's
// default, a zero seed inherits p.Seed, a zero sample budget inherits
// ShapSamples on the KernelSHAP path, and TopK — which shapes the
// caller's rendering, not the explainer — is normalized out. The result
// keys both the explainer LRU and the content-addressed result cache,
// so two requests normalize equal iff they compute bit-identical
// attributions. Idempotent.
func (p *Pipeline) NormalizeOptions(method string, opts xai.Options) (string, xai.Options) {
	if method == "" {
		method = DefaultMethod(p.Model)
	}
	if opts.Seed == 0 {
		opts.Seed = p.Seed
	}
	if opts.Samples <= 0 && method == "kernelshap" {
		opts.Samples = p.shapSamples()
	}
	opts.TopK = 0
	return method, opts
}

// buildExplainer constructs a new explainer through the method registry.
func (p *Pipeline) buildExplainer(method string, opts xai.Options) (xai.Explainer, xai.Method, error) {
	return xai.BuildExplainer(method, xai.Target{
		Model:      p.Model,
		Background: p.Background,
		Names:      p.Train.Names,
	}, opts)
}

// Methods lists the registered explanation methods applicable to the
// pipeline's model (local and global), sorted by name.
func (p *Pipeline) Methods() []xai.Method {
	return xai.MethodsFor(p.Model)
}

// DefaultOptions returns the options the pipeline actually uses for the
// method when a request supplies none: the registry defaults overlaid
// with the pipeline-level settings (seed; ShapSamples for KernelSHAP).
// The serving layer advertises these so GET .../explainers matches what
// an option-less explain request runs.
func (p *Pipeline) DefaultOptions(m xai.Method) xai.Options {
	o := m.Defaults
	if o.Seed == 0 {
		o.Seed = p.Seed
	}
	if m.Name == "kernelshap" {
		o.Samples = p.shapSamples()
	}
	return o
}

func (p *Pipeline) shapSamples() int {
	if p.ShapSamples > 0 {
		return p.ShapSamples
	}
	return 1024
}

// ShapSampleBudget is the KernelSHAP coalition budget an option-less
// explain request runs with — the reference point the serving layer's
// budget ladder reduces from.
func (p *Pipeline) ShapSampleBudget() int { return p.shapSamples() }

// PredictCostNs returns the amortized wall cost of one single-row model
// prediction in nanoseconds, measured once (lazily) through the batch
// path over the background sample. The budget-degradation ladder prices
// KernelSHAP coalitions with it. A zero return means unmeasurable (no
// rows to time); the ladder then assumes everything fits and leaves
// enforcement to the context deadline. The PredCostNs field overrides
// measurement entirely.
func (p *Pipeline) PredictCostNs() float64 {
	if p.PredCostNs > 0 {
		return p.PredCostNs
	}
	p.costOnce.Do(func() {
		rows := p.Background
		if len(rows) == 0 && p.Train != nil {
			n := len(p.Train.X)
			if n > 64 {
				n = 64
			}
			rows = p.Train.X[:n]
		}
		if len(rows) == 0 {
			return
		}
		preds := make([]float64, len(rows))
		ml.PredictBatchParallel(p.Model, rows, preds, 0) // warm up caches
		start := time.Now()
		iters := 0
		for time.Since(start) < 2*time.Millisecond && iters < 50 {
			ml.PredictBatchParallel(p.Model, rows, preds, 0)
			iters++
		}
		p.costNs = float64(time.Since(start).Nanoseconds()) / float64(iters*len(rows))
	})
	return p.costNs
}

// PredictBatch scores many instances through the model's batch-inference
// fast path (ml.BatchPredictor) when the model has one, falling back to a
// per-row Predict loop otherwise. The serving layer's batch predict
// endpoint rides on this.
func (p *Pipeline) PredictBatch(xs [][]float64) []float64 {
	return ml.PredictBatch(p.Model, xs)
}

// ExplainInstance attributes the model's prediction at x with the default
// explainer, through the result cache when one is attached.
func (p *Pipeline) ExplainInstance(ctx context.Context, x []float64) (xai.Attribution, string, error) {
	e, method := p.Explainer()
	attr, _, err := p.ExplainWith(ctx, e, method, xai.Options{}, x, false)
	return attr, method, err
}

// ExplainBatch attributes a batch of instances using the cached default
// explainer, fanning out over a worker pool. Attributions come back in
// input order; method names the explainer used. workers <= 0 selects
// GOMAXPROCS.
func (p *Pipeline) ExplainBatch(ctx context.Context, xs [][]float64, workers int) ([]xai.Attribution, string, error) {
	e, method := p.Explainer()
	attrs, err := xai.ExplainBatch(ctx, e, xs, workers)
	return attrs, method, err
}

// GlobalImportance aggregates |SHAP| over n test instances into a global
// profile, alongside permutation importance for cross-validation of the
// ranking. The model and test set are frozen after training, so the result
// is cached: repeated calls with the same n return the first computation.
func (p *Pipeline) GlobalImportance(ctx context.Context, n int) (shapImp, permImp []float64, err error) {
	return p.GlobalImportanceProgress(ctx, n, nil)
}

// GlobalImportanceProgress is GlobalImportance with a progress callback:
// onProgress (when non-nil) receives a completion fraction in [0, 1] as
// the computation advances — the hook the asynchronous jobs API reports
// through. A cache hit reports 1 immediately.
func (p *Pipeline) GlobalImportanceProgress(ctx context.Context, n int, onProgress func(float64)) (shapImp, permImp []float64, err error) {
	if n <= 0 || n > p.Test.Len() {
		n = p.Test.Len()
	}
	p.impMu.Lock()
	defer p.impMu.Unlock()
	if p.impReady && p.impN == n {
		if onProgress != nil {
			onProgress(1)
		}
		return p.impShap, p.impPerm, nil
	}
	shapImp, permImp, err = p.globalImportance(ctx, n, onProgress)
	if err != nil {
		return nil, nil, err
	}
	p.impN, p.impShap, p.impPerm, p.impReady = n, shapImp, permImp, true
	return shapImp, permImp, nil
}

// globalImportance explains the first n test rows through the batch
// fan-out path (xai.ExplainBatch over a worker pool) in chunks, so the
// per-row explanations ride the PR 2 batch fast path and progress /
// cancellation have a natural granularity. The chunk size doubles as a
// worker cap (ExplainBatch never runs more workers than rows), and impMu
// serializes concurrent importance computations on one pipeline, so a
// background importance job contends for at most chunk cores rather than
// a full GOMAXPROCS pool per caller. The |SHAP| phase is reported as the
// first 85% of the work, permutation importance as the rest.
func (p *Pipeline) globalImportance(ctx context.Context, n int, onProgress func(float64)) (shapImp, permImp []float64, err error) {
	e, _ := p.Explainer()
	const chunk = 8
	attrs := make([]xai.Attribution, 0, n)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part, err := xai.ExplainBatch(ctx, e, p.Test.X[lo:hi], 0)
		if err != nil {
			return nil, nil, fmt.Errorf("core: explaining instances %d..%d: %w", lo, hi-1, err)
		}
		attrs = append(attrs, part...)
		if onProgress != nil {
			onProgress(0.85 * float64(hi) / float64(n))
		}
	}
	shapImp = xai.MeanAbs(attrs)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	permImp, err = perm.Importance(ctx, p.Model, p.Test, perm.Config{Repeats: 3, Seed: p.Seed})
	if err != nil {
		return nil, nil, err
	}
	if onProgress != nil {
		onProgress(1)
	}
	return shapImp, permImp, nil
}

// WhatIf finds the smallest telemetry change that brings the model's
// prediction to the target — the operator's remediation query. Immutable
// names must exist in the schema: a silently dropped constraint would let
// the search "fix" a violation by changing the very feature the operator
// declared untouchable, so unknown names are an error (ErrUnknownFeature).
func (p *Pipeline) WhatIf(ctx context.Context, x []float64, target counterfactual.Target, immutable []string) (counterfactual.Counterfactual, error) {
	var immutableIdx []int
	for _, name := range immutable {
		j := p.Train.FeatureIndex(name)
		if j < 0 {
			return counterfactual.Counterfactual{}, fmt.Errorf("core: immutable %q: %w", name, ErrUnknownFeature)
		}
		immutableIdx = append(immutableIdx, j)
	}
	return counterfactual.Search(ctx, p.Model, x, p.Background, counterfactual.Config{
		Target:    target,
		Immutable: immutableIdx,
		Seed:      p.Seed,
	})
}

// PlaybookRule finds an anchor rule for the model's verdict at x: a
// reusable "if these telemetry conditions hold, the model will (almost)
// always say the same thing" statement, rendered with feature names.
func (p *Pipeline) PlaybookRule(ctx context.Context, x []float64, threshold float64) (anchors.Anchor, string, error) {
	a, err := anchors.Explain(ctx, p.Model, x, p.Background, anchors.Config{
		Threshold: threshold,
		Seed:      p.Seed,
	})
	if err != nil {
		return anchors.Anchor{}, "", err
	}
	text := fmt.Sprintf("IF %s THEN verdict holds (precision %.2f, coverage %.2f)",
		a.Format(p.Train.Names), a.Precision, a.Coverage)
	return a, text, nil
}

// ImportanceTable renders an importance vector as a ranked table.
func ImportanceTable(names []string, imp []float64, topK int) string {
	type row struct {
		name string
		v    float64
	}
	rows := make([]row, len(imp))
	for i, v := range imp {
		name := fmt.Sprintf("f%d", i)
		if i < len(names) {
			name = names[i]
		}
		rows[i] = row{name, v}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	if topK > 0 && topK < len(rows) {
		rows = rows[:topK]
	}
	var sb strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&sb, "%2d. %-24s %.5f\n", i+1, r.name, r.v)
	}
	return sb.String()
}
