package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/anchors"
	"nfvxai/internal/xai/counterfactual"
	"nfvxai/internal/xai/perm"
	"nfvxai/internal/xai/shap"
)

// Pipeline is the end-to-end explainable NFV analytics workflow: a trained
// predictor plus everything needed to explain it (background data, feature
// names, seeded explainers).
type Pipeline struct {
	Kind  ModelKind
	Model ml.Predictor
	Train *dataset.Dataset
	Test  *dataset.Dataset
	// Background is the reference sample for SHAP/LIME/counterfactuals.
	Background [][]float64
	// ShapSamples bounds KernelSHAP coalitions (default 1024). Set it
	// before the first Explainer/ExplainInstance call: the explainer is
	// built once and cached.
	ShapSamples int
	Seed        int64
	// DisableExplainerCache forces Explainer to rebuild per call — the
	// pre-registry per-request behavior. Benchmarks use it to measure what
	// the cache saves; serving code must leave it false.
	DisableExplainerCache bool

	// The explainer is expensive to run but cheap to share: all the
	// repository's explainers are stateless across Explain calls, so one
	// instance serves concurrent requests. Built lazily on first use.
	explainOnce   sync.Once
	explainer     xai.Explainer
	explainMethod string

	// Global importance is a function of the frozen model and test set, so
	// it is computed once per (pipeline, n) and cached.
	impMu    sync.Mutex
	impN     int
	impShap  []float64
	impPerm  []float64
	impReady bool
}

// ErrUnknownFeature reports a feature name that is not in the pipeline's
// schema (wrapped with the offending name).
var ErrUnknownFeature = errors.New("unknown feature")

// NewPipeline trains the model kind on ds (seeded 80/20 split) and
// prepares a background sample.
func NewPipeline(kind ModelKind, ds *dataset.Dataset, seed int64) (*Pipeline, error) {
	train, test := SplitDataset(ds, seed)
	model, err := TrainModel(kind, train, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	return &Pipeline{
		Kind:        kind,
		Model:       model,
		Train:       train,
		Test:        test,
		Background:  shap.SampleBackground(rng, train.X, 60),
		ShapSamples: 1024,
		Seed:        seed,
	}, nil
}

// EvaluateRegression reports test-set regression metrics.
func (p *Pipeline) EvaluateRegression() metrics.RegressionReport {
	pred := ml.PredictBatch(p.Model, p.Test.X)
	return metrics.EvalRegression(p.Kind.String(), pred, p.Test.Y)
}

// EvaluateClassification reports test-set classification metrics.
func (p *Pipeline) EvaluateClassification() metrics.ClassificationReport {
	prob := ml.PredictBatch(p.Model, p.Test.X)
	return metrics.EvalClassification(p.Kind.String(), prob, p.Test.Y)
}

// Explainer returns the preferred explainer for the pipeline's model and
// the method name chosen. The explainer is built once (lazily) and shared
// by subsequent calls, so serving paths do not pay setup per request.
func (p *Pipeline) Explainer() (xai.Explainer, string) {
	if p.DisableExplainerCache {
		return p.freshExplainer()
	}
	p.explainOnce.Do(func() {
		p.explainer, p.explainMethod = p.freshExplainer()
	})
	return p.explainer, p.explainMethod
}

// freshExplainer constructs a new explainer unconditionally.
func (p *Pipeline) freshExplainer() (xai.Explainer, string) {
	samples := p.ShapSamples
	if samples <= 0 {
		samples = 1024
	}
	return Explain(p.Model, p.Background, p.Train.Names, samples, p.Seed)
}

// PredictBatch scores many instances through the model's batch-inference
// fast path (ml.BatchPredictor) when the model has one, falling back to a
// per-row Predict loop otherwise. The serving layer's batch predict
// endpoint rides on this.
func (p *Pipeline) PredictBatch(xs [][]float64) []float64 {
	return ml.PredictBatch(p.Model, xs)
}

// ExplainInstance attributes the model's prediction at x.
func (p *Pipeline) ExplainInstance(x []float64) (xai.Attribution, string, error) {
	e, method := p.Explainer()
	attr, err := e.Explain(x)
	return attr, method, err
}

// ExplainBatch attributes a batch of instances using the cached explainer,
// fanning out over a worker pool. Attributions come back in input order;
// method names the explainer used. workers <= 0 selects GOMAXPROCS.
func (p *Pipeline) ExplainBatch(xs [][]float64, workers int) ([]xai.Attribution, string, error) {
	e, method := p.Explainer()
	attrs, err := xai.ExplainBatch(e, xs, workers)
	return attrs, method, err
}

// GlobalImportance aggregates |SHAP| over n test instances into a global
// profile, alongside permutation importance for cross-validation of the
// ranking. The model and test set are frozen after training, so the result
// is cached: repeated calls with the same n return the first computation.
func (p *Pipeline) GlobalImportance(n int) (shapImp, permImp []float64, err error) {
	if n <= 0 || n > p.Test.Len() {
		n = p.Test.Len()
	}
	p.impMu.Lock()
	defer p.impMu.Unlock()
	if p.impReady && p.impN == n {
		return p.impShap, p.impPerm, nil
	}
	shapImp, permImp, err = p.globalImportance(n)
	if err != nil {
		return nil, nil, err
	}
	p.impN, p.impShap, p.impPerm, p.impReady = n, shapImp, permImp, true
	return shapImp, permImp, nil
}

func (p *Pipeline) globalImportance(n int) (shapImp, permImp []float64, err error) {
	e, _ := p.Explainer()
	attrs := make([]xai.Attribution, 0, n)
	for i := 0; i < n; i++ {
		a, err := e.Explain(p.Test.X[i])
		if err != nil {
			return nil, nil, fmt.Errorf("core: explaining instance %d: %w", i, err)
		}
		attrs = append(attrs, a)
	}
	shapImp = xai.MeanAbs(attrs)
	permImp, err = perm.Importance(p.Model, p.Test, perm.Config{Repeats: 3, Seed: p.Seed})
	if err != nil {
		return nil, nil, err
	}
	return shapImp, permImp, nil
}

// WhatIf finds the smallest telemetry change that brings the model's
// prediction to the target — the operator's remediation query. Immutable
// names must exist in the schema: a silently dropped constraint would let
// the search "fix" a violation by changing the very feature the operator
// declared untouchable, so unknown names are an error (ErrUnknownFeature).
func (p *Pipeline) WhatIf(x []float64, target counterfactual.Target, immutable []string) (counterfactual.Counterfactual, error) {
	var immutableIdx []int
	for _, name := range immutable {
		j := p.Train.FeatureIndex(name)
		if j < 0 {
			return counterfactual.Counterfactual{}, fmt.Errorf("core: immutable %q: %w", name, ErrUnknownFeature)
		}
		immutableIdx = append(immutableIdx, j)
	}
	return counterfactual.Search(p.Model, x, p.Background, counterfactual.Config{
		Target:    target,
		Immutable: immutableIdx,
		Seed:      p.Seed,
	})
}

// PlaybookRule finds an anchor rule for the model's verdict at x: a
// reusable "if these telemetry conditions hold, the model will (almost)
// always say the same thing" statement, rendered with feature names.
func (p *Pipeline) PlaybookRule(x []float64, threshold float64) (anchors.Anchor, string, error) {
	a, err := anchors.Explain(p.Model, x, p.Background, anchors.Config{
		Threshold: threshold,
		Seed:      p.Seed,
	})
	if err != nil {
		return anchors.Anchor{}, "", err
	}
	text := fmt.Sprintf("IF %s THEN verdict holds (precision %.2f, coverage %.2f)",
		a.Format(p.Train.Names), a.Precision, a.Coverage)
	return a, text, nil
}

// ImportanceTable renders an importance vector as a ranked table.
func ImportanceTable(names []string, imp []float64, topK int) string {
	type row struct {
		name string
		v    float64
	}
	rows := make([]row, len(imp))
	for i, v := range imp {
		name := fmt.Sprintf("f%d", i)
		if i < len(names) {
			name = names[i]
		}
		rows[i] = row{name, v}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	if topK > 0 && topK < len(rows) {
		rows = rows[:topK]
	}
	var sb strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&sb, "%2d. %-24s %.5f\n", i+1, r.name, r.v)
	}
	return sb.String()
}
