package core

// The cache-aware explain paths: every seeded local method is
// deterministic given (artifact digest, method, normalized options,
// instance), so attributions are memoized in the content-addressed
// result cache (internal/xai/xcache) when one is attached. Keys embed
// the artifact digest, never the model name — retrain/swap/import need
// no flush, a new artifact simply misses.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nfvxai/internal/xai"
	"nfvxai/internal/xai/xcache"
)

// memDigestSeq disambiguates pipelines that cannot serialize: they get a
// process-unique pseudo-digest, which still enables in-process caching
// (the digest is stable for the pipeline's lifetime) but never collides
// across artifacts or survives into tier 2 meaningfully.
var memDigestSeq atomic.Uint64

// ContentDigest returns the pipeline's content digest — sha256 over the
// serialized artifact bytes, hex-encoded — computed once per pipeline.
// Two nodes that trained, imported or warm-started the same artifact
// agree on it (save/load round-trips are bit-identical), which is what
// lets a shared tier-2 cache serve one node's explanations from another.
func (p *Pipeline) ContentDigest() string {
	p.digestOnce.Do(func() {
		if data, err := p.Save(); err == nil {
			sum := sha256.Sum256(data)
			p.digest = hex.EncodeToString(sum[:])
		} else {
			p.digest = fmt.Sprintf("mem-%d", memDigestSeq.Add(1))
		}
		p.digestDone.Store(true)
	})
	return p.digest
}

// DigestIfComputed returns the content digest only if some explain has
// already forced it. Swap-time invalidation uses it: a pipeline that
// never served a cache-aware explain has no cache entries to drop, and
// must not pay a full serialization on its way out.
func (p *Pipeline) DigestIfComputed() (string, bool) {
	if !p.digestDone.Load() {
		return "", false
	}
	return p.digest, true
}

// cachedUnsupported answers a build request from the negative cache: a
// non-nil return means (this artifact, method) is a recorded capability
// mismatch and the registry build can be skipped. It consults
// DigestIfComputed, never ContentDigest — the happy path must not pay a
// serialization for a lookup that only ever hits after a failure (which
// itself forces the digest via recordUnsupported).
func (p *Pipeline) cachedUnsupported(method string) error {
	if p.ResultCache == nil {
		return nil
	}
	digest, ok := p.DigestIfComputed()
	if !ok || !p.ResultCache.NegGet(digest, method) {
		return nil
	}
	return fmt.Errorf("core: method %q for this artifact: %w", method, xai.ErrUnsupportedModel)
}

// recordUnsupported files a failed explainer build in the negative
// cache when the failure is a capability mismatch — a verdict of the
// frozen (artifact, method) pair, safe to replay forever. Unknown
// methods are not recorded (the verdict is not artifact-specific), and
// neither is anything transient.
func (p *Pipeline) recordUnsupported(method string, err error) {
	if p.ResultCache == nil || !errors.Is(err, xai.ErrUnsupportedModel) {
		return
	}
	p.ResultCache.NegPut(p.ContentDigest(), method)
}

// cacheKeyFor builds the result-cache key for one normalized request,
// reporting false when the request is uncacheable: no cache attached,
// unknown method, or a method that is not a deterministic local
// attribution (global methods and unseeded samplers never enter).
func (p *Pipeline) cacheKeyFor(method string, opts xai.Options, x []float64) (xcache.Key, bool) {
	if p.ResultCache == nil {
		return xcache.Key{}, false
	}
	m, ok := xai.LookupMethod(method)
	if !ok || m.Kind != xai.KindLocal || !m.Caps.Deterministic {
		return xcache.Key{}, false
	}
	return xcache.Key{
		Digest:   p.ContentDigest(),
		Method:   method,
		Opts:     opts.Key(),
		Instance: xcache.InstanceHash(x),
	}, true
}

// ExplainWith attributes x with an already-resolved explainer e through
// the result cache. method/opts are normalized internally, so callers
// may pass exactly what they gave ExplainerFor; e must be the explainer
// ExplainerFor resolved for them. noCache forces a fresh computation
// without touching the cache (the serving layer's no_cache knob).
func (p *Pipeline) ExplainWith(ctx context.Context, e xai.Explainer, method string, opts xai.Options, x []float64, noCache bool) (xai.Attribution, xcache.Outcome, error) {
	method, opts = p.NormalizeOptions(method, opts)
	key, cacheable := p.cacheKeyFor(method, opts, x)
	if noCache || !cacheable {
		attr, err := e.Explain(ctx, x)
		return attr, xcache.OutcomeBypass, err
	}
	return p.ResultCache.Do(ctx, key, func(ctx context.Context) (xai.Attribution, error) {
		return e.Explain(ctx, x)
	})
}

// ExplainCached is the one-call cache-aware explain: resolve the
// explainer, then ExplainWith. The resolved method name is returned so
// option-less callers learn what ran.
func (p *Pipeline) ExplainCached(ctx context.Context, method string, opts xai.Options, x []float64, noCache bool) (xai.Attribution, string, xcache.Outcome, error) {
	e, m, err := p.ExplainerFor(method, opts)
	if err != nil {
		return xai.Attribution{}, "", xcache.OutcomeBypass, err
	}
	attr, outcome, err := p.ExplainWith(ctx, e, m, opts, x, noCache)
	return attr, m, outcome, err
}

// BatchCacheStats tallies how one batch was served.
type BatchCacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Coalesced int `json:"coalesced"`
	Bypassed  int `json:"bypassed,omitempty"`
}

// ExplainBatchWith attributes a batch through the result cache: tier-1
// hits are filled synchronously without consuming worker-gate slots, and
// only the misses fan out through gate — each one via the single-flight
// path, so identical instances (within the batch or across concurrent
// batches) compute once. Result/error slices are in input order, exactly
// like xai.ExplainBatchGatedErrs, which uncacheable batches fall back to.
func (p *Pipeline) ExplainBatchWith(ctx context.Context, e xai.Explainer, method string, opts xai.Options, xs [][]float64, gate chan struct{}, noCache bool) ([]xai.Attribution, []error, BatchCacheStats) {
	method, opts = p.NormalizeOptions(method, opts)
	var st BatchCacheStats
	if len(xs) == 0 {
		return nil, nil, st
	}
	_, cacheable := p.cacheKeyFor(method, opts, xs[0])
	if noCache || !cacheable {
		attrs, errs := xai.ExplainBatchGatedErrs(ctx, e, xs, gate)
		st.Bypassed = len(xs)
		return attrs, errs, st
	}
	attrs := make([]xai.Attribution, len(xs))
	errs := make([]error, len(xs))
	keys := make([]xcache.Key, len(xs))
	miss := make([]int, 0, len(xs))
	for i, x := range xs {
		keys[i], _ = p.cacheKeyFor(method, opts, x)
		if a, ok := p.ResultCache.Get(keys[i]); ok {
			attrs[i] = a
			st.Hits++
		} else {
			miss = append(miss, i)
		}
	}
	if len(miss) == 0 {
		return attrs, errs, st
	}
	outcomes := make([]xcache.Outcome, len(xs))
	var wg sync.WaitGroup
	for _, i := range miss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-gate }()
			attrs[i], outcomes[i], errs[i] = p.ResultCache.Do(ctx, keys[i], func(ctx context.Context) (xai.Attribution, error) {
				return e.Explain(ctx, xs[i])
			})
		}(i)
	}
	wg.Wait()
	for _, i := range miss {
		switch outcomes[i] {
		case xcache.OutcomeHit, xcache.OutcomeCoalesced:
			st.Coalesced++
		default:
			st.Misses++
		}
	}
	return attrs, errs, st
}
