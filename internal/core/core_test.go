package core

import (
	"context"
	"strings"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai/counterfactual"
)

// smallCfg keeps integration tests fast: 2 virtual hours, few instances.
func smallCfg() ExpConfig {
	return ExpConfig{SimHours: 2, Explained: 10, ShapSamples: 256, Seed: 1}
}

func TestScenarioDatasetGeneration(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 500 {
		t.Fatalf("rows %d", ds.Len())
	}
	if ds.NumFeatures() != len(telemetry.FeatureNames([]string{"fw", "ids", "lb"})) {
		t.Fatalf("features %d", ds.NumFeatures())
	}
	// Utilization target must vary (not constant).
	lo, hi := ds.Y[0], ds.Y[0]
	for _, y := range ds.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi-lo < 0.1 {
		t.Fatalf("target range too small: %v..%v", lo, hi)
	}
}

func TestZooTrainsAllKinds(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(2, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitDataset(ds, 3)
	for _, kind := range ZooKinds() {
		model, err := TrainModel(kind, train, 3)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		p := model.Predict(test.X[0])
		if p != p { // NaN check
			t.Fatalf("%v predicts NaN", kind)
		}
		if kind.String() == "" || strings.Contains(kind.String(), "ModelKind") {
			t.Fatalf("missing name for %d", kind)
		}
	}
	if _, err := TrainModel(ModelKind(99), train, 0); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestPipelineExplainsItsOwnPrediction(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(4, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelForest, ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.EvaluateRegression()
	if rep.R2 < 0.5 {
		t.Fatalf("forest R2 = %v; telemetry should be learnable", rep.R2)
	}
	x := p.Test.X[0]
	attr, method, err := p.ExplainInstance(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if method != "treeshap" {
		t.Fatalf("method = %s want treeshap for forest", method)
	}
	if attr.AdditivityError() > 1e-6 {
		t.Fatalf("additivity error %v", attr.AdditivityError())
	}
	if len(attr.Phi) != ds.NumFeatures() {
		t.Fatal("attribution width mismatch")
	}
	report := OperatorReport("epoch 17", attr, method, 5)
	if !strings.Contains(report, "prediction") || !strings.Contains(report, "1.") && !strings.Contains(report, "0.") {
		t.Fatalf("report rendering: %q", report)
	}
}

func TestPipelineGlobalImportanceFindsLoadFeatures(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(6, 2, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelForest, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	shapImp, permImp, err := p.GlobalImportance(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapImp) != ds.NumFeatures() || len(permImp) != ds.NumFeatures() {
		t.Fatal("importance width mismatch")
	}
	// A load-derived feature must outrank the hour encoding: find the max
	// shap feature and assert it is one of the load/utilization family.
	maxJ := 0
	for j, v := range shapImp {
		if v > shapImp[maxJ] {
			maxJ = j
		}
	}
	top := ds.Names[maxJ]
	loadFamily := []string{"pps", "bps", "fps", "active", "util", "ewma", "lag", "latency", "loss", "state"}
	found := false
	for _, frag := range loadFamily {
		if strings.Contains(top, frag) {
			found = true
		}
	}
	if !found {
		t.Fatalf("top global feature %q is not load-derived (imp %v)", top, shapImp[maxJ])
	}
	tbl := ImportanceTable(ds.Names, shapImp, 5)
	if len(strings.Split(strings.TrimSpace(tbl), "\n")) != 5 {
		t.Fatalf("importance table rows: %q", tbl)
	}
}

func TestCleverHansAuditDetectsStrongLeak(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(8, 2, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := CleverHansAudit(context.Background(), ModelForest, ds, 0.95, 9)
	if err != nil {
		t.Fatal(err)
	}
	if strong.ArtifactRank != 1 {
		t.Fatalf("strong leak rank %d want 1", strong.ArtifactRank)
	}
	if !strong.Detected {
		t.Fatalf("strong leak not detected: %+v", strong)
	}
	if strong.TrainR2-strong.TestR2 < 0.15 {
		t.Fatalf("expected generalization gap: %+v", strong)
	}
	if strong.RepairedTestR2 <= strong.TestR2 {
		t.Fatalf("repair did not improve test score: %+v", strong)
	}
	// No leak: artifact is noise, must not rank first nor be detected.
	clean, err := CleverHansAudit(context.Background(), ModelForest, ds, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Detected {
		t.Fatalf("false positive on clean data: %+v", clean)
	}
}

func TestWhatIfReducesPrediction(t *testing.T) {
	ds, err := NATScenario().GenerateDataset(10, 2, telemetry.TargetViolation)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ClassBalance() < 0.02 {
		t.Fatalf("violation rate too low to test: %v", ds.ClassBalance())
	}
	p, err := NewPipeline(ModelForest, ds, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Find a predicted violation.
	var x []float64
	for _, row := range p.Test.X {
		if p.Model.Predict(row) >= 0.6 {
			x = row
			break
		}
	}
	if x == nil {
		t.Skip("no high-probability violation in small test split")
	}
	target := counterfactual.Target{Op: "<=", Value: 0.3}
	cf, err := p.WhatIf(context.Background(), x, target, []string{"hour_sin", "hour_cos"})
	if err != nil {
		t.Fatal(err)
	}
	if cf.Valid && cf.Prediction > 0.3 {
		t.Fatalf("invalid counterfactual marked valid: %+v", cf)
	}
	if cf.Valid {
		report := WhatIfReport(cf, p.Train.Names, x, target)
		if !strings.Contains(report, "->") {
			t.Fatalf("what-if report: %q", report)
		}
		// Immutable features unchanged.
		hs := p.Train.FeatureIndex("hour_sin")
		if cf.X[hs] != x[hs] {
			t.Fatal("immutable feature changed")
		}
	}
}

func TestTable1SmallRun(t *testing.T) {
	res, err := Table1ModelAccuracy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // baseline + 5 models
		t.Fatalf("rows %d", len(res.Rows))
	}
	baseline := res.Rows[0]
	best := baseline.RMSE
	for _, r := range res.Rows[1:] {
		if r.RMSE < best {
			best = r.RMSE
		}
	}
	if best >= baseline.RMSE {
		t.Fatalf("no model beat the baseline: %+v", res.Rows)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Fatal("rendering")
	}
}

func TestTable2SmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.SimHours = 6 // violations need a few diurnal swings to learn
	res, err := Table2ViolationClassifiers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// At least one model must classify well above chance.
	bestAUC := 0.0
	for _, r := range res.Rows {
		if r.AUC > bestAUC {
			bestAUC = r.AUC
		}
	}
	if bestAUC < 0.8 {
		t.Fatalf("best AUC %v; violations should be predictable", bestAUC)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Fatal("rendering")
	}
}

func TestTable3SmallRun(t *testing.T) {
	res, err := Table3ExplanationFidelity(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeAdditivityErr > 1e-6 {
		t.Fatalf("treeshap additivity %v", res.TreeAdditivityErr)
	}
	if v, ok := res.KernelAdditivityErr["mlp"]; !ok || v > 1e-6 {
		t.Fatalf("kernelshap additivity %v (ok=%v)", v, ok)
	}
	if res.SurrogateFidelity[5] <= res.SurrogateFidelity[1] {
		t.Fatalf("surrogate fidelity not improving with depth: %+v", res.SurrogateFidelity)
	}
	if res.LimeLocalR2["rf"] <= 0 {
		t.Fatalf("lime local R2 %v", res.LimeLocalR2["rf"])
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Fatal("rendering")
	}
}

func TestTable4SmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.SimHours = 3 // need enough violations
	res, err := Table4Counterfactuals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queried == 0 {
		t.Fatal("no counterfactual queries")
	}
	if res.ValidFraction <= 0 {
		t.Fatalf("no valid counterfactuals: %+v", res)
	}
	if res.MeanSparsity <= 0 || res.MeanSparsity > 3 {
		t.Fatalf("sparsity %v outside (0, MaxChanges]", res.MeanSparsity)
	}
	if !strings.Contains(res.String(), "Table 4") {
		t.Fatal("rendering")
	}
}

func TestFigure1SmallRun(t *testing.T) {
	res, err := Figure1GlobalImportance(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spearman < 0.2 {
		t.Fatalf("attribution/permutation rankings disagree: %v", res.Spearman)
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Fatal("rendering")
	}
}

func TestFigure3SmallRun(t *testing.T) {
	res, err := Figure3DeletionCurve(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuidedDrop[0] != 1 || res.RandomDrop[0] != 1 {
		t.Fatalf("curves not normalized: %v %v", res.GuidedDrop[0], res.RandomDrop[0])
	}
	// Early deletion: guided curve must fall at least as fast as random on
	// average over the first quarter.
	q := len(res.GuidedDrop) / 4
	var g, r float64
	for k := 1; k <= q; k++ {
		g += res.GuidedDrop[k]
		r += res.RandomDrop[k]
	}
	if g >= r {
		t.Fatalf("guided deletion no faster than random: %v vs %v", g, r)
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Fatal("rendering")
	}
}

func TestFigure2SmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.SimHours = 1
	res, err := Figure2ExplanationLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 treeshap + 4 kernelshap + 1 lime for rf; 4 kernelshap + 1 lime
	// for mlp.
	if len(res.Rows) != 11 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	var ks []float64
	for _, r := range res.Rows {
		if r.MsPer < 0 {
			t.Fatalf("negative latency %+v", r)
		}
		if r.Method == "kernelshap" && r.Model == "rf" {
			ks = append(ks, r.MsPer)
		}
	}
	// KernelSHAP cost must grow with the coalition budget.
	if len(ks) != 4 || ks[3] <= ks[0] {
		t.Fatalf("kernelshap sweep not increasing: %v", ks)
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Fatal("rendering")
	}
}

func TestFigure4SmallRun(t *testing.T) {
	res, err := Figure4CleverHans(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// The strongest leak must rank first and be detected; the clean run
	// must not be.
	strongest := res.Rows[len(res.Rows)-1]
	if strongest.ArtifactRank != 1 || !strongest.Detected {
		t.Fatalf("strong leak not caught: %+v", strongest)
	}
	if res.Rows[0].Detected {
		t.Fatalf("clean run false positive: %+v", res.Rows[0])
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("rendering")
	}
}

func TestFigure5SmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.SimHours = 1
	res, err := Figure5Stability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shap) != len(res.Sigmas) || len(res.Lime) != len(res.Sigmas) {
		t.Fatal("series lengths")
	}
	// Stability at tiny noise must exceed stability at huge noise for SHAP.
	if res.Shap[0] <= res.Shap[len(res.Shap)-1]-0.05 {
		t.Fatalf("shap stability not degrading sensibly: %v", res.Shap)
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Fatal("rendering")
	}
}

func TestFigure6SmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.SimHours = 4
	res, err := Figure6Autoscaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("policies %d", len(res.Rows))
	}
	byName := map[string]PolicyOutcome{}
	for _, r := range res.Rows {
		byName[r.Policy] = r
	}
	if byName["static"].Decisions != 0 {
		t.Fatal("static policy made decisions")
	}
	if byName["threshold"].Decisions == 0 {
		t.Fatal("threshold policy never acted")
	}
	// Scalers must beat static on violations (they add capacity at peak).
	if byName["threshold"].ViolationRate >= byName["static"].ViolationRate &&
		byName["predictive"].ViolationRate >= byName["static"].ViolationRate {
		t.Fatalf("no scaler beat static: %+v", res.Rows)
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Fatal("rendering")
	}
}

func TestPlaybookRule(t *testing.T) {
	ds, err := NATScenario().GenerateDataset(16, 3, telemetry.TargetViolation)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelForest, ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor a confidently healthy epoch (plentiful in the base rate).
	var x []float64
	for _, row := range p.Test.X {
		if p.Model.Predict(row) < 0.05 {
			x = row
			break
		}
	}
	if x == nil {
		t.Skip("no confident prediction in small split")
	}
	a, text, err := p.PlaybookRule(context.Background(), x, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision < 0.9 {
		t.Fatalf("playbook precision %v", a.Precision)
	}
	if !strings.Contains(text, "IF ") || !strings.Contains(text, "precision") {
		t.Fatalf("playbook text %q", text)
	}
}

func TestSanityChecks(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(18, 2, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelForest, ds, 19)
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.SanityChecks()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("checks %d want 3", len(results))
	}
	// A correctly trained CPU predictor must respond *upward* to every
	// offered-load feature; correlated features share the signal, so only
	// some marginals are strongly monotone.
	passed := 0
	for _, r := range results {
		if r.Pass {
			passed++
		}
		if !r.Increasing {
			t.Fatalf("load feature %s has a decreasing CPU response", r.Feature)
		}
		if r.Range < 0 {
			t.Fatal("negative PDP range")
		}
	}
	if passed < 1 {
		t.Fatalf("no sanity check passed: %+v", results)
	}
	report := SanityReport(results)
	if !strings.Contains(report, "pps") || !strings.Contains(report, "PASS") {
		t.Fatalf("report %q", report)
	}
}

func TestExplainChoosesMethodByModel(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(12, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := SplitDataset(ds, 13)
	bg := train.X[:10]
	for _, tc := range []struct {
		kind ModelKind
		want string
	}{
		{ModelTree, "treeshap"},
		{ModelForest, "treeshap"},
		{ModelGBT, "treeshap"},
		{ModelLinear, "kernelshap"},
		{ModelMLP, "kernelshap"},
	} {
		model, err := TrainModel(tc.kind, train, 13)
		if err != nil {
			t.Fatal(err)
		}
		_, method := Explain(model, bg, train.Names, 128, 13)
		if method != tc.want {
			t.Fatalf("%v routed to %s want %s", tc.kind, method, tc.want)
		}
	}
}

func TestClassificationGBTUsesKernelShap(t *testing.T) {
	ds, err := NATScenario().GenerateDataset(14, 1, telemetry.TargetViolation)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := SplitDataset(ds, 15)
	model, err := TrainModel(ModelGBT, train, 15)
	if err != nil {
		t.Fatal(err)
	}
	_, method := Explain(model, train.X[:5], train.Names, 64, 15)
	if method != "kernelshap" {
		t.Fatalf("classification GBT routed to %s", method)
	}
	if train.Task != dataset.Classification {
		t.Fatal("dataset task")
	}
}
