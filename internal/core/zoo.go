package core

import (
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/shap"
	"nfvxai/internal/xai/treeshap"
)

// ModelKind enumerates the model zoo used across experiments.
type ModelKind int

// Zoo members.
const (
	ModelLinear ModelKind = iota
	ModelTree
	ModelForest
	ModelGBT
	ModelMLP
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case ModelLinear:
		return "linear"
	case ModelTree:
		return "cart"
	case ModelForest:
		return "rf"
	case ModelGBT:
		return "gbt"
	case ModelMLP:
		return "mlp"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ZooKinds lists all zoo members in report order.
func ZooKinds() []ModelKind {
	return []ModelKind{ModelLinear, ModelTree, ModelForest, ModelGBT, ModelMLP}
}

// TrainModel fits a fresh model of the given kind with the repository's
// default hyperparameters. For classification datasets, ModelLinear means
// logistic regression.
func TrainModel(kind ModelKind, train *dataset.Dataset, seed int64) (ml.Predictor, error) {
	var model ml.Trainable
	switch kind {
	case ModelLinear:
		if train.Task == dataset.Classification {
			model = &linear.Logistic{LR: 0.05, Epochs: 150, BatchSize: 64, Seed: seed}
		} else {
			// Telemetry features are collinear (rates, lags, EWMAs) and
			// span wildly different scales; standardized ridge keeps the
			// solve well posed.
			model = &linear.Regression{Ridge: 1e-2}
		}
	case ModelTree:
		model = tree.New(tree.Config{Task: train.Task, MaxDepth: 8, MinLeaf: 5, Seed: seed})
	case ModelForest:
		model = &forest.RandomForest{NumTrees: 40, MaxDepth: 10, MinLeaf: 3, Task: train.Task, Seed: seed}
	case ModelGBT:
		model = &forest.GradientBoosting{NumRounds: 120, LearningRate: 0.1, MaxDepth: 4, Task: train.Task, Seed: seed}
	case ModelMLP:
		model = &nn.MLP{Hidden: []int{48, 24}, Epochs: 60, BatchSize: 64, Task: train.Task, Seed: seed}
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(kind))
	}
	if err := model.Fit(normalizeFor(kind, train)); err != nil {
		return nil, fmt.Errorf("core: training %v: %w", kind, err)
	}
	if needsScaling(kind) {
		// Scale-sensitive models see standardized inputs; wrap so the
		// public Predict accepts raw telemetry vectors.
		return &scaledModel{inner: model, scaler: dataset.FitStandard(train)}, nil
	}
	return model, nil
}

// scaledModel standardizes raw telemetry vectors before delegating to the
// wrapped model. It implements ml.BatchPredictor so the batched explainer
// hot paths survive the wrapping: whole perturbation matrices are scaled
// into one flat buffer and handed to the inner model's batch path.
type scaledModel struct {
	inner  ml.Predictor
	scaler dataset.Scaler
}

// Predict implements ml.Predictor on raw (unscaled) inputs.
func (s *scaledModel) Predict(x []float64) float64 {
	return s.inner.Predict(s.scaler.Transform(x))
}

// PredictBatch implements ml.BatchPredictor.
func (s *scaledModel) PredictBatch(X [][]float64, out []float64) {
	scaled := make([][]float64, len(X))
	for i, x := range X {
		scaled[i] = s.scaler.Transform(x)
	}
	ml.PredictBatchInto(s.inner, scaled, out)
}

// needsScaling reports whether the model kind trains on standardized
// inputs (gradient-trained or ridge-penalized); tree models consume raw
// features.
func needsScaling(kind ModelKind) bool {
	return kind == ModelMLP || kind == ModelLinear
}

// normalizeFor standardizes inputs for scale-sensitive models.
func normalizeFor(kind ModelKind, train *dataset.Dataset) *dataset.Dataset {
	if needsScaling(kind) {
		return dataset.Apply(train, dataset.FitStandard(train))
	}
	return train
}

// Explain builds the preferred local explainer for the model: exact
// TreeSHAP for tree ensembles, KernelSHAP otherwise.
func Explain(model ml.Predictor, background [][]float64, names []string, samples int, seed int64) (xai.Explainer, string) {
	switch m := model.(type) {
	case *tree.Tree:
		return &treeshap.Explainer{Model: treeshap.Single(m), Names: names}, "treeshap"
	case *forest.RandomForest:
		return &treeshap.Explainer{Model: m, Names: names}, "treeshap"
	case *forest.GradientBoosting:
		if m.Task == dataset.Regression {
			return &treeshap.Explainer{Model: m, Names: names}, "treeshap"
		}
		// Classification GBT: TreeSHAP explains the margin; to explain the
		// probability output uniformly we fall back to KernelSHAP.
		return &shap.Kernel{Model: model, Background: background, NumSamples: samples, Seed: seed, Names: names}, "kernelshap"
	default:
		return &shap.Kernel{Model: model, Background: background, NumSamples: samples, Seed: seed, Names: names}, "kernelshap"
	}
}
