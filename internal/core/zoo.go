package core

import (
	"context"
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/linear"
	"nfvxai/internal/ml/nn"
	"nfvxai/internal/ml/tree"
	"nfvxai/internal/xai"

	// The explanation plane is assembled by side effect: every method
	// package registers itself in the xai registry from init. Importing
	// core therefore wires the full method set — the serving layer and the
	// pipeline dispatch by name through xai.LookupMethod/BuildExplainer.
	_ "nfvxai/internal/xai/anchors"
	_ "nfvxai/internal/xai/counterfactual"
	_ "nfvxai/internal/xai/intgrad"
	_ "nfvxai/internal/xai/lime"
	_ "nfvxai/internal/xai/pdp"
	_ "nfvxai/internal/xai/perm"
	_ "nfvxai/internal/xai/shap"
	_ "nfvxai/internal/xai/surrogate"
	_ "nfvxai/internal/xai/treeshap"
)

// ModelKind enumerates the model zoo used across experiments.
type ModelKind int

// Zoo members.
const (
	ModelLinear ModelKind = iota
	ModelTree
	ModelForest
	ModelGBT
	ModelMLP
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case ModelLinear:
		return "linear"
	case ModelTree:
		return "cart"
	case ModelForest:
		return "rf"
	case ModelGBT:
		return "gbt"
	case ModelMLP:
		return "mlp"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ZooKinds lists all zoo members in report order.
func ZooKinds() []ModelKind {
	return []ModelKind{ModelLinear, ModelTree, ModelForest, ModelGBT, ModelMLP}
}

// TrainModel fits a fresh model of the given kind with the repository's
// default hyperparameters. For classification datasets, ModelLinear means
// logistic regression.
func TrainModel(kind ModelKind, train *dataset.Dataset, seed int64) (ml.Predictor, error) {
	var model ml.Trainable
	switch kind {
	case ModelLinear:
		if train.Task == dataset.Classification {
			model = &linear.Logistic{LR: 0.05, Epochs: 150, BatchSize: 64, Seed: seed}
		} else {
			// Telemetry features are collinear (rates, lags, EWMAs) and
			// span wildly different scales; standardized ridge keeps the
			// solve well posed.
			model = &linear.Regression{Ridge: 1e-2}
		}
	case ModelTree:
		model = tree.New(tree.Config{Task: train.Task, MaxDepth: 8, MinLeaf: 5, Seed: seed})
	case ModelForest:
		model = &forest.RandomForest{NumTrees: 40, MaxDepth: 10, MinLeaf: 3, Task: train.Task, Seed: seed}
	case ModelGBT:
		model = &forest.GradientBoosting{NumRounds: 120, LearningRate: 0.1, MaxDepth: 4, Task: train.Task, Seed: seed}
	case ModelMLP:
		model = &nn.MLP{Hidden: []int{48, 24}, Epochs: 60, BatchSize: 64, Task: train.Task, Seed: seed}
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(kind))
	}
	if err := model.Fit(normalizeFor(kind, train)); err != nil {
		return nil, fmt.Errorf("core: training %v: %w", kind, err)
	}
	if needsScaling(kind) {
		// Scale-sensitive models see standardized inputs; wrap so the
		// public Predict accepts raw telemetry vectors.
		return &scaledModel{inner: model, scaler: dataset.FitStandard(train)}, nil
	}
	return model, nil
}

// scaledModel standardizes raw telemetry vectors before delegating to the
// wrapped model. It implements ml.BatchPredictor so the batched explainer
// hot paths survive the wrapping: whole perturbation matrices are scaled
// into one flat buffer and handed to the inner model's batch path.
type scaledModel struct {
	inner  ml.Predictor
	scaler dataset.Scaler
}

// Predict implements ml.Predictor on raw (unscaled) inputs.
func (s *scaledModel) Predict(x []float64) float64 {
	return s.inner.Predict(s.scaler.Transform(x))
}

// PredictBatch implements ml.BatchPredictor.
func (s *scaledModel) PredictBatch(X [][]float64, out []float64) {
	scaled := make([][]float64, len(X))
	for i, x := range X {
		scaled[i] = s.scaler.Transform(x)
	}
	ml.PredictBatchInto(s.inner, scaled, out)
}

// gradModel mirrors intgrad.GradModel so the wrapper can forward
// differentiability without importing the explainer package.
type gradModel interface {
	Gradient(x []float64) []float64
}

// Gradient implements the differentiable-predictor contract through the
// standardizing wrapper via the chain rule: for z = (x − μ)/σ,
// ∂f(z)/∂x_j = (∂f/∂z_j)/σ_j. This keeps gradient-based explainers
// (intgrad) available on the scale-sensitive zoo members (MLP, linear,
// logistic). Inner models without an analytic gradient fall back to
// central finite differences on the raw input.
func (s *scaledModel) Gradient(x []float64) []float64 {
	gm, okInner := s.inner.(gradModel)
	std, okScaler := s.scaler.(*dataset.StandardScaler)
	if okInner && okScaler {
		g := gm.Gradient(s.scaler.Transform(x))
		out := make([]float64, len(g))
		for j := range g {
			out[j] = g[j] / std.Std[j]
		}
		return out
	}
	const h = 1e-5
	out := make([]float64, len(x))
	z := append([]float64(nil), x...)
	for j := range x {
		z[j] = x[j] + h
		up := s.Predict(z)
		z[j] = x[j] - h
		down := s.Predict(z)
		z[j] = x[j]
		out[j] = (up - down) / (2 * h)
	}
	return out
}

// needsScaling reports whether the model kind trains on standardized
// inputs (gradient-trained or ridge-penalized); tree models consume raw
// features.
func needsScaling(kind ModelKind) bool {
	return kind == ModelMLP || kind == ModelLinear
}

// normalizeFor standardizes inputs for scale-sensitive models.
func normalizeFor(kind ModelKind, train *dataset.Dataset) *dataset.Dataset {
	if needsScaling(kind) {
		return dataset.Apply(train, dataset.FitStandard(train))
	}
	return train
}

// DefaultMethod names the preferred local explanation method for the
// model: exact TreeSHAP for tree ensembles, KernelSHAP otherwise.
// Classification GBTs fall back to KernelSHAP because TreeSHAP would
// explain the margin rather than the probability output.
func DefaultMethod(model ml.Predictor) string {
	switch m := model.(type) {
	case *tree.Tree, *forest.RandomForest:
		return "treeshap"
	case *forest.GradientBoosting:
		if m.Task == dataset.Regression {
			return "treeshap"
		}
		return "kernelshap"
	default:
		return "kernelshap"
	}
}

// Explain builds the default local explainer for the model through the
// xai method registry. Kept as the one-call constructor for auditing
// paths that explain ad-hoc models outside a Pipeline.
func Explain(model ml.Predictor, background [][]float64, names []string, samples int, seed int64) (xai.Explainer, string) {
	name := DefaultMethod(model)
	e, m, err := xai.BuildExplainer(name, xai.Target{Model: model, Background: background, Names: names},
		xai.Options{Samples: samples, Seed: seed})
	if err != nil {
		// The default methods build unconditionally for every zoo model
		// with a non-empty background; a failure here is a misconfigured
		// call (e.g. KernelSHAP with no background), surfaced at Explain
		// time like the pre-registry constructors did.
		return errExplainer{err: err}, name
	}
	return e, m.Name
}

// errExplainer defers a build-time failure to the first Explain call.
type errExplainer struct{ err error }

func (e errExplainer) Explain(context.Context, []float64) (xai.Attribution, error) {
	return xai.Attribution{}, e.err
}
