package core

import (
	"context"
	"fmt"
	"math/rand"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/xai"
)

// CleverHansResult is the outcome of one spurious-feature audit.
type CleverHansResult struct {
	// LeakStrength is the injected train-only correlation strength.
	LeakStrength float64
	// ArtifactRank is the 1-based rank of the injected feature in the
	// model's global |SHAP| profile (1 = most important).
	ArtifactRank int
	// TrainR2 / TestR2 show the generalization gap the leak causes.
	TrainR2, TestR2 float64
	// RepairedTestR2 is the test score after explanation-guided removal of
	// the artifact feature and retraining.
	RepairedTestR2 float64
	// Detected reports whether the audit heuristic flagged the artifact
	// (top-ranked attribution + large generalization gap).
	Detected bool
}

// CleverHansAudit reproduces the paper's model-debugging experiment: a
// telemetry artifact that leaks the target is injected into the TRAINING
// split only (e.g. a monitoring counter that in the historical dataset was
// recorded after the fact). Accuracy metrics on training data look
// excellent while the model fails in deployment; the attribution profile
// exposes the artifact as the dominant feature, and removing it restores
// generalization.
func CleverHansAudit(ctx context.Context, kind ModelKind, ds *dataset.Dataset, strength float64, seed int64) (CleverHansResult, error) {
	train, test := SplitDataset(ds, seed)
	rng := rand.New(rand.NewSource(seed + 99))

	// Inject the artifact into train only; the test split receives pure
	// noise in that column (the real-world deployment where the artifact
	// carries no signal).
	const artifact = "dbg_counter"
	train.InjectSpuriousFeature(rng, artifact, strength)
	test.InjectNoiseFeature(rng, artifact)

	if err := ctx.Err(); err != nil {
		return CleverHansResult{}, err
	}
	model, err := TrainModel(kind, train, seed)
	if err != nil {
		return CleverHansResult{}, err
	}
	res := CleverHansResult{LeakStrength: strength}
	res.TrainR2 = metrics.R2(ml.PredictBatch(model, train.X), train.Y)
	res.TestR2 = metrics.R2(ml.PredictBatch(model, test.X), test.Y)

	// Global attribution profile over a sample of training instances (the
	// auditor only has the data the model was trained on).
	bg := sampleRows(rng, train.X, 40)
	e, _ := Explain(model, bg, train.Names, 512, seed)
	var attrs []xai.Attribution
	for i := 0; i < 40 && i < train.Len(); i++ {
		a, err := e.Explain(ctx, train.X[i])
		if err != nil {
			return CleverHansResult{}, fmt.Errorf("core: audit explanation: %w", err)
		}
		attrs = append(attrs, a)
	}
	imp := xai.MeanAbs(attrs)
	artifactIdx := train.FeatureIndex(artifact)
	res.ArtifactRank = rankOf(imp, artifactIdx)

	// Detection heuristic: artifact-suspect feature dominates attributions
	// while train/test scores diverge.
	res.Detected = res.ArtifactRank == 1 && res.TrainR2-res.TestR2 > 0.15

	// Explanation-guided repair: drop the top-attributed feature, retrain.
	// Cancellation granularity is one phase: training is monolithic, so
	// the check runs between phases rather than inside them.
	if err := ctx.Err(); err != nil {
		return CleverHansResult{}, err
	}
	repairedTrain := train.DropFeatures(artifact)
	repairedTest := test.DropFeatures(artifact)
	repaired, err := TrainModel(kind, repairedTrain, seed)
	if err != nil {
		return CleverHansResult{}, err
	}
	res.RepairedTestR2 = metrics.R2(ml.PredictBatch(repaired, repairedTest.X), repairedTest.Y)
	return res, nil
}

func rankOf(imp []float64, idx int) int {
	rank := 1
	for j, v := range imp {
		if j != idx && v > imp[idx] {
			rank++
		}
	}
	return rank
}

func sampleRows(rng *rand.Rand, X [][]float64, n int) [][]float64 {
	if n >= len(X) {
		return X
	}
	idx := rng.Perm(len(X))[:n]
	out := make([][]float64, n)
	for i, j := range idx {
		out[i] = X[j]
	}
	return out
}
