package core

import (
	"encoding/json"
	"testing"

	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// legacyWeb and legacyNAT are verbatim copies of the pre-registry
// hard-coded constructors; the parity tests pin the spec-compiled
// scenarios to them bit-for-bit.
func legacyWeb() Scenario {
	return Scenario{
		Name: "web-sfc",
		Groups: func() []*chain.Group {
			return []*chain.Group{
				chain.NewGroup("fw", vnf.Firewall, 2, 2),
				chain.NewGroup("ids", vnf.IDS, 2, 2),
				chain.NewGroup("lb", vnf.LoadBalancer, 1, 2),
			}
		},
		GroupNames: []string{"fw", "ids", "lb"},
		Traffic: traffic.Profile{
			BaseFPS:          30000,
			DiurnalAmplitude: 0.7,
			PeakHour:         13,
			BurstRatio:       4,
			BurstRate:        0.02,
			FlashCrowds:      FlashCrowdAt(11.5*3600, 1800, 2.2),
		},
		SLO:      sla.SLO{MaxLatencyMs: 4, MaxLossRate: 0.01},
		EpochSec: 5,
	}
}

func legacyNAT() Scenario {
	return Scenario{
		Name: "nat-edge",
		Groups: func() []*chain.Group {
			return []*chain.Group{
				chain.NewGroup("nat", vnf.NAT, 2, 2),
				chain.NewGroup("mon", vnf.Monitor, 1, 2),
			}
		},
		GroupNames: []string{"nat", "mon"},
		Traffic: traffic.Profile{
			BaseFPS:          95000,
			DiurnalAmplitude: 0.5,
			PeakHour:         20,
			BurstRatio:       6,
			BurstRate:        0.05,
		},
		SLO:      sla.SLO{MaxLatencyMs: 1.5, MaxLossRate: 0.01},
		EpochSec: 5,
	}
}

func datasetsEqual(t *testing.T, label string, legacy, compiled Scenario) {
	t.Helper()
	const seed, hours = 3, 0.3
	a, err := legacy.GenerateDataset(seed, hours, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiled.GenerateDataset(seed, hours, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.Len() != b.Len() || a.NumFeatures() != b.NumFeatures() {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, a.Len(), a.NumFeatures(), b.Len(), b.NumFeatures())
	}
	for j, n := range a.Names {
		if b.Names[j] != n {
			t.Fatalf("%s: feature %d name %q vs %q", label, j, n, b.Names[j])
		}
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("%s: row %d target %v vs %v", label, i, a.Y[i], b.Y[i])
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, a.X[i][j], b.X[i][j])
			}
		}
	}
}

// TestScenarioSpecParity proves the hard-coded switch could be deleted:
// both paper scenarios, resolved through the scenario registry, generate
// bit-identical datasets to the legacy constructors for a fixed seed.
func TestScenarioSpecParity(t *testing.T) {
	reg := NewScenarioRegistry()
	for _, tc := range []struct {
		alias  string
		legacy Scenario
	}{
		{"web", legacyWeb()},
		{"nat", legacyNAT()},
	} {
		sc, err := reg.Scenario(tc.alias)
		if err != nil {
			t.Fatal(err)
		}
		datasetsEqual(t, tc.alias, tc.legacy, sc)
	}
}

func TestScenarioSpecJSONRoundTrip(t *testing.T) {
	for _, sp := range []ScenarioSpec{WebScenarioSpec(), NATScenarioSpec()} {
		raw, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		var back ScenarioSpec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		sc, err := back.Compile()
		if err != nil {
			t.Fatalf("%s: compile after round trip: %v", sp.Name, err)
		}
		orig := mustCompile(sp)
		datasetsEqual(t, sp.Name+"-json", orig, sc)
	}
}

func TestScenarioSpecValidate(t *testing.T) {
	good := WebScenarioSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*ScenarioSpec){
		"empty name":      func(sp *ScenarioSpec) { sp.Name = "" },
		"slash name":      func(sp *ScenarioSpec) { sp.Name = "a/b" },
		"no groups":       func(sp *ScenarioSpec) { sp.Groups = nil },
		"dup group":       func(sp *ScenarioSpec) { sp.Groups[1].Name = sp.Groups[0].Name },
		"bad kind":        func(sp *ScenarioSpec) { sp.Groups[0].Kind = "blockchain" },
		"replica bound":   func(sp *ScenarioSpec) { sp.Groups[0].Replicas = MaxGroupReplicas + 1 },
		"cores bound":     func(sp *ScenarioSpec) { sp.Groups[0].CoresPerInstance = -1 },
		"zero fps":        func(sp *ScenarioSpec) { sp.Traffic.BaseFPS = 0 },
		"diurnal range":   func(sp *ScenarioSpec) { sp.Traffic.DiurnalAmplitude = 1 },
		"burst ratio":     func(sp *ScenarioSpec) { sp.Traffic.BurstRatio = 0.5 },
		"flash crowd":     func(sp *ScenarioSpec) { sp.Traffic.FlashCrowds[0].Multiplier = 0.9 },
		"loss rate range": func(sp *ScenarioSpec) { sp.SLO.MaxLossRate = 1.5 },
		"epoch bound":     func(sp *ScenarioSpec) { sp.EpochSec = 7200 },
	} {
		sp := WebScenarioSpec()
		mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioRegistryRegisterLookup(t *testing.T) {
	reg := NewScenarioRegistry()
	if reg.Len() != 2 {
		t.Fatalf("builtin count %d", reg.Len())
	}
	cdn := ScenarioSpec{
		Name:        "video-cdn",
		Description: "5-hop video CDN chain",
		Groups: []GroupSpec{
			{Name: "fw", Kind: "firewall", Replicas: 2, CoresPerInstance: 2},
			{Name: "dpi", Kind: "dpi", Replicas: 2, CoresPerInstance: 2},
			{Name: "ratelim", Kind: "ratelimiter", Replicas: 1, CoresPerInstance: 2},
			{Name: "cache-lb", Kind: "lb", Replicas: 2, CoresPerInstance: 2},
			{Name: "mon", Kind: "monitor", Replicas: 1, CoresPerInstance: 1},
		},
		Traffic: TrafficSpec{BaseFPS: 20000, DiurnalAmplitude: 0.6, PeakHour: 21, BurstRatio: 3, BurstRate: 0.03},
		SLO:     SLOSpec{MaxLatencyMs: 8, MaxLossRate: 0.02},
	}
	norm, err := reg.Register(cdn, "cdn")
	if err != nil {
		t.Fatal(err)
	}
	if norm.EpochSec != 5 || norm.PropagationMs != 0.05 {
		t.Fatalf("defaults not applied: %+v", norm)
	}
	for _, name := range []string{"video-cdn", "cdn"} {
		sc, err := reg.Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.GroupNames) != 5 || sc.GroupNames[3] != "cache-lb" {
			t.Fatalf("%s: groups %v", name, sc.GroupNames)
		}
	}
	ds, err := mustCompile(norm).GenerateDataset(1, 0.2, telemetry.TargetChainLatency)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 || ds.NumFeatures() != len(telemetry.FeatureNames(norm.GroupNames())) {
		t.Fatalf("cdn dataset shape (%d,%d)", ds.Len(), ds.NumFeatures())
	}
	// Duplicate names and aliases are rejected.
	if _, err := reg.Register(cdn); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if _, err := reg.Register(ScenarioSpec{Name: "other"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := reg.Lookup("nope"); err == nil {
		t.Fatal("unknown scenario resolved")
	}
}
