// Package core is the paper's contribution: the explainable-AI pipeline
// for NFV management. It wires the substrate (traffic → chains → telemetry)
// to the ML models and the explanation methods, and implements the
// operator-facing workflows the paper argues for — attribution reports for
// individual predictions, global importance profiles, spurious-feature
// ("Clever Hans") audits, counterfactual what-if queries, and the
// experiment suite that regenerates every table and figure.
package core

import (
	"fmt"
	"math/rand"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/orch"
	"nfvxai/internal/nfv/sim"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/nfv/traffic"
)

// Scenario bundles a reproducible simulated testbed configuration — the
// runtime (compiled) form of a declarative ScenarioSpec.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Groups builds the chain composition (fresh instances per call).
	Groups func() []*chain.Group
	// GroupNames lists the group names (feature schema).
	GroupNames []string
	// Traffic is the workload profile (Seed is overridden per run).
	Traffic traffic.Profile
	// SLO is the chain objective.
	SLO sla.SLO
	// EpochSec is the telemetry period.
	EpochSec float64
	// PropagationMs is the per-hop link latency (0 = the historical 0.05
	// default, so hand-assembled scenarios keep their old behavior).
	PropagationMs float64
}

// WebScenario is the canonical three-hop web service chain used by most
// experiments, compiled from WebScenarioSpec. See the spec for the
// topology and workload rationale.
func WebScenario() Scenario { return mustCompile(WebScenarioSpec()) }

// FlashCrowdAt is a helper constructing a single flash-crowd slice.
func FlashCrowdAt(startSec, durSec, mult float64) []traffic.FlashCrowd {
	return []traffic.FlashCrowd{{StartSec: startSec, DurationSec: durSec, Multiplier: mult}}
}

// NATScenario is the tighter two-hop NAT+monitor chain, compiled from
// NATScenarioSpec.
func NATScenario() Scenario { return mustCompile(NATScenarioSpec()) }

// BuildWorld instantiates the scenario as a running world. seed
// perturbs the traffic; scaler may be nil for static allocation.
func (s Scenario) BuildWorld(seed int64, scaler orch.Scaler) (*sim.World, *sim.ChainHandle, error) {
	w := sim.NewWorld(s.EpochSec)
	profile := s.Traffic
	profile.Seed = seed
	prop := s.PropagationMs
	if prop == 0 {
		prop = 0.05
	}
	c := chain.New(s.Name, prop, s.Groups()...)
	h, err := w.AddChain(sim.ChainSpec{Chain: c, Traffic: profile, SLO: s.SLO, Scaler: scaler})
	if err != nil {
		return nil, nil, fmt.Errorf("core: building %s: %w", s.Name, err)
	}
	return w, h, nil
}

// GenerateDataset runs the scenario for simHours of virtual time and
// returns the telemetry dataset for the given target.
func (s Scenario) GenerateDataset(seed int64, simHours float64, target telemetry.TargetKind) (*dataset.Dataset, error) {
	w, h, err := s.BuildWorld(seed, nil)
	if err != nil {
		return nil, err
	}
	ext := telemetry.NewExtractor(target, s.SLO.MaxLatencyMs, s.GroupNames)
	h.AttachExtractor(ext)
	w.Run(simHours * 3600)
	ds := ext.Dataset()
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: scenario %s produced no data", s.Name)
	}
	return ds, nil
}

// SplitDataset is a convenience seeded 80/20 split.
func SplitDataset(ds *dataset.Dataset, seed int64) (train, test *dataset.Dataset) {
	return ds.Split(rand.New(rand.NewSource(seed)), 0.8)
}
