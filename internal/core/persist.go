// Pipeline persistence: a trained pipeline serializes to one versioned
// binary artifact — model (including the standardizing wrapper's scaler),
// frozen train/test splits, explainer background, seeds and explainer
// metadata — and loads back into a pipeline whose Predict and
// default-method Explain are bit-identical to the one that was saved.
// This is what lets explaind warm-start from the registry store instead
// of retraining every model on every boot.
package core

import (
	"errors"
	"fmt"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/wire"
)

// pipelineMagic guards against decoding arbitrary bytes as a pipeline.
const pipelineMagic = "NFVP"

// pipelineCodecVersion is bumped whenever the artifact layout changes.
const pipelineCodecVersion = 1

// ErrPipelineVersion reports a pipeline artifact written by an
// incompatible codec version.
var ErrPipelineVersion = errors.New("core: unsupported pipeline artifact version")

// ErrCorruptPipeline reports bytes that are not a pipeline artifact, or
// one whose internal structure fails validation. Truncation surfaces as
// wire.ErrTruncated (wrapped), unknown embedded model kinds as
// ml.ErrUnknownModelKind.
var ErrCorruptPipeline = errors.New("core: corrupt pipeline artifact")

// scaler kind tags for the standardizing wrapper.
const (
	scalerNone     = 0
	scalerStandard = 1
)

// Save serializes the pipeline to a self-contained versioned artifact.
// Everything that shapes predictions or explanations is captured: the
// model parameters (bit-exact), the fitted scaler of scale-sensitive
// kinds, both dataset splits, the SHAP background sample, the seed and
// sample budget, and the default explanation method as trained-explainer
// metadata (Load verifies it still resolves identically).
func (p *Pipeline) Save() ([]byte, error) {
	var w wire.Writer
	w.String(pipelineMagic)
	w.U16(pipelineCodecVersion)
	w.String(p.Kind.String())
	w.I64(p.Seed)
	w.Int(p.ShapSamples)
	w.String(DefaultMethod(p.Model))
	if p.Train == nil || p.Test == nil {
		return nil, fmt.Errorf("core: save pipeline: missing train/test split")
	}
	p.Train.AppendWire(&w)
	p.Test.AppendWire(&w)
	w.F64Mat(p.Background)

	// Model section: the standardizing wrapper is flattened into an
	// explicit (scaler, inner-model) pair.
	inner := p.Model
	if sm, ok := p.Model.(*scaledModel); ok {
		std, ok := sm.scaler.(*dataset.StandardScaler)
		if !ok {
			return nil, fmt.Errorf("core: save pipeline: unsupported scaler %T", sm.scaler)
		}
		w.U8(scalerStandard)
		w.F64s(std.Mean)
		w.F64s(std.Std)
		inner = sm.inner
	} else {
		w.U8(scalerNone)
	}
	blob, err := ml.EncodeModel(inner)
	if err != nil {
		return nil, fmt.Errorf("core: save pipeline: %w", err)
	}
	w.BytesField(blob)
	return w.Bytes(), nil
}

// LoadPipeline reconstructs a pipeline from a Save artifact. The loaded
// pipeline's Predict/PredictBatch are bit-identical to the saved one and
// its default-method explanations agree to the last bit (same model
// parameters, background, seed and sample budget). The explainer and
// importance caches start cold and rebuild on first use.
func LoadPipeline(data []byte) (*Pipeline, error) {
	r := wire.NewReader(data)
	magic := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptPipeline, err)
	}
	if magic != pipelineMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptPipeline, magic)
	}
	if v := r.U16(); r.Err() == nil && v != pipelineCodecVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrPipelineVersion, v, pipelineCodecVersion)
	}
	kindName := r.String()
	seed := r.I64()
	shapSamples := r.Int()
	savedMethod := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptPipeline, err)
	}
	kind, err := modelKindFromString(kindName)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptPipeline, err)
	}
	train, err := dataset.ReadWire(r)
	if err != nil {
		return nil, fmt.Errorf("%w: train split: %w", ErrCorruptPipeline, err)
	}
	test, err := dataset.ReadWire(r)
	if err != nil {
		return nil, fmt.Errorf("%w: test split: %w", ErrCorruptPipeline, err)
	}
	background := r.F64Mat()
	scalerKind := r.U8()
	var mean, std []float64
	switch scalerKind {
	case scalerNone:
	case scalerStandard:
		mean = r.F64s()
		std = r.F64s()
	default:
		return nil, fmt.Errorf("%w: unknown scaler kind %d", ErrCorruptPipeline, scalerKind)
	}
	blob := r.BytesField()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptPipeline, err)
	}
	inner, err := ml.DecodeModel(blob)
	if err != nil {
		// Keep ml's typed errors (ErrUnknownModelKind, wire.ErrTruncated)
		// reachable through errors.Is for the store's corruption tests.
		return nil, fmt.Errorf("%w: model: %w", ErrCorruptPipeline, err)
	}
	// The model must consume exactly the embedded schema's width: a
	// crafted artifact pairing a wide model with a narrow dataset would
	// otherwise pass decode and panic on the first predict.
	if w, ok := ml.InputWidth(inner); ok && w != train.NumFeatures() {
		return nil, fmt.Errorf("%w: model expects %d features, schema has %d",
			ErrCorruptPipeline, w, train.NumFeatures())
	}
	model := inner
	if scalerKind == scalerStandard {
		if len(mean) != len(std) || len(mean) != train.NumFeatures() {
			return nil, fmt.Errorf("%w: scaler width %d/%d != %d features",
				ErrCorruptPipeline, len(mean), len(std), train.NumFeatures())
		}
		model = &scaledModel{inner: inner, scaler: &dataset.StandardScaler{Mean: mean, Std: std}}
	}
	// Trained-explainer metadata check: the default method is derived from
	// the model type, so a mismatch means the artifact's model section does
	// not belong to its header.
	if got := DefaultMethod(model); savedMethod != "" && got != savedMethod {
		return nil, fmt.Errorf("%w: default method %q, artifact recorded %q", ErrCorruptPipeline, got, savedMethod)
	}
	return &Pipeline{
		Kind:        kind,
		Model:       model,
		Train:       train,
		Test:        test,
		Background:  background,
		ShapSamples: shapSamples,
		Seed:        seed,
	}, nil
}

// modelKindFromString resolves a ModelKind from its String form.
func modelKindFromString(name string) (ModelKind, error) {
	for _, k := range ZooKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model kind %q", name)
}
