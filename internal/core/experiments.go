package core

import (
	"context"
	"fmt"
	"strings"

	"nfvxai/internal/ml"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/counterfactual"
	"nfvxai/internal/xai/evalx"
	"nfvxai/internal/xai/lime"
	"nfvxai/internal/xai/surrogate"
)

// ExpConfig scales the experiment suite: full-size for the reproduction
// record, reduced for unit tests and quick benches.
type ExpConfig struct {
	// SimHours is the virtual time simulated to build datasets (default 24).
	SimHours float64
	// Explained is the number of test instances explained where applicable
	// (default 100).
	Explained int
	// ShapSamples bounds KernelSHAP coalitions (default 1024).
	ShapSamples int
	// Seed drives everything.
	Seed int64
}

func (c ExpConfig) withDefaults() ExpConfig {
	if c.SimHours <= 0 {
		c.SimHours = 24
	}
	if c.Explained <= 0 {
		c.Explained = 100
	}
	if c.ShapSamples <= 0 {
		c.ShapSamples = 1024
	}
	return c
}

// Table1Result is one row of Table 1 (VNF CPU prediction accuracy).
type Table1Result struct {
	Rows []metrics.RegressionReport
	// DatasetRows / Features describe the generated data.
	DatasetRows, Features int
}

// String renders the table.
func (t Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: next-epoch bottleneck CPU prediction (%d rows, %d features)\n", t.DatasetRows, t.Features)
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s\n", "model", "MAE", "RMSE", "R2", "MAPE")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %8.4f %8.4f %8.4f %8.4f\n", r.Model, r.MAE, r.RMSE, r.R2, r.MAPE)
	}
	return sb.String()
}

// Table1ModelAccuracy regenerates Table 1: all zoo models on the
// bottleneck-utilization regression task, plus the mean-predictor baseline.
func Table1ModelAccuracy(cfg ExpConfig) (Table1Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Table1Result{}, err
	}
	out := Table1Result{DatasetRows: ds.Len(), Features: ds.NumFeatures()}
	train, test := SplitDataset(ds, cfg.Seed)

	// Baseline: predict the training mean.
	var mean float64
	for _, y := range train.Y {
		mean += y
	}
	mean /= float64(train.Len())
	basePred := make([]float64, test.Len())
	for i := range basePred {
		basePred[i] = mean
	}
	out.Rows = append(out.Rows, metrics.EvalRegression("baseline", basePred, test.Y))

	for _, kind := range ZooKinds() {
		model, err := TrainModel(kind, train, cfg.Seed)
		if err != nil {
			return Table1Result{}, err
		}
		pred := ml.PredictBatch(model, test.X)
		out.Rows = append(out.Rows, metrics.EvalRegression(kind.String(), pred, test.Y))
	}
	return out, nil
}

// Table2Result is Table 2 (SLO-violation classification).
type Table2Result struct {
	Rows []metrics.ClassificationReport
	// PositiveRate is the violation base rate in the dataset.
	PositiveRate float64
	DatasetRows  int
}

// String renders the table.
func (t Table2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: next-epoch SLO violation classification (%d rows, base rate %.3f)\n", t.DatasetRows, t.PositiveRate)
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %8s\n", "model", "acc", "prec", "recall", "F1", "AUC")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %8.4f %8.4f %8.4f %8.4f %8.4f\n", r.Model, r.Accuracy, r.Precision, r.Recall, r.F1, r.AUC)
	}
	return sb.String()
}

// Table2ViolationClassifiers regenerates Table 2 on the NAT edge scenario
// (flow-table pressure violations).
func Table2ViolationClassifiers(cfg ExpConfig) (Table2Result, error) {
	cfg = cfg.withDefaults()
	ds, err := NATScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetViolation)
	if err != nil {
		return Table2Result{}, err
	}
	out := Table2Result{DatasetRows: ds.Len(), PositiveRate: ds.ClassBalance()}
	train, test := SplitDataset(ds, cfg.Seed)
	for _, kind := range ZooKinds() {
		model, err := TrainModel(kind, train, cfg.Seed)
		if err != nil {
			return Table2Result{}, err
		}
		prob := ml.PredictBatch(model, test.X)
		out.Rows = append(out.Rows, metrics.EvalClassification(kind.String(), prob, test.Y))
	}
	return out, nil
}

// Table3Result is Table 3 (explanation fidelity).
type Table3Result struct {
	// LimeLocalR2 per model kind.
	LimeLocalR2 map[string]float64
	// KernelAdditivityErr / TreeAdditivityErr are mean |base+Σφ−f(x)|.
	KernelAdditivityErr map[string]float64
	TreeAdditivityErr   float64
	// SurrogateFidelity maps depth → R² (RF model).
	SurrogateFidelity map[int]float64
	Explained         int
}

// String renders the table.
func (t Table3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: explanation fidelity (%d instances)\n", t.Explained)
	for _, m := range sortedKeys(t.LimeLocalR2) {
		fmt.Fprintf(&sb, "LIME local R2 [%s]          %8.4f\n", m, t.LimeLocalR2[m])
	}
	for _, m := range sortedKeys(t.KernelAdditivityErr) {
		fmt.Fprintf(&sb, "KernelSHAP additivity [%s]  %8.2e\n", m, t.KernelAdditivityErr[m])
	}
	fmt.Fprintf(&sb, "TreeSHAP additivity [rf]      %8.2e\n", t.TreeAdditivityErr)
	for d := 1; d <= 8; d++ {
		if v, ok := t.SurrogateFidelity[d]; ok {
			fmt.Fprintf(&sb, "surrogate fidelity depth=%d    %8.4f\n", d, v)
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// Table3ExplanationFidelity regenerates Table 3 on the CPU-prediction
// task: local fidelity of LIME, additivity of the SHAP family, and global
// surrogate fidelity by depth.
func Table3ExplanationFidelity(cfg ExpConfig) (Table3Result, error) {
	cfg = cfg.withDefaults()
	ds, err := WebScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetBottleneckUtil)
	if err != nil {
		return Table3Result{}, err
	}
	out := Table3Result{
		LimeLocalR2:         map[string]float64{},
		KernelAdditivityErr: map[string]float64{},
		SurrogateFidelity:   map[int]float64{},
		Explained:           cfg.Explained,
	}
	for _, kind := range []ModelKind{ModelForest, ModelMLP} {
		p, err := NewPipeline(kind, ds, cfg.Seed)
		if err != nil {
			return Table3Result{}, err
		}
		n := cfg.Explained
		if n > p.Test.Len() {
			n = p.Test.Len()
		}
		// LIME local fidelity.
		le := &lime.Explainer{
			Model: p.Model, Background: p.Background,
			NumSamples: 600, Seed: cfg.Seed, Names: p.Train.Names,
		}
		var r2sum float64
		for i := 0; i < n; i++ {
			res, err := le.ExplainDetailed(context.Background(), p.Test.X[i])
			if err != nil {
				return Table3Result{}, err
			}
			r2sum += res.LocalR2
		}
		out.LimeLocalR2[kind.String()] = r2sum / float64(n)

		// KernelSHAP additivity (enforced by construction; measure it).
		ke, method := Explain(p.Model, p.Background, p.Train.Names, cfg.ShapSamples, cfg.Seed)
		var attrs []xai.Attribution
		for i := 0; i < n; i++ {
			a, err := ke.Explain(context.Background(), p.Test.X[i])
			if err != nil {
				return Table3Result{}, err
			}
			attrs = append(attrs, a)
		}
		sum := evalx.SummarizeFidelity(attrs)
		if method == "treeshap" {
			out.TreeAdditivityErr = sum.MeanAdditivityErr
		} else {
			out.KernelAdditivityErr[kind.String()] = sum.MeanAdditivityErr
		}

		// Surrogate sweep only for the forest (the paper's global-audit model).
		if kind == ModelForest {
			sweep, err := surrogate.DepthSweep(p.Model, p.Train, p.Test, 5)
			if err != nil {
				return Table3Result{}, err
			}
			for _, r := range sweep {
				out.SurrogateFidelity[r.Depth] = r.FidelityR2
			}
		}
	}
	return out, nil
}

// Table4Result is Table 4 (counterfactual what-if quality).
type Table4Result struct {
	Queried       int
	ValidFraction float64
	MeanSparsity  float64
	MeanProximity float64
	// ExampleReport is one rendered remediation narrative.
	ExampleReport string
}

// String renders the table.
func (t Table4Result) String() string {
	return fmt.Sprintf("Table 4: counterfactual remediation (n=%d)\nvalid %.2f  sparsity %.2f  proximity %.2f sd\n%s",
		t.Queried, t.ValidFraction, t.MeanSparsity, t.MeanProximity, t.ExampleReport)
}

// Table4Counterfactuals regenerates Table 4: for violating epochs, find
// minimal telemetry changes that bring the violation probability under
// 0.3, holding time-of-day fixed (operators cannot change the clock).
func Table4Counterfactuals(cfg ExpConfig) (Table4Result, error) {
	cfg = cfg.withDefaults()
	ds, err := NATScenario().GenerateDataset(cfg.Seed, cfg.SimHours, telemetry.TargetViolation)
	if err != nil {
		return Table4Result{}, err
	}
	p, err := NewPipeline(ModelForest, ds, cfg.Seed)
	if err != nil {
		return Table4Result{}, err
	}
	target := counterfactual.Target{Op: "<=", Value: 0.3}
	immutable := []string{"hour_sin", "hour_cos"}
	out := Table4Result{}
	var sparsity, proximity float64
	valid := 0
	for i := 0; i < p.Test.Len() && out.Queried < cfg.Explained; i++ {
		x := p.Test.X[i]
		if p.Model.Predict(x) < 0.5 {
			continue // not a predicted violation
		}
		out.Queried++
		cf, err := p.WhatIf(context.Background(), x, target, immutable)
		if err != nil {
			return Table4Result{}, err
		}
		if cf.Valid {
			valid++
			sparsity += float64(cf.Sparsity)
			proximity += cf.Proximity
			if out.ExampleReport == "" {
				out.ExampleReport = WhatIfReport(cf, p.Train.Names, x, target)
			}
		}
	}
	if out.Queried == 0 {
		return out, fmt.Errorf("core: no predicted violations to query")
	}
	out.ValidFraction = float64(valid) / float64(out.Queried)
	if valid > 0 {
		out.MeanSparsity = sparsity / float64(valid)
		out.MeanProximity = proximity / float64(valid)
	}
	return out, nil
}
