package core

import (
	"context"
	"errors"
	"testing"

	"nfvxai/internal/ml/forest"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/intgrad"
	"nfvxai/internal/xai/shap"
	"nfvxai/internal/xai/treeshap"
)

// planePipeline trains one small pipeline of the given kind for the
// explanation-plane tests.
func planePipeline(t *testing.T, kind ModelKind) *Pipeline {
	t.Helper()
	ds, err := WebScenario().GenerateDataset(21, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(kind, ds, 22)
	if err != nil {
		t.Fatal(err)
	}
	p.ShapSamples = 128
	return p
}

// TestDefaultExplainerParity pins the acceptance criterion: an explain
// request that names no method must return attributions bit-identical to
// the pre-registry hard-wired selection (TreeSHAP for the forest,
// KernelSHAP with the pipeline's samples/seed for the MLP).
func TestDefaultExplainerParity(t *testing.T) {
	ctx := context.Background()

	// Forest → TreeSHAP.
	p := planePipeline(t, ModelForest)
	x := p.Test.X[3]
	got, method, err := p.ExplainInstance(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if method != "treeshap" {
		t.Fatalf("default method %q", method)
	}
	rf := p.Model.(*forest.RandomForest)
	want, err := (&treeshap.Explainer{Model: rf, Names: p.Train.Names}).Explain(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Phi {
		if got.Phi[j] != want.Phi[j] {
			t.Fatalf("phi[%d] = %v want %v (not bit-identical)", j, got.Phi[j], want.Phi[j])
		}
	}
	if got.Base != want.Base || got.Value != want.Value {
		t.Fatalf("base/value drift: %v/%v vs %v/%v", got.Base, got.Value, want.Base, want.Value)
	}

	// MLP → KernelSHAP with ShapSamples and the pipeline seed.
	pm := planePipeline(t, ModelMLP)
	xm := pm.Test.X[3]
	gotM, methodM, err := pm.ExplainInstance(ctx, xm)
	if err != nil {
		t.Fatal(err)
	}
	if methodM != "kernelshap" {
		t.Fatalf("MLP default method %q", methodM)
	}
	k := &shap.Kernel{Model: pm.Model, Background: pm.Background, NumSamples: pm.ShapSamples, Seed: pm.Seed, Names: pm.Train.Names}
	wantM, err := k.Explain(ctx, xm)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wantM.Phi {
		if gotM.Phi[j] != wantM.Phi[j] {
			t.Fatalf("MLP phi[%d] = %v want %v (not bit-identical)", j, gotM.Phi[j], wantM.Phi[j])
		}
	}
}

// TestShapSamplesChangeTakesEffect pins the satellite fix: mutating
// ShapSamples after the first explain must produce a different cache
// entry, not be silently ignored.
func TestShapSamplesChangeTakesEffect(t *testing.T) {
	ctx := context.Background()
	p := planePipeline(t, ModelMLP) // kernelshap path reads ShapSamples
	x := p.Test.X[0]
	p.ShapSamples = 64
	a64, _, err := p.ExplainInstance(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	p.ShapSamples = 256
	a256, _, err := p.ExplainInstance(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	// The late change must take effect: a fresh 256-sample kernel agrees
	// bit-for-bit with the post-change pipeline result.
	k := &shap.Kernel{Model: p.Model, Background: p.Background, NumSamples: 256, Seed: p.Seed, Names: p.Train.Names}
	want, err := k.Explain(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Phi {
		if a256.Phi[j] != want.Phi[j] {
			t.Fatalf("post-change phi[%d] = %v want %v", j, a256.Phi[j], want.Phi[j])
		}
	}
	// And the 64-sample estimate differs somewhere (different budget).
	same := true
	for j := range a64.Phi {
		if a64.Phi[j] != a256.Phi[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ShapSamples change produced identical attributions; late change dropped?")
	}
}

func TestExplainerForCachesPerMethodAndParams(t *testing.T) {
	p := planePipeline(t, ModelForest)
	e1, _, err := p.ExplainerFor("lime", xai.Options{Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := p.ExplainerFor("lime", xai.Options{Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("identical (method, params) did not hit the cache")
	}
	e3, _, err := p.ExplainerFor("lime", xai.Options{Samples: 400})
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e3 {
		t.Fatal("different params shared one cached explainer")
	}
	// The default entry coexists with explicit methods.
	d1, method := p.Explainer()
	d2, _ := p.Explainer()
	if method != "treeshap" || d1 != d2 {
		t.Fatalf("default explainer not cached (method %q)", method)
	}
	// DisableExplainerCache rebuilds per call.
	p.DisableExplainerCache = true
	f1, _, _ := p.ExplainerFor("lime", xai.Options{Samples: 200})
	f2, _, _ := p.ExplainerFor("lime", xai.Options{Samples: 200})
	if f1 == f2 {
		t.Fatal("DisableExplainerCache still cached")
	}
}

func TestExplainerForErrors(t *testing.T) {
	p := planePipeline(t, ModelForest)
	if _, _, err := p.ExplainerFor("not-a-method", xai.Options{}); !errors.Is(err, xai.ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	// Global methods have no per-instance explainer.
	if _, _, err := p.ExplainerFor("pdp", xai.Options{}); !errors.Is(err, xai.ErrUnsupportedModel) {
		t.Fatalf("global method: %v", err)
	}
	// Capability mismatch: intgrad needs a differentiable model; the
	// forest is not one.
	if _, _, err := p.ExplainerFor("intgrad", xai.Options{}); !errors.Is(err, xai.ErrUnsupportedModel) {
		t.Fatalf("intgrad on forest: %v", err)
	}
}

// TestMethodSelectionAcrossRegistry exercises every local method that is
// compatible with the forest pipeline end to end.
func TestMethodSelectionAcrossRegistry(t *testing.T) {
	ctx := context.Background()
	p := planePipeline(t, ModelForest)
	x := p.Test.X[1]
	for _, method := range []string{"treeshap", "kernelshap", "lime", "anchors", "counterfactual"} {
		e, name, err := p.ExplainerFor(method, xai.Options{Samples: 64})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if name != method {
			t.Fatalf("resolved %q for %q", name, method)
		}
		attr, err := e.Explain(ctx, x)
		if err != nil {
			t.Fatalf("%s explain: %v", method, err)
		}
		if len(attr.Phi) != p.Train.NumFeatures() {
			t.Fatalf("%s: phi width %d", method, len(attr.Phi))
		}
	}
}

// TestIntgradOnScaledMLP checks the chain-rule gradient through the
// standardizing wrapper: intgrad on the MLP pipeline must satisfy the
// completeness axiom approximately (sum of phi ≈ f(x) − f(baseline)).
func TestIntgradOnScaledMLP(t *testing.T) {
	ctx := context.Background()
	p := planePipeline(t, ModelMLP)
	e, method, err := p.ExplainerFor("intgrad", xai.Options{Steps: 256})
	if err != nil {
		t.Fatal(err)
	}
	if method != "intgrad" {
		t.Fatalf("method %q", method)
	}
	x := p.Test.X[2]
	attr, err := e.Explain(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	gap := attr.Value - attr.Base
	if err := attr.AdditivityError(); err > 0.05*abs(gap)+1e-3 {
		t.Fatalf("completeness violated: sum %v base %v value %v (err %v)", attr.Sum(), attr.Base, attr.Value, err)
	}
	if _, ok := interface{}(e).(*intgrad.Explainer); !ok {
		t.Fatalf("unexpected explainer type %T", e)
	}
}

// TestGlobalImportanceCancellation checks ctx propagation through the
// batched importance path.
func TestGlobalImportanceCancellation(t *testing.T) {
	p := planePipeline(t, ModelForest)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.GlobalImportance(ctx, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled importance: %v", err)
	}
	// The failed run must not poison the cache: a live context succeeds.
	shapImp, permImp, err := p.GlobalImportance(context.Background(), 20)
	if err != nil || len(shapImp) == 0 || len(permImp) == 0 {
		t.Fatalf("post-cancel importance: %v (%d/%d)", err, len(shapImp), len(permImp))
	}
}
