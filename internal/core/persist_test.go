package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/wire"
)

func TestPipelineSaveLoadParityAllKinds(t *testing.T) {
	regDS, err := WebScenario().GenerateDataset(1, 0.3, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	clsDS, err := WebScenario().GenerateDataset(1, 0.3, telemetry.TargetViolation)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range ZooKinds() {
		for _, ds := range []*dataset.Dataset{regDS, clsDS} {
			p, err := NewPipeline(kind, ds, 1)
			if err != nil {
				t.Fatalf("%v/%v: %v", kind, ds.Task, err)
			}
			p.ShapSamples = 256 // keep kernelshap parity checks fast
			blob, err := p.Save()
			if err != nil {
				t.Fatalf("%v/%v: save: %v", kind, ds.Task, err)
			}
			loaded, err := LoadPipeline(blob)
			if err != nil {
				t.Fatalf("%v/%v: load: %v", kind, ds.Task, err)
			}
			if loaded.Kind != kind || loaded.Seed != p.Seed || loaded.ShapSamples != p.ShapSamples {
				t.Fatalf("%v/%v: header mismatch: %+v", kind, ds.Task, loaded)
			}

			// Predict parity: bit-identical on every test row, single and batch.
			want := p.PredictBatch(p.Test.X)
			got := loaded.PredictBatch(loaded.Test.X)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%v/%v: predict row %d: %v != %v", kind, ds.Task, i, got[i], want[i])
				}
				single := loaded.Model.Predict(p.Test.X[i])
				if math.Float64bits(single) != math.Float64bits(want[i]) {
					t.Fatalf("%v/%v: single predict row %d differs", kind, ds.Task, i)
				}
			}

			// Default-method explain parity on a few rows: the explainer is
			// rebuilt from persisted state (background, seed, samples), so
			// attributions must agree to ≤ 1e-12 (bit-identical in practice).
			n := 3
			if n > p.Test.Len() {
				n = p.Test.Len()
			}
			for i := 0; i < n; i++ {
				a1, m1, err := p.ExplainInstance(context.Background(), p.Test.X[i])
				if err != nil {
					t.Fatalf("%v/%v: explain: %v", kind, ds.Task, err)
				}
				a2, m2, err := loaded.ExplainInstance(context.Background(), loaded.Test.X[i])
				if err != nil {
					t.Fatalf("%v/%v: loaded explain: %v", kind, ds.Task, err)
				}
				if m1 != m2 {
					t.Fatalf("%v/%v: method %q != %q", kind, ds.Task, m2, m1)
				}
				if math.Abs(a1.Base-a2.Base) > 1e-12 || math.Abs(a1.Value-a2.Value) > 1e-12 {
					t.Fatalf("%v/%v: base/value drift", kind, ds.Task)
				}
				for j := range a1.Phi {
					if math.Abs(a1.Phi[j]-a2.Phi[j]) > 1e-12 {
						t.Fatalf("%v/%v: row %d phi[%d]: |%v - %v| > 1e-12",
							kind, ds.Task, i, j, a2.Phi[j], a1.Phi[j])
					}
				}
			}
		}
	}
}

func TestLoadPipelineErrors(t *testing.T) {
	ds, err := WebScenario().GenerateDataset(1, 0.2, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelTree, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := LoadPipeline(blob[:len(blob)/2]); !errors.Is(err, ErrCorruptPipeline) || !errors.Is(err, wire.ErrTruncated) {
		t.Errorf("truncated: err = %v, want ErrCorruptPipeline wrapping wire.ErrTruncated", err)
	}
	if _, err := LoadPipeline([]byte("garbage")); !errors.Is(err, ErrCorruptPipeline) {
		t.Errorf("garbage: err = %v, want ErrCorruptPipeline", err)
	}

	var w wire.Writer
	w.String("NFVP")
	w.U16(42)
	if _, err := LoadPipeline(w.Bytes()); !errors.Is(err, ErrPipelineVersion) {
		t.Errorf("future version: err = %v, want ErrPipelineVersion", err)
	}

	var w2 wire.Writer
	w2.String("NFVP")
	w2.U16(pipelineCodecVersion)
	w2.String("quantum")
	w2.I64(1)
	w2.Int(0)
	w2.String("kernelshap")
	if _, err := LoadPipeline(w2.Bytes()); !errors.Is(err, ErrCorruptPipeline) {
		t.Errorf("unknown kind: err = %v, want ErrCorruptPipeline", err)
	}
}

// TestLoadedPipelineServesWhatIfAndImportance exercises the paths that
// depend on the persisted splits and background, not just the model.
func TestLoadedPipelineServesWhatIfAndImportance(t *testing.T) {
	ds, err := NATScenario().GenerateDataset(1, 0.3, telemetry.TargetViolation)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ModelTree, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(blob)
	if err != nil {
		t.Fatal(err)
	}
	s1, p1, err := p.GlobalImportance(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, p2, err := loaded.GlobalImportance(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range s1 {
		if math.Abs(s1[j]-s2[j]) > 1e-12 || math.Abs(p1[j]-p2[j]) > 1e-12 {
			t.Fatalf("importance drift at feature %d", j)
		}
	}
}
