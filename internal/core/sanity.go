package core

import (
	"fmt"
	"strings"

	"nfvxai/internal/xai/pdp"
)

// SanityResult is one feature's partial-dependence check.
type SanityResult struct {
	Feature string
	// MonotoneFraction is the fraction of PDP grid steps moving in the
	// majority direction (1 = perfectly monotone).
	MonotoneFraction float64
	// Range is max−min of the PDP curve (0 = the model ignores the
	// feature).
	Range float64
	// Increasing reports the majority direction.
	Increasing bool
	// Pass is true when the response satisfies the domain expectation
	// (responsive and predominantly increasing).
	Pass bool
}

// SanityChecks validates the model's physics against operator
// expectations: CPU-demand predictions must respond to the offered-load
// features and respond *upward* — a predictor that says "more packets,
// less CPU" has learned something wrong even if its test error looks
// fine. Returns one result per checked feature that exists in the schema.
func (p *Pipeline) SanityChecks() ([]SanityResult, error) {
	// Load features with an expected monotone-increasing CPU response.
	expectIncreasing := []string{"pps", "fps", "active_flows_k"}
	var out []SanityResult
	for _, name := range expectIncreasing {
		j := p.Train.FeatureIndex(name)
		if j < 0 {
			continue
		}
		curve, err := pdp.Compute(p.Model, p.Background, j, pdp.Config{GridSize: 15})
		if err != nil {
			return nil, fmt.Errorf("core: sanity pdp for %s: %w", name, err)
		}
		increasing := len(curve.Mean) >= 2 && curve.Mean[len(curve.Mean)-1] >= curve.Mean[0]
		r := SanityResult{
			Feature:          name,
			MonotoneFraction: curve.MonotoneFraction(),
			Range:            curve.Range(),
			Increasing:       increasing,
		}
		// Pass when the model responds, responds upward, and is mostly
		// monotone. Correlated telemetry features share the signal, so a
		// modest monotone fraction on a small-range marginal is normal.
		r.Pass = r.Range > 0 && increasing && r.MonotoneFraction >= 0.55
		out = append(out, r)
	}
	return out, nil
}

// SanityReport renders the checks as an operator-facing summary.
func SanityReport(results []SanityResult) string {
	var sb strings.Builder
	sb.WriteString("model sanity checks (partial dependence):\n")
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		dir := "increasing"
		if !r.Increasing {
			dir = "decreasing"
		}
		fmt.Fprintf(&sb, "  [%s] %-16s %s response, monotone %.0f%%, range %.4g\n",
			status, r.Feature, dir, r.MonotoneFraction*100, r.Range)
	}
	return sb.String()
}
