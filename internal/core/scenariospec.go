package core

import (
	"fmt"

	"nfvxai/internal/nfv/chain"
	"nfvxai/internal/nfv/sla"
	"nfvxai/internal/nfv/traffic"
	"nfvxai/internal/nfv/vnf"
)

// ScenarioSpec is the declarative, JSON-serializable form of a Scenario:
// everything needed to reconstruct the simulated testbed — chain
// composition, workload shape, SLO, telemetry period — as plain data. New
// topologies (a 5-hop video CDN chain, a multi-tenant variant) are
// registered at runtime from a spec instead of being compiled in.
type ScenarioSpec struct {
	// Name is the scenario registry key: one URL-addressable path segment.
	Name string `json:"name"`
	// Description is free-form operator documentation.
	Description string `json:"description,omitempty"`
	// Groups is the ordered chain composition.
	Groups []GroupSpec `json:"groups"`
	// Traffic is the workload profile (the simulation seed is supplied per
	// run, never part of the spec).
	Traffic TrafficSpec `json:"traffic"`
	// SLO is the chain objective.
	SLO SLOSpec `json:"slo"`
	// EpochSec is the telemetry period (default 5).
	EpochSec float64 `json:"epoch_sec,omitempty"`
	// PropagationMs is the per-hop link latency (default 0.05).
	PropagationMs float64 `json:"propagation_ms,omitempty"`
}

// GroupSpec declares one chain hop: a horizontally scaled VNF group.
type GroupSpec struct {
	// Name is the group label; telemetry feature names derive from it.
	Name string `json:"name"`
	// Kind is the VNF kind by name: firewall, nat, ids, lb, ratelimiter,
	// monitor or dpi.
	Kind string `json:"kind"`
	// Replicas is the initial replica count (default 1).
	Replicas int `json:"replicas,omitempty"`
	// CoresPerInstance is the size of each replica (default 1).
	CoresPerInstance int `json:"cores_per_instance,omitempty"`
}

// TrafficSpec is the serializable subset of traffic.Profile; the flow-size
// and flow-duration distributions keep their simulator defaults.
type TrafficSpec struct {
	BaseFPS          float64          `json:"base_fps"`
	DiurnalAmplitude float64          `json:"diurnal_amplitude,omitempty"`
	PeakHour         float64          `json:"peak_hour,omitempty"`
	BurstRatio       float64          `json:"burst_ratio,omitempty"`
	BurstRate        float64          `json:"burst_rate,omitempty"`
	FlashCrowds      []FlashCrowdSpec `json:"flash_crowds,omitempty"`
}

// FlashCrowdSpec is one transient traffic surge.
type FlashCrowdSpec struct {
	StartSec    float64 `json:"start_sec"`
	DurationSec float64 `json:"duration_sec"`
	Multiplier  float64 `json:"multiplier"`
}

// SLOSpec is the serializable chain objective.
type SLOSpec struct {
	MaxLatencyMs float64 `json:"max_latency_ms"`
	MaxLossRate  float64 `json:"max_loss_rate"`
}

// Bounds a single registered spec may request. They cap the simulation
// work one POST /v1/scenarios can later cause a training or feed goroutine
// to run.
const (
	// MaxScenarioGroups bounds the chain length.
	MaxScenarioGroups = 16
	// MaxGroupReplicas bounds a group's initial replica count.
	MaxGroupReplicas = 64
	// MaxCoresPerInstance bounds each replica's size.
	MaxCoresPerInstance = 32
	// MaxBaseFPS bounds the mean flow arrival rate.
	MaxBaseFPS = 1e8
)

// WithDefaults returns the spec with optional fields normalized.
func (sp ScenarioSpec) WithDefaults() ScenarioSpec {
	if sp.EpochSec == 0 {
		sp.EpochSec = 5
	}
	if sp.PropagationMs == 0 {
		sp.PropagationMs = 0.05
	}
	for i := range sp.Groups {
		if sp.Groups[i].Replicas == 0 {
			sp.Groups[i].Replicas = 1
		}
		if sp.Groups[i].CoresPerInstance == 0 {
			sp.Groups[i].CoresPerInstance = 1
		}
	}
	return sp
}

// ValidSegment reports whether s is usable as one URL path segment —
// the naming rule shared by scenarios, feeds and model-name segments.
func ValidSegment(s string) bool { return validSegment(s) }

// validSegment reports whether s is one non-empty, non-dot URL path
// segment over [A-Za-z0-9._-] — the charset shared with model names.
func validSegment(s string) bool {
	if s == "" || s == "." || s == ".." {
		return false
	}
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

// Validate checks the spec (after WithDefaults) against the known VNF
// kinds and the replica/size/rate bounds.
func (sp ScenarioSpec) Validate() error {
	sp = sp.WithDefaults()
	if !validSegment(sp.Name) {
		return fmt.Errorf("core: scenario name %q: want one URL path segment of [A-Za-z0-9._-]", sp.Name)
	}
	if len(sp.Groups) == 0 || len(sp.Groups) > MaxScenarioGroups {
		return fmt.Errorf("core: scenario %s: %d groups, want 1..%d", sp.Name, len(sp.Groups), MaxScenarioGroups)
	}
	seen := map[string]bool{}
	for i, g := range sp.Groups {
		if !validSegment(g.Name) {
			return fmt.Errorf("core: scenario %s: group %d name %q: want [A-Za-z0-9._-]", sp.Name, i, g.Name)
		}
		if seen[g.Name] {
			return fmt.Errorf("core: scenario %s: duplicate group %q", sp.Name, g.Name)
		}
		seen[g.Name] = true
		if _, ok := vnf.KindFor(g.Kind); !ok {
			return fmt.Errorf("core: scenario %s: group %q: unknown VNF kind %q", sp.Name, g.Name, g.Kind)
		}
		if g.Replicas < 1 || g.Replicas > MaxGroupReplicas {
			return fmt.Errorf("core: scenario %s: group %q: replicas %d out of [1, %d]", sp.Name, g.Name, g.Replicas, MaxGroupReplicas)
		}
		if g.CoresPerInstance < 1 || g.CoresPerInstance > MaxCoresPerInstance {
			return fmt.Errorf("core: scenario %s: group %q: cores_per_instance %d out of [1, %d]", sp.Name, g.Name, g.CoresPerInstance, MaxCoresPerInstance)
		}
	}
	t := sp.Traffic
	if t.BaseFPS <= 0 || t.BaseFPS > MaxBaseFPS {
		return fmt.Errorf("core: scenario %s: base_fps %g out of (0, %g]", sp.Name, t.BaseFPS, float64(MaxBaseFPS))
	}
	if t.DiurnalAmplitude < 0 || t.DiurnalAmplitude >= 1 {
		return fmt.Errorf("core: scenario %s: diurnal_amplitude %g out of [0, 1)", sp.Name, t.DiurnalAmplitude)
	}
	if t.PeakHour < 0 || t.PeakHour > 24 {
		return fmt.Errorf("core: scenario %s: peak_hour %g out of [0, 24]", sp.Name, t.PeakHour)
	}
	if t.BurstRatio != 0 && (t.BurstRatio < 1 || t.BurstRatio > 1000) {
		return fmt.Errorf("core: scenario %s: burst_ratio %g: want 0 (off) or [1, 1000]", sp.Name, t.BurstRatio)
	}
	if t.BurstRate < 0 {
		return fmt.Errorf("core: scenario %s: negative burst_rate %g", sp.Name, t.BurstRate)
	}
	for i, fc := range t.FlashCrowds {
		if fc.StartSec < 0 || fc.DurationSec <= 0 || fc.Multiplier < 1 {
			return fmt.Errorf("core: scenario %s: flash_crowd %d: want start_sec >= 0, duration_sec > 0, multiplier >= 1", sp.Name, i)
		}
	}
	if sp.SLO.MaxLatencyMs < 0 || sp.SLO.MaxLossRate < 0 || sp.SLO.MaxLossRate > 1 {
		return fmt.Errorf("core: scenario %s: slo latency %g / loss %g out of range", sp.Name, sp.SLO.MaxLatencyMs, sp.SLO.MaxLossRate)
	}
	if sp.EpochSec <= 0 || sp.EpochSec > 3600 {
		return fmt.Errorf("core: scenario %s: epoch_sec %g out of (0, 3600]", sp.Name, sp.EpochSec)
	}
	if sp.PropagationMs < 0 || sp.PropagationMs > 100 {
		return fmt.Errorf("core: scenario %s: propagation_ms %g out of [0, 100]", sp.Name, sp.PropagationMs)
	}
	return nil
}

// GroupNames returns the group names in chain order — the feature schema
// a feed or model built from this spec uses.
func (sp ScenarioSpec) GroupNames() []string {
	names := make([]string, len(sp.Groups))
	for i, g := range sp.Groups {
		names[i] = g.Name
	}
	return names
}

// Compile materializes the spec as a runnable Scenario. The compiled form
// of a builtin spec is bit-identical (same generated datasets for a fixed
// seed) to the scenario the old hard-coded constructors produced.
func (sp ScenarioSpec) Compile() (Scenario, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	groups := append([]GroupSpec(nil), sp.Groups...)
	kinds := make([]vnf.Kind, len(groups))
	for i, g := range groups {
		kinds[i], _ = vnf.KindFor(g.Kind) // Validate checked the names
	}
	profile := traffic.Profile{
		BaseFPS:          sp.Traffic.BaseFPS,
		DiurnalAmplitude: sp.Traffic.DiurnalAmplitude,
		PeakHour:         sp.Traffic.PeakHour,
		BurstRatio:       sp.Traffic.BurstRatio,
		BurstRate:        sp.Traffic.BurstRate,
	}
	for _, fc := range sp.Traffic.FlashCrowds {
		profile.FlashCrowds = append(profile.FlashCrowds, traffic.FlashCrowd{
			StartSec: fc.StartSec, DurationSec: fc.DurationSec, Multiplier: fc.Multiplier,
		})
	}
	return Scenario{
		Name: sp.Name,
		Groups: func() []*chain.Group {
			out := make([]*chain.Group, len(groups))
			for i, g := range groups {
				out[i] = chain.NewGroup(g.Name, kinds[i], g.Replicas, g.CoresPerInstance)
			}
			return out
		},
		GroupNames:    sp.GroupNames(),
		Traffic:       profile,
		SLO:           sla.SLO{MaxLatencyMs: sp.SLO.MaxLatencyMs, MaxLossRate: sp.SLO.MaxLossRate},
		EpochSec:      sp.EpochSec,
		PropagationMs: sp.PropagationMs,
	}, nil
}

// mustCompile compiles a known-good (builtin) spec.
func mustCompile(sp ScenarioSpec) Scenario {
	s, err := sp.Compile()
	if err != nil {
		panic(err)
	}
	return s
}

// WebScenarioSpec is the declarative form of the canonical three-hop web
// service chain: firewall → IDS → load balancer under diurnal, bursty
// traffic with a mid-day flash crowd. Provisioned so the bottleneck (IDS)
// sweeps the full utilization range across a day.
func WebScenarioSpec() ScenarioSpec {
	return ScenarioSpec{
		Name:        "web-sfc",
		Description: "three-hop web SFC: firewall → IDS → load balancer, diurnal + flash crowd",
		Groups: []GroupSpec{
			{Name: "fw", Kind: "firewall", Replicas: 2, CoresPerInstance: 2},
			{Name: "ids", Kind: "ids", Replicas: 2, CoresPerInstance: 2},
			{Name: "lb", Kind: "lb", Replicas: 1, CoresPerInstance: 2},
		},
		Traffic: TrafficSpec{
			BaseFPS:          30000,
			DiurnalAmplitude: 0.7,
			PeakHour:         13,
			BurstRatio:       4,
			BurstRate:        0.02,
			FlashCrowds:      []FlashCrowdSpec{{StartSec: 11.5 * 3600, DurationSec: 1800, Multiplier: 2.2}},
		},
		SLO:      SLOSpec{MaxLatencyMs: 4, MaxLossRate: 0.01},
		EpochSec: 5,
	}
}

// NATScenarioSpec is the declarative form of the tighter two-hop
// NAT+monitor chain whose flow-table pressure (not raw rate) drives
// violations — the scenario where naive "load"-only reasoning misleads
// operators.
func NATScenarioSpec() ScenarioSpec {
	return ScenarioSpec{
		Name:        "nat-edge",
		Description: "two-hop NAT edge chain: NAT → monitor, flow-table pressure driven",
		Groups: []GroupSpec{
			{Name: "nat", Kind: "nat", Replicas: 2, CoresPerInstance: 2},
			{Name: "mon", Kind: "monitor", Replicas: 1, CoresPerInstance: 2},
		},
		Traffic: TrafficSpec{
			BaseFPS:          95000,
			DiurnalAmplitude: 0.5,
			PeakHour:         20,
			BurstRatio:       6,
			BurstRate:        0.05,
		},
		SLO:      SLOSpec{MaxLatencyMs: 1.5, MaxLossRate: 0.01},
		EpochSec: 5,
	}
}
