package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"nfvxai/internal/xai"
	"nfvxai/internal/xai/xcache"

	// Register every explanation method so the parity sweep below covers
	// the full seeded-local set.
	_ "nfvxai/internal/xai/anchors"
	_ "nfvxai/internal/xai/counterfactual"
	_ "nfvxai/internal/xai/intgrad"
	_ "nfvxai/internal/xai/lime"
	_ "nfvxai/internal/xai/perm"
	_ "nfvxai/internal/xai/shap"
	_ "nfvxai/internal/xai/treeshap"
)

// TestCachedVsFreshParity pins the tentpole's correctness bar: for every
// seeded local method a model supports, the attribution served through
// the result cache — on the miss AND on the following hit — is
// bit-identical to a fresh uncached computation.
func TestCachedVsFreshParity(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []ModelKind{ModelForest, ModelMLP} {
		p := planePipeline(t, kind)
		p.ResultCache = xcache.New(xcache.Config{})
		x := p.Test.X[5]
		for _, m := range xai.Methods() {
			if m.Kind != xai.KindLocal || !m.Caps.Deterministic {
				continue
			}
			opts := xai.Options{Samples: 64}
			e, name, err := p.ExplainerFor(m.Name, opts)
			if errors.Is(err, xai.ErrUnsupportedModel) {
				continue
			}
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, m.Name, err)
			}
			fresh, err := e.Explain(ctx, x)
			if err != nil {
				t.Fatalf("%v/%s fresh: %v", kind, m.Name, err)
			}
			missAttr, _, outcome, err := p.ExplainCached(ctx, name, opts, x, false)
			if err != nil {
				t.Fatalf("%v/%s miss: %v", kind, m.Name, err)
			}
			if outcome != xcache.OutcomeMiss {
				t.Fatalf("%v/%s first call outcome = %v, want miss", kind, m.Name, outcome)
			}
			hitAttr, _, outcome, err := p.ExplainCached(ctx, name, opts, x, false)
			if err != nil {
				t.Fatalf("%v/%s hit: %v", kind, m.Name, err)
			}
			if outcome != xcache.OutcomeHit {
				t.Fatalf("%v/%s second call outcome = %v, want hit", kind, m.Name, outcome)
			}
			for _, got := range []xai.Attribution{missAttr, hitAttr} {
				if len(got.Phi) != len(fresh.Phi) {
					t.Fatalf("%v/%s: phi length %d vs %d", kind, m.Name, len(got.Phi), len(fresh.Phi))
				}
				for j := range fresh.Phi {
					if got.Phi[j] != fresh.Phi[j] {
						t.Fatalf("%v/%s phi[%d] = %v want %v (not bit-identical)", kind, m.Name, j, got.Phi[j], fresh.Phi[j])
					}
				}
				if got.Base != fresh.Base || got.Value != fresh.Value {
					t.Fatalf("%v/%s base/value drift", kind, m.Name)
				}
			}
		}
	}
}

// TestNoCacheBypasses: the no_cache knob computes fresh and leaves no
// entry behind.
func TestNoCacheBypasses(t *testing.T) {
	p := planePipeline(t, ModelForest)
	p.ResultCache = xcache.New(xcache.Config{})
	x := p.Test.X[2]
	_, _, outcome, err := p.ExplainCached(context.Background(), "", xai.Options{}, x, true)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != xcache.OutcomeBypass {
		t.Fatalf("outcome = %v, want bypass", outcome)
	}
	if st := p.ResultCache.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("no_cache must not touch the cache: %+v", st)
	}
	// Without a cache attached, the same call is also a bypass.
	p2 := planePipeline(t, ModelForest)
	if _, _, outcome, err := p2.ExplainCached(context.Background(), "", xai.Options{}, x, false); err != nil || outcome != xcache.OutcomeBypass {
		t.Fatalf("cacheless pipeline: outcome %v err %v", outcome, err)
	}
}

// TestContentDigestStability: the digest is computed once, is stable, and
// agrees across a save/load round trip — the property tier-2 sharing
// rests on.
func TestContentDigestStability(t *testing.T) {
	p := planePipeline(t, ModelForest)
	if _, ok := p.DigestIfComputed(); ok {
		t.Fatal("digest must not exist before first use")
	}
	d1 := p.ContentDigest()
	if d1 == "" || d1 != p.ContentDigest() {
		t.Fatalf("digest unstable: %q vs %q", d1, p.ContentDigest())
	}
	if got, ok := p.DigestIfComputed(); !ok || got != d1 {
		t.Fatalf("DigestIfComputed = %q, %v", got, ok)
	}
	data, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	q, err := LoadPipeline(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.ContentDigest() != d1 {
		t.Fatalf("round-tripped digest %q != %q", q.ContentDigest(), d1)
	}
}

// TestExplainBatchWithSplitsHitsAndMisses: a batch re-submitting known
// instances only computes the new ones, and duplicate instances within
// one batch coalesce to a single computation.
func TestExplainBatchWithSplitsHitsAndMisses(t *testing.T) {
	p := planePipeline(t, ModelForest)
	p.ResultCache = xcache.New(xcache.Config{})
	ctx := context.Background()
	e, method, err := p.ExplainerFor("", xai.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{}, 4)

	// Seed the cache with instance 0.
	if _, _, _, err := p.ExplainCached(ctx, method, xai.Options{}, p.Test.X[0], false); err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{p.Test.X[0], p.Test.X[1], p.Test.X[1], p.Test.X[2]}
	attrs, errs, st := p.ExplainBatchWith(ctx, e, method, xai.Options{}, xs, gate, false)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("errs[%d]: %v", i, err)
		}
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (instance 0 was pre-seeded)", st.Hits)
	}
	if st.Misses+st.Coalesced != 3 || st.Misses < 2 {
		t.Fatalf("misses %d coalesced %d; want 3 total with ≥2 computed", st.Misses, st.Coalesced)
	}
	// Duplicate rows must be identical results.
	if !reflect.DeepEqual(attrs[1].Phi, attrs[2].Phi) {
		t.Fatal("duplicate instances diverged")
	}
	// Underlying computes: instance 0 seeded (1) + at most 3 new.
	if got := p.ResultCache.Stats().Misses; got > 4 {
		t.Fatalf("computes = %d", got)
	}
	// A repeat of the whole batch is all hits, no gate traffic needed.
	_, _, st2 := p.ExplainBatchWith(ctx, e, method, xai.Options{}, xs, gate, false)
	if st2.Hits != len(xs) || st2.Misses != 0 {
		t.Fatalf("repeat batch: %+v", st2)
	}
	// no_cache bypasses wholesale.
	_, _, st3 := p.ExplainBatchWith(ctx, e, method, xai.Options{}, xs, gate, true)
	if st3.Bypassed != len(xs) {
		t.Fatalf("no_cache batch: %+v", st3)
	}
}

// TestConcurrentIdenticalExplains: 64 concurrent identical requests
// through the pipeline produce exactly one underlying computation.
func TestConcurrentIdenticalExplains(t *testing.T) {
	p := planePipeline(t, ModelForest)
	p.ResultCache = xcache.New(xcache.Config{})
	ctx := context.Background()
	x := p.Test.X[7]
	var wg sync.WaitGroup
	attrs := make([]xai.Attribution, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attr, _, _, err := p.ExplainCached(ctx, "", xai.Options{}, x, false)
			if err != nil {
				t.Errorf("explain %d: %v", i, err)
			}
			attrs[i] = attr
		}(i)
	}
	wg.Wait()
	st := p.ResultCache.Stats()
	if st.Misses != 1 {
		t.Fatalf("computations = %d, want exactly 1 (misses count computes)", st.Misses)
	}
	if st.Hits+st.Coalesced != 63 {
		t.Fatalf("hits %d + coalesced %d != 63", st.Hits, st.Coalesced)
	}
	for i := 1; i < 64; i++ {
		if !reflect.DeepEqual(attrs[i].Phi, attrs[0].Phi) {
			t.Fatalf("request %d got a different attribution", i)
		}
	}
}

// TestNegativeCacheVerdict pins the unsupported-pair fast path: the
// first build failure for a capability mismatch records a (digest,
// method) verdict, and every later request for the pair answers from
// it — same typed error, no registry rebuild — while supported methods
// are untouched.
func TestNegativeCacheVerdict(t *testing.T) {
	p := planePipeline(t, ModelForest)
	p.ResultCache = xcache.New(xcache.Config{})

	// First request: real build failure, verdict recorded.
	if _, _, err := p.ExplainerFor("intgrad", xai.Options{}); !errors.Is(err, xai.ErrUnsupportedModel) {
		t.Fatalf("intgrad on forest: %v", err)
	}
	if st := p.ResultCache.Stats(); st.NegEntries != 1 || st.NegHits != 0 {
		t.Fatalf("after first failure: NegEntries=%d NegHits=%d, want 1/0", st.NegEntries, st.NegHits)
	}

	// Repeat request: answered from the verdict, same typed error.
	if _, _, err := p.ExplainerFor("intgrad", xai.Options{}); !errors.Is(err, xai.ErrUnsupportedModel) {
		t.Fatalf("cached verdict: %v", err)
	}
	if st := p.ResultCache.Stats(); st.NegHits != 1 {
		t.Fatalf("after repeat: NegHits=%d, want 1", st.NegHits)
	}

	// Unknown methods are not artifact verdicts and must not be filed.
	if _, _, err := p.ExplainerFor("not-a-method", xai.Options{}); !errors.Is(err, xai.ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if st := p.ResultCache.Stats(); st.NegEntries != 1 {
		t.Fatalf("unknown method filed a verdict: NegEntries=%d", st.NegEntries)
	}

	// Supported methods still build and explain.
	if _, _, err := p.ExplainerFor("treeshap", xai.Options{}); err != nil {
		t.Fatalf("treeshap: %v", err)
	}
}
