package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/feed"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/registry"
)

// edgeSpec is a small runtime-registered scenario used by the streaming
// tests: never compiled into the binary's builtins, so it proves the
// POST /v1/scenarios → train → stream → retrain loop works end to end.
func edgeSpec() core.ScenarioSpec {
	return core.ScenarioSpec{
		Name:        "edge-pop",
		Description: "two-hop edge POP for streaming tests",
		Groups: []core.GroupSpec{
			{Name: "fw", Kind: "firewall", Replicas: 1, CoresPerInstance: 2},
			{Name: "mon", Kind: "monitor", Replicas: 1, CoresPerInstance: 1},
		},
		Traffic: core.TrafficSpec{BaseFPS: 20000, DiurnalAmplitude: 0.3, PeakHour: 12},
		SLO:     core.SLOSpec{MaxLatencyMs: 5, MaxLossRate: 0.01},
	}
}

// edgeRecords simulates the edge scenario offline and returns n epoch
// records — the stand-in for real infrastructure telemetry in ingest
// tests.
func edgeRecords(t *testing.T, seed int64, n int) []telemetry.Record {
	t.Helper()
	sc, err := edgeSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	w, h, err := sc.BuildWorld(seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []telemetry.Record
	h.OnEpoch(func(rec telemetry.Record) { recs = append(recs, rec) })
	w.Run(float64(n+2) * sc.EpochSec)
	if len(recs) < n {
		t.Fatalf("simulated %d records, want %d", len(recs), n)
	}
	return recs[:n]
}

// newStreamingServer builds a fresh multi-model server (no preloaded
// default model) with its Close hooked into test cleanup.
func newStreamingServer(t *testing.T) (*Server, *httptest.Server, chan string) {
	t.Helper()
	reg := registry.New()
	s := NewServer(reg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	done := make(chan string, 4)
	reg.NotifyBuilds(done)
	return s, srv, done
}

// readSSE reads one SSE frame ("event:" + "data:" lines up to the blank
// separator).
func readSSE(t *testing.T, br *bufio.Reader) (event string, data []byte) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v (event %q data %q)", err, event, data)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && event != "":
			return event, data
		}
	}
}

// TestScenarioCRUD covers the scenario catalog endpoints: builtins are
// listed, runtime specs register once, invalid specs are rejected.
func TestScenarioCRUD(t *testing.T) {
	_, srv, _ := newStreamingServer(t)

	resp := getJSON(t, srv, "/v1/scenarios")
	wantStatus(t, resp, http.StatusOK)
	list := decode[ScenarioListResponse](t, resp)
	if len(list.Scenarios) != 2 {
		t.Fatalf("builtin scenarios %d, want 2", len(list.Scenarios))
	}

	resp = postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusCreated)
	info := decode[ScenarioInfo](t, resp)
	if info.EpochSec != 5 || len(info.Features) != len(telemetry.FeatureNames([]string{"fw", "mon"})) {
		t.Fatalf("created scenario %+v", info)
	}

	// Lookup by name, by alias, and a miss.
	resp = getJSON(t, srv, "/v1/scenarios/edge-pop")
	wantStatus(t, resp, http.StatusOK)
	resp = getJSON(t, srv, "/v1/scenarios/web")
	wantStatus(t, resp, http.StatusOK)
	if got := decode[ScenarioInfo](t, resp); got.Name != "web-sfc" {
		t.Fatalf("alias resolved to %q", got.Name)
	}
	resp = getJSON(t, srv, "/v1/scenarios/nope")
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()

	// Duplicates conflict; invalid specs and unknown fields are 400s.
	resp = postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()
	bad := edgeSpec()
	bad.Name = "bad-kind"
	bad.Groups[0].Kind = "blockchain"
	resp = postJSON(t, srv, "/v1/scenarios", bad)
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/scenarios", map[string]any{"name": "x", "bogus_field": 1})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	// The registered scenario is immediately trainable.
	resp = postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "edge-pop", Model: "linear", Target: "util", Hours: 0.2})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
}

// TestFeedLifecycleAndIngest covers feed CRUD and the ingest schema
// contract.
func TestFeedLifecycleAndIngest(t *testing.T) {
	_, srv, _ := newStreamingServer(t)
	resp := postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()

	// A feed for an unknown scenario is rejected.
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "f", Scenario: "nope"})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	sim := false
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "live", Scenario: "edge-pop", Simulate: &sim})
	wantStatus(t, resp, http.StatusCreated)
	created := decode[FeedInfo](t, resp)
	if created.Scenario != "edge-pop" || created.Simulate || created.Rate != 60 {
		t.Fatalf("feed %+v", created)
	}
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "live", Scenario: "edge-pop"})
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()

	recs := edgeRecords(t, 3, 8)
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{Records: recs})
	wantStatus(t, resp, http.StatusOK)
	if got := decode[IngestResponse](t, resp); got.Accepted != 8 {
		t.Fatalf("accepted %d", got.Accepted)
	}

	// A record violating the scenario schema is rejected with the index.
	badRec := recs[0]
	badRec.Chain.PerGroup = badRec.Chain.PerGroup[:1]
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{Records: []telemetry.Record{recs[1], badRec}})
	wantStatus(t, resp, http.StatusBadRequest)
	var ingestErr struct {
		Error    string `json:"error"`
		Accepted int    `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ingestErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ingestErr.Accepted != 1 || !strings.Contains(ingestErr.Error, "record 1") {
		t.Fatalf("ingest error %+v", ingestErr)
	}
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/feeds/nope/records", IngestRequest{Records: recs[:1]})
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()

	resp = getJSON(t, srv, "/v1/feeds/live")
	wantStatus(t, resp, http.StatusOK)
	if got := decode[FeedInfo](t, resp); got.Stats.Ingested != 9 {
		t.Fatalf("stats %+v", got.Stats)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/feeds/live", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, dresp, http.StatusOK)
	dresp.Body.Close()
	resp = getJSON(t, srv, "/v1/feeds/live")
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()
}

// TestSimulatedFeedStreamsSSE runs a real simulated feed at high rate and
// reads explained records off the SSE endpoint.
func TestSimulatedFeedStreamsSSE(t *testing.T) {
	_, srv, done := newStreamingServer(t)
	resp := postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/models", registry.Spec{
		Name: "edge-model", Scenario: "edge-pop", Model: "cart", Target: "util", Hours: 0.2, Seed: 7,
	})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	waitBuild(t, done, "edge-model")

	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "sim", Scenario: "edge-pop", Rate: 86400})
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()

	stream := getJSON(t, srv, "/v1/models/edge-model/stream?feed=sim&limit=5&topk=3&batch=8")
	wantStatus(t, stream, http.StatusOK)
	defer stream.Body.Close()
	br := bufio.NewReader(stream.Body)
	event, data := readSSE(t, br)
	if event != "hello" {
		t.Fatalf("first event %q (%s)", event, data)
	}
	var hello StreamHello
	if err := json.Unmarshal(data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Method == "" || hello.Feed != "sim" {
		t.Fatalf("hello %+v", hello)
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		event, data = readSSE(t, br)
		if event != "record" {
			t.Fatalf("event %d: %q (%s)", i, event, data)
		}
		var ev StreamEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != lastSeq+1 || len(ev.Contributions) == 0 || len(ev.Contributions) > 3 {
			t.Fatalf("event %+v", ev)
		}
		lastSeq = ev.Seq
	}

	// Stream against a schema-mismatched feed is a 409, unknown feed 404,
	// missing feed param 400.
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "webfeed", Scenario: "web"})
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	resp = getJSON(t, srv, "/v1/models/edge-model/stream?feed=webfeed")
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()
	resp = getJSON(t, srv, "/v1/models/edge-model/stream?feed=nope")
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()
	resp = getJSON(t, srv, "/v1/models/edge-model/stream")
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
}

// TestStreamingEndToEnd is the acceptance test for the streaming plane: a
// scenario POSTed at runtime is trained, served, fed live telemetry, and
// drift-retrained — without restarting the process. The stream shifts
// regime after a stable phase; the drift monitor flags it, a retrain job
// trains on the streamed window and hot-swaps the model (observable as
// retrains=1 on the model), and the SSE stream keeps serving.
func TestStreamingEndToEnd(t *testing.T) {
	_, srv, done := newStreamingServer(t)

	// 1. Register a new topology at runtime.
	resp := postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()

	// 2. Train a model for it (async, like any POST /v1/models).
	resp = postJSON(t, srv, "/v1/models", registry.Spec{
		Name: "edge/cart/latency", Scenario: "edge-pop", Model: "cart", Target: "latency", Hours: 0.3, Seed: 7,
	})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	waitBuild(t, done, "edge/cart/latency")

	// 3. Open an ingest-only feed and attach the model with a tiny drift
	// window so the test stays fast.
	sim := false
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "live", Scenario: "edge-pop", Simulate: &sim})
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/feeds/live/attach", AttachRequest{
		Model:          "edge/cart/latency",
		MaxRows:        256,
		MinRetrainRows: 24,
		// A tiny window with error-drift dominant: the regime shift moves
		// features too, but a CART's out-of-range predictions clamp, so
		// the MAE ratio fires reliably. MeanShift is set high to keep the
		// trigger kind deterministic.
		Drift: feed.DriftConfig{Baseline: 20, Recent: 8, ErrorRatio: 3, MeanShift: 1e6, Cooldown: 1 << 20},
	})
	wantStatus(t, resp, http.StatusCreated)
	attInfo := decode[AttachmentInfo](t, resp)
	if attInfo.Model != "edge/cart/latency" || !attInfo.AutoRetrain {
		t.Fatalf("attachment %+v", attInfo)
	}
	// A duplicate attach conflicts.
	resp = postJSON(t, srv, "/v1/feeds/live/attach", AttachRequest{Model: "edge/cart/latency"})
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()

	// 4. Stream a stable phase: records from the same scenario (different
	// seed), whose latencies the model predicts well — this builds the
	// drift baseline.
	recs := edgeRecords(t, 11, 110)
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{Records: recs[:70]})
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()

	// 5. Regime shift: a congested downstream link multiplies latencies
	// far beyond the trained range. The tree clamps its predictions, the
	// recent MAE blows past 3× baseline, drift fires, and an automatic
	// retrain job hot-swaps the model.
	shifted := make([]telemetry.Record, 0, 40)
	for _, rec := range recs[70:] {
		rec.Chain.LatencyMs *= 12
		for g := range rec.Chain.PerGroup {
			rec.Chain.PerGroup[g].LatencyMs *= 12
		}
		shifted = append(shifted, rec)
	}
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{Records: shifted})
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()

	// 6. Observe the drift-triggered retrain: the model's retrain counter
	// flips to 1 and its ready_at moves forward.
	deadline := time.Now().Add(60 * time.Second)
	var model ModelInfo
	for {
		resp = getJSON(t, srv, "/v1/models/edge/cart/latency")
		wantStatus(t, resp, http.StatusOK)
		model = decode[ModelInfo](t, resp)
		if model.Retrains >= 1 {
			break
		}
		if time.Now().After(deadline) {
			fresp := getJSON(t, srv, "/v1/feeds/live")
			finfo := decode[FeedInfo](t, fresp)
			jresp := getJSON(t, srv, "/v1/jobs")
			jobs := decode[JobListResponse](t, jresp)
			t.Fatalf("no retrain observed; model %+v feed %+v jobs %+v", model, finfo, jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if model.Status != "ready" {
		t.Fatalf("model status %q after retrain", model.Status)
	}

	// The retrain job is visible (and done) under the model's jobs.
	resp = getJSON(t, srv, "/v1/models/edge/cart/latency/jobs")
	wantStatus(t, resp, http.StatusOK)
	jobs := decode[JobListResponse](t, resp).Jobs
	var retrainJob *JobInfo
	for i := range jobs {
		if jobs[i].Kind == JobRetrain {
			retrainJob = &jobs[i]
		}
	}
	if retrainJob == nil {
		t.Fatalf("no retrain job in %+v", jobs)
	}
	waitJob := func(id string) JobInfo {
		for {
			resp := getJSON(t, srv, "/v1/jobs/"+id)
			wantStatus(t, resp, http.StatusOK)
			info := decode[JobInfo](t, resp)
			if info.Status != "pending" && info.Status != "running" {
				return info
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck: %+v", id, info)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	final := waitJob(retrainJob.ID)
	if final.Status != "done" {
		t.Fatalf("retrain job %+v", final)
	}

	// The attachment's monitor saw the drift.
	resp = getJSON(t, srv, "/v1/feeds/live")
	wantStatus(t, resp, http.StatusOK)
	finfo := decode[FeedInfo](t, resp)
	if len(finfo.Attachments) != 1 || finfo.Attachments[0].Drifts < 1 || finfo.Attachments[0].LastDrift == nil {
		t.Fatalf("attachments %+v", finfo.Attachments)
	}

	// 7. The retrained model keeps serving the stream: open the SSE
	// endpoint, then ingest more records once the hello event confirms
	// the subscription is live, and read explained events back.
	stream := getJSON(t, srv, "/v1/models/edge/cart/latency/stream?feed=live&limit=2&topk=4")
	wantStatus(t, stream, http.StatusOK)
	br := bufio.NewReader(stream.Body)
	if event, data := readSSE(t, br); event != "hello" {
		t.Fatalf("first stream event %q (%s)", event, data)
	}
	resp = postJSON(t, srv, "/v1/feeds/live/records", IngestRequest{Records: shifted[:10]})
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()
	for i := 0; i < 2; i++ {
		event, data := readSSE(t, br)
		if event != "record" {
			t.Fatalf("stream event %q (%s)", event, data)
		}
		var ev StreamEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Prediction == 0 && ev.Base == 0 {
			t.Fatalf("empty explanation %+v", ev)
		}
	}
	stream.Body.Close()

	// 8. A manual retrain through the jobs API lands a second hot-swap.
	resp = postJSON(t, srv, "/v1/models/edge/cart/latency/jobs", JobRequest{Kind: JobRetrain})
	wantStatus(t, resp, http.StatusAccepted)
	manual := decode[JobInfo](t, resp)
	if got := waitJob(manual.ID); got.Status != "done" {
		t.Fatalf("manual retrain %+v", got)
	}
	resp = getJSON(t, srv, "/v1/models/edge/cart/latency")
	if got := decode[ModelInfo](t, resp); got.Retrains != 2 {
		t.Fatalf("retrains %d after manual retrain", got.Retrains)
	}
	// A retrain for an unattached model is a clear client error.
	resp = postJSON(t, srv, "/v1/scenarios", func() core.ScenarioSpec {
		sp := edgeSpec()
		sp.Name = "edge-pop-2"
		return sp
	}())
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/models", registry.Spec{
		Name: "unattached", Scenario: "edge-pop-2", Model: "linear", Target: "util", Hours: 0.2,
	})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	waitBuild(t, done, "unattached")
	resp = postJSON(t, srv, "/v1/models/unattached/jobs", JobRequest{Kind: JobRetrain})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
}

// TestAutoRetrainRateLimited pins the wall-clock floor on drift-triggered
// retrains: repeated drift flags within min_retrain_interval_sec submit
// one job, while the flags themselves stay observable.
func TestAutoRetrainRateLimited(t *testing.T) {
	_, srv, done := newStreamingServer(t)
	resp := postJSON(t, srv, "/v1/scenarios", edgeSpec())
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/models", registry.Spec{
		Name: "rl", Scenario: "edge-pop", Model: "cart", Target: "latency", Hours: 0.3, Seed: 7,
	})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	waitBuild(t, done, "rl")
	sim := false
	resp = postJSON(t, srv, "/v1/feeds", FeedRequest{Name: "rlfeed", Scenario: "edge-pop", Simulate: &sim})
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	// Tiny cooldown so drift re-flags every few records, but a one-hour
	// interval floor: only the first flag may submit a retrain.
	resp = postJSON(t, srv, "/v1/feeds/rlfeed/attach", AttachRequest{
		Model:                 "rl",
		MinRetrainRows:        1 << 20, // retrain job would fail anyway; keep it from swapping
		MinRetrainIntervalSec: 3600,
		Drift:                 feed.DriftConfig{Baseline: 10, Recent: 4, ErrorRatio: 2, MeanShift: 1e6, Cooldown: 1},
	})
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()

	recs := edgeRecords(t, 11, 80)
	for i := range recs[40:] {
		recs[40+i].Chain.LatencyMs *= 12
	}
	resp = postJSON(t, srv, "/v1/feeds/rlfeed/records", IngestRequest{Records: recs})
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	var att AttachmentInfo
	for {
		resp = getJSON(t, srv, "/v1/feeds/rlfeed")
		info := decode[FeedInfo](t, resp)
		att = info.Attachments[0]
		if att.Records == 80 && att.Drifts >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("attachment %+v", att)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if att.RetrainJobs != 1 {
		t.Fatalf("retrain jobs %d with %d drifts, want exactly 1", att.RetrainJobs, att.Drifts)
	}
}
