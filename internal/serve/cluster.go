// The cluster plane of the serving layer: request-id minting and
// propagation, and the reverse proxy that routes model-scoped requests
// to the consistent-hash owner of the model. A request entering any node
// is served correctly: locally when this node owns the model (or the
// fleet is degenerate), by one proxy hop to the owner otherwise, and by
// local fallback from the synced registry when every owner is down.
package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"io"
	"net"
	"net/http"
	"time"

	"nfvxai/internal/cluster"
)

// Version identifies the build in /healthz and /readyz replies so
// operators can tell nodes apart behind a load balancer; release builds
// override it via -ldflags "-X nfvxai/internal/serve.Version=v1.2.3".
var Version = "dev"

// Cluster routing headers.
const (
	// HeaderRequestID carries the request id: minted at the first node a
	// request touches, reused verbatim across proxy hops, echoed on
	// every response and embedded in error bodies — the key that
	// stitches one request's trace together across the fleet.
	HeaderRequestID = "X-Request-Id"
	// HeaderForwardedBy marks a proxied request with the routing node's
	// id. Its presence is the loop guard: a node never re-proxies a
	// request that already took its one hop, so a stale or disagreeing
	// ring view degrades to local serving, never a proxy cycle.
	HeaderForwardedBy = "X-Forwarded-By"
	// HeaderServedBy names the node whose registry actually answered.
	HeaderServedBy = "X-Served-By"
)

// newRequestID mints a 16-hex-char request id. crypto/rand keeps ids
// collision-resistant across nodes with no coordination or shared seed.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable" // crypto/rand failure: trace ids degrade, serving does not
	}
	return hex.EncodeToString(b[:])
}

// logf routes proxy/cluster log lines to the embedder's logger (explaind
// sets Logf to log.Printf); nil drops them.
func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// proxyClient lazily builds the HTTP client used for owner hops: a tight
// dial timeout so a dead owner fails fast into local fallback, but no
// overall timeout — explanation requests legitimately run long and are
// already bounded end-to-end by the owner's budget ladder and the
// client's own context.
func (s *Server) proxyClient() *http.Client {
	s.proxyOnce.Do(func() {
		s.proxy = &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	})
	return s.proxy
}

// hopByHopHeaders are not forwarded across the proxy hop.
var hopByHopHeaders = []string{"Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Te", "Trailer", "Proxy-Connection"}

// proxyToOwner routes a model-scoped request to its ring owner when that
// owner is another, live node. It returns true when it fully handled the
// request (proxied a response through, or wrote an error); false means
// the caller should serve locally — because this node owns the model,
// the cluster is not configured, the request already hopped once, or
// every remote owner is down (fallback: the sync loop keeps every node
// able to serve every model, one interval stale at worst).
func (s *Server) proxyToOwner(w http.ResponseWriter, r *http.Request, name, action string) bool {
	c := s.Cluster
	if c == nil || name == "" {
		return false
	}
	if action == "stream" {
		// SSE streams are held open for minutes; proxying would pin a
		// connection per watcher through two nodes. Serve the synced
		// local pipeline instead.
		return false
	}
	if r.Header.Get(HeaderForwardedBy) != "" {
		return false // one hop max: the first router's decision stands
	}
	target, decision := c.Route(name)
	if decision != cluster.RouteProxy {
		if decision == cluster.RouteFallback {
			s.logf("cluster: all owners of %q down, serving locally (rid=%s)", name, r.Header.Get(HeaderRequestID))
		}
		return false
	}

	// Buffer the body so it can be replayed into the local handler if
	// the hop fails at the transport level.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, MaxArtifactBytes+1))
		r.Body.Close()
		if err != nil {
			writeError(w, http.StatusBadRequest, "read request body: %v", err)
			return true
		}
		if len(body) > MaxArtifactBytes {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", MaxArtifactBytes)
			return true
		}
	}

	out, err := http.NewRequestWithContext(r.Context(), r.Method, target.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadGateway, "proxy to %s: %v", target.ID, err)
		return true
	}
	out.Header = r.Header.Clone()
	for _, h := range hopByHopHeaders {
		out.Header.Del(h)
	}
	out.Header.Set(HeaderForwardedBy, s.NodeID)

	resp, err := s.proxyClient().Do(out)
	if err != nil {
		// Transport-level failure: the owner is unreachable. Demote it
		// immediately (the probe loop would take DownAfter intervals to
		// notice) and serve from the local synced registry.
		c.ReportFailure(target.ID, err)
		s.logf("cluster: proxy %s %s -> %s failed: %v; falling back to local (rid=%s)",
			r.Method, r.URL.Path, target.ID, err, r.Header.Get(HeaderRequestID))
		r.Body = io.NopCloser(bytes.NewReader(body))
		return false
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vv := range resp.Header {
		h[k] = vv // includes the owner's X-Served-By, overwriting ours
	}
	for _, hh := range hopByHopHeaders {
		h.Del(hh)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		s.logf("cluster: proxy %s %s -> %s: response copy: %v (rid=%s)",
			r.Method, r.URL.Path, target.ID, err, r.Header.Get(HeaderRequestID))
	}
	return true
}
