package serve

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/experiment"
	"nfvxai/internal/registry"
)

// storeServer builds a server over a store-backed registry holding the
// shared test pipeline as "web/rf/util".
func storeServer(t *testing.T, st registry.Store) (*Server, *httptest.Server) {
	t.Helper()
	reg := registry.New()
	reg.OnStoreError = func(err error) { t.Errorf("store error: %v", err) }
	if st != nil {
		reg.UseStore(st)
		if _, err := reg.WarmStart(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Get("web/rf/util"); err != nil {
		sp := registry.Spec{Scenario: "web", Model: "rf", Target: "util", Hours: 1, Seed: 2}
		if _, err := reg.AddReady(sp, pipeline(t), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg)
	return s, httptest.NewServer(s)
}

// TestColdWarmRestartPredictParity is the kill-and-restart smoke: train
// under one server, tear everything down, warm-start a second server
// from the same store, and require byte-identical predictions.
func TestColdWarmRestartPredictParity(t *testing.T) {
	st, err := registry.OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s1, srv1 := storeServer(t, st)
	body := map[string]any{"instances": pipeline(t).Test.X[:8]}
	resp := postJSON(t, srv1, "/v1/models/web/rf/util/predict", body)
	wantStatus(t, resp, http.StatusOK)
	cold := decode[BatchPredictResponse](t, resp)
	srv1.Close()
	s1.Close()

	// "Killed and restarted": a brand new registry and server, warm
	// started from the store only.
	s2, srv2 := storeServer(t, st)
	defer srv2.Close()
	defer s2.Close()
	if s2.Registry().Len() != 1 {
		t.Fatalf("warm registry has %d models", s2.Registry().Len())
	}
	resp = postJSON(t, srv2, "/v1/models/web/rf/util/predict", body)
	wantStatus(t, resp, http.StatusOK)
	warm := decode[BatchPredictResponse](t, resp)
	if len(cold.Predictions) != len(warm.Predictions) {
		t.Fatal("prediction count differs")
	}
	for i := range cold.Predictions {
		if math.Float64bits(cold.Predictions[i]) != math.Float64bits(warm.Predictions[i]) {
			t.Fatalf("prediction %d: %v != %v", i, warm.Predictions[i], cold.Predictions[i])
		}
	}

	// Explanations survive the restart bit-for-bit too.
	explain := map[string]any{"features": pipeline(t).Test.X[0], "topk": 3}
	r1 := postJSON(t, srv2, "/v1/models/web/rf/util/explain", explain)
	wantStatus(t, r1, http.StatusOK)
	got := decode[ExplainResponse](t, r1)
	if got.Method != "treeshap" || len(got.Contributions) != 3 {
		t.Fatalf("explain after restart: %+v", got)
	}
}

func TestArtifactExportImport(t *testing.T) {
	_, srv := storeServer(t, nil)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/models/web/rf/util/artifact")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	art, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Import into the same server under a new name.
	resp, err = http.Post(srv.URL+"/v1/models/import?name=imported/rf", "application/octet-stream", bytes.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusCreated)
	info := decode[ModelInfo](t, resp)
	if info.Name != "imported/rf" || info.Status != "ready" {
		t.Fatalf("imported = %+v", info)
	}

	// The imported model serves identical predictions.
	x := pipeline(t).Test.X[0]
	p1 := decode[PredictResponse](t, postJSON(t, srv, "/v1/models/web/rf/util/predict", map[string]any{"features": x}))
	p2 := decode[PredictResponse](t, postJSON(t, srv, "/v1/models/imported/rf/predict", map[string]any{"features": x}))
	if math.Float64bits(p1.Prediction) != math.Float64bits(p2.Prediction) {
		t.Fatal("imported model predicts differently")
	}

	// Collision without override name → 409 (artifact embeds web/rf/util).
	resp, err = http.Post(srv.URL+"/v1/models/import", "application/octet-stream", bytes.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusConflict)

	// Garbage artifact → 400.
	resp, err = http.Post(srv.URL+"/v1/models/import", "application/octet-stream", strings.NewReader("not an artifact"))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)

	// Exporting a missing model → 404.
	resp, err = http.Get(srv.URL + "/v1/models/nope/artifact")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusNotFound)
}

func TestExperimentsAPI(t *testing.T) {
	st, err := registry.OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, srv := storeServer(t, st)
	defer srv.Close()
	defer s.Close()
	jobDone := make(chan string, 8)
	s.NotifyJobs(jobDone)

	spec := experiment.Spec{
		Name:           "api-sweep",
		Scenarios:      []string{"web"},
		Models:         []string{"linear", "cart"},
		Methods:        []string{"kernelshap"},
		Hours:          0.2,
		Seed:           5,
		Samples:        2,
		ShapSamples:    32,
		DeletionTrials: 2,
	}
	resp := postJSON(t, srv, "/v1/experiments", spec)
	wantStatus(t, resp, http.StatusAccepted)
	accepted := decode[ExperimentInfo](t, resp)
	if accepted.ID == "" || accepted.Status != "pending" {
		t.Fatalf("accepted = %+v", accepted)
	}

	select {
	case <-jobDone:
	case <-time.After(60 * time.Second):
		t.Fatal("experiment did not finish")
	}

	resp = getJSON(t, srv, "/v1/experiments/"+accepted.ID)
	wantStatus(t, resp, http.StatusOK)
	info := decode[struct {
		ID     string            `json:"id"`
		Status string            `json:"status"`
		Result experiment.Matrix `json:"result"`
	}](t, resp)
	if info.Status != "done" || len(info.Result.Cells) != 2 {
		t.Fatalf("experiment = %+v", info)
	}
	for _, c := range info.Result.Cells {
		if c.Error != "" || c.Skipped || c.MeanDeletionAUC == nil {
			t.Fatalf("cell = %+v", c)
		}
	}

	// The matrix was persisted: a fresh server over the same store serves
	// it even though its job table is empty.
	s2, srv2 := storeServer(t, st)
	defer srv2.Close()
	defer s2.Close()
	resp = getJSON(t, srv2, "/v1/experiments")
	wantStatus(t, resp, http.StatusOK)
	list := decode[ExperimentListResponse](t, resp)
	if len(list.Experiments) != 1 || !list.Experiments[0].Persisted {
		t.Fatalf("list = %+v", list)
	}
	resp = getJSON(t, srv2, "/v1/experiments/"+accepted.ID)
	wantStatus(t, resp, http.StatusOK)
	restored := decode[struct {
		Persisted bool              `json:"persisted"`
		Result    experiment.Matrix `json:"result"`
	}](t, resp)
	if !restored.Persisted || len(restored.Result.Cells) != 2 {
		t.Fatalf("restored = %+v", restored)
	}

	// Bad specs are the client's 400.
	resp = postJSON(t, srv, "/v1/experiments", experiment.Spec{Scenarios: []string{"mars"}, Models: []string{"rf"}, Methods: []string{"lime"}})
	wantStatus(t, resp, http.StatusBadRequest)
	resp = postJSON(t, srv, "/v1/experiments", map[string]any{"bogus_field": 1})
	wantStatus(t, resp, http.StatusBadRequest)
	resp = getJSON(t, srv, "/v1/experiments/nope")
	wantStatus(t, resp, http.StatusNotFound)
}

// TestCloseWaitsForJobFlush pins the shutdown ordering: Close must not
// return while a job runner is still writing. The slow runner here
// stands in for a retrain/experiment flushing its artifact.
func TestCloseWaitsForJobFlush(t *testing.T) {
	s, srv := storeServer(t, nil)
	defer srv.Close()

	flushed := make(chan struct{})
	started := make(chan struct{})
	_, err := s.jobs.submit("web/rf/util", "experiment", JobParams{}, nil,
		func(ctx context.Context, _ *core.Pipeline, _ JobParams, _ func(float64)) (any, error) {
			close(started)
			// Simulate the post-cancellation artifact flush a retrain or
			// experiment performs before returning.
			time.Sleep(150 * time.Millisecond)
			close(flushed)
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Close()
	select {
	case <-flushed:
		// Close returned only after the runner finished its flush.
	default:
		t.Fatal("Close returned before the job flushed")
	}
}

// TestScenarioRegistrationPersists pins that POST /v1/scenarios writes
// the manifest immediately — a scenario registered at runtime survives a
// restart even when no model persist ever runs afterwards.
func TestScenarioRegistrationPersists(t *testing.T) {
	st, err := registry.OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s1, srv1 := storeServer(t, st)
	spec := core.WebScenarioSpec()
	spec.Name = "runtime-web"
	resp := postJSON(t, srv1, "/v1/scenarios", spec)
	wantStatus(t, resp, http.StatusCreated)
	resp.Body.Close()
	srv1.Close()
	s1.Close()

	s2, srv2 := storeServer(t, st)
	defer srv2.Close()
	defer s2.Close()
	resp = getJSON(t, srv2, "/v1/scenarios/runtime-web")
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()
}

// TestExperimentIDsSurviveRestart pins the id-collision fix: a restart
// must not mint a job id that overwrites a persisted experiment matrix.
func TestExperimentIDsSurviveRestart(t *testing.T) {
	st, err := registry.OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a prior process having persisted job-000003.
	if err := st.PutExperiment("job-000003", []byte(`{"spec":{},"cells":[]}`)); err != nil {
		t.Fatal(err)
	}
	s, srv := storeServer(t, st)
	defer srv.Close()
	defer s.Close()
	done := make(chan string, 4)
	s.NotifyJobs(done)
	spec := experiment.Spec{
		Scenarios: []string{"web"}, Models: []string{"cart"}, Methods: []string{"treeshap"},
		Hours: 0.2, Seed: 1, Samples: 1, ShapSamples: 16, DeletionTrials: 2,
	}
	resp := postJSON(t, srv, "/v1/experiments", spec)
	wantStatus(t, resp, http.StatusAccepted)
	accepted := decode[ExperimentInfo](t, resp)
	if accepted.ID <= "job-000003" {
		t.Fatalf("new experiment id %q does not advance past persisted job-000003", accepted.ID)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("experiment did not finish")
	}
	// The prior matrix is untouched.
	data, err := st.GetExperiment("job-000003")
	if err != nil || string(data) != `{"spec":{},"cells":[]}` {
		t.Fatalf("persisted matrix was overwritten: %s, %v", data, err)
	}
}

// TestSubmitAfterCloseRejected pins the shutdown race fix: a job
// submitted after Close's cancel sweep must be rejected, not silently
// started and never waited for.
func TestSubmitAfterCloseRejected(t *testing.T) {
	s, srv := storeServer(t, nil)
	defer srv.Close()
	s.Close()
	if _, err := s.jobs.submit("m", "experiment", JobParams{}, nil,
		func(ctx context.Context, _ *core.Pipeline, _ JobParams, _ func(float64)) (any, error) {
			return nil, nil
		}); err == nil {
		t.Fatal("submit after Close succeeded")
	}
}

// TestReservedArtifactSegments pins that model names cannot shadow the
// new artifact/import endpoints.
func TestReservedArtifactSegments(t *testing.T) {
	for _, name := range []string{"a/artifact", "import"} {
		if err := registry.ValidateName(name); err == nil {
			t.Errorf("name %q should be reserved", name)
		}
	}
}
